#!/usr/bin/env python3
"""Benchmark-regression gate for the deck CI.

Compares a bench run's machine-readable JSON (the block between the
``--- json ---`` / ``--- end json ---`` markers of bench_* stdout, or a bare
JSON file) against a checked-in baseline under bench/baselines/. The gate is
deliberately restricted to *deterministic* quality metrics — certificate
sizes, CONGEST round counts, sketch copies consumed — which are seeded and
therefore reproduce exactly across machines; wall-clock fields are stripped
from baselines and never gated.

A run fails the gate when
  * any gated metric exceeds its baseline by more than --tolerance
    (default 10%),
  * any boolean correctness field in the run is false, or
  * a baseline row has no matching row in the run (coverage shrank).

Refreshing a baseline after an intentional change:
  ./build/bench_f7_sketch > f7.out
  scripts/check_bench_regression.py --write-baseline f7.out bench/baselines/f7_sketch.json

Refreshing *every* gated baseline in one go (after building the benches):
  scripts/check_bench_regression.py --update-baselines --build-dir build
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

JSON_BEGIN = "--- json ---"
JSON_END = "--- end json ---"

# Per-bench gate configuration: which fields identify a row, and which
# deterministic metrics must not regress (increase) beyond tolerance.
GATES = {
    "f1_2ecss_rounds": {
        "key": ("family", "n"),
        "metrics": ("rounds",),
    },
    "f7_sketch": {
        "key": ("family", "n", "k"),
        "metrics": ("m_certificate", "rounds_sparsified"),
    },
    "f8_shard": {
        "key": ("n", "k", "mode", "shards"),
        "metrics": ("m_certificate", "sketch_copies_used"),
    },
    "f9_recovery": {
        "key": ("n", "k", "mode", "threads"),
        "metrics": ("m_certificate", "sketch_copies_used"),
    },
    "f10_transport": {
        "key": ("n", "k", "mode", "workers"),
        "metrics": ("peak_coordinator_bytes", "m_certificate"),
    },
    "t1_2ecss_quality": {
        "key": ("family", "n"),
        "metrics": ("ratio_vs_lb",),
    },
    "t2_kecss_quality": {
        "key": ("k", "n", "weights"),
        "metrics": ("ratio_vs_lb",),
    },
    "t3_3ecss_quality": {
        "key": ("family", "n"),
        "metrics": ("ratio_vs_lb",),
    },
    "t5_weighted_3ecss": {
        "key": ("n",),
        "metrics": ("ratio_sec54_vs_lb", "ratio_sec4_vs_lb", "rounds_sec54"),
    },
    "f11_engine": {
        "key": ("engine", "units", "n"),
        "metrics": ("rounds", "messages"),
    },
    # Gated entirely through row presence and boolean flags: within_bound
    # per hook, plus the obs-on/off engine-invariance row.
    "f12_obs_overhead": {
        "key": ("case",),
        "metrics": (),
    },
    # Failover cost: checkpoint traffic must not balloon, and every row's
    # identical_to_seq / output_2_edge_connected flag must hold (a kill that
    # perturbs the output fails the gate).
    "f13_failover": {
        "key": ("case", "interval", "workers", "frame"),
        "metrics": ("rounds", "messages", "checkpoint_bytes"),
    },
    # Continuous serving: every row's certificate must stay bit-identical to
    # the one-shot pipeline (identical_to_oneshot flag) and the certificate /
    # sketch-copy telemetry is deterministic; latency and throughput are
    # volatile and never gated.
    "f14_serve": {
        "key": ("case", "policy", "point"),
        "metrics": ("m_certificate", "copies_used"),
    },
    # Batched apply backends: every row's bank must stay bit-identical to
    # the sequential scalar reference (bank_identical_to_scalar flag) and
    # the encoded bank size is deterministic; throughput and the
    # simd-vs-scalar speedup are host-dependent and never gated.
    "f15_apply": {
        "key": ("n", "shards", "batch", "backend"),
        "metrics": ("bank_bytes",),
    },
    # v4 round wire cost: coordinator wire bytes are deterministic per
    # config and must not regress; every row must stay bit-identical to the
    # sequential engine and the document-level delta_reduction_ok flag
    # enforces the >= 5x frontier-sparse reduction. Wall time per round is
    # host-dependent and never gated.
    "f16_round_wire": {
        "key": ("workload", "delta", "pipeline", "threads"),
        "metrics": ("wire_bytes", "rounds", "messages"),
    },
}

# Bench invocation behind each gated baseline, for --update-baselines:
# binary name plus the arguments the CI gate runs it with (baselines must be
# refreshed under the exact configuration the gate replays).
BINARIES = {
    "f1_2ecss_rounds": ("bench_f1_2ecss_rounds",),
    "f7_sketch": ("bench_f7_sketch",),
    "f8_shard": ("bench_f8_shard",),
    "f9_recovery": ("bench_f9_recovery",),
    "f10_transport": ("bench_f10_transport",),
    "t1_2ecss_quality": ("bench_t1_2ecss_quality", "--smoke"),
    "t2_kecss_quality": ("bench_t2_kecss_quality", "--smoke"),
    "t3_3ecss_quality": ("bench_t3_3ecss_quality", "--smoke"),
    "t5_weighted_3ecss": ("bench_t5_weighted_3ecss", "--smoke"),
    "f11_engine": ("bench_f11_engine",),
    "f12_obs_overhead": ("bench_f12_obs_overhead",),
    "f13_failover": ("bench_f13_failover",),
    "f14_serve": ("bench_f14_serve",),
    "f15_apply": ("bench_f15_apply",),
    "f16_round_wire": ("bench_f16_round_wire",),
}

# Wall-clock / host-dependent fields, stripped when writing baselines.
VOLATILE = ("ingest_ms", "halves_per_sec", "speedup_vs_1shard",
            "recover_ms", "speedup_vs_1thread", "sample_failure_rate",
            "ship_ms", "wall_ms",
            "bare_ns_per_op", "hook_ns_per_op", "overhead_ns_per_op",
            "updates_per_sec", "query_ms", "p50_query_ms", "p99_query_ms",
            "speedup_vs_scalar", "wall_ms_per_round")


def extract_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if JSON_BEGIN in text:
        text = text.split(JSON_BEGIN, 1)[1].split(JSON_END, 1)[0]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path}: cannot parse bench JSON: {e}")
    if "bench" not in doc or "rows" not in doc:
        sys.exit(f"error: {path}: not a bench document (missing 'bench'/'rows')")
    return doc


def row_key(row: dict, fields: tuple) -> tuple:
    return tuple(row.get(f) for f in fields)


def check(run: dict, baseline: dict, tolerance: float) -> int:
    name = run["bench"]
    if baseline["bench"] != name:
        print(f"FAIL: bench mismatch: run is '{name}', baseline is '{baseline['bench']}'")
        return 1
    if name not in GATES:
        sys.exit(f"error: no gate configuration for bench '{name}'")
    gate = GATES[name]

    failures = 0
    run_rows = {row_key(r, gate["key"]): r for r in run["rows"]}

    for field, value in run.items():
        if isinstance(value, bool) and not value:
            print(f"FAIL: {name}: document flag '{field}' is false")
            failures += 1

    for base_row in baseline["rows"]:
        key = row_key(base_row, gate["key"])
        label = ", ".join(f"{f}={v}" for f, v in zip(gate["key"], key))
        cur = run_rows.get(key)
        if cur is None:
            print(f"FAIL: {name}: row ({label}) present in baseline but missing from run")
            failures += 1
            continue
        for field, value in cur.items():
            if isinstance(value, bool) and not value:
                print(f"FAIL: {name}: ({label}): correctness flag '{field}' is false")
                failures += 1
        for metric in gate["metrics"]:
            base_val = base_row.get(metric)
            cur_val = cur.get(metric)
            if base_val is None or cur_val is None:
                print(f"FAIL: {name}: ({label}): metric '{metric}' missing "
                      f"(baseline={base_val}, run={cur_val})")
                failures += 1
                continue
            limit = base_val * (1.0 + tolerance)
            if cur_val > limit:
                print(f"FAIL: {name}: ({label}): {metric} regressed "
                      f"{base_val} -> {cur_val} (limit {limit:.2f})")
                failures += 1
            elif cur_val < base_val:
                print(f"info: {name}: ({label}): {metric} improved {base_val} -> {cur_val}")

    if failures == 0:
        print(f"OK: {name}: {len(baseline['rows'])} rows within {tolerance:.0%} of baseline")
    return 1 if failures else 0


def write_baseline(run: dict, out_path: str) -> None:
    doc = dict(run)
    doc["rows"] = [{k: v for k, v in row.items() if k not in VOLATILE} for row in run["rows"]]
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote baseline {out_path}: {len(doc['rows'])} rows")


def update_baselines(build_dir: str, baseline_dir: str) -> int:
    """Convenience mode: run every gated bench binary and rewrite its
    baseline. Fails if a binary is missing (build it first) or exits
    nonzero (a correctness flag tripped — never bless a broken run)."""
    import tempfile

    failures = 0
    for name, invocation in sorted(BINARIES.items()):
        binary, args = invocation[0], list(invocation[1:])
        exe = os.path.join(build_dir, binary)
        if not os.path.exists(exe):
            print(f"FAIL: {exe} not built — run `cmake --build {build_dir} --target {binary}`")
            failures += 1
            continue
        proc = subprocess.run([exe] + args, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"FAIL: {binary} exited {proc.returncode} — not writing a baseline from a "
                  f"failing run")
            failures += 1
            continue
        with tempfile.NamedTemporaryFile("w", suffix=".out", delete=False) as f:
            f.write(proc.stdout)
            capture = f.name
        try:
            write_baseline(extract_doc(capture), os.path.join(baseline_dir, f"{name}.json"))
        finally:
            os.unlink(capture)
    return 1 if failures else 0


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("run", nargs="?", help="bench stdout capture or bare JSON document")
    p.add_argument("baseline", nargs="?",
                   help="checked-in baseline JSON (or output path with --write-baseline)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed fractional increase per gated metric (default 0.10)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write/refresh the baseline from the run instead of checking")
    p.add_argument("--update-baselines", action="store_true",
                   help="run every gated bench from --build-dir and rewrite all baselines")
    p.add_argument("--build-dir", default="build",
                   help="build directory holding bench binaries (--update-baselines)")
    p.add_argument("--baseline-dir", default="bench/baselines",
                   help="directory of checked-in baselines (--update-baselines)")
    args = p.parse_args()

    if args.update_baselines:
        if args.run or args.baseline:
            p.error("--update-baselines takes no run/baseline arguments")
        return update_baselines(args.build_dir, args.baseline_dir)
    if not args.run or not args.baseline:
        p.error("run and baseline are required unless --update-baselines is given")

    run = extract_doc(args.run)
    if args.write_baseline:
        write_baseline(run, args.baseline)
        return 0
    return check(run, extract_doc(args.baseline), args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
