#!/usr/bin/env python3
"""Markdown link checker for the deck docs (stdlib only, no network).

Walks the given markdown files (default: README.md and docs/*.md) and
verifies every *repo-relative* link:

  * the target file exists (relative to the linking file's directory), and
  * if the link carries a #fragment, the target file contains a heading
    whose GitHub anchor slug matches the fragment.

External links (http/https/mailto) are skipped — CI must not depend on the
network or on third-party uptime. Links inside fenced code blocks and
inline code spans are ignored, so ASCII diagrams and example snippets
can't produce false positives.

Exit status is the number of broken links (0 = all good), and every
failure prints as `file:line: message` so editors can jump to it.
"""

from __future__ import annotations

import glob
import os
import re
import sys

# Inline links: [text](target) — target captured up to the closing paren.
# Markdown titles (`[t](url "title")`) are split off below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(\s*)(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code markers, lowercase,
    drop everything but alphanumerics/spaces/hyphens/underscores, then turn
    spaces into hyphens. (Duplicate-heading -1 suffixes are handled by the
    caller.)"""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def strip_code(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks and inline code spans, preserving line
    numbers so reported positions stay accurate."""
    out = []
    fence = None
    for line in lines:
        m = FENCE_RE.match(line)
        if fence is None and m:
            fence = m.group(2)
            out.append("")
            continue
        if fence is not None:
            if m and m.group(2) == fence:
                fence = None
            out.append("")
            continue
        out.append(CODE_SPAN_RE.sub("", line))
    return out


def anchors_of(path: str, cache: dict) -> set:
    if path not in cache:
        with open(path, "r", encoding="utf-8") as f:
            lines = strip_code(f.read().splitlines())
        slugs: dict[str, int] = {}
        found = set()
        for line in lines:
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            found.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = found
    return cache[path]


def check_file(path: str, cache: dict) -> list:
    with open(path, "r", encoding="utf-8") as f:
        lines = strip_code(f.read().splitlines())
    errors = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in enumerate(lines, 1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if EXTERNAL_RE.match(target):
                continue  # http(s)/mailto — not checked, no network in CI
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            if target:
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    errors.append(f"{path}:{lineno}: broken link: {m.group(1)} "
                                  f"(no such file {os.path.relpath(resolved)})")
                    continue
            else:
                resolved = os.path.abspath(path)
            if frag is not None:
                if os.path.isdir(resolved) or not resolved.endswith(".md"):
                    continue  # anchors only checked inside markdown
                if frag not in anchors_of(resolved, cache):
                    errors.append(f"{path}:{lineno}: broken anchor: "
                                  f"#{frag} not found in {os.path.relpath(resolved)}")
    return errors


def main() -> int:
    files = sys.argv[1:] or ["README.md"] + sorted(glob.glob("docs/*.md"))
    cache: dict = {}
    errors = []
    for path in files:
        if not os.path.exists(path):
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path, cache))
    for e in errors:
        print(e)
    if not errors:
        print(f"OK: {len(files)} files, all relative links and anchors resolve")
    return min(len(errors), 1)


if __name__ == "__main__":
    sys.exit(main())
