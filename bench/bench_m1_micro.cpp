// M1 — google-benchmark micro suite: throughput of the simulator substrate
// (BFS flooding, keyed upcast pipeline, label computation, Dinic, cut
// enumeration). These bound how large the experiment sweeps can go.

#include <benchmark/benchmark.h>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "cycles/cycle_space.hpp"
#include "graph/cut_enum.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/mst_seq.hpp"
#include "mst/distributed_mst.hpp"
#include "support/rng.hpp"

namespace {

using namespace deck;

void BM_DistributedBfs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Graph g = random_kec(n, 2, n, rng);
  for (auto _ : state) {
    Network net(g);
    benchmark::DoNotOptimize(distributed_bfs(net, 0));
  }
}
BENCHMARK(BM_DistributedBfs)->Arg(256)->Arg(1024);

void BM_KeyedMinUpcast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Graph g = random_kec(n, 2, n, rng);
  Network net0(g);
  RootedTree t = distributed_bfs(net0, 0);
  const CommForest f = CommForest::from_tree(t);
  std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    items[static_cast<std::size_t>(v)].push_back(
        KeyedItem{static_cast<std::uint64_t>(v % 64), static_cast<std::uint64_t>(v), 0});
  for (auto _ : state) {
    Network net(g);
    auto copy = items;
    benchmark::DoNotOptimize(keyed_min_upcast(net, f, std::move(copy)));
  }
}
BENCHMARK(BM_KeyedMinUpcast)->Arg(256)->Arg(1024);

void BM_DistributedMst(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
  for (auto _ : state) {
    Network net(g);
    RootedTree bfs = distributed_bfs(net, 0);
    benchmark::DoNotOptimize(distributed_mst(net, bfs));
  }
}
BENCHMARK(BM_DistributedMst)->Arg(128)->Arg(512);

void BM_CycleLabels(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Graph g = random_kec(n, 2, n, rng);
  const RootedTree t = bfs_tree(g, 0);
  const std::vector<char> all(static_cast<std::size_t>(g.num_edges()), 1);
  for (auto _ : state) {
    Rng lr(5);
    benchmark::DoNotOptimize(sample_circulation(g, all, t, 64, lr));
  }
}
BENCHMARK(BM_CycleLabels)->Arg(256)->Arg(1024);

void BM_EdgeConnectivity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  Graph g = random_kec(n, 3, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_connectivity(g));
  }
}
BENCHMARK(BM_EdgeConnectivity)->Arg(64)->Arg(128);

void BM_CutPairEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Graph g = random_kec(n, 2, n / 4, rng);
  const std::vector<char> all(static_cast<std::size_t>(g.num_edges()), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_cuts(g, all, 2, 1));
  }
}
BENCHMARK(BM_CutPairEnumeration)->Arg(64)->Arg(256);

void BM_Kruskal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  Graph g = with_weights(random_kec(n, 2, 2 * n, rng), WeightModel::kUniform, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kruskal_mst(g));
  }
}
BENCHMARK(BM_Kruskal)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
