// F10 — chunked vs monolithic bank shipping: coordinator peak memory and
// ship time.
//
// The f10 workload ships W workers' private ℓ₀ banks to a coordinator over
// loopback transports under the two shipping disciplines:
//   - monolithic (the PR-2 flow): each worker encodes its whole bank as one
//     buffer; the coordinator must stage the full buffer *and* the decoded
//     temporary bank before merging — per-arrival staging is ~2 bank
//     footprints, independent of any knob.
//   - chunked (this PR): workers stream framed per-vertex-range chunks
//     (sketch_io v3) and the coordinator folds each into the global bank on
//     arrival (BankAssembler) — staging is one chunk buffer, bounded by
//     ChunkOptions::target_chunk_bytes no matter how large the bank grows.
// Per row we report wire bytes, message count, deterministic peak staging
// bytes (gated), and wall-clock ship+merge time (volatile, never gated).
// Exactness is verified on every row: the composed bank's serialized bytes
// equal the single-process sharded bank's, and the recovered certificate
// matches edge for edge. A machine-readable JSON document follows the
// tables; the bench-regression CI gate diffs the deterministic fields
// against bench/baselines/f10_transport.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/edge_connectivity.hpp"
#include "net/transport.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"

using namespace deck;

namespace {

struct ShipResult {
  SketchConnectivity bank;
  std::size_t wire_bytes = 0;
  std::size_t messages = 0;
  std::size_t peak_staging_bytes = 0;  // deterministic: buffers held during one merge
  double ship_ms = 0;
};

/// In-memory footprint of a decoded bank's buckets — what the monolithic
/// path stages *in addition to* the encoded buffer while merging.
std::size_t bank_bucket_bytes(int n, const SketchOptions& opt) {
  const std::uint64_t universe =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  return static_cast<std::size_t>(n) *
         static_cast<std::size_t>(SketchConnectivity::total_copies_for(n, opt)) *
         static_cast<std::size_t>(opt.columns) *
         static_cast<std::size_t>(L0Sampler::levels_for(universe)) * 24;
}

/// Ships every worker's slice bank over loopback transports and composes
/// the global bank at the coordinator, chunked or monolithic.
ShipResult ship(const GraphStream& stream, const SketchOptions& sopt, int workers, bool chunked,
                std::size_t target_chunk_bytes) {
  const int n = stream.num_vertices();
  std::vector<std::unique_ptr<Transport>> coordinator_side;
  std::vector<std::thread> senders;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < workers; ++w) {
    auto [c, wt] = loopback_pair();
    coordinator_side.push_back(std::move(c));
    senders.emplace_back([&stream, &sopt, n, w, workers, chunked, target_chunk_bytes,
                          t = std::shared_ptr<Transport>(std::move(wt))] {
      SketchConnectivity bank(n, sopt);
      std::size_t index = 0;
      for (const StreamUpdate& u : stream.updates())
        if (static_cast<int>(index++ % static_cast<std::size_t>(workers)) == w)
          bank.update(u.u, u.v, u.insert ? 1 : -1);
      ChunkOptions copt;
      copt.source_id = static_cast<std::uint32_t>(w);
      if (chunked) {
        copt.target_chunk_bytes = target_chunk_bytes;
      } else {
        copt.vertices_per_chunk = n;  // one whole-bank buffer, the PR-2 flow
      }
      for (const auto& chunk : encode_bank_chunks(bank, copt)) t->send(chunk);
      t->close();
    });
  }

  BankAssembler assembler(n, sopt);
  const std::size_t decoded_bytes = bank_bucket_bytes(n, sopt);
  std::size_t wire_bytes = 0, messages = 0, peak_staging_bytes = 0;
  for (auto& t : coordinator_side) {
    while (auto msg = t->recv()) {
      wire_bytes += msg->size();
      ++messages;
      // Staged while merging: just this chunk (it folds into the global bank
      // in place) — or, monolithic, the whole encoded bank plus the decoded
      // temporary a PR-2-style merge_encoded() would construct.
      peak_staging_bytes =
          std::max(peak_staging_bytes, chunked ? msg->size() : msg->size() + decoded_bytes);
      assembler.add_chunk(*msg);  // a whole v3 bank is its own single chunk
    }
  }
  for (auto& s : senders) s.join();
  const double ship_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  return {assembler.take(), wire_bytes, messages, peak_staging_bytes, ship_ms};
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  // --smoke: sanitizer-friendly sizes (ASan/UBSan cost ~10x wall clock);
  // correctness flags and exit status are unchanged, rows are not gated.
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke   ? std::vector<int>{48}
                                 : large ? std::vector<int>{192, 320}
                                         : std::vector<int>{96, 160};
  const int workers = 4;
  const int k = 2;
  const std::size_t target_chunk_bytes = 64 * 1024;

  Json rows = Json::array();
  bool all_ok = true;

  for (int n : sizes) {
    Rng rng(10100 + n);
    Graph g = random_kec(n, k, 5 * n, rng);
    GraphStream stream = GraphStream::from_graph(g, rng);
    stream.churn(g.num_edges(), rng);

    SketchOptions sopt;
    sopt.seed = 10000 + static_cast<std::uint64_t>(n);
    sopt.max_forests = k;

    // Single-process reference: the shipped-and-assembled bank and its
    // certificate must reproduce these exactly.
    ShardOptions ref_opt;
    ref_opt.shards = 1;
    const std::vector<std::uint8_t> ref_bank =
        encode_bank(apply_sharded(stream, sopt, ref_opt).sketch);
    const SparsifyResult ref_cert = sharded_sparsify_stream(stream, k, sopt, ref_opt);
    const bool cert_ok = ref_cert.certificate.num_edges() <= k * (n - 1) &&
                         is_k_edge_connected(ref_cert.certificate, k);
    all_ok = all_ok && cert_ok;

    Table t({"mode", "workers", "messages", "wire KiB", "peak KiB", "ms", "identical", "m_cert"});
    std::size_t monolithic_peak = 0;
    for (const bool chunked : {false, true}) {
      const char* mode = chunked ? "chunked" : "monolithic";
      ShipResult r = ship(stream, sopt, workers, chunked, target_chunk_bytes);
      const bool bank_identical = encode_bank(r.bank) == ref_bank;

      SketchConnectivity bank = std::move(r.bank);
      Graph cert(n);
      for (const auto& forest : bank.k_spanning_forests(k))
        for (const SketchEdge& e : forest) cert.add_edge(e.u, e.v, /*w=*/1);
      bool cert_identical = cert.num_edges() == ref_cert.certificate.num_edges();
      if (cert_identical)
        for (const Edge& e : ref_cert.certificate.edges())
          cert_identical = cert_identical && cert.has_edge(e.u, e.v);
      all_ok = all_ok && bank_identical && cert_identical;

      if (!chunked) monolithic_peak = r.peak_staging_bytes;
      t.add(mode, workers, r.messages, static_cast<double>(r.wire_bytes) / 1024.0,
            static_cast<double>(r.peak_staging_bytes) / 1024.0, r.ship_ms,
            (bank_identical && cert_identical) ? "yes" : "NO", cert.num_edges());

      Json row = Json::object();
      row.set("n", n)
          .set("k", k)
          .set("mode", mode)
          .set("workers", workers)
          .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
          .set("messages", static_cast<std::uint64_t>(r.messages))
          .set("wire_bytes", static_cast<std::uint64_t>(r.wire_bytes))
          .set("peak_coordinator_bytes", static_cast<std::uint64_t>(r.peak_staging_bytes))
          .set("ship_ms", r.ship_ms)
          .set("bank_identical_to_1shard", bank_identical)
          .set("certificate_identical_to_1shard", cert_identical)
          .set("m_certificate", cert.num_edges())
          .set("certificate_k_connected", cert_ok);
      if (chunked) {
        const bool below = r.peak_staging_bytes < monolithic_peak;
        all_ok = all_ok && below;
        row.set("chunked_peak_below_monolithic", below)
            .set("peak_reduction_factor",
                 static_cast<double>(monolithic_peak) /
                     static_cast<double>(std::max<std::size_t>(1, r.peak_staging_bytes)));
      }
      rows.push(std::move(row));
    }
    t.print("F10: bank shipping, n = " + std::to_string(n) + ", k = " + std::to_string(k) +
            ", chunk target = " + std::to_string(target_chunk_bytes / 1024) + " KiB");
    std::printf("\n");
  }

  std::printf("   transport shipping exact and chunked peak below monolithic on all rows: %s\n\n",
              all_ok ? "yes" : "NO");
  Json doc = Json::object();
  doc.set("bench", "f10_transport").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
