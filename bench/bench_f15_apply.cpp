// F15 — batched apply backends: scalar vs simd ingestion throughput.
//
// The f15 workload is a dense churned stream over a k-edge-connected graph,
// ingested through apply_sharded() under both ApplyBackend strategies
// (sketch/apply.hpp) across batch sizes {16, 64, 256, 1024} and shard
// counts {1, 4}. Per row we report wall-clock ingestion throughput
// (best-of-R timed passes) and the simd row's speedup over the scalar row
// of the same (n, shards, batch) cell. Exactness is verified untimed on
// every row: the composed bank's serialized bytes must equal the
// sequential scalar reference bank's (bit-identical sketch state — the
// backend-identity contract of sketch/apply.hpp). Exit status reflects
// only exactness — throughput and speedup depend on the host (CI machines
// vary, and the AVX2 kernel needs the DECK_SIMD build knob), so they are
// reported, not gated. A machine-readable JSON document follows the
// tables; the bench-regression CI gate diffs its deterministic fields
// (bank bytes) against bench/baselines/f15_apply.json and fails on any
// false identity flag.
//
// Acceptance target (reported in the summary line and the JSON doc as
// simd_speedup_min_batch256plus): simd ≥ 1.5× scalar updates/sec at batch
// sizes ≥ 256 on an AVX2 host with the default DECK_SIMD=ON build.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sketch/apply.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"

using namespace deck;

namespace {

double ingest_ms(const GraphStream& stream, const SketchOptions& sopt, const ShardOptions& opt,
                 int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const ShardIngestResult res = apply_sharded(stream, sopt, opt);
    const auto stop = std::chrono::steady_clock::now();
    (void)res;
    const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  // --smoke: sanitizer-friendly sizes (ASan/UBSan cost ~10x wall clock);
  // correctness flags and exit status are unchanged, rows are not gated.
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke   ? std::vector<int>{48}
                                 : large ? std::vector<int>{192, 320}
                                         : std::vector<int>{96, 160};
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{64, 256} : std::vector<std::size_t>{16, 64, 256, 1024};
  const std::vector<int> shard_counts = smoke ? std::vector<int>{1} : std::vector<int>{1, 4};
  const int reps = smoke ? 1 : 3;
  const int k = 2;

  Json rows = Json::array();
  bool all_ok = true;
  // Worst simd-vs-scalar speedup over all measured cells with batch >= 256
  // (the acceptance cells); 0 until one is measured.
  double min_speedup_256 = 0;
  bool have_speedup_256 = false;

  std::printf("apply kernel: %s\n\n", simd_apply_kernel());

  for (int n : sizes) {
    Rng rng(15000 + n);
    Graph g = random_kec(n, k, 5 * n, rng);
    GraphStream stream = GraphStream::from_graph(g, rng);
    stream.churn(3 * g.num_edges(), rng);
    const auto updates = static_cast<double>(stream.size());

    SketchOptions sopt;
    sopt.seed = 15500 + static_cast<std::uint64_t>(n);
    sopt.max_forests = k;

    // Sequential scalar reference: the bank bytes every cell must reproduce.
    ShardOptions ref_opt;
    ref_opt.shards = 1;
    const std::vector<std::uint8_t> ref_bank =
        encode_bank(apply_sharded(stream, sopt, ref_opt).sketch);

    Table t({"shards", "batch", "backend", "updates", "ms", "updates/s", "speedup", "identical"});
    for (int shards : shard_counts) {
      for (std::size_t batch : batch_sizes) {
        double scalar_ms = 0;
        for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
          ShardOptions opt;
          opt.shards = shards;
          opt.batch_size = batch;
          opt.backend = backend;

          // Exactness first (untimed), then the timed passes.
          const bool identical = encode_bank(apply_sharded(stream, sopt, opt).sketch) == ref_bank;
          all_ok = all_ok && identical;

          const double ms = ingest_ms(stream, sopt, opt, reps);
          if (backend == ApplyBackend::kScalar) scalar_ms = ms;
          const double speedup =
              backend == ApplyBackend::kSimd && ms > 0 ? scalar_ms / ms : 1.0;
          if (backend == ApplyBackend::kSimd && batch >= 256) {
            min_speedup_256 = have_speedup_256 ? std::min(min_speedup_256, speedup) : speedup;
            have_speedup_256 = true;
          }
          t.add(shards, batch, to_string(backend), stream.size(), ms,
                updates / (ms / 1000.0), speedup, identical ? "yes" : "NO");

          Json row = Json::object();
          row.set("n", n)
              .set("k", k)
              .set("shards", shards)
              .set("batch", static_cast<std::uint64_t>(batch))
              .set("backend", to_string(backend))
              .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
              .set("bank_bytes", static_cast<std::uint64_t>(ref_bank.size()))
              .set("bank_identical_to_scalar", identical)
              .set("ingest_ms", ms)
              .set("updates_per_sec", updates / (ms / 1000.0))
              .set("speedup_vs_scalar", speedup);
          rows.push(std::move(row));
        }
      }
    }
    t.print("F15: batched apply backends, n = " + std::to_string(n) +
            ", k = " + std::to_string(k));
    std::printf("\n");
  }

  std::printf("   banks bit-identical to scalar on all rows: %s\n", all_ok ? "yes" : "NO");
  if (have_speedup_256)
    std::printf("   min simd speedup at batch >= 256: %.2fx (target 1.5x)\n", min_speedup_256);
  std::printf("\n");

  Json doc = Json::object();
  doc.set("bench", "f15_apply")
      .set("all_ok", all_ok)
      .set("kernel", simd_apply_kernel())
      .set("simd_speedup_min_batch256plus", min_speedup_256)
      .set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
