// F6 — FT-MST replacement edges (the paper's §3.2 remark: the deterministic
// decomposition combined with [14] gives FT-MST in O(D + sqrt n log* n)).
// We compute all n-1 swap edges with machinery (II) and report rounds vs
// the (D + sqrt n) predictor, plus correctness against brute force.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "graph/traversal.hpp"
#include "mst/distributed_mst.hpp"
#include "tap/distributed_tap.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{128, 256, 512, 1024, 2048} : std::vector<int>{64, 128, 256, 512};

  Table t({"n", "m", "D", "ftmst rounds", "D+sqrt n", "ratio", "swaps verified"});
  std::vector<double> xs, ys;
  for (int n : sizes) {
    Rng rng(6100 + n);
    Graph g = with_weights(random_kec(n, 2, 2 * n, rng), WeightModel::kUniform, rng);
    const int d = diameter(g);
    Network net(g);
    RootedTree bfs = distributed_bfs(net, 0);
    MstResult mst = distributed_mst(net, bfs);
    const CommForest f = CommForest::from_tree(bfs);
    SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, f, 0);
    const std::uint64_t before = net.rounds();
    const auto rep = mst_replacement_edges(net, dec, f, 0);
    const std::uint64_t rounds = net.rounds() - before;

    // Verify against brute force.
    int verified = 0;
    std::vector<char> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
    for (EdgeId e : mst.mst_edges) is_tree[static_cast<std::size_t>(e)] = 1;
    std::vector<Weight> best(static_cast<std::size_t>(g.num_edges()), -1);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (is_tree[static_cast<std::size_t>(e)]) continue;
      for (EdgeId te : mst.tree.path_edges(g.edge(e).u, g.edge(e).v)) {
        Weight& b = best[static_cast<std::size_t>(te)];
        if (b < 0 || g.edge(e).w < b) b = g.edge(e).w;
      }
    }
    for (EdgeId te : mst.mst_edges) {
      const EdgeId r = rep[static_cast<std::size_t>(te)];
      if (r != kNoEdge && g.edge(r).w == best[static_cast<std::size_t>(te)]) ++verified;
    }
    const double pred = d + std::sqrt(static_cast<double>(n));
    t.add(n, g.num_edges(), d, rounds, pred, static_cast<double>(rounds) / pred,
          std::to_string(verified) + "/" + std::to_string(n - 1));
    xs.push_back(n);
    ys.push_back(static_cast<double>(rounds));
  }
  t.print("F6: FT-MST swap-edge computation (machinery II)");
  std::printf("   empirical log-log slope rounds~n^b: b = %.3f (~0.5 = sqrt expected)\n",
              loglog_slope(xs, ys));
  return 0;
}
