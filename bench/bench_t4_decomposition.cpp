// T4 — Lemma 3.4: the segment decomposition yields O(sqrt n) marked
// vertices / segments with O(sqrt n) diameter, LCA-closed marking, and
// edge-disjoint segments. We sweep n and report the measured quantities
// normalised by sqrt n (columns should stay bounded as n grows).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "mst/distributed_mst.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{64, 144, 256, 576, 1024} : std::vector<int>{64, 144, 256, 400};

  for (const auto& fam : bench::standard_families()) {
    Table t({"n", "fragments", "marked", "segments", "max seg diam", "marked/sqrt n",
             "diam/sqrt n", "decomp rounds"});
    for (int n : sizes) {
      Rng rng(2300 + n);
      Graph g = with_weights(fam.make(n, 2, rng), WeightModel::kUniform, rng);
      Network net(g);
      RootedTree bfs = distributed_bfs(net, 0);
      MstResult mst = distributed_mst(net, bfs);
      const CommForest f = CommForest::from_tree(bfs);
      const std::uint64_t before = net.rounds();
      SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, f, 0);
      const double sq = std::sqrt(static_cast<double>(g.num_vertices()));
      t.add(g.num_vertices(), mst.num_fragments, dec.num_marked(), dec.num_segments(),
            dec.max_segment_diameter(), dec.num_marked() / sq, dec.max_segment_diameter() / sq,
            net.rounds() - before);
    }
    t.print("T4: decomposition invariants, family = " + fam.name);
    std::printf("\n");
  }
  return 0;
}
