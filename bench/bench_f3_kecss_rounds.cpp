// F3 — Theorem 1.2: distributed weighted k-ECSS round complexity
// O(k (D log^3 n + n)). We sweep n for k in {2,3,4} and report rounds next
// to the predictor k*(D log^3 n + n); the dominant near-linear n term should
// make the log-log slope approach ~1.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/traversal.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bench::EngineChoice eng = bench::engine_from_args(argc, argv);
  const std::vector<int> sizes =
      large ? std::vector<int>{32, 64, 128, 256} : std::vector<int>{24, 48, 96, 160};

  for (int k : {2, 3, 4}) {
    Table t({"n", "m", "D", "rounds", "k(D log^3 n + n)", "ratio", "iters"});
    std::vector<double> xs, ys;
    for (int n : sizes) {
      Rng rng(3000 + n * k);
      Graph g = with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
      const int d = diameter(g);
      Network net(g, eng.hub);
      KecssOptions opt;
      opt.seed = static_cast<std::uint64_t>(n) * k;
      const KecssResult r = distributed_kecss(net, k, opt);
      if (!is_k_edge_connected_subset(g, r.edges, k)) {
        std::printf("!! output not %d-edge-connected (n=%d)\n", k, n);
        return 1;
      }
      const double logn = std::log2(static_cast<double>(n));
      const double pred = k * (d * logn * logn * logn + n);
      t.add(n, g.num_edges(), d, net.rounds(), pred, static_cast<double>(net.rounds()) / pred,
            r.iterations);
      xs.push_back(n);
      ys.push_back(static_cast<double>(net.rounds()));
    }
    t.print("F3: k-ECSS rounds, k = " + std::to_string(k));
    std::printf("   empirical log-log slope rounds~n^b: b = %.3f (near-linear expected)\n\n",
                loglog_slope(xs, ys));
  }
  return 0;
}
