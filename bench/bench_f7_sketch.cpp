// F7 — streaming sketch front-end: sparsify-then-solve vs raw.
//
// A dynamic stream (shuffled insertions + transient churn) is ingested by
// the ℓ₀-sketch subsystem, which peels k spanning forests — a Thurimella
// certificate with <= k(n-1) edges. We verify the certificate is
// k-edge-connected and compare end-to-end distributed k-ECSS rounds on the
// sparsifier against the raw graph. Dense inputs should show the sparsifier
// paying for itself; the certificate bound is checked on every row. A
// machine-readable JSON document follows the tables.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  // --smoke: sanitizer-friendly sizes (ASan/UBSan cost ~10x wall clock);
  // correctness flags and exit status are unchanged, rows are not gated.
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke    ? std::vector<int>{16, 32}
                                 : large  ? std::vector<int>{48, 96, 160, 256}
                                          : std::vector<int>{24, 48, 96};

  Json rows = Json::array();
  bool all_ok = true;

  for (int k : {2, 3, 4}) {
    Table t({"n", "m_raw", "updates", "m_cert", "k(n-1)", "cert_ok", "rounds_raw", "rounds_cert",
             "w_raw", "w_cert"});
    for (int n : sizes) {
      Rng rng(7000 + n * k);
      // Dense-ish input: the raw graph has ~3n + kn/2 edges, the certificate
      // at most k(n-1).
      Graph g = random_kec(n, k, 3 * n, rng);
      GraphStream stream = GraphStream::from_graph(g, rng);
      stream.churn(g.num_edges() / 2, rng);

      SketchOptions sopt;
      sopt.seed = static_cast<std::uint64_t>(n) * 31 + static_cast<std::uint64_t>(k);
      const SparsifyResult sp = sparsify_stream(stream, k, sopt);
      const int bound = k * (n - 1);
      const bool cert_ok =
          sp.certificate.num_edges() <= bound && is_k_edge_connected(sp.certificate, k);

      KecssOptions kopt;
      kopt.seed = static_cast<std::uint64_t>(n) * k;
      Network raw_net(g);
      const KecssResult raw = distributed_kecss(raw_net, k, kopt);
      Network cert_net(sp.certificate);
      const KecssResult sparsified = distributed_kecss(cert_net, k, kopt);
      const bool out_ok = is_k_edge_connected_subset(g, raw.edges, k) &&
                          is_k_edge_connected_subset(sp.certificate, sparsified.edges, k);
      all_ok = all_ok && cert_ok && out_ok;

      t.add(n, g.num_edges(), stream.size(), sp.certificate.num_edges(), bound,
            cert_ok ? "yes" : "NO", raw_net.rounds(), cert_net.rounds(), raw.weight,
            sparsified.weight);

      Json row = Json::object();
      row.set("family", "random")
          .set("n", n)
          .set("k", k)
          .set("m_raw", g.num_edges())
          .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
          .set("m_certificate", sp.certificate.num_edges())
          .set("certificate_bound", bound)
          .set("certificate_k_connected", cert_ok)
          .set("sketch_copies_used", sp.copies_used)
          .set("rounds_raw", raw_net.rounds())
          .set("rounds_sparsified", cert_net.rounds())
          .set("messages_raw", raw_net.messages())
          .set("messages_sparsified", cert_net.messages())
          .set("kecss_weight_raw", static_cast<std::int64_t>(raw.weight))
          .set("kecss_weight_sparsified", static_cast<std::int64_t>(sparsified.weight))
          .set("outputs_k_connected", out_ok);
      rows.push(std::move(row));
    }
    t.print("F7: streaming sparsify vs raw, k = " + std::to_string(k));
    std::printf("\n");
  }

  std::printf("   sparsified pipeline valid on all rows: %s\n\n", all_ok ? "yes" : "NO");
  Json doc = Json::object();
  doc.set("bench", "f7_sketch").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
