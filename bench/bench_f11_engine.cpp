// F11 — CONGEST engine scaling curve: the same 2-ECSS pipeline executed on
// every backend (sequential, thread pool with 1/2/4/8 threads, Transport-
// backed fleet with 1/2/4 in-process workers). Round and message counters
// are part of the engine-identity contract — every row must match the
// sequential row exactly, and the `identical_to_seq` flag feeds the
// bench-regression gate (a false flag fails CI). Wall-clock per engine is
// reported for the scaling story but never gated.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "congest/distributed_engine.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

namespace {

struct EngineRun {
  std::string engine;
  int units = 1;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  Weight weight = 0;
  bool valid = false;
  double wall_ms = 0;
};

EngineRun run_once(const Graph& g, const std::string& engine, int units,
                   const std::shared_ptr<EngineHub>& hub) {
  EngineRun r;
  r.engine = engine;
  r.units = units;
  const auto t0 = std::chrono::steady_clock::now();
  Network net(g, hub);
  const Ecss2Result res = distributed_2ecss(net, TapOptions{});
  const auto t1 = std::chrono::steady_clock::now();
  r.rounds = net.rounds();
  r.messages = net.messages();
  r.weight = res.weight;
  r.valid = is_k_edge_connected_subset(g, res.edges, 2);
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const int n = smoke ? 48 : large ? 256 : 96;

  Rng rng(1100 + n);
  const Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);

  std::vector<EngineRun> runs;
  const EngineRun base = run_once(g, "seq", 1, EngineHub::sequential());
  runs.push_back(base);
  for (int threads : {1, 2, 4, 8})
    runs.push_back(run_once(g, "pool", threads, EngineHub::parallel(threads)));
  for (int workers : {1, 2, 4}) {
    CongestWorkerFleet fleet(workers);
    runs.push_back(run_once(g, "net", workers, fleet.hub()));
  }

  Table t({"engine", "units", "rounds", "messages", "identical", "wall ms", "speedup"});
  Json rows = Json::array();
  bool all_ok = true;
  for (const EngineRun& r : runs) {
    const bool identical =
        r.rounds == base.rounds && r.messages == base.messages && r.weight == base.weight;
    all_ok = all_ok && identical && r.valid;
    t.add(r.engine, r.units, r.rounds, r.messages, identical ? "yes" : "NO", r.wall_ms,
          base.wall_ms / r.wall_ms);
    Json row = Json::object();
    row.set("engine", r.engine)
        .set("units", r.units)
        .set("n", g.num_vertices())
        .set("rounds", r.rounds)
        .set("messages", r.messages)
        .set("output_2_edge_connected", r.valid)
        .set("identical_to_seq", identical)
        .set("wall_ms", r.wall_ms);
    rows.push(std::move(row));
  }
  t.print("F11: 2-ECSS engine scaling, " + g.summary());
  std::printf(
      "   counters must be engine-invariant; wall-clock shows the in-process cost of each "
      "backend\n");

  Json doc = Json::object();
  doc.set("bench", "f11_engine").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
