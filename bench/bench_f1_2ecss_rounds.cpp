// F1 — Theorem 1.1: distributed weighted 2-ECSS round complexity.
//
// Claim: O((D + sqrt n) log^2 n) rounds w.h.p. We sweep n over graph
// families with different diameter profiles and report measured rounds, the
// predictor (D + sqrt n) * log^2 n, and their ratio (which should stay flat
// if the shape matches). The log-log slope against n on the low-diameter
// families should be well below 1 (sublinear).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/traversal.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{64, 128, 256, 512, 1024} : std::vector<int>{64, 128, 256, 512};

  for (const auto& fam : bench::standard_families()) {
    Table t({"family", "n", "m", "D", "rounds", "(D+sqrt n)log^2 n", "ratio", "tap iters"});
    std::vector<double> xs, ys;
    for (int n : sizes) {
      Rng rng(1000 + n);
      Graph topo = fam.make(n, 2, rng);
      Graph g = with_weights(topo, WeightModel::kUniform, rng);
      const int d = diameter(g);
      Network net(g);
      const Ecss2Result r = distributed_2ecss(net, TapOptions{});
      if (!is_k_edge_connected_subset(g, r.edges, 2)) {
        std::printf("!! output not 2-edge-connected (family=%s n=%d)\n", fam.name.c_str(), n);
        return 1;
      }
      const double logn = std::log2(static_cast<double>(g.num_vertices()));
      const double pred = (d + std::sqrt(static_cast<double>(g.num_vertices()))) * logn * logn;
      t.add(fam.name, g.num_vertices(), g.num_edges(), d, net.rounds(), pred,
            static_cast<double>(net.rounds()) / pred, r.tap_iterations);
      xs.push_back(static_cast<double>(g.num_vertices()));
      ys.push_back(static_cast<double>(net.rounds()));
    }
    t.print("F1: 2-ECSS rounds, family = " + fam.name);
    std::printf("   empirical log-log slope rounds~n^b: b = %.3f\n\n",
                loglog_slope(xs, ys));
  }
  return 0;
}
