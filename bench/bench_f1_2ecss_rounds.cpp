// F1 — Theorem 1.1: distributed weighted 2-ECSS round complexity.
//
// Claim: O((D + sqrt n) log^2 n) rounds w.h.p. We sweep n over graph
// families with different diameter profiles and report measured rounds, the
// predictor (D + sqrt n) * log^2 n, and their ratio (which should stay flat
// if the shape matches). The log-log slope against n on the low-diameter
// families should be well below 1 (sublinear). A machine-readable JSON
// document follows the tables; rounds are deterministic (seeded), so the
// bench-regression CI gate diffs them against
// bench/baselines/f1_2ecss_rounds.json — the first CONGEST-layer bench
// under the gate.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/traversal.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bench::EngineChoice eng = bench::engine_from_args(argc, argv);
  const std::vector<int> sizes =
      large ? std::vector<int>{64, 128, 256, 512, 1024} : std::vector<int>{64, 128, 256, 512};

  Json rows = Json::array();
  bool all_ok = true;

  for (const auto& fam : bench::standard_families()) {
    Table t({"family", "n", "m", "D", "rounds", "(D+sqrt n)log^2 n", "ratio", "tap iters"});
    std::vector<double> xs, ys;
    for (int n : sizes) {
      Rng rng(1000 + n);
      Graph topo = fam.make(n, 2, rng);
      Graph g = with_weights(topo, WeightModel::kUniform, rng);
      const int d = diameter(g);
      Network net(g, eng.hub);
      const Ecss2Result r = distributed_2ecss(net, TapOptions{});
      const bool out_ok = is_k_edge_connected_subset(g, r.edges, 2);
      if (!out_ok) {
        std::printf("!! output not 2-edge-connected (family=%s n=%d)\n", fam.name.c_str(), n);
        all_ok = false;
      }
      const double logn = std::log2(static_cast<double>(g.num_vertices()));
      const double pred = (d + std::sqrt(static_cast<double>(g.num_vertices()))) * logn * logn;
      t.add(fam.name, g.num_vertices(), g.num_edges(), d, net.rounds(), pred,
            static_cast<double>(net.rounds()) / pred, r.tap_iterations);
      xs.push_back(static_cast<double>(g.num_vertices()));
      ys.push_back(static_cast<double>(net.rounds()));

      Json row = Json::object();
      row.set("family", fam.name)
          .set("n", g.num_vertices())
          .set("m", g.num_edges())
          .set("diameter", d)
          .set("rounds", net.rounds())
          .set("messages", net.messages())
          .set("tap_iterations", r.tap_iterations)
          .set("output_2_edge_connected", out_ok);
      rows.push(std::move(row));
    }
    t.print("F1: 2-ECSS rounds, family = " + fam.name);
    std::printf("   empirical log-log slope rounds~n^b: b = %.3f\n\n",
                loglog_slope(xs, ys));
  }

  Json doc = Json::object();
  doc.set("bench", "f1_2ecss_rounds")
      .set("engine", eng.name)
      .set("all_ok", all_ok)
      .set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
