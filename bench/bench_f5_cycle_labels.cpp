// F5 — Lemma 5.4 / Corollary 5.3: cycle-space labels detect cut pairs with
// one-sided error <= 2^-b per non-pair. We sweep the label width b, count
// false-positive label collisions against the exact cut pairs, and verify
// zero false negatives. The empirical false-positive rate should roughly
// halve per extra bit until it hits zero.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "cycles/cycle_space.hpp"
#include "graph/cut_enum.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/tree.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const int reps = large ? 40 : 15;

  Rng rng(5150);
  Graph g = random_kec(40, 2, 14, rng);
  const std::vector<char> all(static_cast<std::size_t>(g.num_edges()), 1);
  const RootedTree tree = bfs_tree(g, 0);

  std::set<std::pair<EdgeId, EdgeId>> exact;
  for (const auto& c : enumerate_cuts(g, all, 2, 1).cuts) exact.insert({c.edges[0], c.edges[1]});

  const long long total_pairs =
      static_cast<long long>(g.num_edges()) * (g.num_edges() - 1) / 2;
  const long long non_pairs = total_pairs - static_cast<long long>(exact.size());

  Table t({"bits", "false neg (total)", "false pos (mean)", "fp rate", "2^-b", "reps"});
  for (int bits : {1, 2, 4, 6, 8, 12, 16, 24, 32}) {
    long long fneg = 0;
    double fpos_total = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng lr(900 + rep);
      const CycleSpace cs = sample_circulation(g, all, tree, bits, lr);
      std::set<std::pair<EdgeId, EdgeId>> detected;
      for (const auto& p : label_cut_pairs(g, all, cs)) detected.insert(p);
      for (const auto& p : exact)
        if (!detected.count(p)) ++fneg;
      long long fpos = 0;
      for (const auto& p : detected)
        if (!exact.count(p)) ++fpos;
      fpos_total += static_cast<double>(fpos);
    }
    const double fpos_mean = fpos_total / reps;
    t.add(bits, fneg, fpos_mean, fpos_mean / static_cast<double>(non_pairs),
          std::pow(2.0, -bits), reps);
  }
  t.print("F5: cut-pair detection error vs label width (false negatives must be 0)");
  std::printf("   instance: %s, exact cut pairs: %zu\n", g.summary().c_str(), exact.size());
  return 0;
}
