// F2 — Lemma 3.11: the distributed weighted TAP converges in O(log^2 n)
// iterations w.h.p. We sweep n and weight models over random tree+links
// instances and report iterations alongside log^2 n; the ratio should stay
// bounded. Polynomial weights stress the log(w_max/w_min) factor discussed
// in the remark after Lemma 3.11.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "tap/tap_instance.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{64, 128, 256, 512, 1024} : std::vector<int>{48, 96, 192, 384};
  const int reps = large ? 5 : 3;

  for (int wm : {0, 1, 2}) {
    const char* wname = wm == 0 ? "unit" : (wm == 1 ? "uniform" : "polynomial");
    Table t({"n", "links", "iters(mean)", "iters(max)", "log^2 n", "mean/log^2", "rounds(mean)"});
    for (int n : sizes) {
      std::vector<double> iters, rounds;
      int links = 0;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng(7000 + n * 31 + rep);
        TapInstance inst = random_tap_instance(n, n, wm, rng);
        links = static_cast<int>(inst.links().size());
        Network net(inst.g);
        TapOptions opt;
        opt.seed = 100 + rep;
        const TapResult r = distributed_tap_standalone(net, inst, opt);
        if (!inst.covers_all(r.augmentation)) {
          std::printf("!! TAP failed to cover (n=%d rep=%d)\n", n, rep);
          return 1;
        }
        iters.push_back(r.iterations);
        rounds.push_back(static_cast<double>(net.rounds()));
      }
      const Summary si = summarize(iters);
      const Summary sr = summarize(rounds);
      const double l2 = std::pow(std::log2(static_cast<double>(n)), 2.0);
      t.add(n, links, si.mean, si.max, l2, si.mean / l2, sr.mean);
    }
    t.print(std::string("F2: TAP iterations, weights = ") + wname);
    std::printf("\n");
  }
  return 0;
}
