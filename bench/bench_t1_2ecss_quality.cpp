// T1 — Lemma 3.7 / Theorem 1.1: approximation quality of the distributed
// 2-ECSS. On small instances we compare against the exact optimum; on
// larger ones against the lower bound max(w(MST), degree bound) and the
// sequential greedy baseline. The guaranteed ratio is O(log n); measured
// ratios should sit far below the guarantee and within ~2x of greedy.
//
// A machine-readable JSON document follows the tables; the bench-regression
// CI gate diffs the deterministic quality ratios (dist/LB per family and
// size) against bench/baselines/t1_2ecss_quality.json, so a >10% certificate
// -quality regression fails the PR. --smoke shrinks part B to one size per
// family (the gated configuration in CI; also sanitizer-friendly).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/exact.hpp"
#include "ecss/lower_bounds.hpp"
#include "ecss/seq_ecss.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");

  Json rows = Json::array();
  bool all_ok = true;

  // Part A: exact comparison on tiny instances.
  {
    Table t({"instance", "n", "m", "OPT", "dist 2-ECSS", "greedy", "dist/OPT", "greedy/OPT"});
    for (int trial = 0; trial < 8; ++trial) {
      Rng rng(500 + trial);
      Graph g = with_weights(random_kec(8, 2, 3, rng), WeightModel::kUniform, rng);
      if (g.num_edges() > 18) continue;
      Weight opt_w = 0;
      for (EdgeId e : exact_kecss(g, 2)) opt_w += g.edge(e).w;
      Network net(g);
      TapOptions topt;
      topt.seed = trial;
      const Ecss2Result r = distributed_2ecss(net, topt);
      if (!is_k_edge_connected_subset(g, r.edges, 2)) return 1;
      Weight greedy_w = 0;
      for (EdgeId e : greedy_kecss(g, 2, trial)) greedy_w += g.edge(e).w;
      t.add("tiny-" + std::to_string(trial), g.num_vertices(), g.num_edges(), opt_w, r.weight,
            greedy_w, static_cast<double>(r.weight) / static_cast<double>(opt_w),
            static_cast<double>(greedy_w) / static_cast<double>(opt_w));
    }
    t.print("T1a: 2-ECSS vs exact optimum (small instances)");
    std::printf("\n");
  }

  // Part B: lower-bound ratios across families and sizes — the gated rows.
  {
    Table t({"family", "n", "LB", "dist 2-ECSS", "greedy", "dist/LB", "greedy/LB", "log2 n"});
    const std::vector<int> sizes = smoke   ? std::vector<int>{48}
                                   : large ? std::vector<int>{64, 128, 256, 512}
                                           : std::vector<int>{48, 96, 192};
    for (const auto& fam : bench::standard_families()) {
      for (int n : sizes) {
        Rng rng(900 + n);
        Graph g = with_weights(fam.make(n, 2, rng), WeightModel::kUniform, rng);
        const Weight lb = kecss_lower_bound(g, 2);
        Network net(g);
        const Ecss2Result r = distributed_2ecss(net, TapOptions{});
        const bool valid = is_k_edge_connected_subset(g, r.edges, 2);
        all_ok = all_ok && valid;
        Weight greedy_w = 0;
        for (EdgeId e : greedy_kecss(g, 2, 1)) greedy_w += g.edge(e).w;
        const double ratio = static_cast<double>(r.weight) / static_cast<double>(lb);
        const double greedy_ratio = static_cast<double>(greedy_w) / static_cast<double>(lb);
        t.add(fam.name, g.num_vertices(), lb, r.weight, greedy_w, ratio, greedy_ratio,
              std::log2(static_cast<double>(g.num_vertices())));

        Json row = Json::object();
        row.set("family", fam.name)
            .set("n", g.num_vertices())
            .set("lower_bound", lb)
            .set("weight_dist", r.weight)
            .set("weight_greedy", greedy_w)
            .set("ratio_vs_lb", ratio)
            .set("greedy_ratio_vs_lb", greedy_ratio)
            .set("output_2_edge_connected", valid);
        rows.push(std::move(row));
      }
    }
    t.print("T1b: 2-ECSS vs lower bound across families");
  }

  Json doc = Json::object();
  doc.set("bench", "t1_2ecss_quality").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
