// A2 — Per-phase round/message breakdown of the 2-ECSS pipeline (BFS, MST
// stages, decomposition stages, TAP setup + iterations) and of k-ECSS
// levels. Shows where the (D + sqrt n) log^2 n budget actually goes.

#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bench::EngineChoice eng = bench::engine_from_args(argc, argv);
  const int n = large ? 512 : 192;

  {
    Rng rng(42);
    Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
    Network net(g, eng.hub);
    const Ecss2Result r = distributed_2ecss(net, TapOptions{});
    if (!is_k_edge_connected_subset(g, r.edges, 2)) return 1;
    net.end_phase();  // finalize the last phase's wall clock
    Table t({"phase", "rounds", "messages", "% rounds", "wall ms"});
    // Fold repeated tap.iteration phases into one row.
    std::uint64_t iter_rounds = 0, iter_msgs = 0, iter_wall = 0;
    for (const auto& p : net.phases()) {
      if (p.name == "tap.iteration") {
        iter_rounds += p.rounds;
        iter_msgs += p.messages;
        iter_wall += p.wall_ns;
      }
    }
    for (const auto& p : net.phases()) {
      if (p.name == "tap.iteration") continue;
      t.add(p.name, p.rounds, p.messages,
            100.0 * static_cast<double>(p.rounds) / static_cast<double>(net.rounds()),
            static_cast<double>(p.wall_ns) / 1e6);
    }
    t.add(std::string("tap.iteration x") + std::to_string(r.tap_iterations), iter_rounds,
          iter_msgs, 100.0 * static_cast<double>(iter_rounds) / static_cast<double>(net.rounds()),
          static_cast<double>(iter_wall) / 1e6);
    t.print("A2a: 2-ECSS round breakdown, " + g.summary());
    std::printf("   total rounds: %llu, messages: %llu\n\n",
                static_cast<unsigned long long>(net.rounds()),
                static_cast<unsigned long long>(net.messages()));
  }

  {
    const int kn = large ? 128 : 64;
    Rng rng(43);
    Graph g = with_weights(random_kec(kn, 3, kn, rng), WeightModel::kUniform, rng);
    Network net(g, eng.hub);
    const KecssResult r = distributed_kecss(net, 3, KecssOptions{});
    if (!is_k_edge_connected_subset(g, r.edges, 3)) return 1;
    net.end_phase();
    Table t({"phase", "rounds", "messages", "% rounds", "wall ms"});
    for (const auto& p : net.phases())
      t.add(p.name, p.rounds, p.messages,
            100.0 * static_cast<double>(p.rounds) / static_cast<double>(net.rounds()),
            static_cast<double>(p.wall_ns) / 1e6);
    t.print("A2b: k-ECSS (k=3) round breakdown, " + g.summary());
  }
  return 0;
}
