// T3 — Theorem 1.3 quality: unweighted 3-ECSS size vs the ceil(3n/2) lower
// bound, the Thurimella sparse-certificate 2-approximation, and the greedy
// framework baseline. The expected guarantee is O(log n); measured ratios
// should sit well below it.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/seq_ecss.hpp"
#include "ecss/thurimella.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{64, 128, 256, 512} : std::vector<int>{32, 64, 128};

  Table t({"family", "n", "m", "LB=ceil(3n/2)", "sec5", "thurimella", "greedy", "sec5/LB"});
  for (const auto& fam : bench::standard_families()) {
    for (int n : sizes) {
      Rng rng(4200 + n);
      Graph g = fam.make(n, 3, rng);
      if (edge_connectivity(g) < 3) continue;
      const int lb = (3 * g.num_vertices() + 1) / 2;
      Network net(g);
      Ecss3Options opt;
      opt.seed = n;
      const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
      if (!is_k_edge_connected_subset(g, r.edges, 3)) {
        std::printf("!! output not 3-edge-connected (family=%s n=%d)\n", fam.name.c_str(), n);
        return 1;
      }
      const auto thur = sparse_certificate(g, 3);
      const auto greedy = greedy_kecss(g, 3, 11);
      t.add(fam.name, g.num_vertices(), g.num_edges(), lb, r.size,
            static_cast<int>(thur.size()), static_cast<int>(greedy.size()),
            static_cast<double>(r.size) / lb);
    }
  }
  t.print("T3: unweighted 3-ECSS size vs lower bound and baselines");
  return 0;
}
