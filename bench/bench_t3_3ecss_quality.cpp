// T3 — Theorem 1.3 quality: unweighted 3-ECSS size vs the ceil(3n/2) lower
// bound, the Thurimella sparse-certificate 2-approximation, and the greedy
// framework baseline. The expected guarantee is O(log n); measured ratios
// should sit well below it.
//
// A machine-readable JSON document follows the table; the bench-regression
// CI gate diffs the deterministic size ratios (per family and size) against
// bench/baselines/t3_3ecss_quality.json. --smoke shrinks the sweep to one
// size per family — the gated configuration in CI.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/seq_ecss.hpp"
#include "ecss/thurimella.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke   ? std::vector<int>{32}
                                 : large ? std::vector<int>{64, 128, 256, 512}
                                         : std::vector<int>{32, 64, 128};

  Json rows = Json::array();
  bool all_ok = true;

  Table t({"family", "n", "m", "LB=ceil(3n/2)", "sec5", "thurimella", "greedy", "sec5/LB"});
  for (const auto& fam : bench::standard_families()) {
    for (int n : sizes) {
      Rng rng(4200 + n);
      Graph g = fam.make(n, 3, rng);
      if (edge_connectivity(g) < 3) continue;
      const int lb = (3 * g.num_vertices() + 1) / 2;
      Network net(g);
      Ecss3Options opt;
      opt.seed = n;
      const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
      const bool valid = is_k_edge_connected_subset(g, r.edges, 3);
      if (!valid)
        std::printf("!! output not 3-edge-connected (family=%s n=%d)\n", fam.name.c_str(), n);
      all_ok = all_ok && valid;
      const auto thur = sparse_certificate(g, 3);
      const auto greedy = greedy_kecss(g, 3, 11);
      const double ratio = static_cast<double>(r.size) / lb;
      t.add(fam.name, g.num_vertices(), g.num_edges(), lb, r.size,
            static_cast<int>(thur.size()), static_cast<int>(greedy.size()), ratio);

      Json row = Json::object();
      row.set("family", fam.name)
          .set("n", g.num_vertices())
          .set("lower_bound", lb)
          .set("size_dist", r.size)
          .set("size_thurimella", static_cast<int>(thur.size()))
          .set("size_greedy", static_cast<int>(greedy.size()))
          .set("ratio_vs_lb", ratio)
          .set("output_3_edge_connected", valid);
      rows.push(std::move(row));
    }
  }
  t.print("T3: unweighted 3-ECSS size vs lower bound and baselines");

  Json doc = Json::object();
  doc.set("bench", "t3_3ecss_quality").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
