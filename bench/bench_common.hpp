#pragma once

// Shared helpers for the experiment binaries (F1..F7, T1..T5, A1..A3, M1).
//
// Each bench prints deck::Table blocks plus a short interpretation line so
// EXPERIMENTS.md can quote the output verbatim. Sizes are chosen so the full
// suite completes in minutes on a laptop; pass --large for bigger sweeps.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace deck::bench {

inline bool flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// Prints a machine-readable result document after the human tables. The
/// fixed markers let harnesses extract the JSON from mixed output.
inline void print_json(const Json& doc) {
  std::printf("--- json ---\n%s\n--- end json ---\n", doc.dump(2).c_str());
}

/// Named graph family for sweeps.
struct Family {
  std::string name;
  // Builds a k-edge-connected graph with ~n vertices.
  Graph (*make)(int n, int k, Rng& rng);
};

inline Graph make_random_kec(int n, int k, Rng& rng) { return random_kec(n, k, n, rng); }

inline Graph make_torus_like(int n, int k, Rng& rng) {
  (void)k;
  (void)rng;
  int rows = 4;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  const int cols = std::max(3, n / rows);
  return torus(rows, cols);
}

inline Graph make_circulant(int n, int k, Rng& rng) {
  (void)rng;
  return circulant(n, std::max(1, (k + 1) / 2) + 1);
}

inline Graph make_hypercube_like(int n, int k, Rng& rng) {
  (void)k;
  (void)rng;
  int d = 3;
  while ((1 << (d + 1)) <= n) ++d;
  return hypercube(d);
}

inline std::vector<Family> standard_families() {
  return {
      {"random", &make_random_kec},
      {"torus", &make_torus_like},
      {"circulant", &make_circulant},
      {"hypercube", &make_hypercube_like},
  };
}

}  // namespace deck::bench
