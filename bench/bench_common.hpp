#pragma once

// Shared helpers for the experiment binaries (F1..F7, T1..T5, A1..A3, M1).
//
// Each bench prints deck::Table blocks plus a short interpretation line so
// EXPERIMENTS.md can quote the output verbatim. Sizes are chosen so the full
// suite completes in minutes on a laptop; pass --large for bigger sweeps.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "congest/distributed_engine.hpp"
#include "congest/engine.hpp"
#include "graph/generators.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace deck::bench {

inline bool flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// Value of `--name value`, or nullptr.
inline const char* arg_value(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return nullptr;
}

/// CONGEST execution backend selected on the bench command line:
/// `--engine {seq,pool,net}` plus `--engine-units N` (pool threads / net
/// workers; defaults: 4 threads, 2 workers). The fleet member keeps the
/// in-process net workers alive for the duration of the run — every Network
/// built from `hub` must be destroyed before the EngineChoice is.
struct EngineChoice {
  std::string name = "seq";
  int units = 1;
  std::shared_ptr<EngineHub> hub = EngineHub::sequential();
  std::shared_ptr<CongestWorkerFleet> fleet;
};

inline EngineChoice engine_from_args(int argc, char** argv) {
  EngineChoice c;
  const char* kind = arg_value(argc, argv, "--engine");
  if (kind == nullptr || std::strcmp(kind, "seq") == 0) return c;
  const char* units = arg_value(argc, argv, "--engine-units");
  if (std::strcmp(kind, "pool") == 0) {
    c.name = "pool";
    c.units = units != nullptr ? std::atoi(units) : 4;
    c.hub = EngineHub::parallel(c.units);
  } else if (std::strcmp(kind, "net") == 0) {
    c.name = "net";
    c.units = units != nullptr ? std::atoi(units) : 2;
    c.fleet = std::make_shared<CongestWorkerFleet>(c.units);
    c.hub = c.fleet->hub();
  } else {
    std::fprintf(stderr, "unknown --engine '%s' (expected seq, pool, or net)\n", kind);
    std::exit(2);
  }
  return c;
}

/// Prints a machine-readable result document after the human tables. The
/// fixed markers let harnesses extract the JSON from mixed output.
inline void print_json(const Json& doc) {
  std::printf("--- json ---\n%s\n--- end json ---\n", doc.dump(2).c_str());
}

/// Named graph family for sweeps.
struct Family {
  std::string name;
  // Builds a k-edge-connected graph with ~n vertices.
  Graph (*make)(int n, int k, Rng& rng);
};

inline Graph make_random_kec(int n, int k, Rng& rng) { return random_kec(n, k, n, rng); }

inline Graph make_torus_like(int n, int k, Rng& rng) {
  (void)k;
  (void)rng;
  int rows = 4;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  const int cols = std::max(3, n / rows);
  return torus(rows, cols);
}

inline Graph make_circulant(int n, int k, Rng& rng) {
  (void)rng;
  return circulant(n, std::max(1, (k + 1) / 2) + 1);
}

inline Graph make_hypercube_like(int n, int k, Rng& rng) {
  (void)k;
  (void)rng;
  int d = 3;
  while ((1 << (d + 1)) <= n) ++d;
  return hypercube(d);
}

inline std::vector<Family> standard_families() {
  return {
      {"random", &make_random_kec},
      {"torus", &make_torus_like},
      {"circulant", &make_circulant},
      {"hypercube", &make_hypercube_like},
  };
}

}  // namespace deck::bench
