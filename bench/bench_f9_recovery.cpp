// F9 — parallel Borůvka-on-sketches recovery: scaling and exactness, plus
// the adaptive-sizing path.
//
// The f9 workload is a churned dynamic stream over a k-edge-connected
// graph. The bank is ingested once (sharded, untimed), then certificate
// recovery — per-round supernode aggregation + ℓ₀ sampling over the
// contraction forest — runs with threads ∈ {1, 2, 4, 8} on identical
// copies of the bank. Per row we report recovery wall clock and speedup
// over 1 thread; exactness is verified on every row by comparing the
// recovered forests edge-for-edge (in order) against the 1-thread run —
// the parallel reduction must be bit-identical, not merely equivalent. An
// "adaptive" row per size runs the AutoSizePolicy attempt loop and reports
// the sizing it settled on. Exit status reflects only exactness and
// certificate validity — wall clock depends on the host's core count (CI
// machines vary), so scaling is reported, not gated. A machine-readable
// JSON document follows the tables; the bench-regression CI gate diffs its
// deterministic fields (certificate size, copies used) against
// bench/baselines/f9_recovery.json.
//
// Flags: --smoke (tiny sizes + fewer thread counts, for sanitizer runs),
//        --large (adds n = 20000).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/edge_connectivity.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

using namespace deck;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

bool same_forests(const std::vector<std::vector<SketchEdge>>& a,
                  const std::vector<std::vector<SketchEdge>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t f = 0; f < a.size(); ++f) {
    if (a[f].size() != b[f].size()) return false;
    for (std::size_t i = 0; i < a[f].size(); ++i)
      if (a[f][i].u != b[f][i].u || a[f][i].v != b[f][i].v) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const bool large = bench::flag(argc, argv, "--large");
  std::vector<int> sizes = smoke ? std::vector<int>{256, 512} : std::vector<int>{2000, 10000};
  if (large) sizes.push_back(20000);
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int k = 2;
  // The full connectivity check is n-1 max-flows — affordable only on the
  // small rows; the property tests cover it exhaustively at small n.
  const int verify_limit = 1024;

  Json rows = Json::array();
  bool all_ok = true;

  for (int n : sizes) {
    Rng rng(9900 + n);
    Graph g = random_kec(n, k, 2 * n, rng);
    GraphStream stream = GraphStream::from_graph(g, rng);
    stream.churn(g.num_edges() / 2, rng);

    SketchOptions sopt;
    sopt.seed = 9000 + static_cast<std::uint64_t>(n);
    sopt.max_forests = k;
    ShardOptions shopt;
    shopt.shards = 4;

    // Ingest once (untimed — bench_f8 owns ingestion scaling); every thread
    // count recovers from a pristine copy of this bank.
    const SketchConnectivity ingested = apply_sharded(stream, sopt, shopt).sketch;

    Table t({"threads", "recover_ms", "speedup", "identical", "m_cert", "copies", "rounds",
             "fail_rate"});
    std::vector<std::vector<SketchEdge>> reference;
    double base_ms = 0;
    for (int threads : thread_counts) {
      SketchConnectivity bank = ingested;  // fresh copies for every run
      RecoveryStats stats;
      const auto start = std::chrono::steady_clock::now();
      KForests r = bank.try_k_spanning_forests(k, {.threads = threads});
      const double ms = ms_since(start);
      stats = std::move(r.stats);
      const bool converged = r.converged;

      if (threads == thread_counts.front()) {
        reference = r.forests;
        base_ms = ms;
      }
      const bool identical = same_forests(r.forests, reference);
      int m_cert = 0;
      Graph cert(n);
      for (const auto& forest : r.forests)
        for (const SketchEdge& e : forest) {
          cert.add_edge(e.u, e.v, 1);
          ++m_cert;
        }
      const bool cert_ok =
          converged && m_cert <= k * (n - 1) && (n > verify_limit || is_k_edge_connected(cert, k));
      all_ok = all_ok && identical && cert_ok;

      const double speedup = ms > 0 ? base_ms / ms : 0;
      const double fail_rate =
          stats.samples > 0
              ? static_cast<double>(stats.failures) / static_cast<double>(stats.samples)
              : 0;
      t.add(threads, ms, speedup, identical ? "yes" : "NO", m_cert, bank.copies_used(),
            stats.rounds, fail_rate);

      Json row = Json::object();
      row.set("n", n)
          .set("k", k)
          .set("mode", "fixed")
          .set("threads", threads)
          .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
          .set("recover_ms", ms)
          .set("speedup_vs_1thread", speedup)
          .set("identical_to_1thread", identical)
          .set("m_certificate", m_cert)
          .set("certificate_bound", k * (n - 1))
          .set("certificate_ok", cert_ok)
          .set("sketch_copies_used", bank.copies_used())
          .set("recovery_rounds", stats.rounds)
          .set("sample_failure_rate", fail_rate);
      rows.push(std::move(row));
    }
    t.print("F9: parallel recovery scaling, n = " + std::to_string(n) + ", k = " +
            std::to_string(k) + ", m = " + std::to_string(g.num_edges()));

    // Adaptive sizing: the attempt loop re-ingests, so it is timed end to
    // end (ingest + recover per attempt) and reported separately.
    {
      SketchOptions aopt;
      aopt.seed = sopt.seed;
      aopt.auto_size.enabled = true;
      const int threads = thread_counts.back();
      const auto start = std::chrono::steady_clock::now();
      const SparsifyResult sp =
          sharded_sparsify_stream(stream, k, aopt, shopt, {.threads = threads});
      const double ms = ms_since(start);
      const bool cert_ok = sp.certificate.num_edges() <= k * (n - 1) &&
                           (n > verify_limit || is_k_edge_connected(sp.certificate, k));
      all_ok = all_ok && cert_ok;
      std::printf("   adaptive: %d attempts -> columns %d, slack %d, %d edges, %.1f ms\n\n",
                  sp.attempts, sp.columns_used, sp.rounds_slack_used, sp.certificate.num_edges(),
                  ms);

      Json row = Json::object();
      row.set("n", n)
          .set("k", k)
          .set("mode", "adaptive")
          .set("threads", threads)
          .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
          .set("recover_ms", ms)
          .set("attempts", sp.attempts)
          .set("columns_used", sp.columns_used)
          .set("rounds_slack_used", sp.rounds_slack_used)
          .set("m_certificate", sp.certificate.num_edges())
          .set("certificate_bound", k * (n - 1))
          .set("certificate_ok", cert_ok)
          .set("sketch_copies_used", sp.copies_used);
      rows.push(std::move(row));
    }
  }

  std::printf("   parallel recovery exact on all rows: %s\n\n", all_ok ? "yes" : "NO");
  Json doc = Json::object();
  doc.set("bench", "f9_recovery").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
