// A1 — Ablations of the two tunable constants the paper fixes:
//  (a) the TAP vote threshold |Ce|/8 (Line 5 of §3): smaller denominators
//      accept fewer candidates per iteration (more iterations, potentially
//      better weight); larger ones accept more aggressively.
//  (b) the §4 phase length M (p doubles every M log n iterations): shorter
//      phases finish faster but violate the degree-decay argument more
//      often, which can cost approximation quality.

#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"
#include "tap/tap_instance.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const int n = large ? 256 : 128;
  const int reps = large ? 5 : 3;

  {
    Table t({"vote denom", "aug weight (mean)", "iterations (mean)", "rounds (mean)"});
    for (int denom : {2, 4, 8, 16, 32}) {
      double w = 0, iters = 0, rounds = 0;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng(100 + rep);
        TapInstance inst = random_tap_instance(n, n, 1, rng);
        Network net(inst.g);
        TapOptions opt;
        opt.vote_denominator = denom;
        opt.seed = 31 + rep;
        const TapResult r = distributed_tap_standalone(net, inst, opt);
        if (!inst.covers_all(r.augmentation)) return 1;
        w += static_cast<double>(r.weight) / reps;
        iters += static_cast<double>(r.iterations) / reps;
        rounds += static_cast<double>(net.rounds()) / reps;
      }
      t.add(denom, w, iters, rounds);
    }
    t.print("A1a: TAP vote threshold |Ce|/denom ablation (paper: denom = 8)");
    std::printf("\n");
  }

  {
    Table t({"phase M", "kECSS weight", "LB", "weight/LB", "iterations", "rounds"});
    const int kn = large ? 96 : 64;
    for (int M : {1, 2, 4, 8}) {
      Rng rng(77);
      Graph g = with_weights(random_kec(kn, 3, kn, rng), WeightModel::kUniform, rng);
      Network net(g);
      KecssOptions opt;
      opt.phase_m = M;
      opt.seed = 5;
      const KecssResult r = distributed_kecss(net, 3, opt);
      if (!is_k_edge_connected_subset(g, r.edges, 3)) return 1;
      const Weight lb = kecss_lower_bound(g, 3);
      t.add(M, r.weight, lb, static_cast<double>(r.weight) / static_cast<double>(lb),
            r.iterations, net.rounds());
    }
    t.print("A1b: section-4 phase length M ablation (paper: M a sufficiently large constant)");
  }
  return 0;
}
