// A3 — schedule-substitution ablation. DESIGN.md documents one deviation in
// the §4 loop: iterations in which no candidate activated can skip the
// MST-filter exchange after an O(D) emptiness detection ("fast_forward").
// This bench runs both schedules on identical inputs: the outputs are
// identical edge sets (the filter sees the same activations), only the
// round bill differs — quantifying exactly what the substitution saves.

#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{24, 48, 96} : std::vector<int>{16, 32, 64};

  Table t({"k", "n", "rounds strict", "rounds fast", "saving", "same edges?", "weight"});
  for (int k : {2, 3}) {
    for (int n : sizes) {
      Rng rng(9900 + n * k);
      Graph g = with_weights(random_kec(n, k, n, rng), WeightModel::kUniform, rng);
      if (edge_connectivity(g) < k) continue;

      KecssOptions strict;
      strict.fast_forward = false;
      strict.seed = 5;
      Network net_s(g);
      const KecssResult rs = distributed_kecss(net_s, k, strict);
      if (!is_k_edge_connected_subset(g, rs.edges, k)) return 1;

      KecssOptions fast;
      fast.fast_forward = true;
      fast.seed = 5;
      Network net_f(g);
      const KecssResult rf = distributed_kecss(net_f, k, fast);
      if (!is_k_edge_connected_subset(g, rf.edges, k)) return 1;

      t.add(k, n, net_s.rounds(), net_f.rounds(),
            static_cast<double>(net_s.rounds()) / static_cast<double>(net_f.rounds()),
            rs.edges == rf.edges ? "yes" : "NO", rf.weight);
    }
  }
  t.print("A3: strict section-4 schedule vs fast-forward (identical outputs)");
  std::printf("   'saving' is the strict/fast round ratio; edge sets must match.\n");
  return 0;
}
