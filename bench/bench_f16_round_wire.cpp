// F16 — net-engine round wire cost: coordinator wire bytes per round and
// wall time per round across the protocol v4 hot-path configurations
// (delta round frames on/off × comm-thread pipelining on/off × worker
// stepping threads), at 4 workers.
//
// Two workload shapes bracket the delta codec's operating range:
//   * frontier-sparse — BFS on a vertex-shuffled circulant (chords 1..4).
//     The shuffle spreads every chord across worker ranges, so each round
//     ships a thin slice of boundary traffic whose payloads are the BFS
//     flood's near-constant packets: the delta format's best case, and the
//     shape the >= 5x reduction gate (`delta_reduction_ok`) is scored on.
//   * frontier-dense — the 2-ECSS pipeline on a random 2-edge-connected
//     graph: broad rounds with novel payloads (upcast keys, priorities),
//     the delta format's adversarial case; the gate only asks that bytes
//     never exceed the fixed format's (the codec falls back per frame).
//
// Wire bytes, rounds, and messages are deterministic and gated per row
// (workload, delta, pipeline, threads); every row's output must stay
// bit-identical to the sequential engine (identical_to_seq feeds the
// gate). Wall time is host-dependent and never gated.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "congest/distributed_engine.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"

using namespace deck;

namespace {

/// Circulant with chords 1..r under a seeded vertex shuffle: same topology,
/// but vertex ids — and therefore contiguous worker ranges — are spread
/// around the ring, so nearly every edge crosses a range boundary.
Graph shuffled_circulant(int n, int r, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> perm(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(perm);
  const Graph ring = circulant(n, r);
  Graph g(n);
  for (const Edge& e : ring.edges())
    g.add_edge(perm[static_cast<std::size_t>(e.u)], perm[static_cast<std::size_t>(e.v)], e.w);
  return with_weights(g, WeightModel::kUniform, rng);
}

std::vector<EdgeId> bfs_digest(Network& net) {
  const RootedTree t = distributed_bfs(net, 0);
  std::vector<EdgeId> digest;
  for (VertexId v = 0; v < net.n(); ++v) digest.push_back(t.parent_edge(v));
  return digest;
}

struct SeqBase {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

struct WireRun {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_rounds = 0;  // barrier count: round_wire_bytes samples
  std::uint64_t delta_frames = 0;
  std::uint64_t full_frames = 0;
  bool identical = false;
  double wall_ms = 0;
};

template <typename Algo>
WireRun run_config(const Graph& g, Algo&& algo, const SeqBase& base, bool delta, bool pipeline,
                   int threads) {
  obs::Registry::global().reset();
  FleetOptions o;
  o.hub.delta_frames = delta;
  o.worker.pipeline = pipeline;
  o.worker.threads = threads;
  WireRun r;
  const auto t0 = std::chrono::steady_clock::now();
  {
    CongestWorkerFleet fleet(4, o);
    Network net(g, fleet.hub());
    const std::vector<EdgeId> edges = algo(net);
    r.rounds = net.rounds();
    r.messages = net.messages();
    r.identical = edges == base.edges && r.rounds == base.rounds && r.messages == base.messages;
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
  const obs::Snapshot snap = obs::Registry::global().scrape();
  if (const obs::Histogram::Snap* h = snap.histogram("congest.net.round_wire_bytes");
      h != nullptr) {
    r.wire_bytes = h->sum;
    r.wire_rounds = h->count;
  }
  r.delta_frames = snap.counter("congest.net.delta_frames");
  r.full_frames = snap.counter("congest.net.full_frames");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const int n = smoke ? 48 : large ? 192 : 96;

  obs::set_enabled(true);

  struct Workload {
    std::string name;
    Graph g;
    std::vector<EdgeId> (*algo)(Network&);
  };
  Rng rng(1600 + n);
  const std::vector<Workload> workloads = {
      {"frontier-sparse", shuffled_circulant(n, 4, 1601), bfs_digest},
      {"frontier-dense", with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng),
       [](Network& net) { return distributed_2ecss(net, TapOptions{}).edges; }},
  };

  Table t({"workload", "delta", "pipeline", "threads", "rounds", "wire bytes", "bytes/round",
           "delta/full", "identical", "wall ms"});
  Json rows = Json::array();
  bool all_ok = true;
  double sparse_full_bytes = 0, sparse_delta_bytes = 0;
  for (const Workload& w : workloads) {
    SeqBase base;
    {
      Network net(w.g);
      base.edges = w.algo(net);
      base.rounds = net.rounds();
      base.messages = net.messages();
    }
    for (bool delta : {false, true}) {
      for (bool pipeline : {false, true}) {
        for (int threads : {1, 2}) {
          const WireRun r = run_config(w.g, w.algo, base, delta, pipeline, threads);
          all_ok = all_ok && r.identical;
          if (w.name == "frontier-sparse" && !pipeline && threads == 1)
            (delta ? sparse_delta_bytes : sparse_full_bytes) =
                static_cast<double>(r.wire_bytes);
          const double per_round =
              r.wire_rounds == 0 ? 0 : static_cast<double>(r.wire_bytes) /
                                           static_cast<double>(r.wire_rounds);
          t.add(w.name, delta ? "on" : "off", pipeline ? "on" : "off", threads, r.rounds,
                r.wire_bytes, per_round,
                std::to_string(r.delta_frames) + "/" + std::to_string(r.full_frames),
                r.identical ? "yes" : "NO", r.wall_ms);
          Json row = Json::object();
          row.set("workload", w.name)
              .set("delta", delta ? 1 : 0)
              .set("pipeline", pipeline ? 1 : 0)
              .set("threads", threads)
              .set("workers", 4)
              .set("n", n)
              .set("rounds", r.rounds)
              .set("messages", r.messages)
              .set("wire_bytes", r.wire_bytes)
              .set("delta_frames", r.delta_frames)
              .set("full_frames", r.full_frames)
              .set("identical_to_seq", r.identical)
              .set("wall_ms", r.wall_ms)
              .set("wall_ms_per_round",
                   r.rounds == 0 ? 0 : r.wall_ms / static_cast<double>(r.rounds));
          rows.push(std::move(row));
        }
      }
    }
  }

  const double reduction =
      sparse_delta_bytes == 0 ? 0 : sparse_full_bytes / sparse_delta_bytes;
  t.print("F16: coordinator round wire cost, 4 workers, n=" + std::to_string(n));
  std::printf(
      "   frontier-sparse delta reduction: %.1fx (gate: >= 5x); wire bytes and counters are\n"
      "   config-deterministic, wall time is not\n",
      reduction);

  Json doc = Json::object();
  doc.set("bench", "f16_round_wire")
      .set("all_ok", all_ok)
      .set("sparse_delta_reduction", reduction)
      .set("delta_reduction_ok", reduction >= 5.0)
      .set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok && reduction >= 5.0 ? 0 : 1;
}
