// T5 — §5.4 remark: weighted 3-ECSS via the label machinery over the MST.
// Compares the weighted §5 variant against the generic §4 algorithm (k=3)
// on the same inputs: quality should be comparable; rounds trade D-vs-h_MST
// as the remark discusses.
//
// A machine-readable JSON document follows the table; the bench-regression
// CI gate diffs both deterministic weight ratios per size against
// bench/baselines/t5_weighted_3ecss.json. --smoke shrinks the sweep — the
// gated configuration in CI.

#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke   ? std::vector<int>{24, 48}
                                 : large ? std::vector<int>{32, 64, 128, 256}
                                         : std::vector<int>{24, 48, 96};

  Json rows = Json::array();
  bool all_ok = true;

  Table t({"n", "LB", "sec5.4 weight", "sec4 weight", "sec5.4 rounds", "sec4 rounds",
           "5.4/LB", "4/LB"});
  for (int n : sizes) {
    Rng rng(7500 + n);
    Graph g = with_weights(random_kec(n, 3, n, rng), WeightModel::kUniform, rng);
    if (edge_connectivity(g) < 3) continue;
    const Weight lb = kecss_lower_bound(g, 3);

    Network net5(g);
    Ecss3Options opt5;
    opt5.seed = n;
    const auto r5 = distributed_3ecss_weighted(net5, opt5);
    const bool valid5 = is_k_edge_connected_subset(g, r5.edges, 3);
    if (!valid5) std::printf("!! weighted sec5 output not 3-edge-connected (n=%d)\n", n);

    Network net4(g);
    KecssOptions opt4;
    opt4.seed = n;
    const auto r4 = distributed_kecss(net4, 3, opt4);
    const bool valid4 = is_k_edge_connected_subset(g, r4.edges, 3);
    all_ok = all_ok && valid5 && valid4;

    const double ratio5 = static_cast<double>(r5.weight) / static_cast<double>(lb);
    const double ratio4 = static_cast<double>(r4.weight) / static_cast<double>(lb);
    t.add(n, lb, r5.weight, r4.weight, net5.rounds(), net4.rounds(), ratio5, ratio4);

    Json row = Json::object();
    row.set("n", n)
        .set("lower_bound", lb)
        .set("weight_sec54", r5.weight)
        .set("weight_sec4", r4.weight)
        .set("rounds_sec54", net5.rounds())
        .set("rounds_sec4", net4.rounds())
        .set("ratio_sec54_vs_lb", ratio5)
        .set("ratio_sec4_vs_lb", ratio4)
        .set("outputs_3_edge_connected", valid5 && valid4);
    rows.push(std::move(row));
  }
  t.print("T5: weighted 3-ECSS — section 5.4 label variant vs generic section 4");

  Json doc = Json::object();
  doc.set("bench", "t5_weighted_3ecss").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
