// T5 — §5.4 remark: weighted 3-ECSS via the label machinery over the MST.
// Compares the weighted §5 variant against the generic §4 algorithm (k=3)
// on the same inputs: quality should be comparable; rounds trade D-vs-h_MST
// as the remark discusses.

#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/lower_bounds.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const std::vector<int> sizes =
      large ? std::vector<int>{32, 64, 128, 256} : std::vector<int>{24, 48, 96};

  Table t({"n", "LB", "sec5.4 weight", "sec4 weight", "sec5.4 rounds", "sec4 rounds",
           "5.4/LB", "4/LB"});
  for (int n : sizes) {
    Rng rng(7500 + n);
    Graph g = with_weights(random_kec(n, 3, n, rng), WeightModel::kUniform, rng);
    if (edge_connectivity(g) < 3) continue;
    const Weight lb = kecss_lower_bound(g, 3);

    Network net5(g);
    Ecss3Options opt5;
    opt5.seed = n;
    const auto r5 = distributed_3ecss_weighted(net5, opt5);
    if (!is_k_edge_connected_subset(g, r5.edges, 3)) {
      std::printf("!! weighted sec5 output not 3-edge-connected (n=%d)\n", n);
      return 1;
    }

    Network net4(g);
    KecssOptions opt4;
    opt4.seed = n;
    const auto r4 = distributed_kecss(net4, 3, opt4);
    if (!is_k_edge_connected_subset(g, r4.edges, 3)) return 1;

    t.add(n, lb, r5.weight, r4.weight, net5.rounds(), net4.rounds(),
          static_cast<double>(r5.weight) / static_cast<double>(lb),
          static_cast<double>(r4.weight) / static_cast<double>(lb));
  }
  t.print("T5: weighted 3-ECSS — section 5.4 label variant vs generic section 4");
  return 0;
}
