// F13 — failover cost curve for the fault-tolerant net engine. Two
// sections, one 2-ECSS pipeline on a 2-worker fleet:
//
//   cadence  — checkpoint interval R in {0 (off), 1, 8, 64} with no faults:
//              what periodic Checkpoint traffic costs. Rounds, messages, and
//              total checkpoint bytes are deterministic and gated; wall-clock
//              is reported, never gated.
//   recovery — a scripted kill (coordinator-side frame index, net/fault.hpp)
//              mid-pipeline for R in {1, 8}: the engine must absorb the
//              death and stay bit-identical to the sequential run
//              (identical_to_seq feeds the bench-regression gate), with the
//              recovery latency visible as the wall-clock delta vs the
//              faultless run at the same cadence.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

using namespace deck;

namespace {

struct FleetRun {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  Weight weight = 0;
  bool valid = false;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t deaths = 0;
  double wall_ms = 0;
};

FleetRun run_fleet(const Graph& g, int workers, int interval, std::size_t kill_frame) {
  obs::Registry::global().reset();
  FleetOptions o;
  o.hub.checkpoint_interval = interval;
  if (kill_frame > 0) {
    o.coordinator_faults.resize(static_cast<std::size_t>(workers));
    o.coordinator_faults[0] = {FaultRule{kill_frame, FaultRule::Kind::kKill, 0}};
  }
  FleetRun r;
  const auto t0 = std::chrono::steady_clock::now();
  CongestWorkerFleet fleet(workers, o);
  {
    Network net(g, fleet.hub());
    const Ecss2Result res = distributed_2ecss(net, TapOptions{});
    r.rounds = net.rounds();
    r.messages = net.messages();
    r.weight = res.weight;
    r.valid = is_k_edge_connected_subset(g, res.edges, 2);
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
  const obs::Snapshot snap = obs::Registry::global().scrape();
  if (const auto* h = snap.histogram("congest.net.checkpoint_bytes")) {
    r.checkpoints = h->count;
    r.checkpoint_bytes = h->sum;
  }
  r.deaths = snap.counter("congest.net.worker_deaths");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const int n = smoke ? 32 : large ? 128 : 64;
  const int workers = 2;

  obs::set_enabled(true);
  Rng rng(1300 + n);
  const Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);

  Weight seq_weight = 0;
  std::uint64_t seq_rounds = 0, seq_messages = 0;
  {
    Network net(g);
    const Ecss2Result res = distributed_2ecss(net, TapOptions{});
    seq_weight = res.weight;
    seq_rounds = net.rounds();
    seq_messages = net.messages();
  }

  Table t({"case", "interval", "kill frame", "rounds", "messages", "ckpt bytes", "deaths",
           "identical", "wall ms"});
  Json rows = Json::array();
  bool all_ok = true;
  double clean_wall[65] = {};  // indexed by interval, for the recovery delta

  const auto add_row = [&](const char* kind, int interval, std::size_t kill_frame,
                           const FleetRun& r, double recover_ms) {
    const bool identical =
        r.rounds == seq_rounds && r.messages == seq_messages && r.weight == seq_weight;
    const std::uint64_t want_deaths = kill_frame > 0 ? 1 : 0;
    all_ok = all_ok && identical && r.valid && r.deaths == want_deaths;
    t.add(kind, interval, kill_frame, r.rounds, r.messages, r.checkpoint_bytes, r.deaths,
          identical ? "yes" : "NO", r.wall_ms);
    Json row = Json::object();
    row.set("case", kind)
        .set("interval", interval)
        .set("workers", workers)
        .set("frame", static_cast<std::uint64_t>(kill_frame))
        .set("n", g.num_vertices())
        .set("rounds", r.rounds)
        .set("messages", r.messages)
        .set("checkpoints", r.checkpoints)
        .set("checkpoint_bytes", r.checkpoint_bytes)
        .set("worker_deaths", r.deaths)
        .set("output_2_edge_connected", r.valid)
        .set("identical_to_seq", identical)
        .set("wall_ms", r.wall_ms)
        .set("recover_ms", recover_ms);
    rows.push(std::move(row));
  };

  for (int interval : {0, 1, 8, 64}) {
    const FleetRun r = run_fleet(g, workers, interval, 0);
    clean_wall[interval] = r.wall_ms;
    add_row("cadence", interval, 0, r, 0.0);
  }
  for (int interval : {1, 8}) {
    const FleetRun r = run_fleet(g, workers, interval, 5);
    add_row("recovery", interval, 5, r, r.wall_ms - clean_wall[interval]);
  }

  t.print("F13: failover cost, 2-ECSS on a " + std::to_string(workers) + "-worker fleet, " +
          g.summary());
  std::printf(
      "   cadence rows price periodic checkpoints; recovery rows kill worker 0 mid-pipeline "
      "and must stay bit-identical to seq\n");

  Json doc = Json::object();
  doc.set("bench", "f13_failover").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
