// T2 — Theorem 1.2: k-ECSS approximation quality (O(k log n) expected).
// Small instances compare against the exact optimum; larger ones against
// the degree/MST lower bound, the sequential greedy framework, and (for the
// unit-weight column) the Thurimella sparse-certificate 2-approximation.
//
// A machine-readable JSON document follows the tables; the bench-regression
// CI gate diffs the deterministic dist/LB ratios (per k, size, and weight
// model) against bench/baselines/t2_kecss_quality.json. --smoke shrinks the
// sweep to one size per (k, weights) cell — the gated configuration in CI.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_kecss.hpp"
#include "ecss/exact.hpp"
#include "ecss/lower_bounds.hpp"
#include "ecss/seq_ecss.hpp"
#include "ecss/thurimella.hpp"
#include "graph/edge_connectivity.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");

  Json rows = Json::array();
  bool all_ok = true;

  {
    Table t({"k", "n", "m", "OPT", "dist", "greedy", "dist/OPT", "greedy/OPT"});
    for (int k : {2, 3}) {
      for (int trial = 0; trial < 4; ++trial) {
        Rng rng(80 + trial * 17 + k);
        Graph g = with_weights(random_kec(8, k, 2, rng), WeightModel::kUniform, rng);
        if (g.num_edges() > 17 || edge_connectivity(g) < k) continue;
        Weight opt_w = 0;
        for (EdgeId e : exact_kecss(g, k)) opt_w += g.edge(e).w;
        Network net(g);
        KecssOptions kopt;
        kopt.seed = trial;
        const KecssResult r = distributed_kecss(net, k, kopt);
        if (!is_k_edge_connected_subset(g, r.edges, k)) return 1;
        Weight greedy_w = 0;
        for (EdgeId e : greedy_kecss(g, k, trial)) greedy_w += g.edge(e).w;
        t.add(k, g.num_vertices(), g.num_edges(), opt_w, r.weight, greedy_w,
              static_cast<double>(r.weight) / static_cast<double>(opt_w),
              static_cast<double>(greedy_w) / static_cast<double>(opt_w));
      }
    }
    t.print("T2a: k-ECSS vs exact optimum (small instances)");
    std::printf("\n");
  }

  {
    Table t({"k", "n", "weights", "LB", "dist", "greedy", "thurimella", "dist/LB"});
    const std::vector<int> sizes = smoke   ? std::vector<int>{48}
                                   : large ? std::vector<int>{64, 128, 256}
                                           : std::vector<int>{48, 96};
    for (int k : {2, 3, 4}) {
      for (int n : sizes) {
        for (int unit : {1, 0}) {
          Rng rng(7100 + n * k + unit);
          Graph g = with_weights(random_kec(n, k, n, rng),
                                 unit ? WeightModel::kUnit : WeightModel::kUniform, rng);
          const Weight lb = kecss_lower_bound(g, k);
          Network net(g);
          KecssOptions kopt;
          kopt.seed = static_cast<std::uint64_t>(n) + k;
          const KecssResult r = distributed_kecss(net, k, kopt);
          const bool valid = is_k_edge_connected_subset(g, r.edges, k);
          all_ok = all_ok && valid;
          Weight greedy_w = 0;
          for (EdgeId e : greedy_kecss(g, k, 5)) greedy_w += g.edge(e).w;
          Weight thur_w = 0;
          if (unit) {
            for (EdgeId e : sparse_certificate(g, k)) thur_w += g.edge(e).w;
          }
          const double ratio = static_cast<double>(r.weight) / static_cast<double>(lb);
          t.add(k, n, unit ? "unit" : "uniform", lb, r.weight, greedy_w,
                unit ? Table::format_cell(thur_w) : std::string("-"), ratio);

          Json row = Json::object();
          row.set("k", k)
              .set("n", n)
              .set("weights", unit ? "unit" : "uniform")
              .set("lower_bound", lb)
              .set("weight_dist", r.weight)
              .set("weight_greedy", greedy_w)
              .set("ratio_vs_lb", ratio)
              .set("output_k_edge_connected", valid);
          rows.push(std::move(row));
        }
      }
    }
    t.print("T2b: k-ECSS vs lower bound / baselines");
  }

  Json doc = Json::object();
  doc.set("bench", "t2_kecss_quality").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
