// F4 — Theorem 1.3: unweighted 3-ECSS runs in O(D log^3 n) rounds —
// independent of n beyond the diameter. Two sweeps:
//   (a) fixed-ish diameter, growing n  -> rounds ~ flat / polylog growth;
//   (b) fixed n, growing diameter (torus aspect ratio) -> rounds ~ linear in D.
// We also run the generic §4 algorithm (Theorem 1.2) on the same unweighted
// inputs: its Theta(n) broadcast term loses to the §5 algorithm once
// n >> D polylog — the crossover the paper's §5 motivates.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/distributed_kecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/traversal.hpp"

using namespace deck;

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bench::EngineChoice eng = bench::engine_from_args(argc, argv);

  {
    Table t({"n", "D", "rounds(sec5)", "rounds(sec4)", "D log^3 n", "sec5/pred", "sec4/sec5"});
    std::vector<int> dims = large ? std::vector<int>{4, 5, 6, 7, 8} : std::vector<int>{4, 5, 6, 7};
    for (int d : dims) {
      Graph g = hypercube(d);  // D = d = log n
      const int diam = d;
      Network net5(g, eng.hub);
      Ecss3Options opt;
      opt.seed = d;
      const Ecss3Result r5 = distributed_3ecss_unweighted(net5, opt);
      if (!is_k_edge_connected_subset(g, r5.edges, 3)) return 1;
      Network net4(g, eng.hub);
      KecssOptions kopt;
      kopt.seed = d;
      const KecssResult r4 = distributed_kecss(net4, 3, kopt);
      if (!is_k_edge_connected_subset(g, r4.edges, 3)) return 1;
      const double logn = std::log2(static_cast<double>(g.num_vertices()));
      const double pred = diam * logn * logn * logn;
      t.add(g.num_vertices(), diam, net5.rounds(), net4.rounds(), pred,
            static_cast<double>(net5.rounds()) / pred,
            static_cast<double>(net4.rounds()) / static_cast<double>(net5.rounds()));
    }
    t.print("F4a: 3-ECSS rounds on hypercubes (low D, growing n)");
    std::printf(
        "   sec4/sec5 should grow with n: the section 5 algorithm avoids the Theta(n) term\n\n");
  }

  {
    Table t({"rows x cols", "n", "D", "rounds(sec5)", "rounds/D"});
    std::vector<std::pair<int, int>> shapes =
        large ? std::vector<std::pair<int, int>>{{16, 16}, {8, 32}, {4, 64}, {3, 86}}
              : std::vector<std::pair<int, int>>{{12, 12}, {8, 18}, {4, 36}, {3, 48}};
    for (auto [rows, cols] : shapes) {
      Graph g = torus(rows, cols);
      const int diam = diameter(g);
      Network net(g, eng.hub);
      Ecss3Options opt;
      opt.seed = rows;
      const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
      if (!is_k_edge_connected_subset(g, r.edges, 3)) return 1;
      t.add(std::to_string(rows) + "x" + std::to_string(cols), g.num_vertices(), diam,
            net.rounds(), static_cast<double>(net.rounds()) / diam);
    }
    t.print("F4b: 3-ECSS rounds on tori of fixed n, growing D (rounds/D ~ flat)");
  }
  return 0;
}
