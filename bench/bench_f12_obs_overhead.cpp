// F12 — Observability overhead gate. The src/obs/ contract is "near-zero
// when off": every hot-path hook (Counter::add, Histogram::observe, Span
// construction) must cost one relaxed load and branch when the switches are
// off, and the striped metric write path must stay cheap when metrics are
// on. This bench measures each hook against a hook-free loop doing the same
// arithmetic and emits boolean `within_bound` flags the bench-regression
// gate turns into CI failures. The bounds are deliberately loose (an order
// of magnitude above the measured cost on a laptop) so the gate catches
// accidental mutexes, allocation, or false sharing on the hot path — not
// scheduler noise on a busy runner.
//
// The final row asserts the other half of the contract: enabling the whole
// layer (metrics + tracing) must not change what the algorithms compute —
// rounds, messages, and the chosen 2-ECSS edges are bit-identical with obs
// on and off.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace deck;

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// LCG step the compiler cannot reduce to a closed form; the empty asm keeps
// the value live so neither the bare nor the hooked loop is eliminated.
inline std::uint64_t lcg_step(std::uint64_t x) {
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  asm volatile("" : "+r"(x));
  return x;
}

/// Best-of-`reps` nanoseconds per iteration of `lcg_step + body`.
template <typename Body>
double ns_per_op(int reps, std::uint64_t iters, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    const std::uint64_t t0 = wall_ns();
    for (std::uint64_t i = 0; i < iters; ++i) {
      x = lcg_step(x);
      body(x);
    }
    const std::uint64_t t1 = wall_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / static_cast<double>(iters));
  }
  return best;
}

struct HookRow {
  const char* name;
  std::uint64_t iters = 0;
  double bare = 0, hook = 0, bound = 0;
  double overhead() const { return std::max(0.0, hook - bare); }
  bool ok() const { return overhead() <= bound; }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const int reps = smoke ? 3 : 5;
  const std::uint64_t iters = smoke ? 200'000 : 2'000'000;
  // Disabled hooks must vanish into the loop; enabled metric writes are one
  // striped relaxed fetch_add; an enabled Span buffers a whole event under
  // the sink mutex (tracing is a profiling mode, bounded loosely).
  const double kOffBound = 25.0, kOnBound = 250.0, kSpanOnBound = 20'000.0;

  obs::set_enabled(false);
  obs::set_tracing(false);
  obs::Counter& ctr = obs::Registry::global().counter("f12.counter");
  obs::Histogram& hist = obs::Registry::global().histogram("f12.hist");

  const double bare = ns_per_op(reps, iters, [](std::uint64_t) {});

  std::vector<HookRow> rows;
  rows.push_back({"counter_off", iters, bare,
                  ns_per_op(reps, iters, [&](std::uint64_t) { ctr.inc(); }), kOffBound});
  rows.push_back({"histogram_off", iters, bare,
                  ns_per_op(reps, iters, [&](std::uint64_t x) { hist.observe(x & 0xffff); }),
                  kOffBound});
  rows.push_back({"span_off", iters, bare,
                  ns_per_op(reps, iters, [](std::uint64_t) { obs::Span s("f12.span"); }),
                  kOffBound});

  obs::set_enabled(true);
  rows.push_back({"counter_on", iters, bare,
                  ns_per_op(reps, iters, [&](std::uint64_t) { ctr.inc(); }), kOnBound});
  rows.push_back({"histogram_on", iters, bare,
                  ns_per_op(reps, iters, [&](std::uint64_t x) { hist.observe(x & 0xffff); }),
                  kOnBound});
  obs::set_enabled(false);

  // Enabled spans allocate and record; measure far fewer iterations and
  // drop the buffered events between reps so memory stays flat.
  obs::set_tracing(true);
  const std::uint64_t span_iters = iters / 40;
  double span_on = 1e300;
  for (int r = 0; r < reps; ++r) {
    span_on = std::min(span_on, ns_per_op(1, span_iters, [](std::uint64_t) {
                         obs::Span s("f12.span");
                       }));
    obs::TraceSink::global().clear();
  }
  obs::set_tracing(false);
  rows.push_back({"span_on", span_iters, bare, span_on, kSpanOnBound});

  bool all_ok = true;
  Table t({"case", "iters", "bare ns/op", "hook ns/op", "overhead ns/op", "bound ns", "ok"});
  Json json_rows = Json::array();
  for (const HookRow& r : rows) {
    all_ok = all_ok && r.ok();
    t.add(r.name, r.iters, r.bare, r.hook, r.overhead(), r.bound, r.ok() ? "yes" : "NO");
    Json row = Json::object();
    row.set("case", r.name)
        .set("iters", r.iters)
        .set("bare_ns_per_op", r.bare)
        .set("hook_ns_per_op", r.hook)
        .set("overhead_ns_per_op", r.overhead())
        .set("bound_ns", r.bound)
        .set("within_bound", r.ok());
    json_rows.push(std::move(row));
  }

  // Determinism half of the contract: obs on vs off must not perturb the
  // pipeline. Same graph, same seed, full layer enabled on the second run.
  const int n = smoke ? 48 : 96;
  Rng rng(1200 + n);
  const Graph g = with_weights(random_kec(n, 2, n, rng), WeightModel::kUniform, rng);
  Network net_off(g);
  const Ecss2Result r_off = distributed_2ecss(net_off, TapOptions{});
  obs::set_enabled(true);
  obs::set_tracing(true);
  obs::set_trace_id(0xf12);
  Network net_on(g);
  const Ecss2Result r_on = distributed_2ecss(net_on, TapOptions{});
  obs::set_enabled(false);
  obs::set_tracing(false);
  obs::TraceSink::global().clear();
  const bool identical = r_on.edges == r_off.edges && net_on.rounds() == net_off.rounds() &&
                         net_on.messages() == net_off.messages();
  const bool valid = is_k_edge_connected_subset(g, r_off.edges, 2);
  all_ok = all_ok && identical && valid;
  {
    Json row = Json::object();
    row.set("case", "engine_invariant")
        .set("n", g.num_vertices())
        .set("rounds", net_off.rounds())
        .set("messages", net_off.messages())
        .set("edges", static_cast<std::uint64_t>(r_off.edges.size()))
        .set("output_2_edge_connected", valid)
        .set("identical_with_obs_on", identical);
    json_rows.push(std::move(row));
  }

  t.print("F12: obs hook overhead vs a hook-free loop");
  std::printf("   2-ECSS with obs enabled: rounds/messages/edges identical to disabled: %s\n",
              identical ? "yes" : "NO");

  Json doc = Json::object();
  doc.set("bench", "f12_obs_overhead").set("all_ok", all_ok).set("rows", std::move(json_rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
