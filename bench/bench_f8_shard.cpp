// F8 — sharded parallel ingestion: throughput scaling and exactness.
//
// The f8 workload is a dense churned stream over a k-edge-connected graph,
// ingested with shards ∈ {1, 2, 4, 8} parallel inserters under both
// execution strategies: static hash sharding (shards own disjoint vertex
// slices of one global bank — the scaling path) and dynamic sharding
// (private per-shard ℓ₀ banks, lock-free batch claiming, merged by sketch
// addition — the path that models multi-process distributed ingest). Per
// row we report wall-clock ingestion throughput and speedup over 1 shard.
// Exactness is verified two ways on every row: the composed bank's
// serialized bytes equal the 1-shard bank's (bit-identical sketch state),
// and the recovered certificate's edge set equals the 1-shard
// certificate's. Exit status reflects only exactness and certificate
// validity — throughput depends on the host's core count (CI machines
// vary), so scaling is reported, not gated. A machine-readable JSON
// document follows the tables; the bench-regression CI gate diffs its
// deterministic fields (certificate size, copies used) against
// bench/baselines/f8_shard.json.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "graph/edge_connectivity.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"

using namespace deck;

namespace {

double ingest_ms(const GraphStream& stream, const SketchOptions& sopt, const ShardOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  const ShardIngestResult r = apply_sharded(stream, sopt, opt);
  const auto stop = std::chrono::steady_clock::now();
  (void)r;
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  // --smoke: sanitizer-friendly sizes (ASan/UBSan cost ~10x wall clock);
  // correctness flags and exit status are unchanged, rows are not gated.
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const std::vector<int> sizes = smoke   ? std::vector<int>{48}
                                 : large ? std::vector<int>{192, 320}
                                         : std::vector<int>{96, 160};
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int k = 2;

  Json rows = Json::array();
  bool all_ok = true;

  for (int n : sizes) {
    Rng rng(8800 + n);
    Graph g = random_kec(n, k, 5 * n, rng);
    GraphStream stream = GraphStream::from_graph(g, rng);
    stream.churn(g.num_edges(), rng);
    const auto halves = static_cast<double>(2 * stream.size());

    SketchOptions sopt;
    sopt.seed = 8000 + static_cast<std::uint64_t>(n);
    sopt.max_forests = k;

    // 1-shard reference: bank bytes and certificate every other shard count
    // must reproduce exactly.
    ShardOptions ref_opt;
    ref_opt.shards = 1;
    const std::vector<std::uint8_t> ref_bank =
        encode_bank(apply_sharded(stream, sopt, ref_opt).sketch);
    const SparsifyResult ref_cert = sharded_sparsify_stream(stream, k, sopt, ref_opt);
    const bool cert_ok = ref_cert.certificate.num_edges() <= k * (n - 1) &&
                         is_k_edge_connected(ref_cert.certificate, k);
    all_ok = all_ok && cert_ok;

    Table t({"mode", "shards", "updates", "ms", "halves/s", "speedup", "identical", "m_cert"});
    for (Sharding mode : {Sharding::kHash, Sharding::kDynamic}) {
      const char* mode_name = mode == Sharding::kHash ? "hash-owned" : "dynamic-merge";
      double base_ms = 0;
      for (int shards : shard_counts) {
        ShardOptions opt;
        opt.shards = shards;
        opt.sharding = mode;

        // Exactness first (untimed), then a timed ingestion pass.
        const ShardIngestResult r = apply_sharded(stream, sopt, opt);
        const bool identical = encode_bank(r.sketch) == ref_bank;
        const SparsifyResult sp = sharded_sparsify_stream(stream, k, sopt, opt);
        bool cert_identical = sp.certificate.num_edges() == ref_cert.certificate.num_edges();
        if (cert_identical)
          for (const Edge& e : ref_cert.certificate.edges())
            cert_identical = cert_identical && sp.certificate.has_edge(e.u, e.v);
        all_ok = all_ok && identical && cert_identical;

        const double ms = ingest_ms(stream, sopt, opt);
        if (shards == 1) base_ms = ms;
        const double speedup = ms > 0 ? base_ms / ms : 0;
        t.add(mode_name, shards, stream.size(), ms, halves / (ms / 1000.0), speedup,
              (identical && cert_identical) ? "yes" : "NO", sp.certificate.num_edges());

        Json row = Json::object();
        row.set("n", n)
            .set("k", k)
            .set("mode", mode_name)
            .set("shards", shards)
            .set("stream_updates", static_cast<std::uint64_t>(stream.size()))
            .set("ingest_ms", ms)
            .set("halves_per_sec", halves / (ms / 1000.0))
            .set("speedup_vs_1shard", speedup)
            .set("bank_identical_to_1shard", identical)
            .set("certificate_identical_to_1shard", cert_identical)
            .set("m_certificate", sp.certificate.num_edges())
            .set("certificate_bound", k * (n - 1))
            .set("certificate_k_connected", cert_ok)
            .set("sketch_copies_used", sp.copies_used);
        rows.push(std::move(row));
      }
    }
    t.print("F8: sharded ingestion scaling, n = " + std::to_string(n) +
            ", k = " + std::to_string(k));
    std::printf("\n");
  }

  std::printf("   sharded ingestion exact on all rows: %s\n\n", all_ok ? "yes" : "NO");
  Json doc = Json::object();
  doc.set("bench", "f8_shard").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
