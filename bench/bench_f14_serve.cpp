// F14 — continuous query serving (src/serve/). Three sections, one churned
// dynamic stream:
//
//   ingest    — steady-state update throughput through a GraphSession by
//               gutter flush policy (max_halves in {1, 256, 1024, 4096}).
//               The certificate after the full stream is deterministic and
//               gated (m_certificate, copies_used, identical_to_oneshot);
//               updates/sec and wall-clock are reported, never gated.
//   midstream — query at 1/3, 2/3, and end of the stream: each point's
//               certificate must be bit-identical to a one-shot
//               sparsify over the prefix (the pause/flush/recover/resume
//               contract), with the query latency visible per point.
//   latency   — a mixed workload (update batch, then query, repeated):
//               p50/p99 query latency and updates/sec against a live
//               session. The final certificate is gated like the others.
//
//   ./bench_f14_serve [--smoke|--large]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/session.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

using namespace deck;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The pre-facade one-shot pipeline, inlined as the bit-identity reference.
SparsifyResult reference_sparsify(const GraphStream& stream, int k, const SketchOptions& opt) {
  return recover_certificate(k, opt, {}, [&stream](const SketchOptions& aopt) {
    SketchConnectivity sk(stream.num_vertices(), aopt);
    for (const StreamUpdate& u : stream.updates()) sk.update(u.u, u.v, u.insert ? 1 : -1);
    return sk;
  });
}

bool same_result(const SparsifyResult& a, const SparsifyResult& b) {
  if (a.certificate.num_edges() != b.certificate.num_edges() || a.copies_used != b.copies_used ||
      a.attempts != b.attempts || a.forests.size() != b.forests.size())
    return false;
  for (std::size_t f = 0; f < a.forests.size(); ++f) {
    if (a.forests[f].size() != b.forests[f].size()) return false;
    for (std::size_t e = 0; e < a.forests[f].size(); ++e)
      if (a.forests[f][e].u != b.forests[f][e].u || a.forests[f][e].v != b.forests[f][e].v)
        return false;
  }
  return true;
}

GraphStream prefix_stream(const GraphStream& s, std::size_t count) {
  GraphStream out(s.num_vertices());
  std::size_t i = 0;
  for (const StreamUpdate& u : s.updates()) {
    if (i++ >= count) break;
    if (u.insert)
      out.insert(u.u, u.v);
    else
      out.erase(u.u, u.v);
  }
  return out;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = bench::flag(argc, argv, "--large");
  const bool smoke = bench::flag(argc, argv, "--smoke");
  const int n = smoke ? 48 : large ? 256 : 128;
  const int k = 2;

  Rng rng(1400 + n);
  Graph g = random_kec(n, k, 2 * n, rng);
  GraphStream stream = GraphStream::from_graph(g, rng);
  stream.churn(g.num_edges() / 2, rng);

  SketchOptions opt;
  opt.seed = 1401;
  const SparsifyResult oneshot = reference_sparsify(stream, k, opt);

  Table t({"case", "policy", "point", "m_cert", "copies", "identical", "upd/s", "q ms"});
  Json rows = Json::array();
  bool all_ok = true;

  const auto add_row = [&](const std::string& kind, const std::string& policy,
                           const std::string& point, const SparsifyResult& got,
                           const SparsifyResult& want, double updates_per_sec, double query_ms,
                           double p50, double p99) {
    const bool identical = same_result(got, want);
    all_ok = all_ok && identical;
    t.add(kind, policy, point, got.certificate.num_edges(), got.copies_used,
          identical ? "yes" : "NO", updates_per_sec, query_ms);
    Json row = Json::object();
    row.set("case", kind)
        .set("policy", policy)
        .set("point", point)
        .set("n", n)
        .set("k", k)
        .set("m_certificate", got.certificate.num_edges())
        .set("copies_used", got.copies_used)
        .set("identical_to_oneshot", identical)
        .set("updates_per_sec", updates_per_sec)
        .set("query_ms", query_ms)
        .set("p50_query_ms", p50)
        .set("p99_query_ms", p99);
    rows.push(std::move(row));
  };

  // ingest: throughput by flush policy, certificate gated at the end.
  for (const std::size_t max_halves : {std::size_t{1}, std::size_t{256}, std::size_t{1024},
                                       std::size_t{4096}}) {
    IngestOptions io;
    io.sketch = opt;
    io.gutter.policy.max_halves = max_halves;
    GraphSession session(n, k, io);
    const double t0 = now_ms();
    for (const StreamUpdate& u : stream.updates()) session.apply(u);
    session.flush();
    const double ingest_ms = now_ms() - t0;
    const double t1 = now_ms();
    const SparsifyResult got = session.query();
    const double query_ms = now_ms() - t1;
    const double ups = ingest_ms > 0 ? 1000.0 * static_cast<double>(stream.size()) / ingest_ms
                                     : 0;
    add_row("ingest", "h" + std::to_string(max_halves), "end", got, oneshot, ups, query_ms, 0, 0);
    session.close();
  }

  // midstream: the pause/flush/recover/resume contract at three points.
  {
    IngestOptions io;
    io.sketch = opt;
    io.gutter.policy.max_halves = 1024;
    GraphSession session(n, k, io);
    const std::vector<std::pair<std::string, std::size_t>> points = {
        {"third", stream.size() / 3},
        {"twothirds", 2 * stream.size() / 3},
        {"end", stream.size()},
    };
    std::size_t fed = 0;
    for (const auto& [label, point] : points) {
      while (fed < point) session.apply(stream.updates()[fed++]);
      const double t0 = now_ms();
      const SparsifyResult got = session.query();
      const double query_ms = now_ms() - t0;
      add_row("midstream", "h1024", label, got, reference_sparsify(prefix_stream(stream, point), k, opt),
              0, query_ms, 0, 0);
    }
    session.close();
  }

  // latency: mixed update/query workload, p50/p99 over the query stream.
  {
    IngestOptions io;
    io.sketch = opt;
    io.gutter.policy.max_halves = 1024;
    GraphSession session(n, k, io);
    const std::size_t batches = smoke ? 8 : large ? 64 : 24;
    const std::size_t batch = stream.size() / batches;
    std::vector<double> query_ms;
    std::size_t fed = 0;
    const double t0 = now_ms();
    double in_query = 0;
    SparsifyResult last;
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t until = b + 1 == batches ? stream.size() : (b + 1) * batch;
      while (fed < until) session.apply(stream.updates()[fed++]);
      const double q0 = now_ms();
      last = session.query();
      const double q = now_ms() - q0;
      in_query += q;
      query_ms.push_back(q);
    }
    const double total_ms = now_ms() - t0;
    const double ingest_ms = total_ms - in_query;
    const double ups = ingest_ms > 0 ? 1000.0 * static_cast<double>(stream.size()) / ingest_ms
                                     : 0;
    add_row("latency", "h1024", "mixed", last, oneshot, ups, 0, percentile(query_ms, 0.50),
            percentile(query_ms, 0.99));
    session.close();
  }

  t.print("F14: continuous serving, churned k=" + std::to_string(k) + " stream (" +
          std::to_string(stream.size()) + " updates) over n=" + std::to_string(n));
  std::printf(
      "   every row's certificate must be bit-identical to the one-shot pipeline at that "
      "point; throughput and latency are reported, never gated\n");

  Json doc = Json::object();
  doc.set("bench", "f14_serve").set("all_ok", all_ok).set("rows", std::move(rows));
  bench::print_json(doc);
  return all_ok ? 0 : 1;
}
