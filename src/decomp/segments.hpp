#pragma once

// Tree decomposition into segments and the skeleton tree (paper §3.2).
//
// Input: the rooted MST T, its stage-1 fragments and the global edges
// (MST edges between fragments) from mst/distributed_mst.
//
// Construction (simulated with exact round charges):
//  (II)  Marking — endpoints of global edges and the root are marked; each
//        fragment closes its marked set under LCA with one leaf-to-root
//        scan (Lemma 3.4: O(sqrt n) marked vertices, LCA-closed, every
//        vertex has a marked ancestor within the fragment height).
//  (III) Segments — for each marked d != r the tree path to its nearest
//        marked proper ancestor r_S is the highway of segment (r_S, d);
//        hanging subtrees attach to the segment of their highway vertex, or
//        to a (v, v) segment under a marked vertex with no marked
//        descendants. Segments are edge-disjoint; only r_S and d_S touch
//        other segments.
//  (IV)  Knowledge (Claims 3.1/3.2) — every vertex learns its segment id,
//        its path to r_S, the full highway of its segment, and the complete
//        skeleton tree; per-segment aggregates can be shared globally in
//        O(D + sqrt n) rounds.
//
// The struct exposes the per-vertex knowledge plus *local* skeleton-tree
// helpers (legitimate: the whole skeleton is broadcast to every vertex).

#include <optional>
#include <vector>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

struct Segment {
  VertexId r = kNoVertex;                 // root (ancestor) r_S
  VertexId d = kNoVertex;                 // unique descendant d_S (== r for hanging segments)
  std::vector<EdgeId> highway;            // tree edges r_S..d_S, ordered from r_S down
  std::vector<VertexId> highway_vertices; // r_S, ..., d_S (size = highway.size() + 1)
};

class SegmentDecomposition {
 public:
  /// Builds the decomposition over `tree` (the MST) and charges the
  /// simulated construction rounds to `net`. `fragment` and `global_edges`
  /// come from MstResult; `bfs_forest`/`bfs_root` drive global pipelines.
  SegmentDecomposition(Network& net, const RootedTree& tree, const std::vector<int>& fragment,
                       const std::vector<EdgeId>& global_edges, const CommForest& bfs_forest,
                       VertexId bfs_root);

  const RootedTree& tree() const { return *tree_; }
  int num_segments() const { return static_cast<int>(segments_.size()); }
  const Segment& segment(int s) const { return segments_[static_cast<std::size_t>(s)]; }
  const std::vector<Segment>& segments() const { return segments_; }

  bool is_marked(VertexId v) const { return marked_[static_cast<std::size_t>(v)] != 0; }
  const std::vector<VertexId>& marked_vertices() const { return marked_list_; }

  /// Member segment of v (-1 for the global root). For marked v this is the
  /// segment in which v = d_S.
  int seg_of_vertex(VertexId v) const { return seg_of_vertex_[static_cast<std::size_t>(v)]; }
  /// Segment of a tree edge (-1 for non-tree edges).
  int seg_of_edge(EdgeId e) const { return seg_of_edge_[static_cast<std::size_t>(e)]; }
  /// Distance from v to its segment root along the tree.
  int seg_depth(VertexId v) const { return seg_depth_[static_cast<std::size_t>(v)]; }
  /// True iff v lies on its member segment's highway.
  bool on_highway(VertexId v) const { return on_highway_[static_cast<std::size_t>(v)] != 0; }
  /// Index into segment(s).highway_vertices of v's attachment point
  /// (LCA(v, d_S)); for highway vertices this is v's own position.
  int attach_pos(VertexId v) const { return attach_pos_[static_cast<std::size_t>(v)]; }

  /// v's tree path to its segment root: edge ids (deepest first) and the
  /// chain of upper endpoints [p(v), ..., r_S]. Knowledge per Claim 3.1.
  const std::vector<EdgeId>& anc_path_edges(VertexId v) const {
    return anc_edges_[static_cast<std::size_t>(v)];
  }
  const std::vector<VertexId>& anc_path_vertices(VertexId v) const {
    return anc_verts_[static_cast<std::size_t>(v)];
  }

  /// Communication forest over segments (parent = tree parent, depth =
  /// segment depth) used by the pipelined engines.
  const CommForest& seg_forest() const { return seg_forest_; }

  // --- Skeleton tree (global knowledge at every vertex) -------------------

  /// Skeleton parent of a marked vertex (kNoVertex at the root).
  VertexId skeleton_parent(VertexId marked) const {
    return skel_parent_[static_cast<std::size_t>(marked)];
  }
  /// Member segment index of marked v != root, i.e. the skeleton edge
  /// (v -> skeleton_parent(v)).
  int skeleton_edge_segment(VertexId marked) const {
    return seg_of_vertex(marked);
  }
  /// True iff marked vertex a is a (weak) skeleton ancestor of marked b.
  bool skeleton_is_ancestor(VertexId a, VertexId b) const;
  /// Segment indices whose highways compose the tree path between marked
  /// vertices a and b (skeleton path, both directions merged at the LCA).
  std::vector<int> skeleton_path_segments(VertexId a, VertexId b) const;
  /// Skeleton LCA of two marked vertices.
  VertexId skeleton_lca(VertexId a, VertexId b) const;

  // --- Lemma 3.4 / structural stats (used by tests & T4) ------------------

  int max_segment_diameter() const { return max_segment_diameter_; }
  int num_marked() const { return static_cast<int>(marked_list_.size()); }

 private:
  const RootedTree* tree_;
  std::vector<char> marked_;
  std::vector<VertexId> marked_list_;
  std::vector<Segment> segments_;
  std::vector<int> seg_of_vertex_;
  std::vector<int> seg_of_edge_;
  std::vector<int> seg_depth_;
  std::vector<char> on_highway_;
  std::vector<int> attach_pos_;
  std::vector<std::vector<EdgeId>> anc_edges_;
  std::vector<std::vector<VertexId>> anc_verts_;
  CommForest seg_forest_;
  std::vector<VertexId> skel_parent_;
  std::vector<int> skel_depth_;
  int max_segment_diameter_ = 0;
};

/// Per-segment list delivery: every member of segment s receives list[s]
/// (pipelined within each segment in parallel; segments are edge-disjoint so
/// channels never conflict). Charges max(list + height) rounds. Returns the
/// per-vertex received list (the member segment's list).
std::vector<std::vector<KeyedItem>> segment_broadcast(
    Network& net, const SegmentDecomposition& dec,
    const std::vector<std::vector<KeyedItem>>& per_segment_list);

/// Per-segment aggregate: combines per-vertex values within each segment
/// (hanging subtrees fold into their attachment; the highway folds to r_S).
/// Returns one value per segment, conceptually delivered at each segment
/// root. Charges max segment height rounds.
std::vector<std::uint64_t> segment_aggregate(Network& net, const SegmentDecomposition& dec,
                                             const std::vector<std::uint64_t>& value, CombineOp op,
                                             std::uint64_t identity);

}  // namespace deck
