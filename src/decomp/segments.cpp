#include "decomp/segments.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace deck {

SegmentDecomposition::SegmentDecomposition(Network& net, const RootedTree& tree,
                                           const std::vector<int>& fragment,
                                           const std::vector<EdgeId>& global_edges,
                                           const CommForest& bfs_forest, VertexId bfs_root)
    : tree_(&tree) {
  const int n = tree.num_vertices();
  const Graph& g = net.graph();
  DECK_CHECK(static_cast<int>(fragment.size()) == n);
  DECK_CHECK(!tree.roots().empty());
  const VertexId root = tree.roots()[0];

  net.begin_phase("decomp.mark");

  // --- (II) Marking: global-edge endpoints + root, then per-fragment LCA
  // closure via one leaf-to-root scan.
  marked_.assign(static_cast<std::size_t>(n), 0);
  marked_[static_cast<std::size_t>(root)] = 1;
  for (EdgeId e : global_edges) {
    marked_[static_cast<std::size_t>(g.edge(e).u)] = 1;
    marked_[static_cast<std::size_t>(g.edge(e).v)] = 1;
  }

  {
    constexpr VertexId kNone = -2;
    std::vector<VertexId> carried(static_cast<std::size_t>(n), kNone);
    const auto pre = tree.preorder();
    for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
      const VertexId v = *it;
      int ids = 0;
      VertexId one = kNone;
      for (VertexId c : tree.children(v)) {
        if (fragment[static_cast<std::size_t>(c)] != fragment[static_cast<std::size_t>(v)])
          continue;
        if (carried[static_cast<std::size_t>(c)] != kNone) {
          ++ids;
          one = carried[static_cast<std::size_t>(c)];
        }
      }
      if (marked_[static_cast<std::size_t>(v)]) {
        carried[static_cast<std::size_t>(v)] = v;
      } else if (ids >= 2) {
        marked_[static_cast<std::size_t>(v)] = 1;  // LCA of two marked vertices
        carried[static_cast<std::size_t>(v)] = v;
      } else if (ids == 1) {
        carried[static_cast<std::size_t>(v)] = one;
      }
    }
    // Charge: one leaf-to-root scan per fragment, in parallel.
    std::vector<int> frag_min_depth, frag_max_depth;
    int frag_count = 0;
    for (int f : fragment) frag_count = std::max(frag_count, f + 1);
    frag_min_depth.assign(static_cast<std::size_t>(frag_count), n);
    frag_max_depth.assign(static_cast<std::size_t>(frag_count), 0);
    for (VertexId v = 0; v < n; ++v) {
      auto& mn = frag_min_depth[static_cast<std::size_t>(fragment[static_cast<std::size_t>(v)])];
      auto& mx = frag_max_depth[static_cast<std::size_t>(fragment[static_cast<std::size_t>(v)])];
      mn = std::min(mn, tree.depth(v));
      mx = std::max(mx, tree.depth(v));
    }
    int max_frag_height = 0;
    for (int f = 0; f < frag_count; ++f)
      max_frag_height =
          std::max(max_frag_height, frag_max_depth[static_cast<std::size_t>(f)] -
                                        frag_min_depth[static_cast<std::size_t>(f)]);
    net.charge(static_cast<std::uint64_t>(max_frag_height) + 1, static_cast<std::uint64_t>(n));
  }

  marked_list_.clear();
  for (VertexId v = 0; v < n; ++v)
    if (marked_[static_cast<std::size_t>(v)]) marked_list_.push_back(v);

  // --- (III) Segments.
  net.begin_phase("decomp.segments");
  seg_of_vertex_.assign(static_cast<std::size_t>(n), -1);
  seg_of_edge_.assign(static_cast<std::size_t>(g.num_edges()), -1);
  seg_depth_.assign(static_cast<std::size_t>(n), 0);
  on_highway_.assign(static_cast<std::size_t>(n), 0);
  attach_pos_.assign(static_cast<std::size_t>(n), 0);

  // Highway segments: every marked d != root walks up to its nearest marked
  // proper ancestor. Highways are edge-disjoint, so the simultaneous
  // up-scans cost max |highway| rounds.
  std::uint64_t highway_edges_total = 0;
  std::size_t max_highway = 0;
  for (VertexId d : marked_list_) {
    if (d == root) continue;
    Segment s;
    s.d = d;
    std::vector<EdgeId> up_edges;
    std::vector<VertexId> up_verts{d};
    VertexId x = d;
    for (;;) {
      up_edges.push_back(tree.parent_edge(x));
      x = tree.parent(x);
      DECK_CHECK(x != kNoVertex);
      up_verts.push_back(x);
      if (marked_[static_cast<std::size_t>(x)]) break;
    }
    s.r = x;
    std::reverse(up_edges.begin(), up_edges.end());
    std::reverse(up_verts.begin(), up_verts.end());
    s.highway = std::move(up_edges);
    s.highway_vertices = std::move(up_verts);
    const int idx = static_cast<int>(segments_.size());
    for (std::size_t i = 0; i < s.highway.size(); ++i)
      seg_of_edge_[static_cast<std::size_t>(s.highway[i])] = idx;
    for (std::size_t i = 1; i < s.highway_vertices.size(); ++i) {
      const VertexId hv = s.highway_vertices[i];
      seg_of_vertex_[static_cast<std::size_t>(hv)] = idx;
      seg_depth_[static_cast<std::size_t>(hv)] = static_cast<int>(i);
      on_highway_[static_cast<std::size_t>(hv)] = 1;
      attach_pos_[static_cast<std::size_t>(hv)] = static_cast<int>(i);
      if (i + 1 < s.highway_vertices.size())
        DECK_CHECK_MSG(!marked_[static_cast<std::size_t>(hv)], "highway interior must be unmarked");
    }
    max_highway = std::max(max_highway, s.highway.size());
    highway_edges_total += s.highway.size();
    segments_.push_back(std::move(s));
  }
  on_highway_[static_cast<std::size_t>(root)] = 1;  // root acts as a highway endpoint
  net.charge(static_cast<std::uint64_t>(max_highway) + 1, highway_edges_total);

  // Hanging subtrees: preorder pass assigning segments top-down. A marked
  // vertex with hanging children reuses a segment rooted at it if one
  // exists, else opens a (v, v) segment.
  std::map<VertexId, int> root_segment;  // marked vertex -> reusable segment index
  for (int i = 0; i < static_cast<int>(segments_.size()); ++i) {
    auto it = root_segment.find(segments_[static_cast<std::size_t>(i)].r);
    if (it == root_segment.end()) root_segment[segments_[static_cast<std::size_t>(i)].r] = i;
  }
  for (VertexId v : tree.preorder()) {
    if (v == root || marked_[static_cast<std::size_t>(v)] ||
        on_highway_[static_cast<std::size_t>(v)])
      continue;
    if (seg_of_vertex_[static_cast<std::size_t>(v)] != -1) continue;  // highway interior handled
    const VertexId p = tree.parent(v);
    int seg;
    if (marked_[static_cast<std::size_t>(p)]) {
      auto it = root_segment.find(p);
      if (it == root_segment.end()) {
        Segment s;
        s.r = p;
        s.d = p;
        s.highway_vertices = {p};
        seg = static_cast<int>(segments_.size());
        segments_.push_back(std::move(s));
        root_segment[p] = seg;
      } else {
        seg = it->second;
      }
      seg_depth_[static_cast<std::size_t>(v)] = 1;
      attach_pos_[static_cast<std::size_t>(v)] = 0;  // attaches at r_S
    } else {
      seg = seg_of_vertex_[static_cast<std::size_t>(p)];
      DECK_CHECK(seg != -1);
      seg_depth_[static_cast<std::size_t>(v)] = seg_depth_[static_cast<std::size_t>(p)] + 1;
      // Highway parents attach at themselves; hanging parents pass theirs on.
      attach_pos_[static_cast<std::size_t>(v)] = attach_pos_[static_cast<std::size_t>(p)];
    }
    seg_of_vertex_[static_cast<std::size_t>(v)] = seg;
    seg_of_edge_[static_cast<std::size_t>(tree.parent_edge(v))] = seg;
  }
  // Hanging-edge segments for edges below marked vertices were set above;
  // highway edge segments already set. Every tree edge must have a segment.
  for (VertexId v = 0; v < n; ++v) {
    if (v == root) continue;
    const EdgeId pe = tree.parent_edge(v);
    DECK_CHECK(pe != kNoEdge);
    DECK_CHECK_MSG(seg_of_edge_[static_cast<std::size_t>(pe)] != -1, "unassigned tree edge");
  }
  // Segment-id broadcast down the segments (r_S announces (r_S, d_S)).
  {
    int max_h = 0;
    for (VertexId v = 0; v < n; ++v)
      max_h = std::max(max_h, seg_depth_[static_cast<std::size_t>(v)]);
    net.charge(static_cast<std::uint64_t>(max_h) + 1, static_cast<std::uint64_t>(n));
  }

  // --- Communication forest over segments.
  seg_forest_.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  seg_forest_.depth.assign(static_cast<std::size_t>(n), 0);
  seg_forest_.children.assign(static_cast<std::size_t>(n), {});
  for (VertexId v = 0; v < n; ++v) {
    seg_forest_.parent[static_cast<std::size_t>(v)] = tree.parent(v);
    seg_forest_.depth[static_cast<std::size_t>(v)] = seg_depth_[static_cast<std::size_t>(v)];
    for (VertexId c : tree.children(v))
      seg_forest_.children[static_cast<std::size_t>(v)].push_back(c);
  }

  // --- (IV) Knowledge: ancestor paths (Claim 3.1) via path downcast.
  net.begin_phase("decomp.knowledge");
  {
    std::vector<KeyedItem> own(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      if (v == root) continue;
      own[static_cast<std::size_t>(v)] = KeyedItem{static_cast<std::uint64_t>(tree.parent_edge(v)),
                                                   static_cast<std::uint64_t>(v), 0};
    }
    auto received = path_downcast(net, seg_forest_, own);
    anc_edges_.assign(static_cast<std::size_t>(n), {});
    anc_verts_.assign(static_cast<std::size_t>(n), {});
    for (VertexId v = 0; v < n; ++v) {
      if (v == root) continue;
      anc_edges_[static_cast<std::size_t>(v)].push_back(tree.parent_edge(v));
      anc_verts_[static_cast<std::size_t>(v)].push_back(tree.parent(v));
      for (const KeyedItem& it : received[static_cast<std::size_t>(v)]) {
        anc_edges_[static_cast<std::size_t>(v)].push_back(static_cast<EdgeId>(it.key));
        anc_verts_[static_cast<std::size_t>(v)].push_back(
            tree.parent(static_cast<VertexId>(it.prio)));
      }
      DECK_CHECK(static_cast<int>(anc_edges_[static_cast<std::size_t>(v)].size()) ==
                 seg_depth_[static_cast<std::size_t>(v)]);
    }
  }

  // Highway knowledge: every member learns its segment's full highway
  // (segment_broadcast charges the rounds).
  {
    std::vector<std::vector<KeyedItem>> lists(segments_.size());
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      for (std::size_t i = 0; i < segments_[s].highway.size(); ++i) {
        lists[s].push_back(KeyedItem{static_cast<std::uint64_t>(i),
                                     static_cast<std::uint64_t>(segments_[s].highway[i]), 0});
      }
    }
    segment_broadcast(net, *this, lists);
  }

  // Skeleton tree: each segment id (r_S, d_S) is shared globally via the
  // BFS-tree pipeline (keyed upcast + pipelined broadcast, O(D + #segments)).
  {
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const Segment& seg = segments_[s];
      items[static_cast<std::size_t>(seg.d)].push_back(
          KeyedItem{static_cast<std::uint64_t>(s), static_cast<std::uint64_t>(seg.r),
                    static_cast<std::uint64_t>(seg.d)});
    }
    auto fin = keyed_min_upcast(net, bfs_forest, std::move(items));
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(bfs_root)] = fin[static_cast<std::size_t>(bfs_root)];
    pipelined_broadcast(net, bfs_forest, std::move(root_items));
  }

  skel_parent_.assign(static_cast<std::size_t>(n), kNoVertex);
  skel_depth_.assign(static_cast<std::size_t>(n), 0);
  for (VertexId v : marked_list_) {
    if (v == root) continue;
    const int s = seg_of_vertex_[static_cast<std::size_t>(v)];
    DECK_CHECK(s != -1 && segments_[static_cast<std::size_t>(s)].d == v);
    skel_parent_[static_cast<std::size_t>(v)] = segments_[static_cast<std::size_t>(s)].r;
  }
  // Skeleton depths by repeated parent walks (skeleton is O(sqrt n) deep in
  // the worst case; this is local computation).
  for (VertexId v : marked_list_) {
    int d = 0;
    VertexId x = v;
    while (skel_parent_[static_cast<std::size_t>(x)] != kNoVertex) {
      x = skel_parent_[static_cast<std::size_t>(x)];
      ++d;
    }
    skel_depth_[static_cast<std::size_t>(v)] = d;
  }

  // Stats.
  for (VertexId v = 0; v < n; ++v)
    max_segment_diameter_ =
        std::max(max_segment_diameter_, seg_depth_[static_cast<std::size_t>(v)]);
}

bool SegmentDecomposition::skeleton_is_ancestor(VertexId a, VertexId b) const {
  VertexId x = b;
  for (;;) {
    if (x == a) return true;
    const VertexId p = skel_parent_[static_cast<std::size_t>(x)];
    if (p == kNoVertex) return false;
    x = p;
  }
}

VertexId SegmentDecomposition::skeleton_lca(VertexId a, VertexId b) const {
  int da = skel_depth_[static_cast<std::size_t>(a)];
  int db = skel_depth_[static_cast<std::size_t>(b)];
  while (da > db) {
    a = skel_parent_[static_cast<std::size_t>(a)];
    --da;
  }
  while (db > da) {
    b = skel_parent_[static_cast<std::size_t>(b)];
    --db;
  }
  while (a != b) {
    a = skel_parent_[static_cast<std::size_t>(a)];
    b = skel_parent_[static_cast<std::size_t>(b)];
  }
  return a;
}

std::vector<int> SegmentDecomposition::skeleton_path_segments(VertexId a, VertexId b) const {
  const VertexId l = skeleton_lca(a, b);
  std::vector<int> out;
  for (VertexId x = a; x != l; x = skel_parent_[static_cast<std::size_t>(x)])
    out.push_back(seg_of_vertex_[static_cast<std::size_t>(x)]);
  for (VertexId x = b; x != l; x = skel_parent_[static_cast<std::size_t>(x)])
    out.push_back(seg_of_vertex_[static_cast<std::size_t>(x)]);
  return out;
}

std::vector<std::vector<KeyedItem>> segment_broadcast(
    Network& net, const SegmentDecomposition& dec,
    const std::vector<std::vector<KeyedItem>>& per_segment_list) {
  const int n = dec.tree().num_vertices();
  DECK_CHECK(static_cast<int>(per_segment_list.size()) == dec.num_segments());
  std::vector<std::vector<KeyedItem>> out(static_cast<std::size_t>(n));
  std::uint64_t rounds = 0, messages = 0;
  // Segments are edge-disjoint: deliveries pipeline independently. A member
  // at segment depth d receives the L items by round d + L.
  for (VertexId v = 0; v < n; ++v) {
    const int s = dec.seg_of_vertex(v);
    if (s < 0) continue;
    out[static_cast<std::size_t>(v)] = per_segment_list[static_cast<std::size_t>(s)];
    const auto len =
        static_cast<std::uint64_t>(per_segment_list[static_cast<std::size_t>(s)].size());
    if (len == 0) continue;
    rounds = std::max(rounds, static_cast<std::uint64_t>(dec.seg_depth(v)) + len);
    messages += len;
  }
  net.charge(rounds, messages);
  return out;
}

std::vector<std::uint64_t> segment_aggregate(Network& net, const SegmentDecomposition& dec,
                                             const std::vector<std::uint64_t>& value, CombineOp op,
                                             std::uint64_t identity) {
  const int n = dec.tree().num_vertices();
  DECK_CHECK(static_cast<int>(value.size()) == n);
  std::vector<std::uint64_t> acc(static_cast<std::size_t>(dec.num_segments()), identity);
  std::uint64_t max_h = 0, messages = 0;
  for (VertexId v = 0; v < n; ++v) {
    const int s = dec.seg_of_vertex(v);
    if (s < 0) continue;
    acc[static_cast<std::size_t>(s)] =
        apply_combine(op, acc[static_cast<std::size_t>(s)], value[static_cast<std::size_t>(v)]);
    max_h = std::max(max_h, static_cast<std::uint64_t>(dec.seg_depth(v)));
    ++messages;
  }
  net.charge(max_h + 1, messages);
  return acc;
}

}  // namespace deck
