#pragma once

// Lightweight runtime-contract macros used across the library.
//
// DECK_CHECK is always on (it guards algorithmic invariants whose violation
// would silently corrupt results); DECK_ASSERT compiles out in NDEBUG builds
// and is used for hot-path sanity checks.

#include <sstream>
#include <stdexcept>
#include <string>

namespace deck::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "DECK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace deck::detail

#define DECK_CHECK(expr)                                                        \
  do {                                                                          \
    if (!(expr)) ::deck::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define DECK_CHECK_MSG(expr, msg)                                               \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream deck_os_;                                              \
      deck_os_ << msg;                                                          \
      ::deck::detail::check_failed(#expr, __FILE__, __LINE__, deck_os_.str());  \
    }                                                                           \
  } while (0)

#ifdef NDEBUG
#define DECK_ASSERT(expr) ((void)0)
#else
#define DECK_ASSERT(expr) DECK_CHECK(expr)
#endif
