#pragma once

// Deterministic, seedable random number generation.
//
// All randomized algorithms in the library draw from deck::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded via SplitMix64 (public-domain constructions).

#include <cstdint>
#include <limits>
#include <vector>

namespace deck {

/// SplitMix64 step; also used standalone as a mixing/hash function.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mixer (Stafford variant 13). Used to derive per-edge,
/// per-iteration pseudo-random values from a shared seed.
std::uint64_t mix64(std::uint64_t x);

/// The `index`-th output of the SplitMix64 stream seeded at `base`, computed
/// in O(1) (SplitMix steps its state by a fixed increment, so the stream is
/// random-access). This is the canonical way to derive families of
/// independent seeds — per sketch copy, per shard, per experiment arm — from
/// one base seed: unlike `base + f(index)` arithmetic, nearby bases and
/// indices yield uncorrelated children, and every consumer (any thread, any
/// process) that knows (base, index) derives the same seed with no shared
/// RNG state to race on.
std::uint64_t split_seed(std::uint64_t base, std::uint64_t index);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()();

  /// Uniform integer in [0, bound) (bound > 0), unbiased via rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel experiment arms).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace deck
