#pragma once

// Minimal JSON document builder for machine-readable benchmark output.
//
// Benches historically print deck::Table blocks for humans; experiment
// harnesses that diff runs want JSON. Json is a small ordered value type
// (null/bool/number/string/array/object — insertion order preserved so
// output is deterministic) with a dump() that emits standard JSON. It only
// builds and serializes; parsing is out of scope.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace deck {

class Json {
 public:
  Json() = default;  // null
  Json(bool b);
  Json(int v);
  Json(std::int64_t v);
  Json(std::uint64_t v);
  Json(double v);
  Json(const char* s);
  Json(std::string s);

  static Json object();
  static Json array();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Sets key in an object (must be object); returns *this for chaining.
  Json& set(const std::string& key, Json value);

  /// Appends to an array (must be array); returns *this for chaining.
  Json& push(Json value);

  std::size_t size() const;

  /// Serializes; indent < 0 gives compact one-line output, otherwise
  /// pretty-printed with `indent` spaces per level.
  std::string dump(int indent = -1) const;

 private:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace deck
