#include "support/rng.hpp"

#include "support/check.hpp"

namespace deck {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t split_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 state after `index` steps is base + index·golden; one more
  // step emits the index-th output.
  std::uint64_t state = base + index * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DECK_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  DECK_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return span == 0 ? static_cast<std::int64_t>((*this)())
                   : lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace deck
