#include "support/thread_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace deck {

ThreadPool::ThreadPool(int threads) {
  DECK_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  DECK_CHECK(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    DECK_CHECK_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace deck
