#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace deck {

ThreadPool::ThreadPool(int threads) {
  DECK_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  DECK_CHECK(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    DECK_CHECK_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::for_range(std::size_t items,
                           const std::function<void(std::size_t, std::size_t)>& body) {
  DECK_CHECK(body != nullptr);
  if (items == 0) return;
  const auto workers = static_cast<std::size_t>(size());
  // ~4 chunks per worker: enough slack that one slow chunk (a huge supernode,
  // a dense vertex) doesn't serialize the whole batch behind it.
  const std::size_t chunks = std::min(items, workers == 1 ? 1 : workers * 4);
  if (chunks <= 1) {
    body(0, items);
    return;
  }
  const std::size_t stride = (items + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < items; begin += stride) {
    const std::size_t end = std::min(items, begin + stride);
    submit([&body, begin, end] { body(begin, end); });
  }
  wait();
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace deck
