#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace deck {

Json::Json(bool b) : kind_(Kind::kBool), bool_(b) {}
Json::Json(int v) : kind_(Kind::kInt), int_(v) {}
Json::Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
Json::Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
Json::Json(double v) : kind_(Kind::kDouble), double_(v) {}
Json::Json(const char* s) : kind_(Kind::kString), string_(s) {}
Json::Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  DECK_CHECK_MSG(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  DECK_CHECK_MSG(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        write_escaped(out, members_[i].first);
        out += colon;
        members_[i].second.write(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace deck
