#pragma once

// Minimal fixed-size worker pool for the library's fan-out/join workloads
// (sharded sketch ingestion, bench sweeps).
//
// The pool favors predictability over features: a fixed number of worker
// threads drain a FIFO of jobs, wait() blocks until every submitted job has
// finished, and the first exception a job throws is captured and rethrown
// from wait() — DECK_CHECK failures inside a worker surface on the caller,
// never std::terminate. Jobs must synchronize among themselves (the sharding
// layer gives each job a private sketch bank precisely so they don't have
// to).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deck {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);

  /// Drains remaining jobs' claims, joins the workers. Pending exceptions
  /// not collected via wait() are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including workers.
  void submit(std::function<void()> job);

  /// Blocks until every job submitted so far has completed, then rethrows
  /// the first exception any of them raised (if any).
  void wait();

  /// Fan-out/join over an index range: splits [0, items) into contiguous
  /// chunks (several per worker, so uneven chunks still balance), runs
  /// body(begin, end) for each on the pool, and wait()s. Runs body(0, items)
  /// inline when the pool has a single worker or the range is tiny — the
  /// caller's loop body must therefore be safe to run on the calling thread.
  void for_range(std::size_t items, const std::function<void(std::size_t, std::size_t)>& body);

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: job queued / shutdown
  std::condition_variable idle_cv_;  // signals wait(): everything drained
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deck
