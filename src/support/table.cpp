#include "support/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace deck {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  DECK_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::string(width[c] - row[c].size(), ' ') << row[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

void Table::print(const std::string& title) const { std::cout << to_string(title) << std::flush; }

}  // namespace deck
