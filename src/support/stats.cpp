#include "support/stats.hpp"

#include <cmath>

namespace deck {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0;
  for (double x : xs) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

}  // namespace deck
