#pragma once

// Plain-text table formatting for benchmark/experiment output.
//
// Benches print tables in a uniform format so EXPERIMENTS.md can quote them
// verbatim. Columns are sized to the widest cell; numeric cells are
// right-aligned.

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace deck {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add a row; the number of cells must match the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  /// Render with a title line and column rules.
  std::string to_string(const std::string& title = "") const;

  /// Print to stdout.
  void print(const std::string& title = "") const;

  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deck
