#pragma once

// Small statistics helpers for experiment summaries (mean / stddev / max,
// and a least-squares slope used to estimate empirical growth exponents).

#include <cstdint>
#include <vector>

namespace deck {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& xs);

/// Least-squares slope of log(y) against log(x): the empirical exponent b in
/// y ~ x^b. Requires positive inputs; pairs with non-positive entries are
/// skipped.
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace deck
