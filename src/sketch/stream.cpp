#include "sketch/stream.hpp"

#include <algorithm>
#include <utility>

namespace deck {

GraphStream::GraphStream(int n) : n_(n) { DECK_CHECK(n >= 0); }

GraphStream GraphStream::from_graph(const Graph& g) {
  GraphStream s(g.num_vertices());
  for (const Edge& e : g.edges()) s.insert(e.u, e.v);
  return s;
}

GraphStream GraphStream::from_graph(const Graph& g, Rng& rng) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[static_cast<std::size_t>(e)] = e;
  rng.shuffle(order);
  GraphStream s(g.num_vertices());
  for (EdgeId e : order) s.insert(g.edge(e).u, g.edge(e).v);
  return s;
}

std::uint64_t GraphStream::key(VertexId u, VertexId v) const {
  const auto [lo, hi] = std::minmax(u, v);
  return encode_edge_index(lo, hi, n_);
}

void GraphStream::check_endpoints(VertexId u, VertexId v) const {
  DECK_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "stream endpoint out of range");
  DECK_CHECK_MSG(u != v, "stream updates must not be self-loops");
}

void GraphStream::insert(VertexId u, VertexId v) {
  check_endpoints(u, v);
  DECK_CHECK_MSG(live_.insert(key(u, v)).second, "inserting an edge that is already live");
  updates_.push_back({u, v, /*insert=*/true});
}

std::span<const StreamUpdate> GraphStream::updates_since(std::size_t cursor) const {
  DECK_CHECK_MSG(cursor <= updates_.size(), "stream cursor beyond the appended updates");
  return std::span<const StreamUpdate>(updates_.data() + cursor, updates_.size() - cursor);
}

void GraphStream::erase(VertexId u, VertexId v) {
  check_endpoints(u, v);
  DECK_CHECK_MSG(live_.erase(key(u, v)) == 1, "deleting an edge that is not live");
  updates_.push_back({u, v, /*insert=*/false});
}

void GraphStream::churn(int pairs, Rng& rng) {
  DECK_CHECK(pairs >= 0);
  if (n_ < 2) return;
  const std::uint64_t all_pairs =
      static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_ - 1) / 2;
  // Random walk over transient edges: at each step either open a fresh
  // non-live edge or close a previously opened one; drain at the end. The
  // rejection sampler needs a free vertex pair, so opening is also gated on
  // the live graph not being complete.
  std::vector<std::pair<VertexId, VertexId>> open;
  int opened = 0;
  while (opened < pairs || !open.empty()) {
    const bool can_open = opened < pairs && live_.size() < all_pairs;
    DECK_CHECK_MSG(can_open || !open.empty(), "churn needs free vertex pairs");
    if (can_open && (open.empty() || rng.next_bool(0.5))) {
      VertexId u = 0, v = 0;
      do {
        u = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n_)));
        v = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n_)));
      } while (u == v || live_.count(key(u, v)) != 0);
      insert(u, v);
      open.emplace_back(u, v);
      ++opened;
    } else {
      const std::size_t pick = static_cast<std::size_t>(rng.next_below(open.size()));
      erase(open[pick].first, open[pick].second);
      open[pick] = open.back();
      open.pop_back();
    }
  }
}

std::vector<SourceBatch> collect_batches(const GraphStream& s, std::size_t batch_size) {
  std::vector<SourceBatch> out;
  apply_batched(s, batch_size, [&out](VertexId src, std::span<const VertexDelta> deltas) {
    out.push_back({src, std::vector<VertexDelta>(deltas.begin(), deltas.end())});
  });
  return out;
}

Graph GraphStream::materialize(Weight w) const {
  Graph g(n_);
  std::unordered_set<std::uint64_t> seen;
  for (const StreamUpdate& u : updates_) {
    if (!u.insert) continue;
    if (live_.count(key(u.u, u.v)) == 0) continue;   // deleted later
    if (!seen.insert(key(u.u, u.v)).second) continue;  // re-inserted after delete
    g.add_edge(u.u, u.v, w);
  }
  return g;
}

}  // namespace deck
