#pragma once

// ApplyBackend — the execution-strategy boundary of the batched ℓ₀ apply
// path (docs/sketch_internals.md).
//
// Every ingest surface (sharded apply, gutter flushes, net ingest workers)
// funnels per-source delta runs through SketchConnectivity::apply_batch;
// this header names *how* a run is applied:
//
//   kScalar — the reference path: per delta, walk every sketch copy and
//             update it bucket-by-bucket (delta-major). Semantically the
//             original per-update code, kept as the bit-identity oracle.
//   kSimd   — the batched path: translate the run once (edge-index
//             encoding, sign orientation), then apply it copy-major — each
//             copy's structure-of-arrays bucket rows stay cache-resident
//             for the whole run, hashes are computed once per delta in
//             vector lanes, and the per-level column passes are branchless
//             masked adds (portable fallback, plus `#ifdef __AVX2__` /
//             `#ifdef __AVX512DQ__` intrinsic kernels when the build
//             enables them — the CMake DECK_SIMD knob, ON by default,
//             compiles the kernel TU with -march=native -O3).
//
// Both backends are deterministic and produce bit-identical banks — down
// to encode_bank() bytes — because a bucket's value is a wrapping sum of
// per-delta contributions and both loop orders apply each copy's
// contributions in run order (see docs/sketch_internals.md for the full
// argument). Backend choice is therefore pure execution policy: it can
// differ per shard, per worker process, or per flush without affecting any
// result.
//
// BatchApplier is the offload-ready form of the boundary, shaped after
// GraphStreamingCC's GPU sketch path (fixed-size update batches in, merged
// bucket deltas out): submit() hands over one per-source batch, finish()
// is the merge barrier after which the bank reflects every submitted
// batch. The CPU backends apply synchronously (finish() is a no-op); an
// asynchronous offload backend would buffer batches, run them device-side,
// and merge bucket deltas back into the host bank by linearity at
// finish() — callers already honor the barrier, so it can slot in without
// touching them.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "sketch/stream.hpp"

namespace deck {

class SketchConnectivity;

/// Execution strategy for SketchConnectivity::apply_batch. All backends
/// yield bit-identical banks; they differ only in speed.
enum class ApplyBackend {
  kScalar = 0,  // delta-major reference loop
  kSimd = 1,    // copy-major batched column passes over SoA bucket rows
};

/// "scalar" / "simd" — stable names for flags, logs, and bench rows.
const char* to_string(ApplyBackend backend);

/// Inverse of to_string(). Throws CheckError on an unknown name.
ApplyBackend parse_apply_backend(std::string_view name);

/// Name of the widest intrinsic kernel the simd backend was compiled with:
/// "avx512", "avx2", or "portable" (the autovectorized masked pass — still
/// batched, still bit-identical, usually still faster than scalar).
const char* simd_apply_kernel();

/// Offload-ready batch boundary over one bank (see the header comment for
/// the GraphStreamingCC-style contract). Deterministic CPU backends apply
/// each submitted batch synchronously; submit() calls for *distinct*
/// source vertices may run concurrently (a batch only touches its source's
/// sketch array — the disjoint-ownership argument of sketch/shard.hpp).
/// finish() must be called (and return) before the bank is read, cloned,
/// or encoded; for the CPU backends it is a no-op barrier.
class BatchApplier {
 public:
  BatchApplier(SketchConnectivity& bank, ApplyBackend backend);
  virtual ~BatchApplier() = default;

  BatchApplier(const BatchApplier&) = delete;
  BatchApplier& operator=(const BatchApplier&) = delete;

  /// Applies (kScalar/kSimd: immediately; offload: eventually) one
  /// per-source batch of directed halves to the bank.
  virtual void submit(VertexId src, std::span<const VertexDelta> deltas);

  /// Merge barrier: after finish() returns, the bank reflects every batch
  /// submitted so far. No-op for the synchronous CPU backends.
  virtual void finish() {}

  ApplyBackend backend() const { return backend_; }

 protected:
  SketchConnectivity& bank_;
  ApplyBackend backend_;
};

/// Factory for the boundary: today always a synchronous CPU applier; the
/// seam where an offload backend would return its own subclass.
std::unique_ptr<BatchApplier> make_batch_applier(SketchConnectivity& bank, ApplyBackend backend);

}  // namespace deck
