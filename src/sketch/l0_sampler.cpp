#include "sketch/l0_sampler.hpp"

#include <bit>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "sketch/apply.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

#if defined(__AVX512F__) && defined(__GNUC__) && !defined(__clang__)
// GCC 12's AVX-512 shift intrinsics expand through an
// _mm512_undefined_epi32() passthrough whose lanes are fully overwritten,
// tripping -Wmaybe-uninitialized under -Werror (GCC PR 105593, fixed in
// GCC 13). TU-local suppression; the kernel never reads undefined lanes.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace deck {

namespace {

/// Stack-scratch bound for update_run's per-delta hash vectors. Wider
/// sketches (SketchConnectivity never builds them — adaptive sizing tops
/// out far below) fall back to the per-delta scalar loop, same results.
constexpr int kMaxRunColumns = 32;

#if defined(__AVX2__)

/// 4-lane wrapping 64×64→64 multiply (AVX2 has no mullo_epi64; AVX512DQ
/// does). Schoolbook on 32-bit halves: lo·lo plus the two cross products
/// shifted up — the high·high term is entirely above bit 64 and drops out
/// of the wrapping result, exactly matching scalar uint64 multiplication.
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, bh), _mm256_mul_epu32(ah, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// 4 lanes of mix64 (support/rng.cpp) — same constants, same wrapping
/// arithmetic, bit-identical lanes.
inline __m256i mix64x4(__m256i x) {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<std::int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<std::int64_t>(0x94d049bb133111ebULL));
  x = mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c1);
  x = mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512DQ__)

/// 8 lanes of mix64 — AVX512DQ has a native wrapping 64×64→64 multiply, so
/// every lane is bit-identical to the scalar function by construction.
inline __m512i mix64x8(__m512i x) {
  const __m512i c1 = _mm512_set1_epi64(static_cast<std::int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m512i c2 = _mm512_set1_epi64(static_cast<std::int64_t>(0x94d049bb133111ebULL));
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), c1);
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), c2);
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

#endif  // __AVX512F__ && __AVX512DQ__

}  // namespace

const char* simd_apply_kernel() {
  // Defined here, not in apply.cpp: the answer must reflect the flags this
  // TU — the one holding the kernel — was compiled with (the CMake
  // DECK_SIMD knob applies -march=native to this source file alone).
#if defined(__AVX512F__) && defined(__AVX512DQ__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "portable";
#endif
}

int L0Sampler::levels_for(std::uint64_t universe) {
  // Level ℓ subsamples coordinates with probability 2^-ℓ; levels up to
  // log2(universe) guarantee some level holds ~1 surviving coordinate
  // whatever the support size. +2 slack absorbs variance at the extremes.
  return std::bit_width(universe) + 2;
}

L0Sampler::L0Sampler(std::uint64_t universe, std::uint64_t seed, int columns)
    : universe_(universe), seed_(seed), columns_(columns) {
  DECK_CHECK(universe >= 1);
  DECK_CHECK(columns >= 1);
  levels_ = levels_for(universe);
  column_salt_.reserve(static_cast<std::size_t>(columns_));
  column_fp_.reserve(static_cast<std::size_t>(columns_));
  std::uint64_t state = seed_;
  for (int c = 0; c < columns_; ++c) {
    column_salt_.push_back(splitmix64(state));
    column_fp_.push_back(splitmix64(state));
  }
  const auto buckets = static_cast<std::size_t>(columns_ * levels_);
  count_.assign(buckets, 0);
  index_sum_.assign(buckets, 0);
  fingerprint_.assign(buckets, 0);
}

std::uint64_t L0Sampler::level_hash(int column, std::uint64_t index) const {
  return mix64(column_salt_[static_cast<std::size_t>(column)] ^ index);
}

std::uint64_t L0Sampler::fingerprint_hash(int column, std::uint64_t index) const {
  return mix64(column_fp_[static_cast<std::size_t>(column)] + index);
}

void L0Sampler::update(std::uint64_t index, int delta) {
  DECK_ASSERT(index < universe_);
  if (delta == 0) return;
  for (int c = 0; c < columns_; ++c) {
    // Coordinate `index` lives in levels 0..z where z counts the trailing
    // zero bits of its level hash — a geometric subsampling cascade.
    const int z = std::countr_zero(level_hash(c, index));
    const int top = z < levels_ - 1 ? z : levels_ - 1;
    const std::uint64_t fp = fingerprint_hash(c, index);
    for (int l = 0; l <= top; ++l) {
      const std::size_t i = slot(c, l);
      count_[i] += delta;
      index_sum_[i] += delta * static_cast<std::int64_t>(index);
      fingerprint_[i] += static_cast<std::uint64_t>(static_cast<std::int64_t>(delta)) * fp;
    }
  }
}

void L0Sampler::update_run(std::span<const RawDelta> run) {
  if (columns_ > kMaxRunColumns) {
    for (const RawDelta& d : run) update(d.index, static_cast<int>(d.delta));
    return;
  }
  const auto cols = static_cast<std::size_t>(columns_);
#if defined(__AVX512F__) && defined(__AVX512DQ__)
  // Whole-sketch-in-one-register kernel: with <= 8 columns a level row is a
  // single k-masked zmm op, so each delta is two mix64x8 hash vectors and
  // one masked load/add/store triple per surviving level. A column
  // participates at level l iff its salt hash has >= l trailing zero bits —
  // (hash & (2^l - 1)) == 0, one vptestnmq per row — and participation is
  // monotone in l, so the row loop stops at the first all-zero mask (the
  // per-column top[] clamp of update() is implied: l never reaches
  // levels_). Masked lanes are never loaded or stored, so nothing past the
  // row's real buckets is touched. Same wrapping adds, same bank bytes.
  if (cols <= 8) {
    const auto colm = static_cast<__mmask8>((1u << cols) - 1);
    const __m512i vsalt = _mm512_mask_loadu_epi64(_mm512_setzero_si512(), colm, column_salt_.data());
    const __m512i vfp = _mm512_mask_loadu_epi64(_mm512_setzero_si512(), colm, column_fp_.data());
    for (const RawDelta& d : run) {
      DECK_ASSERT(d.index < universe_);
      if (d.delta == 0) continue;
      const std::int64_t delta = d.delta;
      const std::int64_t dxi = delta * static_cast<std::int64_t>(d.index);
      const __m512i vidx = _mm512_set1_epi64(static_cast<std::int64_t>(d.index));
      const __m512i vdelta = _mm512_set1_epi64(delta);
      const __m512i vdxi = _mm512_set1_epi64(dxi);
      const __m512i hs = mix64x8(_mm512_xor_si512(vsalt, vidx));
      const __m512i vfpc = _mm512_mullo_epi64(vdelta, mix64x8(_mm512_add_epi64(vfp, vidx)));
      for (int l = 0; l < levels_; ++l) {
        const __m512i lmask = _mm512_set1_epi64(static_cast<std::int64_t>((1ull << l) - 1));
        const __mmask8 m = _mm512_mask_testn_epi64_mask(colm, hs, lmask);
        if (m == 0) break;
        const std::size_t row = static_cast<std::size_t>(l) * cols;
        __m512i v = _mm512_mask_loadu_epi64(_mm512_setzero_si512(), m, count_.data() + row);
        _mm512_mask_storeu_epi64(count_.data() + row, m, _mm512_add_epi64(v, vdelta));
        v = _mm512_mask_loadu_epi64(_mm512_setzero_si512(), m, index_sum_.data() + row);
        _mm512_mask_storeu_epi64(index_sum_.data() + row, m, _mm512_add_epi64(v, vdxi));
        v = _mm512_mask_loadu_epi64(_mm512_setzero_si512(), m, fingerprint_.data() + row);
        _mm512_mask_storeu_epi64(fingerprint_.data() + row, m, _mm512_add_epi64(v, vfpc));
      }
    }
    return;
  }
#endif
  // Per-delta hash vectors: the level cutoff and the (delta-scaled)
  // fingerprint contribution of every column, computed once and broadcast
  // across the row passes below.
  std::int64_t top[kMaxRunColumns];
  std::uint64_t fpc[kMaxRunColumns];
  for (const RawDelta& d : run) {
    DECK_ASSERT(d.index < universe_);
    if (d.delta == 0) continue;
    const std::uint64_t index = d.index;
    const std::int64_t delta = d.delta;
    const std::int64_t dxi = delta * static_cast<std::int64_t>(index);
    std::int64_t max_top = 0;
    std::size_t h = 0;
#if defined(__AVX2__)
    // 4 columns of both hash families per iteration; lanes are
    // bit-identical to the scalar mix64, so top[]/fpc[] come out the same.
    std::uint64_t salt_hash[kMaxRunColumns];
    const __m256i vidx = _mm256_set1_epi64x(static_cast<std::int64_t>(index));
    const __m256i vd = _mm256_set1_epi64x(delta);
    for (; h + 4 <= cols; h += 4) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(column_salt_.data() + h));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(salt_hash + h),
                          mix64x4(_mm256_xor_si256(s, vidx)));
      const __m256i f =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(column_fp_.data() + h));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(fpc + h),
                          mullo64(vd, mix64x4(_mm256_add_epi64(f, vidx))));
    }
    for (std::size_t c = 0; c < h; ++c) {
      const int z = std::countr_zero(salt_hash[c]);
      const std::int64_t t = z < levels_ - 1 ? z : levels_ - 1;
      top[c] = t;
      if (t > max_top) max_top = t;
    }
#endif
    for (std::size_t c = h; c < cols; ++c) {
      const int z = std::countr_zero(mix64(column_salt_[c] ^ index));
      const std::int64_t t = z < levels_ - 1 ? z : levels_ - 1;
      top[c] = t;
      if (t > max_top) max_top = t;
      fpc[c] = static_cast<std::uint64_t>(delta) * mix64(column_fp_[c] + index);
    }
    // Row passes: level l's buckets are contiguous across columns, and a
    // column participates iff top[c] >= l — a branchless mask, so the same
    // adds happen in the same column order as update()'s nested loops,
    // just with explicit +0s for the masked-out columns.
    for (std::int64_t l = 0; l <= max_top; ++l) {
      const std::size_t row = static_cast<std::size_t>(l) * cols;
      std::int64_t* cnt = count_.data() + row;
      std::int64_t* isum = index_sum_.data() + row;
      std::uint64_t* fpr = fingerprint_.data() + row;
      std::size_t c = 0;
#if defined(__AVX2__)
      const __m256i vl = _mm256_set1_epi64x(l - 1);  // top > l-1 ⇔ top >= l
      const __m256i vdelta = _mm256_set1_epi64x(delta);
      const __m256i vdxi = _mm256_set1_epi64x(dxi);
      for (; c + 4 <= cols; c += 4) {
        const __m256i vtop = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(top + c));
        const __m256i mask = _mm256_cmpgt_epi64(vtop, vl);
        __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cnt + c));
        v = _mm256_add_epi64(v, _mm256_and_si256(mask, vdelta));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cnt + c), v);
        v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(isum + c));
        v = _mm256_add_epi64(v, _mm256_and_si256(mask, vdxi));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(isum + c), v);
        const __m256i vfpc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fpc + c));
        v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fpr + c));
        v = _mm256_add_epi64(v, _mm256_and_si256(mask, vfpc));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fpr + c), v);
      }
#endif
      for (; c < cols; ++c) {
        const std::uint64_t keep = top[c] >= l ? ~0ull : 0ull;
        cnt[c] += static_cast<std::int64_t>(keep & static_cast<std::uint64_t>(delta));
        isum[c] += static_cast<std::int64_t>(keep & static_cast<std::uint64_t>(dxi));
        fpr[c] += keep & fpc[c];
      }
    }
  }
}

bool L0Sampler::compatible(const L0Sampler& other) const {
  return universe_ == other.universe_ && seed_ == other.seed_ && columns_ == other.columns_;
}

void L0Sampler::merge(const L0Sampler& other) {
  DECK_CHECK_MSG(compatible(other), "merging incompatible ℓ₀ sketches");
  // Per-field loops over the flat arrays — trivially autovectorized, and
  // the hot inner step of supernode aggregation during recovery.
  for (std::size_t i = 0; i < count_.size(); ++i) count_[i] += other.count_[i];
  for (std::size_t i = 0; i < index_sum_.size(); ++i) index_sum_[i] += other.index_sum_[i];
  for (std::size_t i = 0; i < fingerprint_.size(); ++i) fingerprint_[i] += other.fingerprint_[i];
}

L0Sample L0Sampler::sample() const {
  for (int c = 0; c < columns_; ++c) {
    // Scan sparse (high) levels first: the first level whose expected
    // surviving support is ~1 is the likeliest to be exactly one-sparse.
    for (int l = levels_ - 1; l >= 0; --l) {
      const std::size_t i = slot(c, l);
      const std::int64_t count = count_[i];
      if (count != 1 && count != -1) continue;
      const std::int64_t idx = index_sum_[i] / count;
      if (idx < 0 || static_cast<std::uint64_t>(idx) >= universe_) continue;
      const std::uint64_t expect = static_cast<std::uint64_t>(count) *
                                   fingerprint_hash(c, static_cast<std::uint64_t>(idx));
      if (expect != fingerprint_[i]) continue;
      return {L0Sample::Status::kFound, static_cast<std::uint64_t>(idx), count > 0 ? 1 : -1};
    }
  }
  return {empty() ? L0Sample::Status::kZero : L0Sample::Status::kFail, 0, 0};
}

bool L0Sampler::empty() const {
  for (std::size_t i = 0; i < count_.size(); ++i)
    if (count_[i] != 0 || index_sum_[i] != 0 || fingerprint_[i] != 0) return false;
  return true;
}

void L0Sampler::clear() {
  count_.assign(count_.size(), 0);
  index_sum_.assign(index_sum_.size(), 0);
  fingerprint_.assign(fingerprint_.size(), 0);
}

}  // namespace deck
