#include "sketch/l0_sampler.hpp"

#include <bit>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

int L0Sampler::levels_for(std::uint64_t universe) {
  // Level ℓ subsamples coordinates with probability 2^-ℓ; levels up to
  // log2(universe) guarantee some level holds ~1 surviving coordinate
  // whatever the support size. +2 slack absorbs variance at the extremes.
  return std::bit_width(universe) + 2;
}

L0Sampler::L0Sampler(std::uint64_t universe, std::uint64_t seed, int columns)
    : universe_(universe), seed_(seed), columns_(columns) {
  DECK_CHECK(universe >= 1);
  DECK_CHECK(columns >= 1);
  levels_ = levels_for(universe);
  column_salt_.reserve(static_cast<std::size_t>(columns_));
  column_fp_.reserve(static_cast<std::size_t>(columns_));
  std::uint64_t state = seed_;
  for (int c = 0; c < columns_; ++c) {
    column_salt_.push_back(splitmix64(state));
    column_fp_.push_back(splitmix64(state));
  }
  buckets_.assign(static_cast<std::size_t>(columns_ * levels_), Bucket{});
}

std::uint64_t L0Sampler::level_hash(int column, std::uint64_t index) const {
  return mix64(column_salt_[static_cast<std::size_t>(column)] ^ index);
}

std::uint64_t L0Sampler::fingerprint_hash(int column, std::uint64_t index) const {
  return mix64(column_fp_[static_cast<std::size_t>(column)] + index);
}

void L0Sampler::update(std::uint64_t index, int delta) {
  DECK_ASSERT(index < universe_);
  if (delta == 0) return;
  for (int c = 0; c < columns_; ++c) {
    // Coordinate `index` lives in levels 0..z where z counts the trailing
    // zero bits of its level hash — a geometric subsampling cascade.
    const int z = std::countr_zero(level_hash(c, index));
    const int top = z < levels_ - 1 ? z : levels_ - 1;
    const std::uint64_t fp = fingerprint_hash(c, index);
    for (int l = 0; l <= top; ++l) {
      Bucket& b = bucket(c, l);
      b.count += delta;
      b.index_sum += delta * static_cast<std::int64_t>(index);
      b.fingerprint += static_cast<std::uint64_t>(static_cast<std::int64_t>(delta)) * fp;
    }
  }
}

bool L0Sampler::compatible(const L0Sampler& other) const {
  return universe_ == other.universe_ && seed_ == other.seed_ && columns_ == other.columns_;
}

void L0Sampler::merge(const L0Sampler& other) {
  DECK_CHECK_MSG(compatible(other), "merging incompatible ℓ₀ sketches");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].count += other.buckets_[i].count;
    buckets_[i].index_sum += other.buckets_[i].index_sum;
    buckets_[i].fingerprint += other.buckets_[i].fingerprint;
  }
}

L0Sample L0Sampler::sample() const {
  for (int c = 0; c < columns_; ++c) {
    // Scan sparse (high) levels first: the first level whose expected
    // surviving support is ~1 is the likeliest to be exactly one-sparse.
    for (int l = levels_ - 1; l >= 0; --l) {
      const Bucket& b = bucket(c, l);
      if (b.count != 1 && b.count != -1) continue;
      const std::int64_t idx = b.index_sum / b.count;
      if (idx < 0 || static_cast<std::uint64_t>(idx) >= universe_) continue;
      const std::uint64_t expect = static_cast<std::uint64_t>(b.count) *
                                   fingerprint_hash(c, static_cast<std::uint64_t>(idx));
      if (expect != b.fingerprint) continue;
      return {L0Sample::Status::kFound, static_cast<std::uint64_t>(idx),
              b.count > 0 ? 1 : -1};
    }
  }
  return {empty() ? L0Sample::Status::kZero : L0Sample::Status::kFail, 0, 0};
}

bool L0Sampler::empty() const {
  for (const Bucket& b : buckets_)
    if (b.count != 0 || b.index_sum != 0 || b.fingerprint != 0) return false;
  return true;
}

void L0Sampler::clear() {
  buckets_.assign(buckets_.size(), Bucket{});
}

}  // namespace deck
