#include "sketch/sketch_connectivity.hpp"

#include <algorithm>
#include <bit>

#include "graph/union_find.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

int boruvka_rounds_budget(int n, int slack) {
  const unsigned un = n > 1 ? static_cast<unsigned>(n - 1) : 1u;
  return static_cast<int>(std::bit_width(un)) + slack;
}

}  // namespace

int SketchConnectivity::total_copies_for(int n, const SketchOptions& opt) {
  DECK_CHECK(opt.max_forests >= 1);
  DECK_CHECK(opt.rounds_slack >= 1);
  return opt.max_forests * boruvka_rounds_budget(n, opt.rounds_slack);
}

SketchConnectivity::SketchConnectivity(int n, const SketchOptions& opt) : n_(n), opt_(opt) {
  DECK_CHECK(n >= 0);
  copies_per_forest_ = boruvka_rounds_budget(n_, opt_.rounds_slack);
  const int total = total_copies_for(n_, opt_);
  const std::uint64_t universe =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_));
  sketches_.reserve(static_cast<std::size_t>(n_));
  for (VertexId v = 0; v < n_; ++v) {
    std::vector<L0Sampler> copies;
    copies.reserve(static_cast<std::size_t>(total));
    // All vertices share the copy's seed — their sketches must be mergeable
    // within a supernode; copies differ so each Borůvka round draws fresh
    // randomness. split_seed makes the derivation shared-state-free: any
    // shard thread or remote process reconstructs the same per-copy seeds
    // from opt.seed alone, which is what keeps independently-built banks
    // mergeable.
    for (int c = 0; c < total; ++c)
      copies.emplace_back(universe, split_seed(opt_.seed, static_cast<std::uint64_t>(c)),
                          opt_.columns);
    sketches_.push_back(std::move(copies));
  }
}

std::uint64_t SketchConnectivity::encode(VertexId lo, VertexId hi) const {
  return encode_edge_index(lo, hi, n_);
}

SketchEdge SketchConnectivity::decode(std::uint64_t index) const {
  const auto [u, v] = decode_edge_index(index, n_);
  return {u, v};
}

void SketchConnectivity::update(VertexId u, VertexId v, int delta) {
  DECK_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "sketch update endpoint out of range");
  DECK_CHECK_MSG(u != v, "sketch updates must not be self-loops");
  const auto [lo, hi] = std::minmax(u, v);
  const std::uint64_t index = encode(lo, hi);
  for (L0Sampler& s : sketches_[static_cast<std::size_t>(lo)]) s.update(index, delta);
  for (L0Sampler& s : sketches_[static_cast<std::size_t>(hi)]) s.update(index, -delta);
}

void SketchConnectivity::apply_batch(VertexId src, std::span<const VertexDelta> deltas) {
  DECK_CHECK(src >= 0 && src < n_);
  auto& copies = sketches_[static_cast<std::size_t>(src)];
  for (const VertexDelta& d : deltas) {
    DECK_CHECK_MSG(d.dst >= 0 && d.dst < n_, "sketch update endpoint out of range");
    DECK_CHECK_MSG(d.dst != src, "sketch updates must not be self-loops");
    const auto [lo, hi] = std::minmax(src, d.dst);
    const std::uint64_t index = encode(lo, hi);
    const int signed_delta = src == lo ? d.delta : -d.delta;
    for (L0Sampler& s : copies) s.update(index, signed_delta);
  }
}

bool SketchConnectivity::compatible(const SketchConnectivity& other) const {
  return n_ == other.n_ && opt_.seed == other.opt_.seed &&
         opt_.max_forests == other.opt_.max_forests && opt_.columns == other.opt_.columns &&
         opt_.rounds_slack == other.opt_.rounds_slack;
}

void SketchConnectivity::merge(const SketchConnectivity& other) {
  DECK_CHECK_MSG(compatible(other), "merging incompatible sketch banks");
  DECK_CHECK_MSG(cursor_ == other.cursor_,
                 "merging banks with different recovery progress — merge before recovery");
  for (VertexId v = 0; v < n_; ++v) {
    auto& mine = sketches_[static_cast<std::size_t>(v)];
    const auto& theirs = other.sketches_[static_cast<std::size_t>(v)];
    for (std::size_t c = 0; c < mine.size(); ++c) mine[c].merge(theirs[c]);
  }
}

void SketchConnectivity::erase_from_unused(const SketchEdge& e) {
  const std::uint64_t index = encode(e.u, e.v);
  auto& lo = sketches_[static_cast<std::size_t>(e.u)];
  auto& hi = sketches_[static_cast<std::size_t>(e.v)];
  for (std::size_t c = static_cast<std::size_t>(cursor_); c < lo.size(); ++c) {
    lo[c].update(index, -1);
    hi[c].update(index, 1);
  }
}

std::vector<SketchEdge> SketchConnectivity::spanning_forest() {
  std::vector<SketchEdge> forest;
  if (n_ <= 1) return forest;
  UnionFind uf(n_);
  bool maximal = false;
  for (int round = 0; round < copies_per_forest_ && !maximal; ++round) {
    if (uf.num_components() == 1) break;
    DECK_CHECK_MSG(cursor_ < copies_total(), "sketch copies exhausted — raise max_forests");
    const int copy = cursor_++;

    // Aggregate the round's copy over each supernode: linearity cancels
    // intra-component edges, leaving each component's cut.
    std::vector<int> slot(static_cast<std::size_t>(n_), -1);
    std::vector<L0Sampler> agg;
    for (VertexId v = 0; v < n_; ++v) {
      const int root = uf.find(v);
      int& s = slot[static_cast<std::size_t>(root)];
      if (s < 0) {
        s = static_cast<int>(agg.size());
        agg.push_back(sketches_[static_cast<std::size_t>(v)][static_cast<std::size_t>(copy)]);
      } else {
        agg[static_cast<std::size_t>(s)].merge(
            sketches_[static_cast<std::size_t>(v)][static_cast<std::size_t>(copy)]);
      }
    }

    bool merged_any = false;
    bool failed_any = false;
    for (const L0Sampler& component : agg) {
      const L0Sample s = component.sample();
      if (s.status == L0Sample::Status::kZero) continue;  // no cut edges: done
      if (s.status == L0Sample::Status::kFail) {
        failed_any = true;  // retried on the next round's fresh copies
        continue;
      }
      const SketchEdge e = decode(s.index);
      // Two components can recover the same edge from opposite sides, and a
      // component processed later this round may have been united already —
      // unite() deduplicates both cases.
      if (uf.unite(e.u, e.v)) {
        forest.push_back(e);
        merged_any = true;
      }
    }
    // No merge and no failure means every component's cut was empty: the
    // forest is maximal (the sketched graph may legitimately be
    // disconnected).
    maximal = !merged_any && !failed_any;
  }
  DECK_CHECK_MSG(maximal || uf.num_components() == 1,
                 "ℓ₀ sampling did not converge — raise columns or rounds_slack");
  return forest;
}

std::vector<std::vector<SketchEdge>> SketchConnectivity::k_spanning_forests(int k) {
  DECK_CHECK(k >= 1);
  DECK_CHECK_MSG(k <= opt_.max_forests, "k exceeds the sketch's max_forests budget");
  std::vector<std::vector<SketchEdge>> forests;
  forests.reserve(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    std::vector<SketchEdge> forest = spanning_forest();
    // Peel: later forests must sketch G minus everything recovered so far.
    for (const SketchEdge& e : forest) erase_from_unused(e);
    // Rotate to the next forest's group of copies so every forest starts on
    // untouched randomness even when this one converged early.
    cursor_ = std::max(cursor_, (f + 1) * copies_per_forest_);
    forests.push_back(std::move(forest));
  }
  return forests;
}

SparsifyResult sparsify_stream(const GraphStream& stream, int k, const SketchOptions& opt) {
  DECK_CHECK(k >= 1);
  SketchOptions o = opt;
  o.max_forests = k;
  SketchConnectivity sk(stream.num_vertices(), o);
  apply_batched(stream, /*batch_size=*/1024,
                [&sk](VertexId src, std::span<const VertexDelta> deltas) {
                  sk.apply_batch(src, deltas);
                });
  SparsifyResult result;
  result.forests = sk.k_spanning_forests(k);
  result.copies_used = sk.copies_used();
  Graph cert(stream.num_vertices());
  for (const auto& forest : result.forests)
    for (const SketchEdge& e : forest) cert.add_edge(e.u, e.v, /*w=*/1);
  result.certificate = std::move(cert);
  return result;
}

}  // namespace deck
