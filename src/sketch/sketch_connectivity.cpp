#include "sketch/sketch_connectivity.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <utility>

#include "graph/union_find.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace deck {

namespace {

int boruvka_rounds_budget(int n, int slack) {
  const unsigned un = n > 1 ? static_cast<unsigned>(n - 1) : 1u;
  return static_cast<int>(std::bit_width(un)) + slack;
}

/// Resolves RecoveryOptions to the pool recovery should fan out on: the
/// caller's pool when one was lent, a fresh one for threads > 1, else null
/// (inline single-threaded path). `owned` keeps a constructed pool alive
/// for the caller's scope.
ThreadPool* recovery_pool(const RecoveryOptions& ropt, std::optional<ThreadPool>& owned) {
  DECK_CHECK(ropt.threads >= 1);
  if (ropt.pool != nullptr) return ropt.pool;
  if (ropt.threads > 1) owned.emplace(ropt.threads);
  return owned ? &*owned : nullptr;
}

/// Shared non-convergence contract of the throwing recovery entry points.
void check_converged(bool converged, bool copies_exhausted) {
  DECK_CHECK_MSG(converged || !copies_exhausted, "sketch copies exhausted — raise max_forests");
  DECK_CHECK_MSG(converged, "ℓ₀ sampling did not converge — raise columns or rounds_slack");
}

/// A contiguous run of one supernode's members, the unit of parallel
/// aggregation work. Supernodes larger than the segment length split into
/// several segments whose partial sums are combined after the join —
/// `partial` indexes the split slot's partial-sum storage, -1 for slots
/// aggregated (and sampled) entirely within one segment.
struct Segment {
  int slot = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  int partial = -1;
};

/// Registered-once handles for the sketch/recovery hot paths. The registry
/// interns by name, so grabbing them through a function-local static costs
/// one guarded load after the first call.
struct SketchMetrics {
  obs::Counter& updates = obs::Registry::global().counter("sketch.updates");
  obs::Counter& samples = obs::Registry::global().counter("recovery.samples");
  obs::Counter& failures = obs::Registry::global().counter("recovery.failures");
  obs::Counter& merges = obs::Registry::global().counter("recovery.merges");
  obs::Counter& rounds = obs::Registry::global().counter("recovery.rounds");
  obs::Gauge& attempts = obs::Registry::global().gauge("recovery.attempts");
  obs::Gauge& columns = obs::Registry::global().gauge("recovery.columns");
  obs::Gauge& rounds_slack = obs::Registry::global().gauge("recovery.rounds_slack");

  static SketchMetrics& get() {
    static SketchMetrics m;
    return m;
  }
};

}  // namespace

int SketchConnectivity::total_copies_for(int n, const SketchOptions& opt) {
  DECK_CHECK(opt.max_forests >= 1);
  DECK_CHECK(opt.rounds_slack >= 1);
  return opt.max_forests * boruvka_rounds_budget(n, opt.rounds_slack);
}

SketchConnectivity::SketchConnectivity(int n, const SketchOptions& opt) : n_(n), opt_(opt) {
  DECK_CHECK(n >= 0);
  DECK_CHECK(opt_.columns >= 1);
  // Policy fields are validated even when disabled: banks travel through the
  // wire format with their policy attached, and a nonsense policy there is
  // corruption, not configuration.
  DECK_CHECK_MSG(opt_.auto_size.initial_columns >= 1 && opt_.auto_size.initial_rounds_slack >= 1 &&
                     opt_.auto_size.growth >= 2 && opt_.auto_size.max_attempts >= 1,
                 "invalid AutoSizePolicy");
  copies_per_forest_ = boruvka_rounds_budget(n_, opt_.rounds_slack);
  const int total = total_copies_for(n_, opt_);
  const std::uint64_t universe =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_));
  sketches_.reserve(static_cast<std::size_t>(n_));
  for (VertexId v = 0; v < n_; ++v) {
    std::vector<L0Sampler> copies;
    copies.reserve(static_cast<std::size_t>(total));
    // All vertices share the copy's seed — their sketches must be mergeable
    // within a supernode; copies differ so each Borůvka round draws fresh
    // randomness. split_seed makes the derivation shared-state-free: any
    // shard thread or remote process reconstructs the same per-copy seeds
    // from opt.seed alone, which is what keeps independently-built banks
    // mergeable.
    for (int c = 0; c < total; ++c)
      copies.emplace_back(universe, split_seed(opt_.seed, static_cast<std::uint64_t>(c)),
                          opt_.columns);
    sketches_.push_back(std::move(copies));
  }
}

std::uint64_t SketchConnectivity::encode(VertexId lo, VertexId hi) const {
  return encode_edge_index(lo, hi, n_);
}

SketchEdge SketchConnectivity::decode(std::uint64_t index) const {
  const auto [u, v] = decode_edge_index(index, n_);
  return {u, v};
}

void SketchConnectivity::update(VertexId u, VertexId v, int delta) {
  DECK_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "sketch update endpoint out of range");
  DECK_CHECK_MSG(u != v, "sketch updates must not be self-loops");
  const auto [lo, hi] = std::minmax(u, v);
  const std::uint64_t index = encode(lo, hi);
  for (L0Sampler& s : sketches_[static_cast<std::size_t>(lo)]) s.update(index, delta);
  for (L0Sampler& s : sketches_[static_cast<std::size_t>(hi)]) s.update(index, -delta);
  if (obs::enabled()) SketchMetrics::get().updates.inc();
}

void SketchConnectivity::apply_batch(VertexId src, std::span<const VertexDelta> deltas,
                                     ApplyBackend backend) {
  DECK_CHECK(src >= 0 && src < n_);
  auto& copies = sketches_[static_cast<std::size_t>(src)];
  if (backend == ApplyBackend::kScalar) {
    // Delta-major reference loop: per delta, walk every copy.
    for (const VertexDelta& d : deltas) {
      DECK_CHECK_MSG(d.dst >= 0 && d.dst < n_, "sketch update endpoint out of range");
      DECK_CHECK_MSG(d.dst != src, "sketch updates must not be self-loops");
      const auto [lo, hi] = std::minmax(src, d.dst);
      const std::uint64_t index = encode(lo, hi);
      const int signed_delta = src == lo ? d.delta : -d.delta;
      for (L0Sampler& s : copies) s.update(index, signed_delta);
    }
    if (obs::enabled()) SketchMetrics::get().updates.add(deltas.size());
    return;
  }
  // kSimd, copy-major: validate and translate the batch once (edge-index
  // encoding, sign orientation), then replay the run over each copy —
  // per-copy bucket rows stay cache-resident for the whole run and the
  // column passes are batched (L0Sampler::update_run). Each bucket still
  // receives its contributions in run order, so the bank is bit-identical
  // to the scalar path (sketch/apply.hpp).
  thread_local std::vector<RawDelta> run;
  run.clear();
  run.reserve(deltas.size());
  for (const VertexDelta& d : deltas) {
    DECK_CHECK_MSG(d.dst >= 0 && d.dst < n_, "sketch update endpoint out of range");
    DECK_CHECK_MSG(d.dst != src, "sketch updates must not be self-loops");
    const auto [lo, hi] = std::minmax(src, d.dst);
    run.push_back({encode(lo, hi), src == lo ? d.delta : -d.delta});
  }
  const std::span<const RawDelta> span(run.data(), run.size());
  for (L0Sampler& s : copies) s.update_run(span);
  if (obs::enabled()) SketchMetrics::get().updates.add(deltas.size());
}

bool SketchConnectivity::compatible(const SketchConnectivity& other) const {
  return n_ == other.n_ && opt_.seed == other.opt_.seed &&
         opt_.max_forests == other.opt_.max_forests && opt_.columns == other.opt_.columns &&
         opt_.rounds_slack == other.opt_.rounds_slack && opt_.auto_size == other.opt_.auto_size;
}

void SketchConnectivity::merge(const SketchConnectivity& other) {
  DECK_CHECK_MSG(compatible(other), "merging incompatible sketch banks");
  DECK_CHECK_MSG(cursor_ == other.cursor_,
                 "merging banks with different recovery progress — merge before recovery");
  for (VertexId v = 0; v < n_; ++v) {
    auto& mine = sketches_[static_cast<std::size_t>(v)];
    const auto& theirs = other.sketches_[static_cast<std::size_t>(v)];
    for (std::size_t c = 0; c < mine.size(); ++c) mine[c].merge(theirs[c]);
  }
}

void SketchConnectivity::erase_from_copies(const SketchEdge& e, int from) {
  const std::uint64_t index = encode(e.u, e.v);
  auto& lo = sketches_[static_cast<std::size_t>(e.u)];
  auto& hi = sketches_[static_cast<std::size_t>(e.v)];
  for (std::size_t c = static_cast<std::size_t>(from); c < lo.size(); ++c) {
    lo[c].update(index, -1);
    hi[c].update(index, 1);
  }
}

bool SketchConnectivity::grow_forest(std::vector<SketchEdge>& forest, ThreadPool* pool,
                                     RecoveryStats& stats) {
  if (n_ <= 1) return true;
  UnionFind uf(n_);
  // The edges already in `forest` (a resumed partial forest) seed the
  // contraction state; everything recovered below is appended after them.
  for (const SketchEdge& e : forest) uf.unite(e.u, e.v);

  bool maximal = false;
  for (int round = 0; round < copies_per_forest_ && !maximal; ++round) {
    if (uf.num_components() == 1) break;
    if (cursor_ >= copies_total()) {
      stats.copies_exhausted = true;
      return false;
    }
    const auto copy = static_cast<std::size_t>(cursor_++);
    obs::Span round_span("recovery.round");
    round_span.arg("round", static_cast<std::uint64_t>(round));

    // Deterministic supernode slots: slot order is first-member vertex
    // order — the order the single-threaded path visits components in, and
    // the order the reduction below unites in.
    std::vector<int> comp(static_cast<std::size_t>(n_));
    std::vector<int> slot_of_root(static_cast<std::size_t>(n_), -1);
    int slots = 0;
    for (VertexId v = 0; v < n_; ++v) {
      int& s = slot_of_root[static_cast<std::size_t>(uf.find(v))];
      if (s < 0) s = slots++;
      comp[static_cast<std::size_t>(v)] = s;
    }

    // Bucket vertices by slot, preserving vertex order within each slot.
    std::vector<std::uint32_t> offset(static_cast<std::size_t>(slots) + 1, 0);
    for (VertexId v = 0; v < n_; ++v)
      ++offset[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)]) + 1];
    for (int s = 0; s < slots; ++s)
      offset[static_cast<std::size_t>(s) + 1] += offset[static_cast<std::size_t>(s)];
    std::vector<VertexId> members(static_cast<std::size_t>(n_));
    std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
    for (VertexId v = 0; v < n_; ++v)
      members[fill[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]++] = v;

    // Segment the aggregation so huge supernodes (the endgame: two
    // components with ~n/2 members each) still split across threads. The
    // single-thread path keeps one segment per slot — the sequential
    // structure, with zero partial-sum overhead.
    const std::uint32_t seg_len =
        pool ? std::max<std::uint32_t>(256, static_cast<std::uint32_t>(
                                                (n_ + pool->size() * 8 - 1) / (pool->size() * 8)))
             : static_cast<std::uint32_t>(n_);
    std::vector<Segment> segs;
    segs.reserve(static_cast<std::size_t>(slots));
    int num_partials = 0;
    for (int s = 0; s < slots; ++s) {
      const std::uint32_t b = offset[static_cast<std::size_t>(s)];
      const std::uint32_t e = offset[static_cast<std::size_t>(s) + 1];
      if (e - b <= seg_len) {
        segs.push_back({s, b, e, -1});
      } else {
        for (std::uint32_t p = b; p < e; p += seg_len)
          segs.push_back({s, p, std::min(e, p + seg_len), num_partials++});
      }
    }

    std::vector<std::optional<L0Sampler>> partials(static_cast<std::size_t>(num_partials));
    std::vector<L0Sample> samples(static_cast<std::size_t>(slots));
    auto run_segment = [&](const Segment& g) {
      // Linearity cancels intra-supernode edges in the sum, leaving exactly
      // the supernode's cut. A singleton needs no sum at all — sample the
      // member's sketch in place.
      if (g.end - g.begin == 1 && g.partial < 0) {
        samples[static_cast<std::size_t>(g.slot)] =
            sketches_[static_cast<std::size_t>(members[g.begin])][copy].sample();
        return;
      }
      L0Sampler agg = sketches_[static_cast<std::size_t>(members[g.begin])][copy];
      for (std::uint32_t i = g.begin + 1; i < g.end; ++i)
        agg.merge(sketches_[static_cast<std::size_t>(members[i])][copy]);
      if (g.partial < 0)
        samples[static_cast<std::size_t>(g.slot)] = agg.sample();
      else
        partials[static_cast<std::size_t>(g.partial)] = std::move(agg);
    };
    if (pool)
      pool->for_range(segs.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) run_segment(segs[i]);
      });
    else
      for (const Segment& g : segs) run_segment(g);

    // Combine split supernodes' partial sums. Bucket merging is wrapping
    // integer addition — associative and commutative — so any combine order
    // yields bit-identical buckets; segment order is used for clarity.
    for (std::size_t i = 0; i < segs.size();) {
      if (segs[i].partial < 0) {
        ++i;
        continue;
      }
      const int s = segs[i].slot;
      L0Sampler agg = std::move(*partials[static_cast<std::size_t>(segs[i].partial)]);
      for (++i; i < segs.size() && segs[i].slot == s; ++i)
        agg.merge(*partials[static_cast<std::size_t>(segs[i].partial)]);
      samples[static_cast<std::size_t>(s)] = agg.sample();
    }

    // Deterministic reduction: unite the supernode samples into the
    // contraction forest sequentially in slot order — the tie-break that
    // keeps any thread count bit-identical to the sequential path. Two
    // components can recover the same edge from opposite sides, and a
    // component processed later this round may have been united already —
    // unite() deduplicates both cases.
    RoundStats rs;
    rs.components = slots;
    for (int s = 0; s < slots; ++s) {
      const L0Sample& got = samples[static_cast<std::size_t>(s)];
      if (got.status == L0Sample::Status::kZero) continue;  // no cut edges: done
      if (got.status == L0Sample::Status::kFail) {
        ++rs.failures;  // retried on the next round's fresh copies
        continue;
      }
      const SketchEdge e = decode(got.index);
      if (uf.unite(e.u, e.v)) {
        forest.push_back(e);
        ++rs.merges;
      }
    }
    ++stats.rounds;
    stats.samples += slots;
    stats.failures += rs.failures;
    stats.per_round.push_back(rs);
    if (obs::enabled()) {
      SketchMetrics& m = SketchMetrics::get();
      m.rounds.inc();
      m.samples.add(static_cast<std::uint64_t>(slots));
      m.failures.add(static_cast<std::uint64_t>(rs.failures));
      m.merges.add(static_cast<std::uint64_t>(rs.merges));
    }
    round_span.arg("components", static_cast<std::uint64_t>(slots));
    round_span.arg("merges", static_cast<std::uint64_t>(rs.merges));
    round_span.arg("failures", static_cast<std::uint64_t>(rs.failures));
    // No merge and no failure means every component's cut was empty: the
    // forest is maximal (the sketched graph may legitimately be
    // disconnected).
    maximal = rs.merges == 0 && rs.failures == 0;
  }
  return maximal || uf.num_components() == 1;
}

std::vector<SketchEdge> SketchConnectivity::spanning_forest(const RecoveryOptions& ropt) {
  std::optional<ThreadPool> owned;
  ThreadPool* pool = recovery_pool(ropt, owned);
  std::vector<SketchEdge> forest;
  RecoveryStats stats;
  const bool converged = grow_forest(forest, pool, stats);
  check_converged(converged, stats.copies_exhausted);
  return forest;
}

std::vector<std::vector<SketchEdge>> SketchConnectivity::k_spanning_forests(
    int k, const RecoveryOptions& ropt) {
  DECK_CHECK(k >= 1);
  DECK_CHECK_MSG(k <= opt_.max_forests, "k exceeds the sketch's max_forests budget");
  KForests r = try_k_spanning_forests(k, ropt);
  check_converged(r.converged, r.stats.copies_exhausted);
  return std::move(r.forests);
}

KForests SketchConnectivity::try_k_spanning_forests(int k, const RecoveryOptions& ropt,
                                                    const KForests* prior) {
  DECK_CHECK(k >= 1);
  KForests out;
  std::vector<SketchEdge> partial;
  std::optional<ThreadPool> owned;
  ThreadPool* pool = recovery_pool(ropt, owned);
  if (prior != nullptr) {
    DECK_CHECK_MSG(cursor_ == 0, "resume requires a fresh bank — copies already consumed");
    out.forests = prior->forests;
    if (!prior->converged && !out.forests.empty()) {
      partial = std::move(out.forests.back());
      out.forests.pop_back();
    }
    DECK_CHECK_MSG(static_cast<int>(out.forests.size()) < k || partial.empty(),
                   "prior already recovered k forests");
    // Peel everything already recovered from every copy: linearity makes
    // the fresh bank sketch G minus the carried forests, so only the
    // still-missing forests pay for the retry.
    for (const auto& f : out.forests)
      for (const SketchEdge& e : f) erase_from_copies(e, 0);
    for (const SketchEdge& e : partial) erase_from_copies(e, 0);
  }
  const int completed = static_cast<int>(out.forests.size());
  DECK_CHECK_MSG(k - completed <= opt_.max_forests, "k exceeds the sketch's max_forests budget");

  out.forests.reserve(static_cast<std::size_t>(k));
  for (int f = completed; f < k; ++f) {
    std::vector<SketchEdge> forest =
        f == completed ? std::move(partial) : std::vector<SketchEdge>{};
    const std::size_t seeds = forest.size();
    const std::size_t round_mark = out.stats.per_round.size();
    const bool converged = grow_forest(forest, pool, out.stats);
    out.stats.last_forest_samples = 0;
    out.stats.last_forest_failures = 0;
    for (std::size_t r = round_mark; r < out.stats.per_round.size(); ++r) {
      out.stats.last_forest_samples += out.stats.per_round[r].components;
      out.stats.last_forest_failures += out.stats.per_round[r].failures;
    }
    const std::size_t grown = forest.size();
    out.forests.push_back(std::move(forest));
    if (!converged) {
      out.converged = false;
      return out;
    }
    // Peel: later forests must sketch G minus everything recovered so far.
    // Seed edges were already erased from every copy before recovery.
    const auto& done = out.forests.back();
    for (std::size_t i = seeds; i < grown; ++i) erase_from_copies(done[i], cursor_);
    // Rotate to the next forest's group of copies so every forest starts on
    // untouched randomness even when this one converged early.
    cursor_ = std::max(cursor_, (f - completed + 1) * copies_per_forest_);
  }
  return out;
}

SparsifyResult recover_certificate(
    int k, const SketchOptions& opt, const RecoveryOptions& ropt,
    const std::function<SketchConnectivity(const SketchOptions&)>& ingest) {
  DECK_CHECK(k >= 1);
  SketchOptions base = opt;
  base.max_forests = k;

  SparsifyResult result;
  const auto finalize = [&result](const SketchConnectivity& bank, KForests&& kf, int attempts,
                                  const SketchOptions& used) {
    result.forests = std::move(kf.forests);
    result.stats = std::move(kf.stats);
    result.copies_used = bank.copies_used();
    result.attempts = attempts;
    result.columns_used = used.columns;
    result.rounds_slack_used = used.rounds_slack;
    Graph cert(bank.num_vertices());
    for (const auto& forest : result.forests)
      for (const SketchEdge& e : forest) cert.add_edge(e.u, e.v, /*w=*/1);
    result.certificate = std::move(cert);
  };

  const auto note_attempt = [](int attempt, const SketchOptions& aopt) {
    if (!obs::enabled()) return;
    SketchMetrics& m = SketchMetrics::get();
    m.attempts.set(attempt);
    m.columns.set(aopt.columns);
    m.rounds_slack.set(aopt.rounds_slack);
  };

  if (!opt.auto_size.enabled) {
    obs::Span span("recovery.attempt");
    span.arg("attempt", 0);
    span.arg("columns", static_cast<std::uint64_t>(base.columns));
    span.arg("rounds_slack", static_cast<std::uint64_t>(base.rounds_slack));
    note_attempt(1, base);
    SketchConnectivity bank = ingest(base);
    KForests kf = bank.try_k_spanning_forests(k, ropt);
    check_converged(kf.converged, kf.stats.copies_exhausted);
    finalize(bank, std::move(kf), /*attempts=*/1, base);
    return result;
  }

  // Adaptive attempt loop: start small, observe the failure signal, grow
  // only the dimension that starved. The signal is the *failing forest's*
  // per-round sampler-failure rate: a high rate means too few ℓ₀
  // repetitions — grow columns (memory cost: bank size is linear in
  // columns); a low rate that still dried the round budget means the
  // endgame just needs more retry rounds — grow slack (cheap). Completed
  // forests carry across attempts, so a retry re-ingests a bank sized only
  // for the forests still missing.
  const AutoSizePolicy& policy = opt.auto_size;
  int columns = policy.initial_columns;
  int slack = policy.initial_rounds_slack;
  KForests carry;
  bool have_carry = false;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    SketchOptions aopt = base;
    aopt.columns = columns;
    aopt.rounds_slack = slack;
    // Fresh randomness per attempt — re-deriving the seeds that just failed
    // would fail again deterministically.
    aopt.seed = split_seed(opt.seed, static_cast<std::uint64_t>(attempt));
    const int completed =
        have_carry ? static_cast<int>(carry.forests.size()) - (carry.forests.empty() ? 0 : 1) : 0;
    aopt.max_forests = k - completed;
    obs::Span span("recovery.attempt");
    span.arg("attempt", static_cast<std::uint64_t>(attempt));
    span.arg("columns", static_cast<std::uint64_t>(columns));
    span.arg("rounds_slack", static_cast<std::uint64_t>(slack));
    note_attempt(attempt + 1, aopt);
    SketchConnectivity bank = ingest(aopt);
    KForests kf = bank.try_k_spanning_forests(k, ropt, have_carry ? &carry : nullptr);
    if (kf.converged) {
      finalize(bank, std::move(kf), attempt + 1, aopt);
      return result;
    }
    const bool columns_starved =
        kf.stats.last_forest_samples > 0 &&
        kf.stats.last_forest_failures * 4 >= kf.stats.last_forest_samples;  // >= 25% failed
    if (columns_starved)
      columns *= policy.growth;
    else
      slack *= policy.growth;
    carry = std::move(kf);
    have_carry = true;
  }
  DECK_CHECK_MSG(false,
                 "adaptive sizing did not converge within max_attempts — raise the policy caps");
  return result;  // unreachable
}

// sparsify_stream() is now a deprecated wrapper over the GraphSession
// facade; its definition lives in serve/session.cpp so this layer never
// includes serve/ headers.

}  // namespace deck
