#pragma once

// Sharded parallel sketch ingestion — the multi-inserter front-end the
// distributed k-ECSS pipeline (Dory PODC'18; Dory–Ghaffari '22) assumes:
// the update stream is partitioned across N inserter shards, each ingesting
// its slice of per-source batches on its own worker thread, composing into
// one global SketchConnectivity bank before forest recovery.
//
// Two execution strategies, both lock-free during ingestion:
//   - Static sharding (kHash, kVertexRange): each source vertex is owned by
//     exactly one shard, and a batch only touches its source's sketch
//     array, so shards write disjoint slices of the single global bank
//     directly — no merge step at all.
//   - Dynamic sharding (kDynamic): shards claim batches from a wait-free
//     queue, so any shard may touch any vertex; each owns a *private* bank
//     of ℓ₀ samplers and the banks are merged by sketch addition
//     afterwards. This is the in-process twin of the multi-process flow,
//     where shard banks are serialized (sketch_io) and shipped.
//
// Correctness rests on two deterministic ingredients:
//   - Linearity: a bank is a sum of per-update bucket increments, and
//     64-bit wrapping addition is associative and commutative, so *any*
//     partition of the stream — by hash, by vertex range, or dynamically
//     load-balanced — merges to the bit-identical bank a single sequential
//     inserter would build.
//   - Seed splitting: every shard derives the same per-copy sampler seeds
//     from SketchOptions::seed via split_seed (no shared RNG object), so
//     independently constructed banks are mergeable — including banks built
//     in other processes and shipped through sketch_io.
//
// apply_sharded() is the in-process fast path (threads). For the
// multi-process path, run one bank per process, encode_bank() it, and
// merge_encoded() the shipped buffers at the coordinator — see
// examples/sharded_pipeline.cpp.

#include <cstddef>
#include <vector>

#include "sketch/apply.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

namespace deck {

/// How per-source batches are assigned to inserter shards. All modes merge
/// to the identical global bank; they differ only in load balance and in
/// which shard touches which vertices.
enum class Sharding {
  kHash,         // shard = mix64(src) % shards — stateless, balanced in expectation
  kVertexRange,  // shard = src·shards/n — contiguous vertex ranges, cache-friendly
  kDynamic,      // shards claim batches from a lock-free queue — best balance
};

struct ShardOptions {
  int shards = 1;
  /// Directed halves per SourceBatch handed to a shard at a time.
  std::size_t batch_size = 1024;
  Sharding sharding = Sharding::kHash;
  /// Caller-owned pool to run the shard jobs on instead of constructing one
  /// per call — lets one ThreadPool serve ingestion, chunk assembly, and
  /// recovery back to back (pass it to RecoveryOptions::pool too). The pool
  /// must be otherwise idle for the duration of the call; its size is
  /// independent of `shards` (jobs queue), and any size yields the
  /// bit-identical merged bank.
  ThreadPool* pool = nullptr;
  /// Execution strategy for every apply_batch the shards (and, through
  /// IngestOptions::shard, the session gutter flushes) issue — the scalar
  /// reference loop or the batched SIMD column passes (sketch/apply.hpp).
  /// Pure execution policy: every backend yields the bit-identical bank.
  ApplyBackend backend = ApplyBackend::kScalar;
};

/// Static assignment of a batch source to a shard (kHash / kVertexRange).
int shard_of(VertexId src, int n, const ShardOptions& opt);

/// Composed global bank plus per-shard ingestion accounting.
struct ShardIngestResult {
  SketchConnectivity sketch;
  std::vector<std::size_t> shard_batches;  // batches ingested per shard
  std::vector<std::size_t> shard_halves;   // directed halves ingested per shard
};

/// Ingests `stream` with opt.shards parallel inserters and returns the
/// merged bank — bit-identical (encode_bank-equal) to sequential ingestion
/// with the same SketchOptions, for every shard count and sharding mode.
ShardIngestResult apply_sharded(const GraphStream& stream, const SketchOptions& sopt,
                                const ShardOptions& opt);

/// Sharded twin of sparsify_stream(): parallel ingestion, then the same
/// k-forest peeling on the merged bank — itself parallel over
/// ropt.threads. Recovered forests and certificate are identical to
/// sparsify_stream(stream, k, sopt, ropt) for fixed seeds, for every shard
/// count, sharding mode, and recovery thread count. With
/// sopt.auto_size.enabled, every adaptive attempt re-ingests through the
/// same sharded path, so all shards of an attempt agree on the attempt's
/// sizing by construction.
///
/// DEPRECATED wrapper over the GraphSession facade (serve/session.hpp):
/// opens a kSharded session (parallel gutter drains on opt.shards workers),
/// bulk-ingests `stream`, and queries once. New code should open a
/// GraphSession or call deck::ingest().
SparsifyResult sharded_sparsify_stream(const GraphStream& stream, int k, const SketchOptions& sopt,
                                       const ShardOptions& opt, const RecoveryOptions& ropt = {});

}  // namespace deck
