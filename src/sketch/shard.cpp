#include "sketch/shard.hpp"

#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace deck {

int shard_of(VertexId src, int n, const ShardOptions& opt) {
  DECK_CHECK(opt.shards >= 1);
  DECK_CHECK(src >= 0 && src < n);
  switch (opt.sharding) {
    case Sharding::kHash:
      return static_cast<int>(mix64(static_cast<std::uint64_t>(src)) %
                              static_cast<std::uint64_t>(opt.shards));
    case Sharding::kVertexRange:
      return static_cast<int>(static_cast<std::int64_t>(src) * opt.shards / n);
    case Sharding::kDynamic:
      break;
  }
  DECK_CHECK_MSG(false,
                 "shard_of is undefined for dynamic sharding — batches are claimed, not assigned");
  return 0;
}

ShardIngestResult apply_sharded(const GraphStream& stream, const SketchOptions& sopt,
                                const ShardOptions& opt) {
  DECK_CHECK(opt.shards >= 1);
  DECK_CHECK(opt.batch_size >= 1);
  const int n = stream.num_vertices();
  const int shards = opt.shards;

  std::vector<SourceBatch> batches = collect_batches(stream, opt.batch_size);
  std::vector<std::size_t> shard_batches(static_cast<std::size_t>(shards), 0);
  std::vector<std::size_t> shard_halves(static_cast<std::size_t>(shards), 0);
  std::optional<ThreadPool> owned;
  if (opt.pool == nullptr) owned.emplace(shards);
  ThreadPool& pool = opt.pool != nullptr ? *opt.pool : *owned;

  if (opt.sharding != Sharding::kDynamic) {
    // Ownership fast path. A batch only ever touches its source vertex's
    // sketch array, and static sharding assigns each source to exactly one
    // shard — so the shards write *disjoint* slices of one global bank
    // directly: lock-free, merge-free, and trivially bit-identical to
    // sequential ingestion.
    std::vector<std::vector<const SourceBatch*>> assigned(static_cast<std::size_t>(shards));
    for (const SourceBatch& b : batches)
      assigned[static_cast<std::size_t>(shard_of(b.src, n, opt))].push_back(&b);
    SketchConnectivity bank(n, sopt);
    for (int s = 0; s < shards; ++s) {
      pool.submit([&, s] {
        const auto si = static_cast<std::size_t>(s);
        for (const SourceBatch* b : assigned[si]) {
          bank.apply_batch(b->src,
                           std::span<const VertexDelta>(b->deltas.data(), b->deltas.size()),
                           opt.backend);
          ++shard_batches[si];
          shard_halves[si] += b->deltas.size();
        }
      });
    }
    pool.wait();
    return {std::move(bank), std::move(shard_batches), std::move(shard_halves)};
  }

  // Dynamic mode: workers claim batches from the lock-free queue, so any
  // shard may touch any vertex — each owns a *private* bank (no shared
  // mutable state during ingestion) and the banks are merged by sketch
  // addition afterwards. This is the in-process twin of the multi-process
  // flow (encode_bank per shard process, merge_encoded at the coordinator)
  // and costs one bank construction + merge per shard; prefer a static mode
  // when the stream is already well balanced. Each worker constructs its
  // own bank — per-copy seeds come from split_seed, not from any shared RNG
  // object, so all banks are compatible by construction.
  BatchQueue queue(std::move(batches));
  std::vector<std::optional<SketchConnectivity>> banks(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    pool.submit([&, s] {
      SketchConnectivity bank(n, sopt);
      const auto si = static_cast<std::size_t>(s);
      while (const SourceBatch* b = queue.try_pop()) {
        bank.apply_batch(b->src, std::span<const VertexDelta>(b->deltas.data(), b->deltas.size()),
                         opt.backend);
        ++shard_batches[si];
        shard_halves[si] += b->deltas.size();
      }
      banks[si].emplace(std::move(bank));
    });
  }
  pool.wait();

  // Merge by sketch addition: order is irrelevant (wrapping integer sums),
  // so folding left is as good as any tree.
  obs::Span merge_span("sketch.bank_merge");
  merge_span.arg("banks", static_cast<std::uint64_t>(shards));
  const std::uint64_t merge_start = obs::enabled() ? obs::now_ns() : 0;
  SketchConnectivity merged = std::move(*banks[0]);
  for (int s = 1; s < shards; ++s) merged.merge(*banks[static_cast<std::size_t>(s)]);
  if (obs::enabled()) {
    static obs::Histogram& merge_ns = obs::Registry::global().histogram("sketch.bank_merge_ns");
    merge_ns.observe(obs::now_ns() - merge_start);
  }
  return {std::move(merged), std::move(shard_batches), std::move(shard_halves)};
}

// sharded_sparsify_stream() is now a deprecated wrapper over the
// GraphSession facade; its definition lives in serve/session.cpp so this
// layer never includes serve/ headers.

}  // namespace deck
