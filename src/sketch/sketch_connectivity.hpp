#pragma once

// Spanning-forest recovery from linear sketches (Ahn–Guha–McGregor) and
// k-edge-disjoint forest peeling — a *streaming* Thurimella sparse
// certificate (ecss/thurimella.hpp) computed from insert/delete streams.
//
// Every vertex keeps ℓ₀ sketches of its signed edge-incidence vector: edge
// {u,v} with u < v contributes +1 at index enc(u,v) to u's vector and -1 to
// v's. Summing member sketches over a supernode therefore cancels internal
// edges and exposes exactly the cut, so Borůvka runs on sketches alone:
// each round, every component samples one cut edge and components merge.
// Sampling consumes randomness, so each vertex holds a fresh sketch *copy*
// per Borůvka round; k_spanning_forests rotates through k groups of copies
// (the Landscape repo's supernode-cycling trick) and, after peeling a
// forest, deletes its edges from all still-unused copies via linearity.
//
// The union of the k peeled forests is a Thurimella certificate: ≤ k(n-1)
// edges, k-edge-connected whenever the streamed graph is (w.h.p. over the
// sketch seed). sparsify_stream() materializes it as a deck::Graph so the
// CONGEST pipeline (distributed_kecss / distributed_2ecss) runs on the
// O(kn)-edge sparsifier instead of the raw stream.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/stream.hpp"

namespace deck {

struct SketchOptions {
  std::uint64_t seed = 1;
  /// Forest budget the per-vertex sketch arrays are sized for.
  int max_forests = 1;
  /// Independent ℓ₀ repetitions per sketch copy (failure ~ 2^-columns).
  int columns = 6;
  /// Borůvka rounds beyond ceil(log2 n) budgeted per forest; failed samples
  /// retry on the next round's fresh copies.
  int rounds_slack = 4;
};

/// An undirected edge recovered from a sketch (no id — stream edges have
/// no stable ids until the certificate is materialized).
struct SketchEdge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
};

class SketchConnectivity {
 public:
  SketchConnectivity(int n, const SketchOptions& opt = {});

  /// Sketch copies each vertex holds for (n, opt) — the bank shape formula,
  /// exposed so decoders (sketch_io) can size-check a buffer before
  /// constructing anything.
  static int total_copies_for(int n, const SketchOptions& opt);

  /// Edge multiplicity change: delta = +1 insert, -1 delete. Updates both
  /// endpoint sketch arrays.
  void update(VertexId u, VertexId v, int delta);

  /// Applies a batch of directed halves to src's sketch array only — the
  /// multi-inserter entry point used by apply_batched(). Every undirected
  /// update must eventually reach both endpoints.
  void apply_batch(VertexId src, std::span<const VertexDelta> deltas);

  /// Same vertex count, seed and sketch shape (merge precondition). Copy
  /// seeds are split deterministically from opt.seed (split_seed), so two
  /// banks built anywhere — another thread, another process, a decoded
  /// sketch_io buffer — are compatible iff their (n, options) agree.
  bool compatible(const SketchConnectivity& other) const;

  /// Bucket-wise sum of every per-vertex copy: afterwards this bank
  /// sketches the union (signed multiset sum) of both update streams.
  /// Requires compatible() and equal copies_used() — merging is an
  /// ingestion-time operation, performed before recovery consumes copies.
  void merge(const SketchConnectivity& other);

  /// Recovers a maximal spanning forest of the currently-sketched graph
  /// (Borůvka on sketches), consuming one sketch copy per round.
  std::vector<SketchEdge> spanning_forest();

  /// Peels k edge-disjoint spanning forests F_1..F_k, F_i a maximal
  /// spanning forest of G \ (F_1 ∪ … ∪ F_{i-1}). Requires k <= max_forests.
  std::vector<std::vector<SketchEdge>> k_spanning_forests(int k);

  int num_vertices() const { return n_; }
  const SketchOptions& options() const { return opt_; }
  int copies_used() const { return cursor_; }
  int copies_total() const { return static_cast<int>(sketches_.empty() ? 0 : sketches_[0].size()); }

 private:
  friend struct SketchIoAccess;  // sketch_io.cpp: raw bucket encode/decode
  std::uint64_t encode(VertexId lo, VertexId hi) const;
  SketchEdge decode(std::uint64_t index) const;
  /// Deletes a recovered forest edge from every still-unused copy so later
  /// forests see the peeled graph.
  void erase_from_unused(const SketchEdge& e);

  int n_ = 0;
  SketchOptions opt_;
  int copies_per_forest_ = 0;
  int cursor_ = 0;                            // next unused copy index
  std::vector<std::vector<L0Sampler>> sketches_;  // [vertex][copy]
};

/// Streaming sparsification front-end: ingest the stream (batched), peel k
/// forests, and materialize the certificate as a unit-weight deck::Graph on
/// the same vertex set — ready to wrap in a Network and feed to the CONGEST
/// algorithms. opt.max_forests is overridden with k.
struct SparsifyResult {
  Graph certificate;
  std::vector<std::vector<SketchEdge>> forests;
  int copies_used = 0;
};
SparsifyResult sparsify_stream(const GraphStream& stream, int k, const SketchOptions& opt = {});

}  // namespace deck
