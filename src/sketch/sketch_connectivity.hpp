#pragma once

// Spanning-forest recovery from linear sketches (Ahn–Guha–McGregor) and
// k-edge-disjoint forest peeling — a *streaming* Thurimella sparse
// certificate (ecss/thurimella.hpp) computed from insert/delete streams.
//
// Every vertex keeps ℓ₀ sketches of its signed edge-incidence vector: edge
// {u,v} with u < v contributes +1 at index enc(u,v) to u's vector and -1 to
// v's. Summing member sketches over a supernode therefore cancels internal
// edges and exposes exactly the cut, so Borůvka runs on sketches alone:
// each round, every component samples one cut edge and components merge.
// Sampling consumes randomness, so each vertex holds a fresh sketch *copy*
// per Borůvka round; k_spanning_forests rotates through k groups of copies
// (the Landscape repo's supernode-cycling trick) and, after peeling a
// forest, deletes its edges from all still-unused copies via linearity.
//
// Recovery parallelizes over supernodes (RecoveryOptions::threads): each
// Borůvka round partitions the per-supernode aggregation + sampling work
// across a thread pool. Bucket merging is wrapping integer addition —
// associative and commutative — and supernode samples are reduced into the
// contraction forest sequentially in deterministic slot order, so the
// recovered forests are bit-identical to the single-threaded path for any
// thread count.
//
// The union of the k peeled forests is a Thurimella certificate: ≤ k(n-1)
// edges, k-edge-connected whenever the streamed graph is (w.h.p. over the
// sketch seed). sparsify_stream() materializes it as a deck::Graph so the
// CONGEST pipeline (distributed_kecss / distributed_2ecss) runs on the
// O(kn)-edge sparsifier instead of the raw stream.
//
// Sketch sizing is either fixed (SketchOptions::columns / rounds_slack, the
// worst-case budget) or adaptive (SketchOptions::auto_size): the adaptive
// path starts from a deliberately small attempt sizing, observes per-round
// sampler-failure rates during recovery, and on non-convergence geometrically
// grows only the failing dimension — columns when samples failed, rounds
// slack when the round budget ran dry — re-ingesting and retrying *only the
// still-unrecovered forests* (completed forests and the partial forest are
// carried across attempts and peeled from the fresh bank by linearity).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sketch/apply.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/stream.hpp"

namespace deck {

class ThreadPool;

/// Adaptive sketch-sizing policy (SketchOptions::auto_size). When enabled,
/// sparsify_stream() / sharded_sparsify_stream() ignore the fixed
/// columns/rounds_slack and instead run an attempt loop: attempt a uses
/// seed split_seed(opt.seed, a) and the current sizing; a failed recovery
/// multiplies the failing dimension by `growth` and retries the forests
/// that did not complete. Every shard of an attempt derives the identical
/// sizing from the policy, so sharded and sequential adaptive runs agree.
struct AutoSizePolicy {
  bool enabled = false;
  /// Attempt-0 sizing, deliberately below the worst case.
  int initial_columns = 2;
  int initial_rounds_slack = 1;
  /// Multiplier applied to the failing dimension after a failed attempt.
  int growth = 2;
  /// Attempts before giving up (the last attempt's sizing is
  /// initial * growth^(max_attempts-1) in the grown dimension).
  int max_attempts = 6;

  friend bool operator==(const AutoSizePolicy&, const AutoSizePolicy&) = default;
};

struct SketchOptions {
  std::uint64_t seed = 1;
  /// Forest budget the per-vertex sketch arrays are sized for.
  int max_forests = 1;
  /// Independent ℓ₀ repetitions per sketch copy (failure ~ 2^-columns).
  int columns = 6;
  /// Borůvka rounds beyond ceil(log2 n) budgeted per forest; failed samples
  /// retry on the next round's fresh copies.
  int rounds_slack = 4;
  /// Adaptive sizing policy; disabled by default (fixed sizing above).
  AutoSizePolicy auto_size;
};

/// An undirected edge recovered from a sketch (no id — stream edges have
/// no stable ids until the certificate is materialized).
struct SketchEdge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
};

/// Knobs for the recovery (Borůvka-on-sketches) stage.
struct RecoveryOptions {
  /// Worker threads for per-round supernode aggregation + sampling. 1 runs
  /// inline; any value yields bit-identical forests.
  int threads = 1;
  /// Caller-owned pool to run on instead of constructing one per call
  /// (overrides `threads` when set) — how the ingest coordinator shares one
  /// ThreadPool across network receive, chunk assembly, and recovery. The
  /// pool must be otherwise idle for the duration of the call; any pool
  /// size yields bit-identical forests.
  ThreadPool* pool = nullptr;
};

/// Per-Borůvka-round accounting, the signal the adaptive sizing policy acts
/// on ("failure rate" = failures / components for rounds with components).
struct RoundStats {
  int components = 0;  // supernodes sampled this round (cut may be empty)
  int merges = 0;      // successful unions (forest edges added)
  int failures = 0;    // ℓ₀ samples that returned kFail
};

/// Aggregated recovery telemetry across one try_k_spanning_forests() call.
struct RecoveryStats {
  int rounds = 0;               // sketch copies consumed
  long long samples = 0;        // supernode samples drawn
  long long failures = 0;       // of which failed
  bool copies_exhausted = false;  // ran out of copies before converging
  /// Samples/failures within the last forest attempted — the failing one
  /// when !converged. The adaptive policy keys its growth decision on this
  /// forest's failure *rate*, not the attempt-wide totals (early forests'
  /// clean rounds would otherwise drown the signal).
  long long last_forest_samples = 0;
  long long last_forest_failures = 0;
  std::vector<RoundStats> per_round;
};

/// Result of try_k_spanning_forests(): the recovered forests (the last one
/// partial when !converged), convergence flag, and round telemetry. A failed
/// result can be fed back as `prior` to a fresh, larger bank to resume.
struct KForests {
  std::vector<std::vector<SketchEdge>> forests;
  bool converged = true;
  RecoveryStats stats;
};

class SketchConnectivity {
 public:
  SketchConnectivity(int n, const SketchOptions& opt = {});

  /// Sketch copies each vertex holds for (n, opt) — the bank shape formula,
  /// exposed so decoders (sketch_io) can size-check a buffer before
  /// constructing anything.
  static int total_copies_for(int n, const SketchOptions& opt);

  /// Edge multiplicity change: delta = +1 insert, -1 delete. Updates both
  /// endpoint sketch arrays.
  void update(VertexId u, VertexId v, int delta);

  /// Applies a batch of directed halves to src's sketch array only — the
  /// multi-inserter entry point used by apply_batched(). Every undirected
  /// update must eventually reach both endpoints. `backend` picks the
  /// execution strategy (sketch/apply.hpp): kScalar is the delta-major
  /// reference loop, kSimd translates the batch once and replays it over
  /// each copy as cache-resident batched column passes — bit-identical
  /// banks either way.
  void apply_batch(VertexId src, std::span<const VertexDelta> deltas,
                   ApplyBackend backend = ApplyBackend::kScalar);

  /// Same vertex count, seed and sketch shape (merge precondition). Copy
  /// seeds are split deterministically from opt.seed (split_seed), so two
  /// banks built anywhere — another thread, another process, a decoded
  /// sketch_io buffer — are compatible iff their (n, options) agree,
  /// auto-sizing policy included.
  bool compatible(const SketchConnectivity& other) const;

  /// Bucket-wise sum of every per-vertex copy: afterwards this bank
  /// sketches the union (signed multiset sum) of both update streams.
  /// Requires compatible() and equal copies_used() — merging is an
  /// ingestion-time operation, performed before recovery consumes copies.
  void merge(const SketchConnectivity& other);

  /// Recovers a maximal spanning forest of the currently-sketched graph
  /// (Borůvka on sketches), consuming one sketch copy per round. Throws on
  /// non-convergence.
  std::vector<SketchEdge> spanning_forest(const RecoveryOptions& ropt = {});

  /// Peels k edge-disjoint spanning forests F_1..F_k, F_i a maximal
  /// spanning forest of G \ (F_1 ∪ … ∪ F_{i-1}). Requires k <= max_forests.
  /// Throws on non-convergence.
  std::vector<std::vector<SketchEdge>> k_spanning_forests(int k, const RecoveryOptions& ropt = {});

  /// Non-throwing k-forest peel with telemetry. `prior` resumes a failed
  /// recovery on this (fresh — copies_used() == 0) bank: prior's completed
  /// forests are kept verbatim, their edges (and the partial forest's) are
  /// peeled from every copy by linearity, and recovery continues from the
  /// partial forest's contraction state — only the failing forests pay for
  /// the retry. The bank's max_forests budget must cover k minus the
  /// forests prior completed.
  KForests try_k_spanning_forests(int k, const RecoveryOptions& ropt = {},
                                  const KForests* prior = nullptr);

  int num_vertices() const { return n_; }
  const SketchOptions& options() const { return opt_; }
  int copies_used() const { return cursor_; }
  int copies_total() const { return static_cast<int>(sketches_.empty() ? 0 : sketches_[0].size()); }

 private:
  friend struct SketchIoAccess;  // sketch_io.cpp: raw bucket encode/decode
  std::uint64_t encode(VertexId lo, VertexId hi) const;
  SketchEdge decode(std::uint64_t index) const;
  /// Deletes a recovered forest edge from every copy at index >= from so
  /// later forests see the peeled graph.
  void erase_from_copies(const SketchEdge& e, int from);

  /// One maximal-forest Borůvka run, consuming up to copies_per_forest_
  /// copies. `forest`'s existing edges (a resumed partial forest; empty to
  /// start from singletons) seed the contraction state; recovered edges are
  /// appended after them and telemetry to `stats`. Returns convergence.
  /// `pool` is null for the inline single-thread path.
  bool grow_forest(std::vector<SketchEdge>& forest, ThreadPool* pool, RecoveryStats& stats);

  int n_ = 0;
  SketchOptions opt_;
  int copies_per_forest_ = 0;
  int cursor_ = 0;                            // next unused copy index
  std::vector<std::vector<L0Sampler>> sketches_;  // [vertex][copy]
};

/// Streaming sparsification front-end: ingest the stream (batched), peel k
/// forests, and materialize the certificate as a unit-weight deck::Graph on
/// the same vertex set — ready to wrap in a Network and feed to the CONGEST
/// algorithms. opt.max_forests is overridden with k. With
/// opt.auto_size.enabled, runs the adaptive attempt loop instead of the
/// fixed worst-case sizing.
struct SparsifyResult {
  Graph certificate;
  std::vector<std::vector<SketchEdge>> forests;
  int copies_used = 0;
  /// Ingest→recover attempts (1 unless auto-sizing retried).
  int attempts = 1;
  /// Sizing of the attempt that converged (== opt's fixed sizing when
  /// auto-sizing is off).
  int columns_used = 0;
  int rounds_slack_used = 0;
  /// Telemetry of the final attempt's recovery.
  RecoveryStats stats;
};

/// DEPRECATED wrapper over the GraphSession facade (serve/session.hpp):
/// opens a kSequential session, bulk-ingests `stream`, and queries once.
/// Bit-identical to the historical one-shot implementation for fixed seeds
/// (sketch linearity + deterministic recovery). New code should open a
/// GraphSession or call deck::ingest().
SparsifyResult sparsify_stream(const GraphStream& stream, int k, const SketchOptions& opt = {},
                               const RecoveryOptions& ropt = {});

/// Shared ingest→recover driver behind sparsify_stream() and
/// sharded_sparsify_stream(): `ingest` builds and fills a bank for one
/// attempt's options (the adaptive loop calls it once per attempt with
/// geometrically grown sizing and a split_seed-derived attempt seed).
SparsifyResult recover_certificate(
    int k, const SketchOptions& opt, const RecoveryOptions& ropt,
    const std::function<SketchConnectivity(const SketchOptions&)>& ingest);

}  // namespace deck
