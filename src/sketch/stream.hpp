#pragma once

// Dynamic graph streams: an ordered sequence of edge insertions/deletions
// over a fixed vertex set, the ingestion format of the streaming
// sparsification front-end (sketch_connectivity.hpp).
//
// A GraphStream validates itself as it is built — inserting a live edge or
// deleting an absent one throws — so the net effect is always a simple
// graph, recoverable via materialize() for ground-truth verification.
// apply_batched() regroups the stream into per-source batches (the
// multi-inserter pattern of the streaming-CC systems): each undirected
// update contributes one directed half at either endpoint, buffered under
// its source vertex and delivered as source-grouped runs — full batches as
// they fill mid-stream, remainders at the end. Sketch linearity makes the
// regrouped application equivalent to the in-order one;
// collect_batches() materializes the same delivery for parallel consumers.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

struct StreamUpdate {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  bool insert = true;  // false = delete
};

/// Packs edge {lo,hi} (lo < hi < n) into the [0, n²) index space shared by
/// GraphStream bookkeeping and the ℓ₀ edge-incidence sketches.
inline std::uint64_t encode_edge_index(VertexId lo, VertexId hi, int n) {
  DECK_ASSERT(0 <= lo && lo < hi && hi < n);
  return static_cast<std::uint64_t>(lo) * static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(hi);
}

/// Inverse of encode_edge_index.
inline std::pair<VertexId, VertexId> decode_edge_index(std::uint64_t index, int n) {
  return {static_cast<VertexId>(index / static_cast<std::uint64_t>(n)),
          static_cast<VertexId>(index % static_cast<std::uint64_t>(n))};
}

/// One directed half of an undirected update, grouped by its source vertex
/// for batch appliers. delta is +1 (insert) or -1 (delete).
struct VertexDelta {
  VertexId dst = kNoVertex;
  int delta = 0;
};

class GraphStream {
 public:
  explicit GraphStream(int n);

  /// The edges of g as one insertion each, in edge-id order.
  static GraphStream from_graph(const Graph& g);

  /// Same, in a random order.
  static GraphStream from_graph(const Graph& g, Rng& rng);

  /// Appends the insertion of edge {u,v}. Throws if the edge is live.
  void insert(VertexId u, VertexId v);

  /// Appends the deletion of edge {u,v}. Throws if the edge is not live.
  void erase(VertexId u, VertexId v);

  /// Appends `pairs` insert/delete churn pairs of random transient edges,
  /// interleaved among themselves; the net effect on the final graph is
  /// zero. Exercises the cancellation path of linear sketches.
  void churn(int pairs, Rng& rng);

  int num_vertices() const { return n_; }
  std::size_t size() const { return updates_.size(); }
  const std::vector<StreamUpdate>& updates() const { return updates_; }

  /// Replay-from-offset view: the updates appended at or after `cursor`, in
  /// append order. A long-lived session records the cursor at each query
  /// point and folds only the post-query deltas instead of re-scanning the
  /// whole stream. `cursor` may equal size() (empty span); beyond it throws.
  /// The span is invalidated by the next append.
  std::span<const StreamUpdate> updates_since(std::size_t cursor) const;

  /// Number of edges present after the whole stream.
  std::size_t live_edges() const { return live_.size(); }

  /// The net graph (all weights `w`) — ground truth for verification.
  Graph materialize(Weight w = 1) const;

 private:
  std::uint64_t key(VertexId u, VertexId v) const;
  void check_endpoints(VertexId u, VertexId v) const;

  int n_ = 0;
  std::vector<StreamUpdate> updates_;
  std::unordered_set<std::uint64_t> live_;
};

/// Streams the updates into `apply(src, std::span<const VertexDelta>)` in
/// per-source batches of at most batch_size halves. Delivery order: a
/// source's buffer is flushed the moment it reaches batch_size — so full
/// batches from different sources interleave in stream order — and the
/// partial buffers remaining at end of stream are flushed in ascending
/// source order. Within one source, halves always arrive in stream order,
/// and both halves of every update are delivered exactly once; sketch
/// linearity makes any such regrouping merge to the bank an in-order
/// applier would build. collect_batches() below materializes this exact
/// delivery as SourceBatch values — the batch list the sharded and
/// serving layers distribute.
template <typename Applier>
void apply_batched(const GraphStream& s, std::size_t batch_size, Applier&& apply) {
  DECK_CHECK(batch_size >= 1);
  const int n = s.num_vertices();
  std::vector<std::vector<VertexDelta>> pending(static_cast<std::size_t>(n));
  auto flush = [&](VertexId src) {
    auto& buf = pending[static_cast<std::size_t>(src)];
    if (buf.empty()) return;
    apply(src, std::span<const VertexDelta>(buf.data(), buf.size()));
    buf.clear();
  };
  auto push = [&](VertexId src, VertexId dst, int delta) {
    auto& buf = pending[static_cast<std::size_t>(src)];
    buf.push_back({dst, delta});
    if (buf.size() >= batch_size) flush(src);
  };
  for (const StreamUpdate& u : s.updates()) {
    const int delta = u.insert ? 1 : -1;
    push(u.u, u.v, delta);
    push(u.v, u.u, delta);
  }
  for (VertexId v = 0; v < n; ++v) flush(v);
}

/// One materialized per-source batch, the unit of work the sharded ingestion
/// layer distributes: all deltas share the source vertex `src`.
struct SourceBatch {
  VertexId src = kNoVertex;
  std::vector<VertexDelta> deltas;
};

/// Materializes the apply_batched() delivery as a vector of SourceBatch, in
/// the exact order apply_batched would deliver them (so per-source order is
/// preserved and both halves of every update appear exactly once). This is
/// the handoff point between a GraphStream and parallel consumers.
std::vector<SourceBatch> collect_batches(const GraphStream& s, std::size_t batch_size);

/// Thread-safe work queue over a fixed set of batches. Claiming is a single
/// atomic fetch_add — wait-free, no locks — and every batch is handed out
/// exactly once across any number of claiming threads. The queue does not
/// own synchronization of what consumers *do* with a batch; the sharded
/// ingestion layer gives each worker a private sketch bank so none is
/// needed.
class BatchQueue {
 public:
  explicit BatchQueue(std::vector<SourceBatch> batches) : batches_(std::move(batches)) {}

  /// Next unclaimed batch, or nullptr when the queue is drained. The
  /// returned pointer stays valid for the queue's lifetime.
  const SourceBatch* try_pop() {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    return i < batches_.size() ? &batches_[i] : nullptr;
  }

  std::size_t size() const { return batches_.size(); }
  std::size_t claimed() const {
    return std::min(next_.load(std::memory_order_relaxed), batches_.size());
  }

 private:
  std::vector<SourceBatch> batches_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace deck
