#pragma once

// Versioned binary serialization for ℓ₀ sketches and sketch banks — the
// wire format that lets ingestion shards live in separate processes: each
// shard sketches its slice of the stream, encodes its bank, and ships the
// bytes; the coordinator decodes and merges (sketch addition) to obtain
// exactly the state a single ingester would have built.
//
// Format properties:
//   - Endian-stable: every field is encoded little-endian byte-by-byte, so
//     buffers are portable across hosts regardless of native endianness.
//   - Versioned: a magic tag + format version head every buffer; decoders
//     reject unknown magic and version skew instead of misparsing.
//   - Corruption-safe: an FNV-1a checksum trails every buffer, and decode
//     validates length, checksum, header ranges, and payload size before
//     allocating or touching bucket data. Truncated, bit-flipped, or
//     malicious buffers raise SketchIoError — never UB, never OOM from a
//     forged header. Error messages name the failing field and its byte
//     offset so a bad buffer can be diagnosed from the exception alone.
//   - Minimal: bucket contents only. Hash salts and per-copy seeds are
//     re-derived from the header's (seed, shape) via the same split_seed
//     path the constructor uses, which doubles as a compatibility check.
//   - Chunkable (v3): a bank can be shipped as a framed stream of
//     per-vertex-range chunks, each independently checksummed and
//     self-describing, so a coordinator merges them as they arrive
//     (BankAssembler) instead of buffering whole banks — the streaming
//     transport path under src/net/.
//
// decode_* returns a value or throws SketchIoError; encode_* cannot fail.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sketch/l0_sampler.hpp"
#include "sketch/sketch_connectivity.hpp"

namespace deck {

/// Malformed, truncated, corrupted, or version-skewed buffer.
class SketchIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialization format version written into every buffer. Bump on any
/// layout change. Decoders accept every version up to this one:
///   v1 — fixed sizing only (no auto-size policy in the bank header).
///   v2 — bank header additionally carries the AutoSizePolicy (enabled,
///        initial_columns, initial_rounds_slack, growth, max_attempts), so
///        shipped shard banks prove which sizing schedule built them.
///   v3 — bank header additionally carries chunk metadata (source_id,
///        chunk_index, chunk_count, vertex_begin, vertex_end): every buffer
///        is a chunk covering a contiguous vertex range, and a whole bank is
///        the degenerate single chunk [0, n). Partial chunks are assembled
///        incrementally by BankAssembler; decode_bank() accepts only
///        whole-bank buffers (v1/v2, or a full-range v3 chunk).
/// Decoding validates size metadata *against the declared version*: a v1
/// buffer carrying v2/v3 header bytes (or vice versa) fails the exact
/// payload-size check, and header fields outside their legal ranges are
/// rejected before any allocation.
inline constexpr std::uint32_t kSketchIoVersion = 3;

/// Encodes one ℓ₀ sampler: header (universe, seed, columns) + raw buckets.
std::vector<std::uint8_t> encode_sampler(const L0Sampler& s);

/// Inverse of encode_sampler. Throws SketchIoError on any invalid input.
L0Sampler decode_sampler(std::span<const std::uint8_t> bytes);

/// Encodes a whole per-vertex sketch bank: header (n, SketchOptions,
/// recovery cursor, full-range chunk metadata) + raw buckets of every copy
/// of every vertex.
std::vector<std::uint8_t> encode_bank(const SketchConnectivity& bank);

/// Inverse of encode_bank. Accepts v1/v2 whole-bank buffers and v3 buffers
/// whose chunk covers the full vertex range; a partial v3 chunk raises
/// SketchIoError (feed it to a BankAssembler instead). Throws SketchIoError
/// on any invalid input.
SketchConnectivity decode_bank(std::span<const std::uint8_t> bytes);

/// Decodes a shipped shard bank and merges it into `into` (sketch
/// addition). Throws SketchIoError on a bad buffer and std::logic_error if
/// the decoded bank is incompatible with `into`.
void merge_encoded(SketchConnectivity& into, std::span<const std::uint8_t> bytes);

/// Chunked (v3) bank shipping — how a bank is split into framed chunks.
struct ChunkOptions {
  /// Identity of the shipping shard/worker, carried in every chunk header so
  /// an assembler receiving interleaved streams can tell retransmissions
  /// (same source, same index — idempotent) from distinct shards' chunks of
  /// the same vertex range (merged by sketch addition).
  std::uint32_t source_id = 0;
  /// Vertices per chunk; 0 derives it from target_chunk_bytes. The final
  /// chunk of a bank may be smaller.
  int vertices_per_chunk = 0;
  /// Soft chunk-size target (payload bytes) used when vertices_per_chunk is
  /// 0 — the knob that bounds peak coordinator memory per buffered chunk.
  std::size_t target_chunk_bytes = 64 * 1024;
};

/// Parsed chunk header — everything needed to route, dedupe, and
/// compatibility-check a chunk without touching its payload.
struct ChunkInfo {
  std::uint32_t version = 0;
  int n = 0;
  SketchOptions options;
  int cursor = 0;
  std::uint32_t source_id = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 1;
  VertexId vertex_begin = 0;
  VertexId vertex_end = 0;  // exclusive; whole-bank buffers cover [0, n)
};

/// Splits `bank` into ceil(n / vertices_per_chunk) independently
/// checksummed, self-describing v3 chunks covering consecutive vertex
/// ranges. Chunks may be shipped and assembled in any order; an empty bank
/// (n == 0) still yields one (empty-range) chunk so receivers can detect
/// completion uniformly.
std::vector<std::vector<std::uint8_t>> encode_bank_chunks(const SketchConnectivity& bank,
                                                          const ChunkOptions& copt = {});

/// Validates a buffer's checksum + header and returns the parsed chunk
/// metadata without decoding the payload. v1/v2 whole-bank buffers report
/// the implied full-range chunk. Throws SketchIoError on any invalid input.
ChunkInfo peek_chunk(std::span<const std::uint8_t> bytes);

/// Incremental chunk-stream assembler — the coordinator-side endpoint of
/// chunked bank shipping. Construct with the expected (n, SketchOptions),
/// then add_chunk() every arriving buffer (any order, any interleaving of
/// sources); each chunk's buckets are merged into the assembling bank by
/// sketch addition immediately, so peak memory is one bank plus one chunk
/// instead of one bank per shard. When every announced source has delivered
/// all of its chunks (complete()), take() yields the merged bank —
/// bit-identical to decoding and merging the sources' whole banks.
///
/// Fault behavior: corrupt/truncated/incompatible chunks throw
/// SketchIoError and leave the assembler unchanged; an exact retransmission
/// (same source, same chunk index) is ignored (add_chunk returns false), so
/// a resumed sender can replay chunks safely; a source whose chunks
/// disagree on chunk_count or overlap in vertex range is rejected.
class BankAssembler {
 public:
  BankAssembler(int n, const SketchOptions& opt);

  /// Merges one shipped chunk (v3) or whole bank (v1/v2, treated as its
  /// single full-range chunk). Returns false for an already-received
  /// (source, chunk_index) pair, true when the chunk was merged.
  bool add_chunk(std::span<const std::uint8_t> bytes);

  /// True when at least one source announced itself and every announced
  /// source has delivered all chunk_count of its chunks.
  bool complete() const;

  std::size_t chunks_received() const { return chunks_received_; }
  std::size_t sources_seen() const { return sources_.size(); }

  /// The assembled bank. Requires complete(); the assembler must not be
  /// used afterwards.
  SketchConnectivity take();

 private:
  struct Source {
    std::uint32_t chunk_count = 0;
    std::vector<bool> received;
    std::vector<std::pair<VertexId, VertexId>> ranges;  // per chunk_index
    std::size_t remaining = 0;
    /// Announced by a pre-v3 whole-bank buffer (no real source identity):
    /// any further whole bank under the same implied source is ambiguous.
    bool legacy = false;
  };

  SketchConnectivity bank_;
  std::vector<std::pair<std::uint32_t, Source>> sources_;  // by source_id
  std::size_t chunks_received_ = 0;
  bool cursor_set_ = false;
};

}  // namespace deck
