#pragma once

// Versioned binary serialization for ℓ₀ sketches and sketch banks — the
// wire format that lets ingestion shards live in separate processes: each
// shard sketches its slice of the stream, encodes its bank, and ships the
// bytes; the coordinator decodes and merges (sketch addition) to obtain
// exactly the state a single ingester would have built.
//
// Format properties:
//   - Endian-stable: every field is encoded little-endian byte-by-byte, so
//     buffers are portable across hosts regardless of native endianness.
//   - Versioned: a magic tag + format version head every buffer; decoders
//     reject unknown magic and version skew instead of misparsing.
//   - Corruption-safe: an FNV-1a checksum trails every buffer, and decode
//     validates length, checksum, header ranges, and payload size before
//     allocating or touching bucket data. Truncated, bit-flipped, or
//     malicious buffers raise SketchIoError — never UB, never OOM from a
//     forged header.
//   - Minimal: bucket contents only. Hash salts and per-copy seeds are
//     re-derived from the header's (seed, shape) via the same split_seed
//     path the constructor uses, which doubles as a compatibility check.
//
// decode_* returns a value or throws SketchIoError; encode_* cannot fail.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sketch/l0_sampler.hpp"
#include "sketch/sketch_connectivity.hpp"

namespace deck {

/// Malformed, truncated, corrupted, or version-skewed buffer.
class SketchIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialization format version written into every buffer. Bump on any
/// layout change. Decoders accept every version up to this one:
///   v1 — fixed sizing only (no auto-size policy in the bank header).
///   v2 — bank header additionally carries the AutoSizePolicy (enabled,
///        initial_columns, initial_rounds_slack, growth, max_attempts), so
///        shipped shard banks prove which sizing schedule built them.
/// Decoding validates size metadata *against the declared version*: a v1
/// buffer carrying v2 policy bytes (or a v2 buffer without them) fails the
/// exact payload-size check, and v2 policy fields outside their legal
/// ranges are rejected before any allocation.
inline constexpr std::uint32_t kSketchIoVersion = 2;

/// Encodes one ℓ₀ sampler: header (universe, seed, columns) + raw buckets.
std::vector<std::uint8_t> encode_sampler(const L0Sampler& s);

/// Inverse of encode_sampler. Throws SketchIoError on any invalid input.
L0Sampler decode_sampler(std::span<const std::uint8_t> bytes);

/// Encodes a whole per-vertex sketch bank: header (n, SketchOptions,
/// recovery cursor) + raw buckets of every copy of every vertex.
std::vector<std::uint8_t> encode_bank(const SketchConnectivity& bank);

/// Inverse of encode_bank. Throws SketchIoError on any invalid input.
SketchConnectivity decode_bank(std::span<const std::uint8_t> bytes);

/// Decodes a shipped shard bank and merges it into `into` (sketch
/// addition). Throws SketchIoError on a bad buffer and std::logic_error if
/// the decoded bank is incompatible with `into`.
void merge_encoded(SketchConnectivity& into, std::span<const std::uint8_t> bytes);

}  // namespace deck
