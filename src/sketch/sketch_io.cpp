#include "sketch/sketch_io.hpp"

#include <cstddef>

#include "support/check.hpp"

namespace deck {

/// Private-member bridge for the codec: the only code outside the classes
/// that touches raw buckets, so the wire format stays in one translation
/// unit.
struct SketchIoAccess {
  static const std::vector<L0Sampler::Bucket>& buckets(const L0Sampler& s) { return s.buckets_; }
  static std::vector<L0Sampler::Bucket>& buckets(L0Sampler& s) { return s.buckets_; }
  static const std::vector<std::vector<L0Sampler>>& sketches(const SketchConnectivity& b) {
    return b.sketches_;
  }
  static std::vector<std::vector<L0Sampler>>& sketches(SketchConnectivity& b) {
    return b.sketches_;
  }
  static void set_cursor(SketchConnectivity& b, int cursor) { b.cursor_ = cursor; }
};

namespace {

// Magic tags: 8 ASCII bytes, written verbatim so a hexdump identifies the
// buffer kind ("DECKSKS1" = sampler, "DECKSKB1" = bank).
constexpr std::uint8_t kSamplerMagic[8] = {'D', 'E', 'C', 'K', 'S', 'K', 'S', '1'};
constexpr std::uint8_t kBankMagic[8] = {'D', 'E', 'C', 'K', 'S', 'K', 'B', '1'};

constexpr std::size_t kBucketBytes = 24;  // i64 count, i64 index_sum, u64 fingerprint
constexpr std::size_t kChecksumBytes = 8;
constexpr std::size_t kSamplerHeaderBytes = 8 + 4 + 4 + 8 + 8;  // magic ver columns universe seed
// magic ver n seed max_forests columns rounds_slack cursor
constexpr std::size_t kBankHeaderBytesV1 = 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4;
// v2 appends the auto-size policy: enabled initial_columns
// initial_rounds_slack growth max_attempts
constexpr std::size_t kBankHeaderBytes = kBankHeaderBytesV1 + 5 * 4;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_bucket(std::vector<std::uint8_t>& out, const L0Sampler::Bucket& b) {
  put_i64(out, b.count);
  put_i64(out, b.index_sum);
  put_u64(out, b.fingerprint);
}

void put_checksum(std::vector<std::uint8_t>& out) {
  put_u64(out, fnv1a(std::span<const std::uint8_t>(out.data(), out.size())));
}

/// Bounds-checked little-endian cursor. Every decode failure funnels
/// through fail() so a malformed buffer can only ever raise SketchIoError.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[noreturn]] static void fail(const std::string& what) {
    throw SketchIoError("sketch_io: " + what);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void expect_magic(const std::uint8_t (&magic)[8]) {
    need(8);
    for (int i = 0; i < 8; ++i)
      if (bytes_[pos_ + static_cast<std::size_t>(i)] != magic[i])
        fail("bad magic — not a sketch buffer of this kind");
    pos_ += 8;
  }

  L0Sampler::Bucket bucket() {
    L0Sampler::Bucket b;
    b.count = i64();
    b.index_sum = i64();
    b.fingerprint = u64();
    return b;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t k) {
    if (bytes_.size() - pos_ < k) fail("truncated buffer");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Shared prologue: overall length, trailing checksum, magic, version. After
/// this, header fields can be read but payload sizes still need validation.
/// Accepts every format version in [1, kSketchIoVersion] and reports the
/// buffer's via `version` — the caller decodes (and size-checks) the header
/// the *declared* version prescribes, never the newest one.
Reader open_checked(std::span<const std::uint8_t> bytes, const std::uint8_t (&magic)[8],
                    std::size_t min_header_bytes, std::uint32_t& version) {
  if (bytes.size() < min_header_bytes + kChecksumBytes) Reader::fail("truncated buffer");
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - kChecksumBytes);
  Reader tail(bytes.subspan(bytes.size() - kChecksumBytes));
  if (fnv1a(body) != tail.u64()) Reader::fail("checksum mismatch — corrupted buffer");
  Reader r(body);
  r.expect_magic(magic);
  version = r.u32();
  if (version < 1 || version > kSketchIoVersion)
    Reader::fail("version skew: buffer v" + std::to_string(version) + ", codec v" +
                 std::to_string(kSketchIoVersion));
  return r;
}

/// Exact payload check without constructing: forged headers must fail on
/// arithmetic, not on a giant allocation. 128-bit so the product can't wrap.
void check_payload(std::size_t remaining, unsigned __int128 expected_buckets) {
  if (expected_buckets * kBucketBytes != static_cast<unsigned __int128>(remaining))
    Reader::fail("payload size does not match header shape");
}

}  // namespace

std::vector<std::uint8_t> encode_sampler(const L0Sampler& s) {
  std::vector<std::uint8_t> out;
  const auto& buckets = SketchIoAccess::buckets(s);
  out.reserve(kSamplerHeaderBytes + buckets.size() * kBucketBytes + kChecksumBytes);
  out.insert(out.end(), kSamplerMagic, kSamplerMagic + 8);
  put_u32(out, kSketchIoVersion);
  put_u32(out, static_cast<std::uint32_t>(s.columns()));
  put_u64(out, s.universe());
  put_u64(out, s.seed());
  for (const auto& b : buckets) put_bucket(out, b);
  put_checksum(out);
  return out;
}

L0Sampler decode_sampler(std::span<const std::uint8_t> bytes) {
  // The sampler layout is identical in v1 and v2; only the bank header grew.
  std::uint32_t version = 0;
  Reader r = open_checked(bytes, kSamplerMagic, kSamplerHeaderBytes, version);
  const std::uint32_t columns = r.u32();
  const std::uint64_t universe = r.u64();
  const std::uint64_t seed = r.u64();
  if (columns < 1 || columns > (1u << 16)) Reader::fail("columns out of range");
  if (universe < 1) Reader::fail("universe out of range");
  const auto levels = static_cast<unsigned __int128>(L0Sampler::levels_for(universe));
  check_payload(r.remaining(), static_cast<unsigned __int128>(columns) * levels);
  L0Sampler s(universe, seed, static_cast<int>(columns));
  for (auto& b : SketchIoAccess::buckets(s)) b = r.bucket();
  return s;
}

std::vector<std::uint8_t> encode_bank(const SketchConnectivity& bank) {
  const SketchOptions& opt = bank.options();
  const auto n = static_cast<std::size_t>(bank.num_vertices());
  const std::uint64_t universe = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n) * n);
  const auto buckets =
      n * static_cast<std::size_t>(SketchConnectivity::total_copies_for(bank.num_vertices(), opt)) *
      static_cast<std::size_t>(opt.columns) *
      static_cast<std::size_t>(L0Sampler::levels_for(universe));
  std::vector<std::uint8_t> out;
  out.reserve(kBankHeaderBytes + buckets * kBucketBytes + kChecksumBytes);
  out.insert(out.end(), kBankMagic, kBankMagic + 8);
  put_u32(out, kSketchIoVersion);
  put_u32(out, static_cast<std::uint32_t>(bank.num_vertices()));
  put_u64(out, opt.seed);
  put_u32(out, static_cast<std::uint32_t>(opt.max_forests));
  put_u32(out, static_cast<std::uint32_t>(opt.columns));
  put_u32(out, static_cast<std::uint32_t>(opt.rounds_slack));
  put_u32(out, static_cast<std::uint32_t>(bank.copies_used()));
  put_u32(out, opt.auto_size.enabled ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.initial_columns));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.initial_rounds_slack));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.growth));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.max_attempts));
  for (const auto& copies : SketchIoAccess::sketches(bank))
    for (const L0Sampler& s : copies)
      for (const auto& b : SketchIoAccess::buckets(s)) put_bucket(out, b);
  put_checksum(out);
  return out;
}

SketchConnectivity decode_bank(std::span<const std::uint8_t> bytes) {
  std::uint32_t version = 0;
  Reader r = open_checked(bytes, kBankMagic, kBankHeaderBytesV1, version);
  const std::uint32_t n = r.u32();
  SketchOptions opt;
  opt.seed = r.u64();
  const std::uint32_t max_forests = r.u32();
  const std::uint32_t columns = r.u32();
  const std::uint32_t rounds_slack = r.u32();
  const std::uint32_t cursor = r.u32();
  if (n > (1u << 30)) Reader::fail("vertex count out of range");
  if (max_forests < 1 || max_forests > (1u << 16)) Reader::fail("max_forests out of range");
  if (columns < 1 || columns > (1u << 16)) Reader::fail("columns out of range");
  if (rounds_slack < 1 || rounds_slack > (1u << 16)) Reader::fail("rounds_slack out of range");
  opt.max_forests = static_cast<int>(max_forests);
  opt.columns = static_cast<int>(columns);
  opt.rounds_slack = static_cast<int>(rounds_slack);
  if (version >= 2) {
    // v2 size metadata: the policy block exists iff the header says v2, and
    // its fields must be self-consistent — a flag beyond {0,1} or a sizing
    // field outside its legal range is corruption, not configuration.
    const std::uint32_t enabled = r.u32();
    const std::uint32_t initial_columns = r.u32();
    const std::uint32_t initial_rounds_slack = r.u32();
    const std::uint32_t growth = r.u32();
    const std::uint32_t max_attempts = r.u32();
    if (enabled > 1) Reader::fail("auto-size flag out of range for a v2 buffer");
    if (initial_columns < 1 || initial_columns > (1u << 16))
      Reader::fail("auto-size initial_columns out of range");
    if (initial_rounds_slack < 1 || initial_rounds_slack > (1u << 16))
      Reader::fail("auto-size initial_rounds_slack out of range");
    if (growth < 2 || growth > (1u << 16)) Reader::fail("auto-size growth out of range");
    if (max_attempts < 1 || max_attempts > (1u << 16))
      Reader::fail("auto-size max_attempts out of range");
    opt.auto_size.enabled = enabled == 1;
    opt.auto_size.initial_columns = static_cast<int>(initial_columns);
    opt.auto_size.initial_rounds_slack = static_cast<int>(initial_rounds_slack);
    opt.auto_size.growth = static_cast<int>(growth);
    opt.auto_size.max_attempts = static_cast<int>(max_attempts);
  }

  const std::uint64_t universe =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  const auto total = static_cast<unsigned __int128>(
      SketchConnectivity::total_copies_for(static_cast<int>(n), opt));
  const auto levels = static_cast<unsigned __int128>(L0Sampler::levels_for(universe));
  check_payload(r.remaining(), static_cast<unsigned __int128>(n) * total *
                                   static_cast<unsigned __int128>(columns) * levels);
  if (cursor > static_cast<std::uint64_t>(total)) Reader::fail("recovery cursor out of range");

  SketchConnectivity bank(static_cast<int>(n), opt);
  for (auto& copies : SketchIoAccess::sketches(bank))
    for (L0Sampler& s : copies)
      for (auto& b : SketchIoAccess::buckets(s)) b = r.bucket();
  SketchIoAccess::set_cursor(bank, static_cast<int>(cursor));
  return bank;
}

void merge_encoded(SketchConnectivity& into, std::span<const std::uint8_t> bytes) {
  into.merge(decode_bank(bytes));
}

}  // namespace deck
