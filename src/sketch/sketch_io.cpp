#include "sketch/sketch_io.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "support/check.hpp"

namespace deck {

/// Private-member bridge for the codec: the only code outside the classes
/// that touches raw buckets, so the wire format stays in one translation
/// unit.
///
/// Wire order vs storage order: every format version emits a sampler's
/// buckets *column-major* (column c's levels 0..L-1, then column c+1) —
/// the original in-memory layout. The sampler now stores its bucket fields
/// structure-of-arrays in level-major rows (l0_sampler.hpp), so the
/// accessors below translate wire index → storage slot; encoded bytes are
/// byte-identical to pre-SoA buffers and old buffers decode unchanged.
struct SketchIoAccess {
  static std::size_t num_buckets(const L0Sampler& s) { return s.count_.size(); }
  /// Storage slot of wire (column-major) bucket index i.
  static std::size_t slot(const L0Sampler& s, std::size_t i) {
    const auto levels = static_cast<std::size_t>(s.levels_);
    return s.slot(static_cast<int>(i / levels), static_cast<int>(i % levels));
  }
  static L0Sampler::Bucket bucket(const L0Sampler& s, std::size_t i) {
    const std::size_t at = slot(s, i);
    return {s.count_[at], s.index_sum_[at], s.fingerprint_[at]};
  }
  static void set_bucket(L0Sampler& s, std::size_t i, const L0Sampler::Bucket& b) {
    const std::size_t at = slot(s, i);
    s.count_[at] = b.count;
    s.index_sum_[at] = b.index_sum;
    s.fingerprint_[at] = b.fingerprint;
  }
  static const std::vector<std::vector<L0Sampler>>& sketches(const SketchConnectivity& b) {
    return b.sketches_;
  }
  static std::vector<std::vector<L0Sampler>>& sketches(SketchConnectivity& b) {
    return b.sketches_;
  }
  static void set_cursor(SketchConnectivity& b, int cursor) { b.cursor_ = cursor; }
};

namespace {

// Magic tags: 8 ASCII bytes, written verbatim so a hexdump identifies the
// buffer kind ("DECKSKS1" = sampler, "DECKSKB1" = bank/chunk).
constexpr std::uint8_t kSamplerMagic[8] = {'D', 'E', 'C', 'K', 'S', 'K', 'S', '1'};
constexpr std::uint8_t kBankMagic[8] = {'D', 'E', 'C', 'K', 'S', 'K', 'B', '1'};

constexpr std::size_t kBucketBytes = 24;  // i64 count, i64 index_sum, u64 fingerprint
constexpr std::size_t kChecksumBytes = 8;
constexpr std::size_t kSamplerHeaderBytes = 8 + 4 + 4 + 8 + 8;  // magic ver columns universe seed
// magic ver n seed max_forests columns rounds_slack cursor
constexpr std::size_t kBankHeaderBytesV1 = 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4;
// v2 appends the auto-size policy: enabled initial_columns
// initial_rounds_slack growth max_attempts
constexpr std::size_t kBankHeaderBytesV2 = kBankHeaderBytesV1 + 5 * 4;
// v3 appends the chunk block: source_id chunk_index chunk_count
// vertex_begin vertex_end
constexpr std::size_t kBankHeaderBytes = kBankHeaderBytesV2 + 5 * 4;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_bucket(std::vector<std::uint8_t>& out, const L0Sampler::Bucket& b) {
  put_i64(out, b.count);
  put_i64(out, b.index_sum);
  put_u64(out, b.fingerprint);
}

void put_checksum(std::vector<std::uint8_t>& out) {
  put_u64(out, fnv1a(std::span<const std::uint8_t>(out.data(), out.size())));
}

/// Bounds-checked little-endian cursor. Every decode failure funnels
/// through fail() so a malformed buffer can only ever raise SketchIoError,
/// and every message names the offset (and, via field(), the field) that
/// failed so a bad buffer is diagnosable from the exception alone.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[noreturn]] static void fail(const std::string& what) {
    throw SketchIoError("sketch_io: " + what);
  }

  /// Validation failure of a just-read header field: names the field, the
  /// offending value, and the byte offset it was read from.
  [[noreturn]] static void fail_field(const std::string& name, std::uint64_t value,
                                      std::size_t offset, const std::string& why) {
    fail("field '" + name + "' " + why + " (value " + std::to_string(value) + ", at byte offset " +
         std::to_string(offset) + ")");
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void expect_magic(const std::uint8_t (&magic)[8]) {
    need(8);
    for (int i = 0; i < 8; ++i)
      if (bytes_[pos_ + static_cast<std::size_t>(i)] != magic[i])
        fail("bad magic — not a sketch buffer of this kind (at byte offset " +
             std::to_string(pos_ + static_cast<std::size_t>(i)) + ")");
    pos_ += 8;
  }

  L0Sampler::Bucket bucket() {
    L0Sampler::Bucket b;
    b.count = i64();
    b.index_sum = i64();
    b.fingerprint = u64();
    return b;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t k) {
    if (bytes_.size() - pos_ < k)
      fail("truncated buffer: need " + std::to_string(k) + " byte(s) at offset " +
           std::to_string(pos_) + ", " + std::to_string(bytes_.size() - pos_) + " remain");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// A header field together with the offset it was read from, so later range
/// checks can blame the exact bytes.
struct Field {
  std::uint64_t value = 0;
  std::size_t offset = 0;
};

Field field32(Reader& r) {
  const std::size_t off = r.pos();
  return {r.u32(), off};
}

/// Fails unless lo <= f.value <= hi, blaming `name` at its offset.
void check_field(const std::string& name, const Field& f, std::uint64_t lo, std::uint64_t hi) {
  if (f.value < lo || f.value > hi)
    Reader::fail_field(name, f.value, f.offset,
                       "out of range [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
}

/// Shared prologue: overall length, trailing checksum, magic, version. After
/// this, header fields can be read but payload sizes still need validation.
/// Accepts every format version in [1, kSketchIoVersion] and reports the
/// buffer's via `version` — the caller decodes (and size-checks) the header
/// the *declared* version prescribes, never the newest one.
Reader open_checked(std::span<const std::uint8_t> bytes, const std::uint8_t (&magic)[8],
                    std::size_t min_header_bytes, std::uint32_t& version) {
  if (bytes.size() < min_header_bytes + kChecksumBytes)
    Reader::fail("truncated buffer: " + std::to_string(bytes.size()) + " byte(s), header needs " +
                 std::to_string(min_header_bytes + kChecksumBytes));
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - kChecksumBytes);
  Reader tail(bytes.subspan(bytes.size() - kChecksumBytes));
  if (fnv1a(body) != tail.u64())
    Reader::fail("checksum mismatch — corrupted buffer (trailer at byte offset " +
                 std::to_string(body.size()) + ")");
  Reader r(body);
  r.expect_magic(magic);
  const Field ver = field32(r);
  version = static_cast<std::uint32_t>(ver.value);
  if (version < 1 || version > kSketchIoVersion)
    Reader::fail("version skew: buffer v" + std::to_string(version) + ", codec v" +
                 std::to_string(kSketchIoVersion) + " (field 'version' at byte offset " +
                 std::to_string(ver.offset) + ")");
  return r;
}

/// Exact payload check without constructing: forged headers must fail on
/// arithmetic, not on a giant allocation. 128-bit so the product can't wrap.
void check_payload(const Reader& r, unsigned __int128 expected_buckets) {
  if (expected_buckets * kBucketBytes != static_cast<unsigned __int128>(r.remaining()))
    Reader::fail("payload size does not match header shape (" + std::to_string(r.remaining()) +
                 " byte(s) from offset " + std::to_string(r.pos()) + ", header implies " +
                 std::to_string(static_cast<std::uint64_t>(expected_buckets * kBucketBytes)) + ")");
}

/// Writes the v3 bank/chunk header. Whole banks are the degenerate chunk
/// 0 of 1 covering [0, n).
void put_bank_header(std::vector<std::uint8_t>& out, const SketchConnectivity& bank,
                     std::uint32_t source_id, std::uint32_t chunk_index, std::uint32_t chunk_count,
                     VertexId begin, VertexId end) {
  const SketchOptions& opt = bank.options();
  out.insert(out.end(), kBankMagic, kBankMagic + 8);
  put_u32(out, kSketchIoVersion);
  put_u32(out, static_cast<std::uint32_t>(bank.num_vertices()));
  put_u64(out, opt.seed);
  put_u32(out, static_cast<std::uint32_t>(opt.max_forests));
  put_u32(out, static_cast<std::uint32_t>(opt.columns));
  put_u32(out, static_cast<std::uint32_t>(opt.rounds_slack));
  put_u32(out, static_cast<std::uint32_t>(bank.copies_used()));
  put_u32(out, opt.auto_size.enabled ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.initial_columns));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.initial_rounds_slack));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.growth));
  put_u32(out, static_cast<std::uint32_t>(opt.auto_size.max_attempts));
  put_u32(out, source_id);
  put_u32(out, chunk_index);
  put_u32(out, chunk_count);
  put_u32(out, static_cast<std::uint32_t>(begin));
  put_u32(out, static_cast<std::uint32_t>(end));
}

/// Payload buckets a chunk covering `span_vertices` carries.
unsigned __int128 chunk_buckets(int n, const SketchOptions& opt, std::uint64_t span_vertices) {
  const std::uint64_t universe =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  const auto total = static_cast<unsigned __int128>(SketchConnectivity::total_copies_for(n, opt));
  const auto levels = static_cast<unsigned __int128>(L0Sampler::levels_for(universe));
  return static_cast<unsigned __int128>(span_vertices) * total *
         static_cast<unsigned __int128>(opt.columns) * levels;
}

/// Shared bank/chunk header parse + validation behind decode_bank(),
/// peek_chunk(), and BankAssembler::add_chunk(). On return the reader is
/// positioned at the payload, whose size has been checked against the
/// declared chunk range.
ChunkInfo open_bank_chunk(std::span<const std::uint8_t> bytes, Reader& out_reader) {
  std::uint32_t version = 0;
  Reader r = open_checked(bytes, kBankMagic, kBankHeaderBytesV1, version);
  ChunkInfo ci;
  ci.version = version;
  const Field n = field32(r);
  ci.options.seed = r.u64();
  const Field max_forests = field32(r);
  const Field columns = field32(r);
  const Field rounds_slack = field32(r);
  const Field cursor = field32(r);
  check_field("n", n, 0, 1u << 30);
  check_field("max_forests", max_forests, 1, 1u << 16);
  check_field("columns", columns, 1, 1u << 16);
  check_field("rounds_slack", rounds_slack, 1, 1u << 16);
  ci.n = static_cast<int>(n.value);
  ci.options.max_forests = static_cast<int>(max_forests.value);
  ci.options.columns = static_cast<int>(columns.value);
  ci.options.rounds_slack = static_cast<int>(rounds_slack.value);
  if (version >= 2) {
    // v2 size metadata: the policy block exists iff the header says v2+, and
    // its fields must be self-consistent — a flag beyond {0,1} or a sizing
    // field outside its legal range is corruption, not configuration.
    const Field enabled = field32(r);
    const Field initial_columns = field32(r);
    const Field initial_rounds_slack = field32(r);
    const Field growth = field32(r);
    const Field max_attempts = field32(r);
    check_field("auto-size enabled", enabled, 0, 1);
    check_field("auto-size initial_columns", initial_columns, 1, 1u << 16);
    check_field("auto-size initial_rounds_slack", initial_rounds_slack, 1, 1u << 16);
    check_field("auto-size growth", growth, 2, 1u << 16);
    check_field("auto-size max_attempts", max_attempts, 1, 1u << 16);
    ci.options.auto_size.enabled = enabled.value == 1;
    ci.options.auto_size.initial_columns = static_cast<int>(initial_columns.value);
    ci.options.auto_size.initial_rounds_slack = static_cast<int>(initial_rounds_slack.value);
    ci.options.auto_size.growth = static_cast<int>(growth.value);
    ci.options.auto_size.max_attempts = static_cast<int>(max_attempts.value);
  }
  if (version >= 3) {
    // v3 chunk block: which slice of which source's bank this buffer is.
    const Field source_id = field32(r);
    const Field chunk_index = field32(r);
    const Field chunk_count = field32(r);
    const Field vertex_begin = field32(r);
    const Field vertex_end = field32(r);
    // A chunk covers at least one vertex (except the n == 0 singleton), so
    // no honest encoder emits more than max(n, 1) chunks — and bounding the
    // count here keeps a forged tiny buffer from making an assembler
    // allocate per-chunk bookkeeping for 2^30 phantom chunks.
    check_field("chunk_count", chunk_count, 1, std::max<std::uint64_t>(n.value, 1));
    if (chunk_index.value >= chunk_count.value)
      Reader::fail_field("chunk_index", chunk_index.value, chunk_index.offset,
                         "not below chunk_count " + std::to_string(chunk_count.value));
    check_field("vertex_end", vertex_end, 0, n.value);
    if (vertex_begin.value > vertex_end.value)
      Reader::fail_field("vertex_begin", vertex_begin.value, vertex_begin.offset,
                         "beyond vertex_end " + std::to_string(vertex_end.value));
    ci.source_id = static_cast<std::uint32_t>(source_id.value);
    ci.chunk_index = static_cast<std::uint32_t>(chunk_index.value);
    ci.chunk_count = static_cast<std::uint32_t>(chunk_count.value);
    ci.vertex_begin = static_cast<VertexId>(vertex_begin.value);
    ci.vertex_end = static_cast<VertexId>(vertex_end.value);
  } else {
    // Pre-chunk buffers are whole banks: the implied full-range chunk.
    ci.source_id = 0;
    ci.chunk_index = 0;
    ci.chunk_count = 1;
    ci.vertex_begin = 0;
    ci.vertex_end = ci.n;
  }
  check_payload(r, chunk_buckets(ci.n, ci.options,
                                 static_cast<std::uint64_t>(ci.vertex_end - ci.vertex_begin)));
  const auto total =
      static_cast<std::uint64_t>(SketchConnectivity::total_copies_for(ci.n, ci.options));
  if (cursor.value > total)
    Reader::fail_field("cursor", cursor.value, cursor.offset,
                       "beyond the bank's " + std::to_string(total) + " copies");
  ci.cursor = static_cast<int>(cursor.value);
  out_reader = r;
  return ci;
}

/// Wrapping bucket addition, the same arithmetic as L0Sampler::merge — via
/// uint64 so a hostile payload can't trip signed-overflow UB.
void add_bucket(L0Sampler::Bucket& into, const L0Sampler::Bucket& b) {
  into.count = static_cast<std::int64_t>(static_cast<std::uint64_t>(into.count) +
                                         static_cast<std::uint64_t>(b.count));
  into.index_sum = static_cast<std::int64_t>(static_cast<std::uint64_t>(into.index_sum) +
                                             static_cast<std::uint64_t>(b.index_sum));
  into.fingerprint += b.fingerprint;
}

}  // namespace

std::vector<std::uint8_t> encode_sampler(const L0Sampler& s) {
  std::vector<std::uint8_t> out;
  const std::size_t buckets = SketchIoAccess::num_buckets(s);
  out.reserve(kSamplerHeaderBytes + buckets * kBucketBytes + kChecksumBytes);
  out.insert(out.end(), kSamplerMagic, kSamplerMagic + 8);
  put_u32(out, kSketchIoVersion);
  put_u32(out, static_cast<std::uint32_t>(s.columns()));
  put_u64(out, s.universe());
  put_u64(out, s.seed());
  for (std::size_t i = 0; i < buckets; ++i) put_bucket(out, SketchIoAccess::bucket(s, i));
  put_checksum(out);
  return out;
}

L0Sampler decode_sampler(std::span<const std::uint8_t> bytes) {
  // The sampler layout is identical across all versions; only the bank
  // header grew.
  std::uint32_t version = 0;
  Reader r = open_checked(bytes, kSamplerMagic, kSamplerHeaderBytes, version);
  const Field columns = field32(r);
  const std::size_t universe_offset = r.pos();
  const std::uint64_t universe = r.u64();
  const std::uint64_t seed = r.u64();
  check_field("columns", columns, 1, 1u << 16);
  if (universe < 1) Reader::fail_field("universe", universe, universe_offset, "must be positive");
  const auto levels = static_cast<unsigned __int128>(L0Sampler::levels_for(universe));
  check_payload(r, static_cast<unsigned __int128>(columns.value) * levels);
  L0Sampler s(universe, seed, static_cast<int>(columns.value));
  for (std::size_t i = 0; i < SketchIoAccess::num_buckets(s); ++i)
    SketchIoAccess::set_bucket(s, i, r.bucket());
  return s;
}

std::vector<std::uint8_t> encode_bank(const SketchConnectivity& bank) {
  const auto n = static_cast<std::uint32_t>(bank.num_vertices());
  const auto buckets = static_cast<std::size_t>(
      chunk_buckets(bank.num_vertices(), bank.options(), static_cast<std::uint64_t>(n)));
  std::vector<std::uint8_t> out;
  out.reserve(kBankHeaderBytes + buckets * kBucketBytes + kChecksumBytes);
  put_bank_header(out, bank, /*source_id=*/0, /*chunk_index=*/0, /*chunk_count=*/1,
                  /*begin=*/0, /*end=*/bank.num_vertices());
  for (const auto& copies : SketchIoAccess::sketches(bank))
    for (const L0Sampler& s : copies)
      for (std::size_t i = 0; i < SketchIoAccess::num_buckets(s); ++i)
        put_bucket(out, SketchIoAccess::bucket(s, i));
  put_checksum(out);
  return out;
}

std::vector<std::vector<std::uint8_t>> encode_bank_chunks(const SketchConnectivity& bank,
                                                          const ChunkOptions& copt) {
  DECK_CHECK(copt.vertices_per_chunk >= 0);
  const int n = bank.num_vertices();
  const SketchOptions& opt = bank.options();
  std::size_t per_vertex =
      static_cast<std::size_t>(chunk_buckets(n, opt, 1)) * kBucketBytes;
  per_vertex = std::max<std::size_t>(1, per_vertex);
  const int vpc =
      copt.vertices_per_chunk > 0
          ? copt.vertices_per_chunk
          : static_cast<int>(std::max<std::size_t>(
                1, std::min<std::size_t>(static_cast<std::size_t>(std::max(n, 1)),
                                         copt.target_chunk_bytes / per_vertex)));
  const auto count = static_cast<std::uint32_t>(n == 0 ? 1 : (n + vpc - 1) / vpc);

  std::vector<std::vector<std::uint8_t>> chunks;
  chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const VertexId begin = static_cast<VertexId>(i) * vpc;
    const VertexId end = std::min<VertexId>(n, begin + vpc);
    std::vector<std::uint8_t> out;
    const auto buckets = static_cast<std::size_t>(
        chunk_buckets(n, opt, static_cast<std::uint64_t>(end - begin)));
    out.reserve(kBankHeaderBytes + buckets * kBucketBytes + kChecksumBytes);
    put_bank_header(out, bank, copt.source_id, i, count, begin, end);
    const auto& sketches = SketchIoAccess::sketches(bank);
    for (VertexId v = begin; v < end; ++v)
      for (const L0Sampler& s : sketches[static_cast<std::size_t>(v)])
        for (std::size_t i = 0; i < SketchIoAccess::num_buckets(s); ++i)
          put_bucket(out, SketchIoAccess::bucket(s, i));
    put_checksum(out);
    chunks.push_back(std::move(out));
  }
  return chunks;
}

ChunkInfo peek_chunk(std::span<const std::uint8_t> bytes) {
  Reader r{std::span<const std::uint8_t>{}};
  return open_bank_chunk(bytes, r);
}

SketchConnectivity decode_bank(std::span<const std::uint8_t> bytes) {
  Reader r{std::span<const std::uint8_t>{}};
  const ChunkInfo ci = open_bank_chunk(bytes, r);
  if (ci.chunk_count != 1 || ci.vertex_begin != 0 || ci.vertex_end != ci.n)
    Reader::fail("partial chunk (chunk " + std::to_string(ci.chunk_index) + " of " +
                 std::to_string(ci.chunk_count) + " covering [" +
                 std::to_string(ci.vertex_begin) + ", " + std::to_string(ci.vertex_end) +
                 ")) — whole-bank decode requires the full vertex range; assemble partial "
                 "chunks with BankAssembler");
  SketchConnectivity bank(ci.n, ci.options);
  for (auto& copies : SketchIoAccess::sketches(bank))
    for (L0Sampler& s : copies)
      for (std::size_t i = 0; i < SketchIoAccess::num_buckets(s); ++i)
        SketchIoAccess::set_bucket(s, i, r.bucket());
  SketchIoAccess::set_cursor(bank, ci.cursor);
  return bank;
}

void merge_encoded(SketchConnectivity& into, std::span<const std::uint8_t> bytes) {
  into.merge(decode_bank(bytes));
}

BankAssembler::BankAssembler(int n, const SketchOptions& opt) : bank_(n, opt) {}

bool BankAssembler::add_chunk(std::span<const std::uint8_t> bytes) {
  Reader r{std::span<const std::uint8_t>{}};
  const ChunkInfo ci = open_bank_chunk(bytes, r);
  const SketchOptions& mine = bank_.options();
  if (ci.n != bank_.num_vertices() || ci.options.seed != mine.seed ||
      ci.options.max_forests != mine.max_forests || ci.options.columns != mine.columns ||
      ci.options.rounds_slack != mine.rounds_slack || !(ci.options.auto_size == mine.auto_size))
    Reader::fail("chunk from source " + std::to_string(ci.source_id) +
                 " is incompatible with the assembling bank (n/seed/shape/policy mismatch)");
  // Every check below runs before the assembler mutates *anything* (cursor,
  // source roster, bank buckets) — a rejected chunk must leave the
  // assembler exactly as it was, or one bad buffer would wedge the healthy
  // workers' streams too.
  if (cursor_set_ && ci.cursor != bank_.copies_used())
    Reader::fail("chunk cursor " + std::to_string(ci.cursor) + " disagrees with the stream's " +
                 std::to_string(bank_.copies_used()) +
                 " — merge happens before recovery consumes copies");

  Source* src = nullptr;
  for (auto& [id, s] : sources_)
    if (id == ci.source_id) src = &s;
  if (src != nullptr && src->chunk_count != ci.chunk_count)
    Reader::fail("source " + std::to_string(ci.source_id) + " announced " +
                 std::to_string(src->chunk_count) + " chunk(s) but chunk " +
                 std::to_string(ci.chunk_index) + " claims " + std::to_string(ci.chunk_count));
  if (src != nullptr && src->received[ci.chunk_index]) {
    const auto& [b, e] = src->ranges[ci.chunk_index];
    if (b != ci.vertex_begin || e != ci.vertex_end)
      Reader::fail("retransmission of chunk " + std::to_string(ci.chunk_index) + " from source " +
                   std::to_string(ci.source_id) + " covers [" + std::to_string(ci.vertex_begin) +
                   ", " + std::to_string(ci.vertex_end) + "), original covered [" +
                   std::to_string(b) + ", " + std::to_string(e) + ")");
    // Pre-chunk buffers have no source identity — a v1/v2 bank and any other
    // whole bank under the same implied source are indistinguishable from a
    // retransmission, in either arrival order, so treating the second as one
    // would silently drop a shard's whole contribution.
    if (ci.version < 3 || src->legacy)
      Reader::fail("second whole-bank buffer for source " + std::to_string(ci.source_id) +
                   " where at least one is legacy (pre-v3) — legacy buffers carry no source "
                   "identity; re-encode as v3 chunks or decode and merge them explicitly");
    return false;  // exact retransmission — idempotent
  }
  if (src != nullptr) {
    for (std::uint32_t j = 0; j < src->chunk_count; ++j) {
      if (!src->received[j]) continue;
      const auto& [b, e] = src->ranges[j];
      if (ci.vertex_begin < e && b < ci.vertex_end)
        Reader::fail("chunk " + std::to_string(ci.chunk_index) + " from source " +
                     std::to_string(ci.source_id) + " overlaps chunk " + std::to_string(j) +
                     " ([" + std::to_string(ci.vertex_begin) + ", " +
                     std::to_string(ci.vertex_end) + ") vs [" + std::to_string(b) + ", " +
                     std::to_string(e) + "))");
    }
  }
  const std::size_t remaining_before = src != nullptr ? src->remaining : ci.chunk_count;
  if (remaining_before == 1) {
    // This chunk would complete the source, so its chunks must tile [0, n)
    // exactly — pairwise-disjoint (checked above) and jointly covering
    // every vertex. A gapped stream throws with the source still
    // incomplete and the bank untouched.
    std::uint64_t covered = static_cast<std::uint64_t>(ci.vertex_end - ci.vertex_begin);
    if (src != nullptr)
      for (const auto& [b, e] : src->ranges) covered += static_cast<std::uint64_t>(e - b);
    if (covered != static_cast<std::uint64_t>(bank_.num_vertices()))
      Reader::fail("source " + std::to_string(ci.source_id) + " chunks cover " +
                   std::to_string(covered) + " of " + std::to_string(bank_.num_vertices()) +
                   " vertices");
  }

  // All checks passed — commit: roster, cursor, payload merge, bookkeeping.
  if (src == nullptr) {
    sources_.emplace_back(ci.source_id, Source{});
    src = &sources_.back().second;
    src->chunk_count = ci.chunk_count;
    src->received.assign(ci.chunk_count, false);
    src->ranges.assign(ci.chunk_count, {0, 0});
    src->remaining = ci.chunk_count;
    src->legacy = ci.version < 3;
  }
  if (!cursor_set_) {
    SketchIoAccess::set_cursor(bank_, ci.cursor);
    cursor_set_ = true;
  }

  // Merge the payload straight into the assembling bank (sketch addition) —
  // the chunk buffer is the only transient state, never a whole bank.
  auto& sketches = SketchIoAccess::sketches(bank_);
  for (VertexId v = ci.vertex_begin; v < ci.vertex_end; ++v)
    for (L0Sampler& s : sketches[static_cast<std::size_t>(v)])
      for (std::size_t i = 0; i < SketchIoAccess::num_buckets(s); ++i) {
        L0Sampler::Bucket b = SketchIoAccess::bucket(s, i);
        add_bucket(b, r.bucket());
        SketchIoAccess::set_bucket(s, i, b);
      }

  src->received[ci.chunk_index] = true;
  src->ranges[ci.chunk_index] = {ci.vertex_begin, ci.vertex_end};
  --src->remaining;
  ++chunks_received_;
  return true;
}

bool BankAssembler::complete() const {
  if (sources_.empty()) return false;
  for (const auto& entry : sources_)
    if (entry.second.remaining != 0) return false;
  return true;
}

SketchConnectivity BankAssembler::take() {
  if (!complete()) {
    std::size_t missing = 0;
    for (const auto& entry : sources_) missing += entry.second.remaining;
    Reader::fail("incomplete chunk stream: " + std::to_string(missing) +
                 " chunk(s) still missing across " + std::to_string(sources_.size()) +
                 " source(s)");
  }
  return std::move(bank_);
}

}  // namespace deck
