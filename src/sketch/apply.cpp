#include "sketch/apply.hpp"

#include <string>

#include "sketch/sketch_connectivity.hpp"
#include "support/check.hpp"

namespace deck {

const char* to_string(ApplyBackend backend) {
  switch (backend) {
    case ApplyBackend::kScalar:
      return "scalar";
    case ApplyBackend::kSimd:
      return "simd";
  }
  DECK_CHECK_MSG(false, "unknown ApplyBackend value " << static_cast<int>(backend));
  return "?";
}

ApplyBackend parse_apply_backend(std::string_view name) {
  if (name == "scalar") return ApplyBackend::kScalar;
  if (name == "simd") return ApplyBackend::kSimd;
  DECK_CHECK_MSG(false, "unknown apply backend '" << std::string(name) << "' (scalar|simd)");
  return ApplyBackend::kScalar;
}

// simd_apply_kernel() is defined in l0_sampler.cpp so the #ifdef sees the
// compile flags of the TU that actually holds the kernel.

BatchApplier::BatchApplier(SketchConnectivity& bank, ApplyBackend backend)
    : bank_(bank), backend_(backend) {}

void BatchApplier::submit(VertexId src, std::span<const VertexDelta> deltas) {
  bank_.apply_batch(src, deltas, backend_);
}

std::unique_ptr<BatchApplier> make_batch_applier(SketchConnectivity& bank, ApplyBackend backend) {
  return std::make_unique<BatchApplier>(bank, backend);
}

}  // namespace deck
