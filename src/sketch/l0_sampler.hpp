#pragma once

// ℓ₀-sampling linear sketches (Jowhari–Sağlam–Tardos style, as used by
// Ahn–Guha–McGregor graph sketching).
//
// An L0Sampler summarizes a vector x over universe [0, N) under a stream of
// coordinate updates x_i += δ in O(log N) buckets per column. Because the
// sketch is *linear*, the sketch of x + y is the bucket-wise sum of the
// sketches of x and y — merging two sketches needs no access to the streams
// that built them. On query it returns the index (and coefficient sign) of
// some nonzero coordinate of x, reports x = 0, or fails; failure has small
// constant probability per column and `columns` independent repetitions
// drive it down geometrically.
//
// Applied to edge-incidence vectors (sketch_connectivity.hpp), summing the
// per-vertex sketches of a supernode cancels internal edges — both endpoint
// coefficients are ±1 with opposite signs — leaving exactly the cut, which
// is what makes Borůvka-on-sketches work on dynamic streams.
//
// Storage is structure-of-arrays in *level-major* rows (docs/
// sketch_internals.md): bucket (column c, level l) of each field lives at
// l·columns + c, so one level's buckets across all columns are contiguous.
// That makes a batched update (update_run) a short stack of branchless
// column passes — the rows 0..max_top of the three field arrays — which
// autovectorize (and have an AVX2 intrinsic kernel). The sketch_io wire
// format predates the layout and stays column-major; the codec maps
// indices (SketchIoAccess), so encoded bytes are unchanged.
//
// Determinism: all hashing derives from the constructor seed via mix64, so
// two (seed, shape)-equal sketches are mergeable and every run reproduces.
// update_run applies its deltas in run order with the exact arithmetic of
// repeated update() calls — bit-identical buckets, just batched.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace deck {

/// Result of L0Sampler::sample().
struct L0Sample {
  enum class Status {
    kZero,   // the summarized vector is (certainly, up to 2^-64 slack) zero
    kFail,   // sampling failed this time; the vector may still be nonzero
    kFound,  // `index` is a nonzero coordinate with coefficient `sign`
  };
  Status status = Status::kZero;
  std::uint64_t index = 0;
  int sign = 0;  // ±1, only meaningful for kFound
};

/// One pre-oriented coordinate update for update_run(): x_index += delta.
/// The batch-apply layer (sketch_connectivity.cpp) translates per-source
/// VertexDelta runs into these once, then replays the run over every copy.
struct RawDelta {
  std::uint64_t index = 0;
  std::int64_t delta = 0;
};

class L0Sampler {
 public:
  // One-sparse recovery bucket over the subsampled coordinates: signed
  // count, index-weighted sum, and a wrapping fingerprint Σ c_i·h(i) that
  // validates the (count, index_sum) decode. Public as a type so the
  // sketch_io codec can name it; the bucket storage itself stays private
  // (structure-of-arrays, see the header comment).
  struct Bucket {
    std::int64_t count = 0;
    std::int64_t index_sum = 0;
    std::uint64_t fingerprint = 0;
  };

  /// Sketches vectors over [0, universe). `columns` independent repetitions
  /// each hold ~log2(universe) one-sparse-recovery buckets.
  L0Sampler(std::uint64_t universe, std::uint64_t seed, int columns = 6);

  /// Subsampling levels a sampler over `universe` holds per column — the
  /// shape formula, exposed so decoders (sketch_io) can size-check a buffer
  /// before constructing anything.
  static int levels_for(std::uint64_t universe);

  /// x_index += delta. Coefficients must stay within int64 (ours are ±1).
  void update(std::uint64_t index, int delta);

  /// Batched update: applies the run in order, bit-identical to calling
  /// update(d.index, d.delta) per element but one cache-resident pass over
  /// this sampler — hashes computed once per delta and broadcast across the
  /// level-major column rows. Zero deltas are skipped like update() skips
  /// them.
  void update_run(std::span<const RawDelta> run);

  /// Bucket-wise sum: afterwards this sketches x + y. Requires compatible().
  void merge(const L0Sampler& other);

  /// Same universe, seed and column count (merge precondition).
  bool compatible(const L0Sampler& other) const;

  L0Sample sample() const;

  /// True iff every bucket is zero. A zero vector always reports true; a
  /// nonzero vector reports true only on a ~2^-64 fingerprint wipeout.
  bool empty() const;

  void clear();

  std::uint64_t universe() const { return universe_; }
  std::uint64_t seed() const { return seed_; }
  int columns() const { return columns_; }
  int levels() const { return levels_; }

 private:
  friend struct SketchIoAccess;  // sketch_io.cpp: raw bucket encode/decode

  std::uint64_t level_hash(int column, std::uint64_t index) const;
  std::uint64_t fingerprint_hash(int column, std::uint64_t index) const;
  /// Field-array slot of bucket (column, level) — level-major rows.
  std::size_t slot(int column, int level) const {
    return static_cast<std::size_t>(level) * static_cast<std::size_t>(columns_) +
           static_cast<std::size_t>(column);
  }

  std::uint64_t universe_ = 0;
  std::uint64_t seed_ = 0;
  int columns_ = 0;
  int levels_ = 0;
  std::vector<std::uint64_t> column_salt_;  // per-column level-hash salt
  std::vector<std::uint64_t> column_fp_;    // per-column fingerprint salt
  // Bucket fields, split structure-of-arrays; levels_ rows × columns_ each.
  std::vector<std::int64_t> count_;
  std::vector<std::int64_t> index_sum_;
  std::vector<std::uint64_t> fingerprint_;
};

}  // namespace deck
