#pragma once

// Rooted tree/forest view over a subset of graph edges.
//
// Used everywhere: BFS trees, MSTs, segment forests. Stores per-vertex
// parent, parent edge id (into the host graph), depth, children, and an
// Euler tour (tin/tout) enabling O(1) ancestor tests and O(log n) LCA via
// binary lifting. These sequential utilities serve local computation and
// verification; distributed algorithms only use knowledge their vertices
// legitimately acquired.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

class RootedTree {
 public:
  RootedTree() = default;

  /// Builds a rooted forest from parent pointers. parent[root] == kNoVertex.
  /// parent_edge[v] is the host-graph edge id of {v, parent[v]} (kNoEdge for
  /// roots).
  RootedTree(std::vector<VertexId> parent, std::vector<EdgeId> parent_edge);

  int num_vertices() const { return static_cast<int>(parent_.size()); }

  VertexId parent(VertexId v) const { return parent_[static_cast<std::size_t>(v)]; }
  EdgeId parent_edge(VertexId v) const { return parent_edge_[static_cast<std::size_t>(v)]; }
  int depth(VertexId v) const { return depth_[static_cast<std::size_t>(v)]; }
  bool is_root(VertexId v) const { return parent_[static_cast<std::size_t>(v)] == kNoVertex; }
  std::span<const VertexId> children(VertexId v) const {
    return {children_[static_cast<std::size_t>(v)].data(),
            children_[static_cast<std::size_t>(v)].size()};
  }
  std::span<const VertexId> roots() const { return {roots_.data(), roots_.size()}; }

  /// Height of the forest: max depth over vertices.
  int height() const;

  /// True iff a is an ancestor of b (a == b counts).
  bool is_ancestor(VertexId a, VertexId b) const;

  /// Lowest common ancestor; u and v must be in the same tree of the forest.
  VertexId lca(VertexId u, VertexId v) const;

  /// Number of edges on the tree path u..v.
  int path_length(VertexId u, VertexId v) const;

  /// Vertices in preorder (roots first).
  std::span<const VertexId> preorder() const { return {pre_.data(), pre_.size()}; }

  /// Parent-edge ids along the path from u up to (and excluding) ancestor a.
  /// Precondition: a is an ancestor of u.
  std::vector<EdgeId> edges_up_to(VertexId u, VertexId a) const;

  /// All edge ids on the tree path between u and v.
  std::vector<EdgeId> path_edges(VertexId u, VertexId v) const;

  /// All parent-edge ids in the forest (one per non-root vertex).
  std::vector<EdgeId> all_edges() const;

 private:
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<int> depth_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<VertexId> roots_;
  std::vector<VertexId> pre_;
  std::vector<int> tin_, tout_;
  std::vector<std::vector<VertexId>> up_;  // binary lifting table
};

/// Builds a BFS tree of `g` from `root` (sequential utility). Vertices
/// unreachable from root become isolated roots of the forest.
RootedTree bfs_tree(const Graph& g, VertexId root);

}  // namespace deck
