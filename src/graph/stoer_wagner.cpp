#include "graph/stoer_wagner.hpp"

#include <algorithm>
#include <limits>

#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace deck {

GlobalMinCut stoer_wagner_min_cut(const Graph& g, const std::vector<char>& in_subgraph) {
  const int n = g.num_vertices();
  GlobalMinCut best;
  best.side.assign(static_cast<std::size_t>(n), 0);
  if (n < 2) return best;

  if (!is_spanning_connected(g, in_subgraph)) {
    // Disconnected selection: cut value 0, side = one component of selection.
    Graph sel(n);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (in_subgraph[static_cast<std::size_t>(e)]) sel.add_edge(g.edge(e).u, g.edge(e).v, 1);
    const auto cc = connected_components(sel);
    for (int v = 0; v < n; ++v)
      best.side[static_cast<std::size_t>(v)] = cc[static_cast<std::size_t>(v)] == 0;
    best.value = 0;
    return best;
  }

  // Dense adjacency of unit capacities between contracted super-vertices.
  std::vector<std::vector<std::int64_t>> w(
      static_cast<std::size_t>(n), std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    w[static_cast<std::size_t>(ed.u)][static_cast<std::size_t>(ed.v)] += 1;
    w[static_cast<std::size_t>(ed.v)][static_cast<std::size_t>(ed.u)] += 1;
  }

  std::vector<std::vector<VertexId>> members(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) members[static_cast<std::size_t>(v)] = {v};
  std::vector<int> active;
  for (int v = 0; v < n; ++v) active.push_back(v);

  best.value = std::numeric_limits<std::int64_t>::max();

  while (active.size() > 1) {
    // Maximum adjacency ordering.
    std::vector<std::int64_t> conn(static_cast<std::size_t>(n), 0);
    std::vector<char> added(static_cast<std::size_t>(n), 0);
    int prev = -1, last = -1;
    std::int64_t last_conn = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      int pick = -1;
      for (int v : active) {
        if (added[static_cast<std::size_t>(v)]) continue;
        if (pick == -1 || conn[static_cast<std::size_t>(v)] > conn[static_cast<std::size_t>(pick)])
          pick = v;
      }
      DECK_CHECK(pick != -1);  // step < active.size() leaves a non-added vertex
      added[static_cast<std::size_t>(pick)] = 1;
      prev = last;
      last = pick;
      last_conn = conn[static_cast<std::size_t>(pick)];
      for (int v : active)
        if (!added[static_cast<std::size_t>(v)])
          conn[static_cast<std::size_t>(v)] +=
              w[static_cast<std::size_t>(pick)][static_cast<std::size_t>(v)];
    }

    // Cut-of-the-phase: {last} vs rest.
    if (last_conn < best.value) {
      best.value = last_conn;
      std::fill(best.side.begin(), best.side.end(), 0);
      for (VertexId v : members[static_cast<std::size_t>(last)])
        best.side[static_cast<std::size_t>(v)] = 1;
    }

    // Contract last into prev.
    for (int v : active) {
      if (v == last || v == prev) continue;
      w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)] +=
          w[static_cast<std::size_t>(last)][static_cast<std::size_t>(v)];
      w[static_cast<std::size_t>(v)][static_cast<std::size_t>(prev)] =
          w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)];
    }
    auto& pm = members[static_cast<std::size_t>(prev)];
    auto& lm = members[static_cast<std::size_t>(last)];
    pm.insert(pm.end(), lm.begin(), lm.end());
    active.erase(std::find(active.begin(), active.end(), last));
  }
  return best;
}

GlobalMinCut stoer_wagner_min_cut(const Graph& g) {
  return stoer_wagner_min_cut(g, std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1));
}

}  // namespace deck
