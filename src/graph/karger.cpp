#include "graph/karger.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/traversal.hpp"
#include "graph/union_find.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

/// Canonical key for a cut side so duplicates collapse: flip so side[0]==0,
/// then pack to bytes.
std::vector<char> canonical_side(std::vector<char> side) {
  if (!side.empty() && side[0]) {
    for (auto& b : side) b = !b;
  }
  return side;
}

std::vector<EdgeId> crossing_edges(const Graph& g, const std::vector<char>& in_subgraph,
                                   const std::vector<char>& side) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    if (side[static_cast<std::size_t>(ed.u)] != side[static_cast<std::size_t>(ed.v)])
      out.push_back(e);
  }
  return out;
}

}  // namespace

std::vector<VertexCut> enumerate_min_cuts_karger(const Graph& g,
                                                 const std::vector<char>& in_subgraph,
                                                 int lambda, std::uint64_t seed, int trials) {
  const int n = g.num_vertices();
  std::vector<EdgeId> pool;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_subgraph[static_cast<std::size_t>(e)]) pool.push_back(e);

  std::map<std::vector<char>, VertexCut> found;
  if (n < 2) return {};

  if (trials < 0) {
    const double ln = std::log(std::max(2, n));
    trials = static_cast<int>(3.0 * n * n * ln) + 32;
  }

  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    // Random contraction down to 2 super-vertices: repeatedly pick a random
    // remaining (non-self-loop) edge and contract. Union-find keeps it simple;
    // we resample until we find a non-loop edge, with a shuffled pass as the
    // base order for efficiency.
    UnionFind uf(n);
    std::vector<EdgeId> order = pool;
    rng.shuffle(order);
    int remaining = n;
    for (EdgeId e : order) {
      if (remaining == 2) break;
      const Edge& ed = g.edge(e);
      if (uf.unite(ed.u, ed.v)) --remaining;
    }
    if (remaining != 2) continue;  // disconnected selection
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    const int root0 = uf.find(0);
    for (int v = 0; v < n; ++v) side[static_cast<std::size_t>(v)] = uf.find(v) == root0 ? 0 : 1;
    auto edges = crossing_edges(g, in_subgraph, side);
    if (static_cast<int>(edges.size()) != lambda) continue;
    auto canon = canonical_side(std::move(side));
    if (found.count(canon)) continue;
    VertexCut cut;
    cut.side = canon;
    cut.edges = std::move(edges);
    found.emplace(cut.side, cut);
  }

  std::vector<VertexCut> out;
  out.reserve(found.size());
  for (auto& [k, v] : found) out.push_back(std::move(v));
  return out;
}

std::vector<VertexCut> enumerate_min_cuts_brute(const Graph& g,
                                                const std::vector<char>& in_subgraph,
                                                int lambda) {
  const int n = g.num_vertices();
  DECK_CHECK_MSG(n <= 24, "brute-force cut enumeration limited to n <= 24");
  std::vector<VertexCut> out;
  if (n < 2) return out;
  const std::uint64_t limit = 1ULL << (n - 1);  // fix vertex 0 on side 0
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (int v = 1; v < n; ++v) side[static_cast<std::size_t>(v)] = (mask >> (v - 1)) & 1;
    auto edges = crossing_edges(g, in_subgraph, side);
    if (static_cast<int>(edges.size()) != lambda) continue;
    // Only *cuts of the connected subgraph* count: both shores must be
    // non-empty (guaranteed) — and for cut semantics used in the paper the
    // graph minus the cut must split into exactly the two shores, which for
    // a connected selection is implied when the crossing set has size lambda
    // = min cut value only if both shores induce connected halves; we keep
    // every bipartition boundary of the right size (the standard "induced
    // edge cut" definition from §5.1).
    VertexCut cut;
    cut.side = std::move(side);
    cut.edges = std::move(edges);
    out.push_back(std::move(cut));
  }
  return out;
}

}  // namespace deck
