#pragma once

// Enumeration of all cuts of size (k-1) of a (k-1)-edge-connected subgraph H
// — the cut sets the Aug_k step (§2.1, §4) must cover.
//
// Dispatch by cut size c = k-1:
//   c = 1 : bridges (deterministic, Tarjan).
//   c = 2 : cut pairs via the covering-class characterisation of Claim 5.6
//           (two tree edges form a cut pair iff covered by the same non-tree
//           edges; a tree edge forms a pair with its unique covering edge).
//           Deterministic up to a 128-bit hashing of covering sets, checked
//           against brute force in tests.
//   c >= 3: Karger contraction enumeration with an explicit seed (w.h.p.
//           complete; the same seed is used at all simulated vertices).
//
// Every cut carries its vertex side, so "edge e covers cut C" is the O(1)
// test side[u] != side[v] (Definition 2.1: e reconnects H \ C iff it crosses).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/karger.hpp"

namespace deck {

struct CutCollection {
  int cut_size = 0;               // c = k-1
  std::vector<VertexCut> cuts;
};

/// Enumerates the cuts of size `c` of the selected subgraph H (which must be
/// c-edge-connected for the result to be the *minimum* cuts; callers in the
/// Aug framework guarantee this). `seed` feeds the randomized path (c >= 3).
CutCollection enumerate_cuts(const Graph& g, const std::vector<char>& h_mask, int c,
                             std::uint64_t seed);

/// True iff edge e covers cut. (Definition 2.1.)
inline bool cut_covered_by(const VertexCut& cut, const Graph& g, EdgeId e) {
  const Edge& ed = g.edge(e);
  return cut.side[static_cast<std::size_t>(ed.u)] != cut.side[static_cast<std::size_t>(ed.v)];
}

/// Number of cuts in `cuts` not covered by any edge of `a_mask`.
int count_uncovered(const CutCollection& cuts, const Graph& g, const std::vector<char>& a_mask);

/// Per-cut covered flags given the augmentation mask.
std::vector<char> covered_flags(const CutCollection& cuts, const Graph& g,
                                const std::vector<char>& a_mask);

}  // namespace deck
