#pragma once

// Bridges and 2-edge-connected components (Tarjan low-link, iterative).
//
// A bridge of H is exactly a cut of size 1 (§2 of the paper): the cuts the
// Aug_2 step must cover. The 2-edge-connected-component labelling yields the
// bridge-block forest used to count which bridges an edge covers.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

struct BridgeInfo {
  std::vector<EdgeId> bridges;        // edge ids that are bridges
  std::vector<char> is_bridge;        // per edge id
  std::vector<int> block;             // per vertex: 2-edge-connected component label
  int num_blocks = 0;
};

/// Computes bridges/blocks of the subgraph of g induced by `in_subgraph`
/// (pass all-ones to analyse g itself). Works on disconnected inputs.
BridgeInfo find_bridges(const Graph& g, const std::vector<char>& in_subgraph);

BridgeInfo find_bridges(const Graph& g);

/// True iff the selected subgraph is spanning-connected and bridgeless
/// (i.e. 2-edge-connected when n >= 2).
bool is_two_edge_connected(const Graph& g, const std::vector<char>& in_subgraph);

}  // namespace deck
