#pragma once

// Disjoint-set union with path halving and union by size.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

class UnionFind {
 public:
  explicit UnionFind(int n)
      : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
    components_ = n;
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// Returns true iff x and y were in different sets (i.e. a merge happened).
  bool unite(int x, int y) {
    int rx = find(x), ry = find(y);
    if (rx == ry) return false;
    if (size_[static_cast<std::size_t>(rx)] < size_[static_cast<std::size_t>(ry)])
      std::swap(rx, ry);
    parent_[static_cast<std::size_t>(ry)] = rx;
    size_[static_cast<std::size_t>(rx)] += size_[static_cast<std::size_t>(ry)];
    --components_;
    return true;
  }

  bool same(int x, int y) { return find(x) == find(y); }
  int component_size(int x) { return size_[static_cast<std::size_t>(find(x))]; }
  int num_components() const { return components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int components_ = 0;
};

}  // namespace deck
