#include "graph/bridges.hpp"

#include <algorithm>

#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

struct Frame {
  VertexId v;
  EdgeId in_edge;      // edge used to enter v (kNoEdge at roots)
  std::size_t next;    // next adjacency index to explore
};

}  // namespace

BridgeInfo find_bridges(const Graph& g, const std::vector<char>& in_subgraph) {
  DECK_CHECK(static_cast<int>(in_subgraph.size()) == g.num_edges());
  const int n = g.num_vertices();
  BridgeInfo info;
  info.is_bridge.assign(static_cast<std::size_t>(g.num_edges()), 0);
  info.block.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> tin(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  int timer = 0;

  std::vector<Frame> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (tin[static_cast<std::size_t>(root)] != -1) continue;
    stack.push_back({root, kNoEdge, 0});
    tin[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nbrs = g.neighbors(f.v);
      if (f.next < nbrs.size()) {
        const Adj a = nbrs[f.next++];
        if (!in_subgraph[static_cast<std::size_t>(a.edge)]) continue;
        if (a.edge == f.in_edge) continue;  // do not reuse the entry edge
        if (tin[static_cast<std::size_t>(a.to)] == -1) {
          tin[static_cast<std::size_t>(a.to)] = low[static_cast<std::size_t>(a.to)] = timer++;
          stack.push_back({a.to, a.edge, 0});
        } else {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)], tin[static_cast<std::size_t>(a.to)]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& par = stack.back();
          low[static_cast<std::size_t>(par.v)] =
              std::min(low[static_cast<std::size_t>(par.v)], low[static_cast<std::size_t>(done.v)]);
          if (low[static_cast<std::size_t>(done.v)] > tin[static_cast<std::size_t>(par.v)]) {
            info.is_bridge[static_cast<std::size_t>(done.in_edge)] = 1;
          }
        }
      }
    }
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (info.is_bridge[static_cast<std::size_t>(e)]) info.bridges.push_back(e);

  // Blocks: components after deleting bridges.
  Graph no_bridges(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    if (info.is_bridge[static_cast<std::size_t>(e)]) continue;
    no_bridges.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
  }
  info.block = connected_components(no_bridges);
  info.num_blocks = 0;
  for (int b : info.block) info.num_blocks = std::max(info.num_blocks, b + 1);
  return info;
}

BridgeInfo find_bridges(const Graph& g) {
  return find_bridges(g, std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1));
}

bool is_two_edge_connected(const Graph& g, const std::vector<char>& in_subgraph) {
  if (!is_spanning_connected(g, in_subgraph)) return false;
  const BridgeInfo info = find_bridges(g, in_subgraph);
  return info.bridges.empty();
}

}  // namespace deck
