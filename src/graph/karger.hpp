#pragma once

// Randomized enumeration of all global minimum cuts (Karger contraction).
//
// A (k-1)-edge-connected graph has at most n(n-1)/2 minimum cuts (the paper
// cites Karger [19] and Dinitz–Karzanov–Lomonosov [6] for this bound). Each
// run of random contraction outputs any fixed minimum cut with probability
// >= 2/(n(n-1)); repeating O(n^2 log n) times collects all of them w.h.p.
// The Aug_k algorithm (§4) runs this *locally at every vertex with a shared
// broadcast seed*, so all vertices enumerate the identical cut set — matching
// the paper's "each vertex computes cost-effectiveness locally from full
// knowledge of H" step, including its w.h.p. guarantee.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace deck {

/// One global cut, represented by its vertex side (canonical: side[0] == 0)
/// and the crossing edge ids, sorted.
struct VertexCut {
  std::vector<char> side;
  std::vector<EdgeId> edges;
};

/// Enumerates distinct minimum cuts of the selected subgraph (unit
/// capacities) of value exactly `lambda`. Deterministic given `seed`.
/// `trials` defaults to a multiple of n^2 log n chosen for w.h.p. coverage.
std::vector<VertexCut> enumerate_min_cuts_karger(const Graph& g,
                                                 const std::vector<char>& in_subgraph,
                                                 int lambda, std::uint64_t seed,
                                                 int trials = -1);

/// Exhaustive enumeration over all 2^(n-1) vertex bipartitions; exact, for
/// cross-checking on tiny graphs (n <= ~20).
std::vector<VertexCut> enumerate_min_cuts_brute(const Graph& g,
                                                const std::vector<char>& in_subgraph,
                                                int lambda);

}  // namespace deck
