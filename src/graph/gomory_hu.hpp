#pragma once

// Gomory–Hu tree (Gusfield's variant): encodes all-pairs minimum s-t cut
// values of an undirected unit-capacity graph with n-1 max-flow
// computations. lambda(u, v) = min edge weight on the tree path u..v.
//
// Substrate role: an independent oracle for edge connectivity used by the
// test suite to cross-validate Dinic and Stoer–Wagner, and a building block
// for experiments that need many pairwise connectivities cheaply.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

struct GomoryHuTree {
  std::vector<VertexId> parent;      // parent[0] = kNoVertex
  std::vector<std::int64_t> flow;    // flow[v] = lambda(v, parent[v])

  /// Minimum u-v cut value from the tree (min edge on the path).
  std::int64_t min_cut(VertexId u, VertexId v) const;
};

/// Builds the tree for the subgraph selected by in_subgraph (unit
/// capacities). Requires a connected selection over n >= 2 vertices.
GomoryHuTree gomory_hu(const Graph& g, const std::vector<char>& in_subgraph);

GomoryHuTree gomory_hu(const Graph& g);

}  // namespace deck
