#pragma once

// Bridge-block forest of a (sub)graph H.
//
// Contracting every 2-edge-connected component of H to a single node leaves
// a forest whose edges are exactly H's bridges. A non-H edge e = {u,v}
// covers (in the sense of Definition 2.1) precisely the bridges on the
// forest path between u's and v's blocks. This powers the sequential Aug_2
// cut enumeration and all bridge-coverage counting.

#include <vector>

#include "graph/bridges.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

class BlockForest {
 public:
  /// Builds the bridge-block forest of the subgraph of g selected by
  /// `in_subgraph`.
  BlockForest(const Graph& g, const std::vector<char>& in_subgraph);

  int num_blocks() const { return info_.num_blocks; }
  int block_of(VertexId v) const { return info_.block[static_cast<std::size_t>(v)]; }
  const std::vector<EdgeId>& bridges() const { return info_.bridges; }

  /// Host-graph bridge edge ids on the forest path between the blocks of u
  /// and v (empty when same block). Precondition: same forest tree.
  std::vector<EdgeId> bridges_covered_by(VertexId u, VertexId v) const;

  /// Number of bridges covered by {u,v}; O(log) via depths.
  int num_bridges_covered_by(VertexId u, VertexId v) const;

  /// The rooted forest over blocks; parent edges map to host bridge ids via
  /// bridge_of_forest_edge().
  const RootedTree& forest() const { return forest_; }
  EdgeId bridge_of_forest_edge(EdgeId forest_edge) const {
    return forest_edge_to_bridge_[static_cast<std::size_t>(forest_edge)];
  }

 private:
  BridgeInfo info_;
  Graph block_graph_;
  std::vector<EdgeId> forest_edge_to_bridge_;
  RootedTree forest_;
};

}  // namespace deck
