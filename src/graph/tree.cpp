#include "graph/tree.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace deck {

RootedTree::RootedTree(std::vector<VertexId> parent, std::vector<EdgeId> parent_edge)
    : parent_(std::move(parent)), parent_edge_(std::move(parent_edge)) {
  const auto n = parent_.size();
  DECK_CHECK(parent_edge_.size() == n);
  children_.assign(n, {});
  depth_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);

  for (std::size_t v = 0; v < n; ++v) {
    const VertexId p = parent_[v];
    if (p == kNoVertex) {
      roots_.push_back(static_cast<VertexId>(v));
    } else {
      DECK_CHECK(p >= 0 && static_cast<std::size_t>(p) < n);
      children_[static_cast<std::size_t>(p)].push_back(static_cast<VertexId>(v));
    }
  }

  // Iterative preorder DFS to fill depth, tin/tout, preorder.
  pre_.reserve(n);
  int clock = 0;
  std::vector<std::pair<VertexId, std::size_t>> stack;  // (vertex, next child index)
  for (VertexId r : roots_) {
    stack.emplace_back(r, 0);
    depth_[static_cast<std::size_t>(r)] = 0;
    tin_[static_cast<std::size_t>(r)] = clock++;
    pre_.push_back(r);
    while (!stack.empty()) {
      auto& [v, ci] = stack.back();
      const auto& ch = children_[static_cast<std::size_t>(v)];
      if (ci < ch.size()) {
        const VertexId c = ch[ci++];
        depth_[static_cast<std::size_t>(c)] = depth_[static_cast<std::size_t>(v)] + 1;
        tin_[static_cast<std::size_t>(c)] = clock++;
        pre_.push_back(c);
        stack.emplace_back(c, 0);
      } else {
        tout_[static_cast<std::size_t>(v)] = clock++;
        stack.pop_back();
      }
    }
  }
  DECK_CHECK_MSG(pre_.size() == n, "parent pointers contain a cycle");

  // Binary lifting table.
  int levels = 1;
  while ((1 << levels) < static_cast<int>(n) + 1) ++levels;
  up_.assign(static_cast<std::size_t>(levels), std::vector<VertexId>(n, kNoVertex));
  for (std::size_t v = 0; v < n; ++v) up_[0][v] = parent_[v];
  for (int l = 1; l < levels; ++l)
    for (std::size_t v = 0; v < n; ++v) {
      const VertexId mid = up_[static_cast<std::size_t>(l - 1)][v];
      up_[static_cast<std::size_t>(l)][v] =
          mid == kNoVertex ? kNoVertex
                           : up_[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(mid)];
    }
}

int RootedTree::height() const {
  int h = 0;
  for (int d : depth_) h = std::max(h, d);
  return h;
}

bool RootedTree::is_ancestor(VertexId a, VertexId b) const {
  return tin_[static_cast<std::size_t>(a)] <= tin_[static_cast<std::size_t>(b)] &&
         tout_[static_cast<std::size_t>(b)] <= tout_[static_cast<std::size_t>(a)];
}

VertexId RootedTree::lca(VertexId u, VertexId v) const {
  if (is_ancestor(u, v)) return u;
  if (is_ancestor(v, u)) return v;
  VertexId x = u;
  for (int l = static_cast<int>(up_.size()) - 1; l >= 0; --l) {
    const VertexId cand = up_[static_cast<std::size_t>(l)][static_cast<std::size_t>(x)];
    if (cand != kNoVertex && !is_ancestor(cand, v)) x = cand;
  }
  const VertexId p = parent_[static_cast<std::size_t>(x)];
  DECK_CHECK_MSG(p != kNoVertex, "lca of vertices in different trees");
  return p;
}

int RootedTree::path_length(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  return depth(u) + depth(v) - 2 * depth(a);
}

std::vector<EdgeId> RootedTree::edges_up_to(VertexId u, VertexId a) const {
  DECK_CHECK(is_ancestor(a, u));
  std::vector<EdgeId> out;
  VertexId x = u;
  while (x != a) {
    out.push_back(parent_edge_[static_cast<std::size_t>(x)]);
    x = parent_[static_cast<std::size_t>(x)];
  }
  return out;
}

std::vector<EdgeId> RootedTree::path_edges(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  std::vector<EdgeId> out = edges_up_to(u, a);
  std::vector<EdgeId> side = edges_up_to(v, a);
  out.insert(out.end(), side.rbegin(), side.rend());
  return out;
}

std::vector<EdgeId> RootedTree::all_edges() const {
  std::vector<EdgeId> out;
  out.reserve(parent_.size());
  for (std::size_t v = 0; v < parent_.size(); ++v)
    if (parent_[v] != kNoVertex) out.push_back(parent_edge_[v]);
  return out;
}

RootedTree bfs_tree(const Graph& g, VertexId root) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<VertexId> parent(n, kNoVertex);
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  std::vector<char> seen(n, 0);
  std::queue<VertexId> q;
  seen[static_cast<std::size_t>(root)] = 1;
  q.push(root);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Adj& a : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        parent[static_cast<std::size_t>(a.to)] = v;
        parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        q.push(a.to);
      }
    }
  }
  return RootedTree(std::move(parent), std::move(parent_edge));
}

}  // namespace deck
