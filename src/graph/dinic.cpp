#include "graph/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/check.hpp"

namespace deck {

Dinic::Dinic(int n) : n_(n), arcs_(static_cast<std::size_t>(n)) { DECK_CHECK(n >= 0); }

void Dinic::add_arc(VertexId u, VertexId v, std::int64_t c) {
  DECK_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_ && c >= 0);
  arcs_[static_cast<std::size_t>(u)].push_back(
      {v, c, c, arcs_[static_cast<std::size_t>(v)].size()});
  arcs_[static_cast<std::size_t>(v)].push_back(
      {u, 0, 0, arcs_[static_cast<std::size_t>(u)].size() - 1});
}

void Dinic::add_undirected(VertexId u, VertexId v, std::int64_t c) {
  // Two symmetric arcs sharing residuals: model as two independent arc pairs.
  add_arc(u, v, c);
  add_arc(v, u, c);
}

bool Dinic::bfs(VertexId s, VertexId t) {
  level_.assign(static_cast<std::size_t>(n_), -1);
  std::queue<VertexId> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Arc& a : arcs_[static_cast<std::size_t>(v)]) {
      if (a.cap > 0 && level_[static_cast<std::size_t>(a.to)] == -1) {
        level_[static_cast<std::size_t>(a.to)] = level_[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] != -1;
}

std::int64_t Dinic::dfs(VertexId v, VertexId t, std::int64_t pushed) {
  if (v == t || pushed == 0) return pushed;
  for (std::size_t& i = it_[static_cast<std::size_t>(v)];
       i < arcs_[static_cast<std::size_t>(v)].size(); ++i) {
    Arc& a = arcs_[static_cast<std::size_t>(v)][i];
    if (a.cap <= 0 ||
        level_[static_cast<std::size_t>(a.to)] != level_[static_cast<std::size_t>(v)] + 1)
      continue;
    const std::int64_t got = dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      a.cap -= got;
      arcs_[static_cast<std::size_t>(a.to)][a.rev].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(VertexId s, VertexId t) {
  DECK_CHECK(s != t);
  for (auto& row : arcs_)
    for (Arc& a : row) a.cap = a.init_cap;
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    it_.assign(static_cast<std::size_t>(n_), 0);
    while (std::int64_t got = dfs(s, t, std::numeric_limits<std::int64_t>::max())) flow += got;
  }
  return flow;
}

std::vector<char> Dinic::min_cut_side(VertexId s) const {
  std::vector<char> side(static_cast<std::size_t>(n_), 0);
  std::queue<VertexId> q;
  side[static_cast<std::size_t>(s)] = 1;
  q.push(s);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Arc& a : arcs_[static_cast<std::size_t>(v)]) {
      if (a.cap > 0 && !side[static_cast<std::size_t>(a.to)]) {
        side[static_cast<std::size_t>(a.to)] = 1;
        q.push(a.to);
      }
    }
  }
  return side;
}

std::int64_t st_edge_connectivity(const Graph& g, const std::vector<char>& in_subgraph,
                                  VertexId s, VertexId t) {
  Dinic d(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    d.add_undirected(g.edge(e).u, g.edge(e).v, 1);
  }
  return d.max_flow(s, t);
}

}  // namespace deck
