#pragma once

// Sequential traversal helpers: connectivity, components, eccentricity and
// diameter (exact BFS-from-every-vertex for the modest sizes used here).

#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Component label (0-based) per vertex.
std::vector<int> connected_components(const Graph& g);

int num_components(const Graph& g);

bool is_connected(const Graph& g);

/// True iff the subgraph induced by `in_subgraph[e]` spans and connects g.
bool is_spanning_connected(const Graph& g, const std::vector<char>& edge_in_subgraph);

/// Hop distances from src (-1 = unreachable).
std::vector<int> bfs_distances(const Graph& g, VertexId src);

/// Exact hop diameter; -1 for disconnected graphs. O(n·m).
int diameter(const Graph& g);

}  // namespace deck
