#include "graph/union_find.hpp"

// Header-only implementation; this translation unit anchors the target.
