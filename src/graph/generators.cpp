#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace deck {

Graph circulant(int n, int r) {
  DECK_CHECK(n >= 3 && r >= 1 && 2 * r < n);
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int j = 1; j <= r; ++j) {
      const int u = (v + j) % n;
      if (!g.has_edge(v, u)) g.add_edge(v, u, 1);
    }
  }
  return g;
}

Graph harary(int n, int k) {
  DECK_CHECK(n > k && k >= 1);
  if (k == 1) {
    Graph g(n);
    for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1);
    return g;
  }
  Graph g = circulant(n, k / 2 >= 1 ? k / 2 : 1);
  if (k % 2 == 1) {
    if (k == 1) return g;
    // Odd k: add diagonals v -> v + n/2.
    for (int v = 0; v < (n + 1) / 2; ++v) {
      const int u = (v + n / 2) % n;
      if (u != v && !g.has_edge(v, u)) g.add_edge(v, u, 1);
    }
  }
  return g;
}

Graph hypercube(int d) {
  DECK_CHECK(d >= 1 && d <= 20);
  const int n = 1 << d;
  Graph g(n);
  for (int v = 0; v < n; ++v)
    for (int b = 0; b < d; ++b) {
      const int u = v ^ (1 << b);
      if (u > v) g.add_edge(v, u, 1);
    }
  return g;
}

Graph torus(int rows, int cols) {
  DECK_CHECK(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [&](int r, int c) { return ((r + rows) % rows) * cols + ((c + cols) % cols); };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (!g.has_edge(id(r, c), id(r, c + 1))) g.add_edge(id(r, c), id(r, c + 1), 1);
      if (!g.has_edge(id(r, c), id(r + 1, c))) g.add_edge(id(r, c), id(r + 1, c), 1);
    }
  return g;
}

Graph random_kec(int n, int k, int extra, Rng& rng) {
  DECK_CHECK(k >= 1);
  const int r = std::max(1, (k + 1) / 2);
  DECK_CHECK_MSG(2 * r < n, "n too small for requested connectivity");
  Graph g = circulant(n, r);
  if (k % 2 == 1 && k > 1) {
    // Upgrade to full Harary to get odd connectivity exactly.
    g = harary(n, k);
  }
  int added = 0, attempts = 0;
  while (added < extra && attempts < 50 * extra + 100) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v, 1);
    ++added;
  }
  return g;
}

Graph random_near_regular(int n, int d, Rng& rng) {
  DECK_CHECK(n > d && d >= 2);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<VertexId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (int v = 0; v < n; ++v)
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    Graph g(n);
    std::set<std::pair<VertexId, VertexId>> used;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = stubs[i], v = stubs[i + 1];
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (used.count({u, v})) continue;
      used.insert({u, v});
      g.add_edge(u, v, 1);
    }
    if (is_connected(g)) return g;
  }
  DECK_CHECK_MSG(false, "failed to generate a connected near-regular graph");
  return Graph(0);
}

Graph ring_of_cliques(int cliques, int size, int links, Rng& rng) {
  DECK_CHECK(cliques >= 3 && size >= 2 && links >= 1 && links <= size * size);
  const int n = cliques * size;
  Graph g(n);
  auto id = [&](int c, int i) { return c * size + i; };
  for (int c = 0; c < cliques; ++c)
    for (int i = 0; i < size; ++i)
      for (int j = i + 1; j < size; ++j) g.add_edge(id(c, i), id(c, j), 1);
  for (int c = 0; c < cliques; ++c) {
    const int next = (c + 1) % cliques;
    int made = 0, attempts = 0;
    while (made < links && attempts < 100 * links) {
      ++attempts;
      const auto i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(size)));
      const auto j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(size)));
      if (g.has_edge(id(c, i), id(next, j))) continue;
      g.add_edge(id(c, i), id(next, j), 1);
      ++made;
    }
    DECK_CHECK(made == links);
  }
  return g;
}

Graph with_weights(const Graph& g, WeightModel model, Rng& rng) {
  Graph out(g.num_vertices());
  const auto n64 = static_cast<std::uint64_t>(std::max(2, g.num_vertices()));
  for (const Edge& e : g.edges()) {
    Weight w = 1;
    switch (model) {
      case WeightModel::kUnit:
        w = 1;
        break;
      case WeightModel::kUniform:
        w = static_cast<Weight>(1 + rng.next_below(n64));
        break;
      case WeightModel::kPolynomial:
        w = static_cast<Weight>(1 + rng.next_below(n64 * n64));
        break;
      case WeightModel::kZeroHeavy:
        w = rng.next_bool(0.1) ? 0 : static_cast<Weight>(1 + rng.next_below(n64));
        break;
    }
    out.add_edge(e.u, e.v, w);
  }
  return out;
}

}  // namespace deck
