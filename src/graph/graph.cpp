#include "graph/graph.hpp"

#include <sstream>

#include "support/check.hpp"

namespace deck {

Graph::Graph(int n) : n_(n), adj_(static_cast<std::size_t>(n)) { DECK_CHECK(n >= 0); }

EdgeId Graph::add_edge(VertexId u, VertexId v, Weight w) {
  DECK_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "endpoint out of range");
  DECK_CHECK_MSG(u != v, "self-loop rejected");
  DECK_CHECK_MSG(w >= 0, "negative weight rejected");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  adj_[static_cast<std::size_t>(u)].push_back(Adj{v, id});
  adj_[static_cast<std::size_t>(v)].push_back(Adj{u, id});
  return id;
}

bool Graph::has_edge(VertexId u, VertexId v) const { return find_edge(u, v) != kNoEdge; }

EdgeId Graph::find_edge(VertexId u, VertexId v) const {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return kNoEdge;
  const auto& a = adj_[static_cast<std::size_t>(u)];
  const auto& b = adj_[static_cast<std::size_t>(v)];
  const auto& shorter = a.size() <= b.size() ? a : b;
  const VertexId target = a.size() <= b.size() ? v : u;
  for (const Adj& e : shorter)
    if (e.to == target) return e.edge;
  return kNoEdge;
}

Weight Graph::total_weight() const {
  Weight t = 0;
  for (const Edge& e : edges_) t += e.w;
  return t;
}

Graph Graph::edge_subgraph(std::span<const EdgeId> keep) const {
  Graph g(n_);
  for (EdgeId e : keep) {
    const Edge& ed = edge(e);
    g.add_edge(ed.u, ed.v, ed.w);
  }
  return g;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << num_edges() << ", W=" << total_weight() << ")";
  return os.str();
}

}  // namespace deck
