#pragma once

// Core graph types.
//
// Graphs in this library are undirected, weighted, and simple (no parallel
// edges, no self-loops) unless noted. Vertices are 0..n-1; edges have stable
// integer ids 0..m-1 in insertion order. Weights are non-negative integers,
// polynomial in n, matching the paper's model (§1.3): a weight fits in one
// O(log n)-bit message word.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace deck {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;

inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;

struct Edge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Weight w = 0;

  /// The endpoint that is not `x`. Precondition: x is an endpoint.
  VertexId other(VertexId x) const { return x == u ? v : u; }
};

/// (neighbor, edge id) adjacency entry.
struct Adj {
  VertexId to;
  EdgeId edge;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  /// Adds an undirected edge; returns its id. Rejects self-loops. Parallel
  /// edges are rejected unless allow_parallel was set (they are never needed
  /// by the algorithms but generators use the check to dedupe).
  EdgeId add_edge(VertexId u, VertexId v, Weight w = 1);

  /// True iff some edge {u,v} exists (O(deg)).
  bool has_edge(VertexId u, VertexId v) const;

  /// Finds the id of edge {u,v}, or kNoEdge.
  EdgeId find_edge(VertexId u, VertexId v) const;

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  const std::vector<Edge>& edges() const { return edges_; }

  std::span<const Adj> neighbors(VertexId v) const {
    return {adj_[static_cast<std::size_t>(v)].data(), adj_[static_cast<std::size_t>(v)].size()};
  }
  int degree(VertexId v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  Weight total_weight() const;

  /// Subgraph on the same vertex set induced by the given edge ids.
  /// Edge ids in the result are re-numbered 0..k-1; `keep` order preserved.
  Graph edge_subgraph(std::span<const EdgeId> keep) const;

  /// Human-readable one-line summary, e.g. "Graph(n=16, m=48, W=112)".
  std::string summary() const;

 private:
  int n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adj>> adj_;
};

}  // namespace deck
