#pragma once

// Stoer–Wagner deterministic global minimum cut (weighted).
//
// Used as an independent oracle against Dinic-based connectivity in tests,
// and to obtain one witness minimum cut with its vertex side.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

struct GlobalMinCut {
  std::int64_t value = 0;         // total capacity crossing the cut
  std::vector<char> side;         // side[v] = 1 for vertices on one shore
};

/// Global min cut of the selected subgraph with unit edge capacities
/// (i.e. edge connectivity with a witness). Requires n >= 2 and a connected
/// selection; returns value 0 with a component side otherwise.
GlobalMinCut stoer_wagner_min_cut(const Graph& g, const std::vector<char>& in_subgraph);

GlobalMinCut stoer_wagner_min_cut(const Graph& g);

}  // namespace deck
