#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <limits>

#include "graph/dinic.hpp"
#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace deck {

std::int64_t GomoryHuTree::min_cut(VertexId u, VertexId v) const {
  DECK_CHECK(u != v);
  // Walk both vertices to the root, tracking the minimum edge. Depths are
  // implicit; lift the deeper one by comparing visited sets.
  // Simple two-phase: collect u's ancestor chain, then walk v upward.
  std::vector<VertexId> chain;
  for (VertexId x = u; x != kNoVertex; x = parent[static_cast<std::size_t>(x)]) chain.push_back(x);
  std::vector<char> on_chain(parent.size(), 0);
  for (VertexId x : chain) on_chain[static_cast<std::size_t>(x)] = 1;

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  VertexId meet = v;
  while (!on_chain[static_cast<std::size_t>(meet)]) {
    best = std::min(best, flow[static_cast<std::size_t>(meet)]);
    meet = parent[static_cast<std::size_t>(meet)];
    DECK_CHECK(meet != kNoVertex);
  }
  for (VertexId x = u; x != meet; x = parent[static_cast<std::size_t>(x)]) {
    best = std::min(best, flow[static_cast<std::size_t>(x)]);
  }
  return best;
}

GomoryHuTree gomory_hu(const Graph& g, const std::vector<char>& in_subgraph) {
  const int n = g.num_vertices();
  DECK_CHECK(n >= 2);
  DECK_CHECK_MSG(is_spanning_connected(g, in_subgraph), "gomory_hu requires a connected selection");

  GomoryHuTree t;
  t.parent.assign(static_cast<std::size_t>(n), 0);
  t.parent[0] = kNoVertex;
  t.flow.assign(static_cast<std::size_t>(n), 0);

  Dinic base(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    base.add_undirected(g.edge(e).u, g.edge(e).v, 1);
  }

  for (VertexId i = 1; i < n; ++i) {
    const VertexId p = t.parent[static_cast<std::size_t>(i)];
    t.flow[static_cast<std::size_t>(i)] = base.max_flow(i, p);
    const auto side = base.min_cut_side(i);
    for (VertexId j = i + 1; j < n; ++j) {
      if (side[static_cast<std::size_t>(j)] && t.parent[static_cast<std::size_t>(j)] == p)
        t.parent[static_cast<std::size_t>(j)] = i;
    }
  }
  return t;
}

GomoryHuTree gomory_hu(const Graph& g) {
  return gomory_hu(g, std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1));
}

}  // namespace deck
