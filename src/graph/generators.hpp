#pragma once

// Graph families used by tests, examples and benchmarks.
//
// Every generator returns a graph that is k-edge-connected by construction
// (stated per generator); weights are assigned separately so the same
// topology serves weighted and unweighted experiments. All generators are
// deterministic given their seed.

#include <cstdint>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace deck {

/// Circulant graph C_n(1..r): vertex i adjacent to i±1, ..., i±r (mod n).
/// 2r-edge-connected, diameter ~ n/(2r). The classic Harary graph H_{2r,n}.
Graph circulant(int n, int r);

/// Harary graph H_{k,n}: minimal k-connected graph, k·n/2 (rounded up) edges.
/// For even k this is circulant(n, k/2); for odd k, diagonals are added.
Graph harary(int n, int k);

/// d-dimensional hypercube: n = 2^d vertices, d-edge-connected, diameter d.
Graph hypercube(int d);

/// rows x cols torus grid: 4-edge-connected (rows, cols >= 3),
/// diameter ~ (rows+cols)/2. Lets benchmarks sweep D at fixed n.
Graph torus(int rows, int cols);

/// Random graph guaranteed k-edge-connected: circulant(n, ceil(k/2)) backbone
/// plus `extra` uniformly random additional edges (deduplicated).
Graph random_kec(int n, int k, int extra, Rng& rng);

/// Random d-regular-ish multigraph via pairing, simplified and deduplicated;
/// retries until connected. d >= 3 gives expander-like low diameter. The
/// result is d-regular except where dedup removed a pairing; k-edge-
/// connectivity is *not* guaranteed — intended for tests that verify first.
Graph random_near_regular(int n, int d, Rng& rng);

/// `cliques` cliques of size `size`, neighbouring cliques joined by `links`
/// parallel-free random links. With links >= k and size > k the graph is
/// k-edge-connected with a long cycle structure (high diameter).
Graph ring_of_cliques(int cliques, int size, int links, Rng& rng);

/// Weight models for experiments.
enum class WeightModel {
  kUnit,        // all 1
  kUniform,     // uniform in [1, n]
  kPolynomial,  // uniform in [1, n^2] — stresses the log(w_max/w_min) factor
  kZeroHeavy,   // 10% zeros, rest uniform in [1, n] (exercises w=0 paths)
};

/// Returns a copy of g with weights assigned by the model.
Graph with_weights(const Graph& g, WeightModel model, Rng& rng);

/// TAP instance helper: a random spanning tree of g is selected; tree edges
/// keep weight 0 stand-in (the tree is *given* in TAP) and non-tree edges
/// keep their weights. Returned as (graph copy, tree edge ids).
struct TapInstance;  // defined in tap/tap_instance.hpp

}  // namespace deck
