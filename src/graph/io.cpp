#include "graph/io.hpp"

#include <set>
#include <sstream>

#include "support/check.hpp"

namespace deck {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

Graph read_edge_list(std::istream& is) {
  auto next_line = [&is](std::string& line) {
    while (std::getline(is, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos) continue;
      if (line[pos] == '#') continue;
      return true;
    }
    return false;
  };
  std::string line;
  DECK_CHECK_MSG(next_line(line), "edge list: missing header");
  std::istringstream header(line);
  int n = -1, m = -1;
  header >> n >> m;
  DECK_CHECK_MSG(n >= 0 && m >= 0, "edge list: malformed header");
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    DECK_CHECK_MSG(next_line(line), "edge list: truncated");
    std::istringstream row(line);
    long long u = -1, v = -1, w = 1;
    row >> u >> v >> w;
    DECK_CHECK_MSG(!row.fail(), "edge list: malformed edge line");
    g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v), static_cast<Weight>(w));
  }
  return g;
}

Graph graph_from_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

std::string to_dot(const Graph& g, const std::vector<EdgeId>& highlight) {
  std::set<EdgeId> hl(highlight.begin(), highlight.end());
  std::ostringstream os;
  os << "graph deck {\n  node [shape=circle];\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    os << "  " << ed.u << " -- " << ed.v << " [label=\"" << ed.w << '"';
    if (hl.count(e)) os << ", color=red, penwidth=2.5";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace deck
