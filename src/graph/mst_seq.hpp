#pragma once

// Sequential MST (Kruskal) with the canonical tie-breaking used throughout
// the library.
//
// All MST computations — sequential and distributed — compare edges by the
// lexicographic key (w, id). Weights are made effectively unique this way,
// so the MST is unique and the distributed algorithm can be verified
// edge-for-edge against Kruskal.

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

/// Canonical strict order on edges: weight, then edge id.
inline bool mst_less(const Graph& g, EdgeId a, EdgeId b) {
  const Weight wa = g.edge(a).w, wb = g.edge(b).w;
  return wa != wb ? wa < wb : a < b;
}

/// Edge ids of the minimum spanning forest under the canonical order.
std::vector<EdgeId> kruskal_mst(const Graph& g);

/// Kruskal on an explicit candidate edge list (processed in the canonical
/// order), seeded with pre-joined edge set `base` (all of base is united
/// first regardless of weight). Returns the candidates that joined.
std::vector<EdgeId> kruskal_filter(const Graph& g, const std::vector<EdgeId>& base,
                                   std::vector<EdgeId> candidates);

/// Rooted tree view of the MST (root = vertex 0). Requires g connected.
RootedTree mst_tree(const Graph& g, VertexId root = 0);

}  // namespace deck
