#include "graph/edge_connectivity.hpp"

#include <algorithm>

#include "graph/dinic.hpp"
#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace deck {

int edge_connectivity(const Graph& g, const std::vector<char>& in_subgraph) {
  const int n = g.num_vertices();
  if (n < 2) return 0;
  if (!is_spanning_connected(g, in_subgraph)) return 0;
  int lambda = g.num_edges();  // upper bound
  for (VertexId t = 1; t < n; ++t) {
    lambda = std::min(lambda, static_cast<int>(st_edge_connectivity(g, in_subgraph, 0, t)));
    if (lambda == 0) break;
  }
  return lambda;
}

int edge_connectivity(const Graph& g) {
  return edge_connectivity(g, std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1));
}

bool is_k_edge_connected(const Graph& g, const std::vector<char>& in_subgraph, int k) {
  DECK_CHECK(k >= 1);
  if (g.num_vertices() < 2) return true;
  if (!is_spanning_connected(g, in_subgraph)) return false;
  // Quick necessary condition: min degree >= k in the subgraph.
  std::vector<int> deg(static_cast<std::size_t>(g.num_vertices()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_subgraph[static_cast<std::size_t>(e)]) continue;
    ++deg[static_cast<std::size_t>(g.edge(e).u)];
    ++deg[static_cast<std::size_t>(g.edge(e).v)];
  }
  for (int d : deg)
    if (d < k) return false;
  for (VertexId t = 1; t < g.num_vertices(); ++t) {
    if (st_edge_connectivity(g, in_subgraph, 0, t) < k) return false;
  }
  return true;
}

bool is_k_edge_connected(const Graph& g, int k) {
  return is_k_edge_connected(g, std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1), k);
}

bool is_k_edge_connected_subset(const Graph& g, const std::vector<EdgeId>& edges, int k) {
  return is_k_edge_connected(g, edge_mask(g, edges), k);
}

std::vector<char> edge_mask(const Graph& g, const std::vector<EdgeId>& edges) {
  std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : edges) {
    DECK_CHECK(e >= 0 && e < g.num_edges());
    mask[static_cast<std::size_t>(e)] = 1;
  }
  return mask;
}

}  // namespace deck
