#include "graph/cut_enum.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "graph/bridges.hpp"
#include "graph/tree.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

/// Side vector of the cut {bridge}: the component of u after removing it.
std::vector<char> bridge_side(const Graph& g, const std::vector<char>& h_mask, EdgeId bridge) {
  const int n = g.num_vertices();
  std::vector<char> side(static_cast<std::size_t>(n), 0);
  std::queue<VertexId> q;
  const VertexId s = g.edge(bridge).u;
  side[static_cast<std::size_t>(s)] = 1;
  q.push(s);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Adj& a : g.neighbors(v)) {
      if (!h_mask[static_cast<std::size_t>(a.edge)] || a.edge == bridge) continue;
      if (!side[static_cast<std::size_t>(a.to)]) {
        side[static_cast<std::size_t>(a.to)] = 1;
        q.push(a.to);
      }
    }
  }
  return side;
}

CutCollection cuts_size_one(const Graph& g, const std::vector<char>& h_mask) {
  CutCollection out;
  out.cut_size = 1;
  const BridgeInfo info = find_bridges(g, h_mask);
  for (EdgeId b : info.bridges) {
    VertexCut cut;
    cut.side = bridge_side(g, h_mask, b);
    cut.edges = {b};
    out.cuts.push_back(std::move(cut));
  }
  return out;
}

/// Spanning tree of the selected subgraph rooted at 0 (host edge ids).
RootedTree spanning_tree_of(const Graph& g, const std::vector<char>& h_mask) {
  const int n = g.num_vertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kNoEdge);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<VertexId> q;
  seen[0] = 1;
  q.push(0);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Adj& a : g.neighbors(v)) {
      if (!h_mask[static_cast<std::size_t>(a.edge)]) continue;
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        parent[static_cast<std::size_t>(a.to)] = v;
        parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        q.push(a.to);
      }
    }
  }
  return RootedTree(std::move(parent), std::move(parent_edge));
}

struct Hash128 {
  std::uint64_t a = 0, b = 0;
  void mix_in(EdgeId e) {
    a ^= mix64(0x5851f42d4c957f2dULL ^ static_cast<std::uint64_t>(e));
    b ^= mix64(0x14057b7ef767814fULL + static_cast<std::uint64_t>(e));
  }
  bool operator<(const Hash128& o) const { return a != o.a ? a < o.a : b < o.b; }
  bool operator==(const Hash128& o) const { return a == o.a && b == o.b; }
  bool zero() const { return a == 0 && b == 0; }
};

/// Cut pairs (c = 2) of a 2-edge-connected selection, via covering classes
/// (Claim 5.6). Returns sides per the subtree-XOR argument documented in
/// cut_enum.hpp.
CutCollection cuts_size_two(const Graph& g, const std::vector<char>& h_mask) {
  CutCollection out;
  out.cut_size = 2;
  const int n = g.num_vertices();
  const RootedTree tree = spanning_tree_of(g, h_mask);

  // For each tree edge (identified by its deeper endpoint), accumulate the
  // XOR-hash of covering non-tree edges plus the count and the last cover.
  std::vector<Hash128> h(static_cast<std::size_t>(n));
  std::vector<int> cover_cnt(static_cast<std::size_t>(n), 0);
  std::vector<EdgeId> last_cover(static_cast<std::size_t>(n), kNoEdge);

  std::vector<char> is_tree_edge(static_cast<std::size_t>(g.num_edges()), 0);
  for (VertexId v = 0; v < n; ++v)
    if (tree.parent_edge(v) != kNoEdge)
      is_tree_edge[static_cast<std::size_t>(tree.parent_edge(v))] = 1;

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h_mask[static_cast<std::size_t>(e)] || is_tree_edge[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    const VertexId a = tree.lca(ed.u, ed.v);
    for (VertexId x = ed.u; x != a; x = tree.parent(x)) {
      h[static_cast<std::size_t>(x)].mix_in(e);
      ++cover_cnt[static_cast<std::size_t>(x)];
      last_cover[static_cast<std::size_t>(x)] = e;
    }
    for (VertexId x = ed.v; x != a; x = tree.parent(x)) {
      h[static_cast<std::size_t>(x)].mix_in(e);
      ++cover_cnt[static_cast<std::size_t>(x)];
      last_cover[static_cast<std::size_t>(x)] = e;
    }
  }

  auto subtree_xor_side = [&](VertexId x, VertexId y) {
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (VertexId v = 0; v < n; ++v) {
      const bool in_x = tree.is_ancestor(x, v);
      const bool in_y = y != kNoVertex && tree.is_ancestor(y, v);
      side[static_cast<std::size_t>(v)] = in_x != in_y;
    }
    return side;
  };

  // Pairs {tree edge, its unique covering non-tree edge}.
  for (VertexId x = 0; x < n; ++x) {
    if (tree.parent_edge(x) == kNoEdge) continue;
    if (cover_cnt[static_cast<std::size_t>(x)] == 1) {
      VertexCut cut;
      cut.side = subtree_xor_side(x, kNoVertex);
      cut.edges = {tree.parent_edge(x), last_cover[static_cast<std::size_t>(x)]};
      std::sort(cut.edges.begin(), cut.edges.end());
      out.cuts.push_back(std::move(cut));
    }
  }

  // Pairs of tree edges with identical covering classes.
  std::map<Hash128, std::vector<VertexId>> classes;
  for (VertexId x = 0; x < n; ++x) {
    if (tree.parent_edge(x) == kNoEdge) continue;
    if (cover_cnt[static_cast<std::size_t>(x)] == 0) continue;  // would be a bridge; excluded
    classes[h[static_cast<std::size_t>(x)]].push_back(x);
  }
  for (const auto& [key, members] : classes) {
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        VertexCut cut;
        cut.side = subtree_xor_side(members[i], members[j]);
        cut.edges = {tree.parent_edge(members[i]), tree.parent_edge(members[j])};
        std::sort(cut.edges.begin(), cut.edges.end());
        out.cuts.push_back(std::move(cut));
      }
  }
  return out;
}

}  // namespace

CutCollection enumerate_cuts(const Graph& g, const std::vector<char>& h_mask, int c,
                             std::uint64_t seed) {
  DECK_CHECK(c >= 1);
  if (c == 1) return cuts_size_one(g, h_mask);
  if (c == 2) return cuts_size_two(g, h_mask);
  CutCollection out;
  out.cut_size = c;
  out.cuts = enumerate_min_cuts_karger(g, h_mask, c, seed);
  return out;
}

int count_uncovered(const CutCollection& cuts, const Graph& g, const std::vector<char>& a_mask) {
  int cnt = 0;
  for (const auto& cut : cuts.cuts) {
    bool covered = false;
    for (EdgeId e = 0; e < g.num_edges() && !covered; ++e) {
      if (a_mask[static_cast<std::size_t>(e)] && cut_covered_by(cut, g, e)) covered = true;
    }
    if (!covered) ++cnt;
  }
  return cnt;
}

std::vector<char> covered_flags(const CutCollection& cuts, const Graph& g,
                                const std::vector<char>& a_mask) {
  std::vector<char> flags(cuts.cuts.size(), 0);
  std::vector<EdgeId> a_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (a_mask[static_cast<std::size_t>(e)]) a_edges.push_back(e);
  for (std::size_t i = 0; i < cuts.cuts.size(); ++i) {
    for (EdgeId e : a_edges) {
      if (cut_covered_by(cuts.cuts[i], g, e)) {
        flags[i] = 1;
        break;
      }
    }
  }
  return flags;
}

}  // namespace deck
