#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace deck {

std::vector<int> connected_components(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next = 0;
  std::queue<VertexId> q;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = next;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (const Adj& a : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(a.to)] == -1) {
          comp[static_cast<std::size_t>(a.to)] = next;
          q.push(a.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

int num_components(const Graph& g) {
  const auto comp = connected_components(g);
  int mx = -1;
  for (int c : comp) mx = std::max(mx, c);
  return mx + 1;
}

bool is_connected(const Graph& g) { return g.num_vertices() <= 1 || num_components(g) == 1; }

bool is_spanning_connected(const Graph& g, const std::vector<char>& edge_in_subgraph) {
  DECK_CHECK(static_cast<int>(edge_in_subgraph.size()) == g.num_edges());
  const int n = g.num_vertices();
  if (n <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<VertexId> q;
  seen[0] = 1;
  q.push(0);
  int reached = 1;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Adj& a : g.neighbors(v)) {
      if (!edge_in_subgraph[static_cast<std::size_t>(a.edge)]) continue;
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        ++reached;
        q.push(a.to);
      }
    }
  }
  return reached == n;
}

std::vector<int> bfs_distances(const Graph& g, VertexId src) {
  const int n = g.num_vertices();
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  std::queue<VertexId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Adj& a : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(a.to)] == -1) {
        dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist;
}

int diameter(const Graph& g) {
  int d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (int x : dist) {
      if (x == -1) return -1;
      d = std::max(d, x);
    }
  }
  return d;
}

}  // namespace deck
