#include "graph/block_forest.hpp"

#include "support/check.hpp"

namespace deck {

BlockForest::BlockForest(const Graph& g, const std::vector<char>& in_subgraph)
    : info_(find_bridges(g, in_subgraph)), block_graph_(info_.num_blocks) {
  for (EdgeId b : info_.bridges) {
    const Edge& e = g.edge(b);
    const EdgeId fe = block_graph_.add_edge(block_of(e.u), block_of(e.v), 1);
    DECK_CHECK(fe == static_cast<EdgeId>(forest_edge_to_bridge_.size()));
    forest_edge_to_bridge_.push_back(b);
  }

  // Root every tree of the block forest (BFS from each unseen block).
  std::vector<VertexId> parent(static_cast<std::size_t>(num_blocks()), kNoVertex);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(num_blocks()), kNoEdge);
  std::vector<char> seen(static_cast<std::size_t>(num_blocks()), 0);
  for (int r = 0; r < num_blocks(); ++r) {
    if (seen[static_cast<std::size_t>(r)]) continue;
    seen[static_cast<std::size_t>(r)] = 1;
    std::vector<VertexId> q{r};
    for (std::size_t h = 0; h < q.size(); ++h) {
      const VertexId v = q[h];
      for (const Adj& a : block_graph_.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(a.to)]) {
          seen[static_cast<std::size_t>(a.to)] = 1;
          parent[static_cast<std::size_t>(a.to)] = v;
          parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
          q.push_back(a.to);
        }
      }
    }
  }
  forest_ = RootedTree(std::move(parent), std::move(parent_edge));
}

std::vector<EdgeId> BlockForest::bridges_covered_by(VertexId u, VertexId v) const {
  const int bu = block_of(u), bv = block_of(v);
  if (bu == bv) return {};
  std::vector<EdgeId> out;
  for (EdgeId fe : forest_.path_edges(bu, bv)) out.push_back(bridge_of_forest_edge(fe));
  return out;
}

int BlockForest::num_bridges_covered_by(VertexId u, VertexId v) const {
  const int bu = block_of(u), bv = block_of(v);
  if (bu == bv) return 0;
  return forest_.path_length(bu, bv);
}

}  // namespace deck
