#include "graph/mst_seq.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"
#include "support/check.hpp"

namespace deck {

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) { return mst_less(g, a, b); });
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> out;
  for (EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> kruskal_filter(const Graph& g, const std::vector<EdgeId>& base,
                                   std::vector<EdgeId> candidates) {
  UnionFind uf(g.num_vertices());
  for (EdgeId e : base) uf.unite(g.edge(e).u, g.edge(e).v);
  std::sort(candidates.begin(), candidates.end(),
            [&](EdgeId a, EdgeId b) { return mst_less(g, a, b); });
  std::vector<EdgeId> joined;
  for (EdgeId e : candidates) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) joined.push_back(e);
  }
  return joined;
}

RootedTree mst_tree(const Graph& g, VertexId root) {
  const auto mst = kruskal_mst(g);
  DECK_CHECK_MSG(static_cast<int>(mst.size()) == g.num_vertices() - 1, "graph is not connected");
  Graph t = g.edge_subgraph(mst);
  RootedTree bt = bfs_tree(t, root);
  // Translate parent edge ids back into the host graph's ids.
  std::vector<VertexId> parent(static_cast<std::size_t>(g.num_vertices()));
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    parent[static_cast<std::size_t>(v)] = bt.parent(v);
    const EdgeId pe = bt.parent_edge(v);
    parent_edge[static_cast<std::size_t>(v)] =
        pe == kNoEdge ? kNoEdge : mst[static_cast<std::size_t>(pe)];
  }
  return RootedTree(std::move(parent), std::move(parent_edge));
}

}  // namespace deck
