#pragma once

// Exact edge connectivity and k-edge-connectivity verification.
//
// lambda(G) = min over t != s of lambda(s, t) for any fixed s — we use
// Dinic with unit capacities. The early-exit variant for verifying
// "lambda >= k" stops each flow once k paths are found, which keeps
// verification cheap even on the larger benchmark graphs.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Exact global edge connectivity of the selected subgraph.
/// Returns 0 if disconnected or n < 2.
int edge_connectivity(const Graph& g, const std::vector<char>& in_subgraph);

int edge_connectivity(const Graph& g);

/// True iff the selected subgraph is spanning and k-edge-connected.
bool is_k_edge_connected(const Graph& g, const std::vector<char>& in_subgraph, int k);

bool is_k_edge_connected(const Graph& g, int k);

/// Convenience: subgraph given as a list of edge ids.
bool is_k_edge_connected_subset(const Graph& g, const std::vector<EdgeId>& edges, int k);

/// Edge-id mask from a list.
std::vector<char> edge_mask(const Graph& g, const std::vector<EdgeId>& edges);

}  // namespace deck
