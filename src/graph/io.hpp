#pragma once

// Graph serialization: a line-based weighted edge-list format for loading
// experiment inputs, and Graphviz DOT export (with optional edge-subset
// highlighting) for inspecting solutions.
//
// Edge-list format:
//   line 1: "n m"
//   next m lines: "u v w"
// Comments start with '#'; blank lines are skipped.

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Writes the edge-list format.
void write_edge_list(std::ostream& os, const Graph& g);
std::string to_edge_list(const Graph& g);

/// Parses the edge-list format; throws std::logic_error on malformed input.
Graph read_edge_list(std::istream& is);
Graph graph_from_edge_list(const std::string& text);

/// DOT export; edges in `highlight` are drawn bold/red (e.g. a k-ECSS).
std::string to_dot(const Graph& g, const std::vector<EdgeId>& highlight = {});

}  // namespace deck
