#pragma once

// Dinic max-flow on unit/integer capacities.
//
// Used to certify edge connectivity: lambda(s,t) equals the max s-t flow
// when every undirected edge becomes a pair of unit-capacity arcs.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

class Dinic {
 public:
  explicit Dinic(int n);

  /// Adds a directed arc u->v with capacity c (and its residual v->u with 0).
  void add_arc(VertexId u, VertexId v, std::int64_t c);

  /// Adds an undirected edge as two arcs of capacity c each.
  void add_undirected(VertexId u, VertexId v, std::int64_t c);

  /// Max flow from s to t; resets previous flow state first.
  std::int64_t max_flow(VertexId s, VertexId t);

  /// After max_flow: vertices reachable from s in the residual graph
  /// (the s-side of a minimum cut).
  std::vector<char> min_cut_side(VertexId s) const;

 private:
  struct Arc {
    VertexId to;
    std::int64_t cap;
    std::int64_t init_cap;
    std::size_t rev;
  };

  bool bfs(VertexId s, VertexId t);
  std::int64_t dfs(VertexId v, VertexId t, std::int64_t pushed);

  int n_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<int> level_;
  std::vector<std::size_t> it_;
};

/// lambda(s,t) of the subgraph of g selected by in_subgraph, with unit
/// capacities (i.e. the number of edge-disjoint s-t paths).
std::int64_t st_edge_connectivity(const Graph& g, const std::vector<char>& in_subgraph,
                                  VertexId s, VertexId t);

}  // namespace deck
