#include "serve/session.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace deck {

namespace {

struct SessionMetrics {
  obs::Counter& updates = obs::Registry::global().counter("serve.session.updates");
  obs::Counter& inserts = obs::Registry::global().counter("serve.session.inserts");
  obs::Counter& deletes = obs::Registry::global().counter("serve.session.deletes");
  obs::Counter& queries = obs::Registry::global().counter("serve.session.queries");
  obs::Counter& bank_reuses = obs::Registry::global().counter("serve.session.bank_reuses");
  obs::Counter& bank_replays = obs::Registry::global().counter("serve.session.bank_replays");
  obs::Histogram& query_ns = obs::Registry::global().histogram("serve.session.query_ns");

  static SessionMetrics& get() {
    static SessionMetrics m;
    return m;
  }
};

/// Whether an attempt's sizing matches the live bank's — the clone-vs-replay
/// decision. Mirrors SketchConnectivity::compatible() on options alone.
bool same_shape(const SketchOptions& a, const SketchOptions& b) {
  return a.seed == b.seed && a.max_forests == b.max_forests && a.columns == b.columns &&
         a.rounds_slack == b.rounds_slack && a.auto_size == b.auto_size;
}

}  // namespace

GraphSession::GraphSession(int n, int k, IngestOptions opt)
    : n_(n), k_(k), opt_(std::move(opt)), stream_(n) {
  DECK_CHECK(n >= 0);
  DECK_CHECK(k >= 1);
  DECK_CHECK(opt_.recovery.threads >= 1);
  if (opt_.mode == IngestMode::kCoordinated) {
    DECK_CHECK_MSG(!opt_.workers.empty(), "a coordinated session needs worker transports");
    for (Transport* t : opt_.workers) DECK_CHECK(t != nullptr);
    DECK_CHECK(opt_.coordinator.threads >= 1);
    return;  // no live bank — the workers own the stream
  }
  DECK_CHECK_MSG(opt_.workers.empty(), "worker transports are a kCoordinated-mode option");
  if (opt_.mode == IngestMode::kSharded) {
    DECK_CHECK(opt_.shard.shards >= 1);
    DECK_CHECK(opt_.shard.batch_size >= 1);
  }
  bank_.emplace(n_, live_bank_options());
  // Gutter flushes reach the live bank through the batch-apply boundary
  // (sketch/apply.hpp) under the configured backend. Parallel drains are
  // safe: gutters own disjoint source ranges, and the CPU appliers apply
  // submits for distinct sources independently.
  applier_ = make_batch_applier(*bank_, opt_.shard.backend);
  GutterOptions gopt = opt_.gutter;
  if (gopt.pool == nullptr) gopt.pool = drain_pool();
  gutters_.emplace(n_, gopt, [this](VertexId src, std::span<const VertexDelta> deltas) {
    applier_->submit(src, deltas);
  });
}

GraphSession::~GraphSession() {
  if (closed_) return;
  closed_ = true;
  // Destructor variant of close(): never throws. Local gutters need no
  // drain (no observer of the live bank remains); coordinated workers get
  // a best-effort Shutdown so they exit instead of blocking forever.
  if (opt_.mode == IngestMode::kCoordinated)
    shutdown_ingest_workers(opt_.workers, /*best_effort=*/true);
}

ThreadPool* GraphSession::drain_pool() {
  if (opt_.mode != IngestMode::kSharded) return nullptr;
  if (opt_.shard.pool != nullptr) return opt_.shard.pool;
  if (owned_pool_ == nullptr) owned_pool_ = std::make_unique<ThreadPool>(opt_.shard.shards);
  return owned_pool_.get();
}

SketchOptions GraphSession::live_bank_options() const {
  SketchOptions base = opt_.sketch;
  base.max_forests = k_;
  if (!base.auto_size.enabled) return base;
  // Attempt 0 of recover_certificate's adaptive loop: the initial sizing
  // under the first split seed. Holding the live bank there makes every
  // query's first attempt a clone; only grown retries replay the stream.
  SketchOptions a0 = base;
  a0.columns = base.auto_size.initial_columns;
  a0.rounds_slack = base.auto_size.initial_rounds_slack;
  a0.seed = split_seed(base.seed, 0);
  return a0;
}

void GraphSession::check_open() const { DECK_CHECK_MSG(!closed_, "session is closed"); }

void GraphSession::check_local(const char* what) const {
  DECK_CHECK_MSG(opt_.mode != IngestMode::kCoordinated,
                 what << " is unavailable in kCoordinated mode — the workers own the stream");
}

void GraphSession::insert(VertexId u, VertexId v) { apply({u, v, /*insert=*/true}); }

void GraphSession::erase(VertexId u, VertexId v) { apply({u, v, /*insert=*/false}); }

void GraphSession::apply(const StreamUpdate& u) {
  check_open();
  check_local("per-update ingest");
  if (u.insert)
    stream_.insert(u.u, u.v);  // validates endpoints and liveness
  else
    stream_.erase(u.u, u.v);
  gutters_->push(u.u, u.v, u.insert ? 1 : -1);
  ++folded_;
  ++stats_.updates;
  ++(u.insert ? stats_.inserts : stats_.deletes);
  if (obs::enabled()) {
    SessionMetrics& m = SessionMetrics::get();
    m.updates.inc();
    (u.insert ? m.inserts : m.deletes).inc();
  }
}

void GraphSession::ingest(const GraphStream& s) {
  check_open();
  check_local("bulk ingest");
  DECK_CHECK_MSG(s.num_vertices() == n_,
                 "bulk ingest of an n=" << s.num_vertices() << " stream into an n=" << n_
                                        << " session");
  // Validated append, then fold the appended tail through the gutters via
  // the replay cursor.
  for (const StreamUpdate& u : s.updates()) {
    if (u.insert)
      stream_.insert(u.u, u.v);
    else
      stream_.erase(u.u, u.v);
  }
  std::uint64_t inserts = 0;
  for (const StreamUpdate& u : stream_.updates_since(folded_)) {
    gutters_->push(u.u, u.v, u.insert ? 1 : -1);
    if (u.insert) ++inserts;
  }
  const std::uint64_t appended = stream_.size() - folded_;
  folded_ = stream_.size();
  stats_.updates += appended;
  stats_.inserts += inserts;
  stats_.deletes += appended - inserts;
  if (obs::enabled()) {
    SessionMetrics& m = SessionMetrics::get();
    m.updates.add(appended);
    m.inserts.add(inserts);
    m.deletes.add(appended - inserts);
  }
}

void GraphSession::flush() {
  check_open();
  check_local("flush");
  gutters_->drain();
  applier_->finish();
}

std::size_t GraphSession::pending_updates() const {
  return gutters_ ? gutters_->pending_halves() / 2 : 0;
}

SketchConnectivity GraphSession::attempt_bank(const SketchOptions& aopt) {
  if (bank_ && same_shape(aopt, bank_->options())) {
    // The common case: clone the live bank. Its sketch copies stay
    // unconsumed, so ingest resumes untouched after the query.
    ++stats_.bank_reuses;
    if (obs::enabled()) SessionMetrics::get().bank_reuses.inc();
    return *bank_;
  }
  // Grown adaptive attempt or a non-session k: re-ingest the retained
  // stream under the attempt's sizing. Rare by construction (the live bank
  // is held at attempt-0 sizing).
  ++stats_.bank_replays;
  if (obs::enabled()) SessionMetrics::get().bank_replays.inc();
  SketchConnectivity fresh(n_, aopt);
  for (const StreamUpdate& u : stream_.updates_since(0)) fresh.update(u.u, u.v, u.insert ? 1 : -1);
  return fresh;
}

SparsifyResult GraphSession::query() { return query(k_); }

SparsifyResult GraphSession::query(int k) {
  check_open();
  DECK_CHECK(k >= 1);
  obs::Span span("serve.query");
  span.arg("k", static_cast<std::uint64_t>(k));
  const std::uint64_t start = obs::enabled() ? obs::now_ns() : 0;
  SparsifyResult result = opt_.mode == IngestMode::kCoordinated ? query_coordinated(k)
                                                                : query_local(k);
  ++stats_.queries;
  if (obs::enabled()) {
    SessionMetrics& m = SessionMetrics::get();
    m.queries.inc();
    m.query_ns.observe(obs::now_ns() - start);
  }
  span.arg("certificate_edges", static_cast<std::uint64_t>(result.certificate.num_edges()));
  return result;
}

SparsifyResult GraphSession::query_local(int k) {
  // Pause/flush: the live bank must sketch everything ingested so far
  // before it is cloned — drain the gutters, then cross the apply
  // boundary's merge barrier.
  gutters_->drain();
  applier_->finish();
  return recover_certificate(k, opt_.sketch, opt_.recovery,
                             [this](const SketchOptions& aopt) { return attempt_bank(aopt); });
}

SparsifyResult GraphSession::query_coordinated(int k) {
  if (owned_pool_ == nullptr) owned_pool_ = std::make_unique<ThreadPool>(opt_.coordinator.threads);
  ThreadPool& pool = *owned_pool_;
  try {
    if (!roster_validated_) {
      validate_ingest_roster(opt_.workers, n_);
      roster_validated_ = true;
    }
    // One pool shared by everything the coordinator does: per-worker
    // receive jobs (network wait overlaps other workers' chunk merges),
    // then the Borůvka recovery fan-out via RecoveryOptions::pool.
    RecoveryOptions ropt;
    ropt.threads = opt_.coordinator.threads;
    ropt.pool = &pool;
    return recover_certificate(k, opt_.sketch, ropt, [&](const SketchOptions& aopt) {
      return coordinated_ingest_attempt(opt_.workers, n_, aopt, pool);
    });
  } catch (...) {
    // Best-effort shutdown so healthy workers exit instead of blocking on
    // the next Attempt; the original fault stays the primary error. The
    // session is unusable afterwards.
    closed_ = true;
    shutdown_ingest_workers(opt_.workers, /*best_effort=*/true);
    throw;
  }
}

void GraphSession::close() {
  if (closed_) return;
  closed_ = true;
  if (opt_.mode == IngestMode::kCoordinated) {
    shutdown_ingest_workers(opt_.workers, /*best_effort=*/false);
    return;
  }
  gutters_->drain();
  applier_->finish();
}

SessionStats GraphSession::stats() const {
  SessionStats s = stats_;
  if (gutters_) s.gutter = gutters_->stats();
  return s;
}

SparsifyResult ingest(const GraphStream& stream, int k, const IngestOptions& opt) {
  DECK_CHECK_MSG(opt.mode != IngestMode::kCoordinated,
                 "coordinated ingest reads the workers' streams — open a GraphSession instead");
  GraphSession session(stream.num_vertices(), k, opt);
  session.ingest(stream);
  SparsifyResult result = session.query();
  session.close();
  return result;
}

// ---------------------------------------------------------------------------
// Deprecated one-shot wrappers. Declared in sketch/sketch_connectivity.hpp,
// sketch/shard.hpp, and net/ingest.hpp; defined here so the lower layers
// never include serve/ headers. Each is property-tested bit-identical to
// its pre-facade implementation (tests/test_serve.cpp, plus the original
// suites, which still run against these names).

SparsifyResult sparsify_stream(const GraphStream& stream, int k, const SketchOptions& opt,
                               const RecoveryOptions& ropt) {
  IngestOptions io;
  io.sketch = opt;
  io.recovery = ropt;
  return ingest(stream, k, io);
}

SparsifyResult sharded_sparsify_stream(const GraphStream& stream, int k, const SketchOptions& sopt,
                                       const ShardOptions& opt, const RecoveryOptions& ropt) {
  IngestOptions io;
  io.mode = IngestMode::kSharded;
  io.sketch = sopt;
  io.recovery = ropt;
  io.shard = opt;
  return ingest(stream, k, io);
}

SparsifyResult coordinated_sparsify(const std::vector<Transport*>& workers, int n, int k,
                                    const SketchOptions& opt,
                                    const IngestCoordinatorOptions& copt) {
  IngestOptions io;
  io.mode = IngestMode::kCoordinated;
  io.sketch = opt;
  io.workers = workers;
  io.coordinator = copt;
  GraphSession session(n, k, io);
  SparsifyResult result = session.query(k);
  session.close();
  return result;
}

}  // namespace deck
