#pragma once

// Write-optimized guttering stage between a live update feed and the ℓ₀
// sketch banks — the GutteringSystem/WorkDistributor buffering pattern of
// the streaming-CC systems, adapted to deck's per-vertex sketch arrays.
//
// Applying one update touches every copy of both endpoints' sketch arrays —
// for a random stream that is two cold column passes per update. The
// guttering stage buffers each *directed half* in a gutter keyed by its
// source vertex's range and flushes a gutter as one sorted batch: halves
// are grouped into per-source runs and handed to the applier — normally
// the batch-apply boundary of sketch/apply.hpp (GraphSession submits each
// run through a BatchApplier under IngestOptions::shard.backend), so all
// of a vertex's buffered deltas walk its sketch array once while it is
// cache-resident, scalar or SIMD.
//
// Flush policy is size and/or age driven (FlushPolicy): a gutter flushes
// when it holds max_halves buffered halves, or when its oldest half is
// max_age pushes old (aging is checked round-robin, one gutter per push, so
// an age flush may trail the deadline by up to num_gutters pushes — an
// amortization knob, not a correctness one). drain() flushes everything,
// fanning independent gutters out over a ThreadPool when one is lent:
// gutters cover disjoint source-vertex ranges, so parallel flushes write
// disjoint slices of the bank — the same disjoint-ownership argument as
// static sharding (sketch/shard.hpp).
//
// Correctness never depends on the policy: sketch linearity makes any
// regrouping of updates merge to the bit-identical bank a direct in-order
// applier would build, for every gutter count, policy, and flush schedule.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "sketch/stream.hpp"

namespace deck {

class ThreadPool;

/// When a gutter spills. Defaults flush on size only; age 0 disables the
/// age trigger (a gutter then spills only on size or drain()).
struct FlushPolicy {
  /// Buffered directed halves that force a gutter to flush.
  std::size_t max_halves = 1024;
  /// Pushes after which a gutter's oldest buffered half forces a flush
  /// (0 = no age trigger). Bounds the staleness of the live bank between
  /// drains without requiring a clock.
  std::size_t max_age = 0;

  friend bool operator==(const FlushPolicy&, const FlushPolicy&) = default;
};

struct GutterOptions {
  /// Source-vertex ranges the gutters partition [0, n) into. 0 derives one
  /// gutter per flush worker (4 per pool thread, clamped to [1, n]) so
  /// drain() keeps the pool busy.
  int num_gutters = 0;
  FlushPolicy policy;
  /// Pool drain() fans gutter flushes out on (disjoint vertex ranges, so no
  /// synchronization is needed). Null flushes inline. Push-triggered
  /// flushes always run inline on the pushing thread — they are the
  /// cache-resident column pass the stage exists for.
  ThreadPool* pool = nullptr;
};

/// Flush accounting, by trigger.
struct GutterStats {
  std::uint64_t halves_buffered = 0;  // directed halves pushed in
  std::uint64_t flushes = 0;          // gutter spills, all triggers
  std::uint64_t size_flushes = 0;
  std::uint64_t age_flushes = 0;
  std::uint64_t drain_flushes = 0;
  std::uint64_t flushed_halves = 0;  // halves delivered to the applier
};

class GutteringSystem {
 public:
  /// Applies one per-source run of deltas to the sink (normally
  /// BatchApplier::submit → SketchConnectivity::apply_batch on the live
  /// bank, under the session's configured ApplyBackend).
  using Applier = std::function<void(VertexId, std::span<const VertexDelta>)>;

  GutteringSystem(int n, const GutterOptions& opt, Applier apply);

  /// Buffers both directed halves of the undirected update {u, v} (delta
  /// +1 insert / -1 delete), spilling any gutter its policy triggers.
  void push(VertexId u, VertexId v, int delta);

  /// Flushes every non-empty gutter (on the lent pool when present). After
  /// drain() the applier has seen every pushed half exactly once.
  void drain();

  int num_gutters() const { return static_cast<int>(gutters_.size()); }

  /// Gutter owning source vertex `src`.
  int gutter_of(VertexId src) const;

  /// Directed halves currently buffered across all gutters.
  std::size_t pending_halves() const { return pending_; }

  const GutterStats& stats() const { return stats_; }

 private:
  struct Half {
    VertexId src = kNoVertex;
    VertexDelta delta;
  };
  struct Gutter {
    std::vector<Half> halves;
    std::uint64_t oldest_tick = 0;  // push tick of halves.front()
  };

  void buffer_half(VertexId src, VertexId dst, int delta);
  /// Takes gutter g's buffered halves and updates the (unsynchronized)
  /// accounting — always runs on the pushing/draining thread.
  std::vector<Half> extract(int g);
  /// Sorts extracted halves into per-source runs and applies them. Safe to
  /// run concurrently for halves from different gutters (disjoint sources).
  void apply_sorted(std::vector<Half> halves) const;
  void flush(int g);

  int n_ = 0;
  GutterOptions opt_;
  Applier apply_;
  std::vector<Gutter> gutters_;
  std::size_t pending_ = 0;
  std::uint64_t tick_ = 0;  // pushes so far, the age clock
  int age_scan_ = 0;        // next gutter the round-robin age check visits
  GutterStats stats_;
};

}  // namespace deck
