#include "serve/protocol.hpp"

#include <utility>

#include "net/wire.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

/// Client-side decode fault: the server's response frame is malformed. The
/// server never half-speaks the protocol, so this means a bug or a hostile
/// peer — surfaced with the same typed error as a server-side refusal.
[[noreturn]] void malformed(const std::string& what) {
  throw ServeError(ServeErrorCode::kMalformedFrame, what);
}

}  // namespace

std::vector<std::uint8_t> ServeClient::request(ServeMsg type, const std::vector<std::uint8_t>& frame,
                                               ServeMsg expect) {
  server_.send(frame);
  std::vector<std::uint8_t> reply = net::recv_expected(server_, "serve response");
  net::WireReader r(std::span<const std::uint8_t>(reply.data(), reply.size()));
  const auto head = static_cast<ServeMsg>(r.u32());
  if (head == ServeMsg::kError) {
    const auto code = static_cast<ServeErrorCode>(r.u32());
    const std::span<const std::uint8_t> text = r.rest();
    throw ServeError(code, std::string(text.begin(), text.end()));
  }
  if (head != expect)
    malformed("response to request type " + std::to_string(static_cast<std::uint32_t>(type)) +
              " has unexpected type " + std::to_string(static_cast<std::uint32_t>(head)));
  // Hand the body (sans head) back to the caller's decoder.
  reply.erase(reply.begin(), reply.begin() + 4);
  return reply;
}

void ServeClient::hello() {
  std::vector<std::uint8_t> frame;
  net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kHello));
  net::put_u32(frame, kServeProtocolVersion);
  const std::vector<std::uint8_t> body = request(ServeMsg::kHello, frame, ServeMsg::kHelloOk);
  net::WireReader r(std::span<const std::uint8_t>(body.data(), body.size()));
  const std::uint32_t version = r.u32();
  if (version != kServeProtocolVersion)
    malformed("server speaks protocol version " + std::to_string(version) + ", client speaks " +
              std::to_string(kServeProtocolVersion));
  n_ = static_cast<int>(r.u32());
  k_ = static_cast<int>(r.u32());
  if (r.remaining() != 0) malformed("HelloOk carries trailing bytes");
}

void ServeClient::insert(VertexId u, VertexId v) {
  const StreamUpdate up{u, v, /*insert=*/true};
  update(std::span<const StreamUpdate>(&up, 1));
}

void ServeClient::erase(VertexId u, VertexId v) {
  const StreamUpdate up{u, v, /*insert=*/false};
  update(std::span<const StreamUpdate>(&up, 1));
}

std::uint32_t ServeClient::update(std::span<const StreamUpdate> updates) {
  std::vector<std::uint8_t> frame;
  frame.reserve(8 + updates.size() * 12);
  net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kUpdate));
  net::put_u32(frame, static_cast<std::uint32_t>(updates.size()));
  for (const StreamUpdate& u : updates) {
    net::put_u32(frame, static_cast<std::uint32_t>(u.u));
    net::put_u32(frame, static_cast<std::uint32_t>(u.v));
    net::put_u32(frame, u.insert ? 1 : 0);
  }
  const std::vector<std::uint8_t> body = request(ServeMsg::kUpdate, frame, ServeMsg::kUpdateOk);
  net::WireReader r(std::span<const std::uint8_t>(body.data(), body.size()));
  const std::uint32_t applied = r.u32();
  if (r.remaining() != 0) malformed("UpdateOk carries trailing bytes");
  return applied;
}

ServeCertificate ServeClient::query(int k) {
  DECK_CHECK(k >= 0);
  std::vector<std::uint8_t> frame;
  net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kQuery));
  net::put_u32(frame, static_cast<std::uint32_t>(k));
  const std::vector<std::uint8_t> body = request(ServeMsg::kQuery, frame, ServeMsg::kCertificate);
  net::WireReader r(std::span<const std::uint8_t>(body.data(), body.size()));
  ServeCertificate cert;
  cert.k = static_cast<int>(r.u32());
  cert.attempts = static_cast<int>(r.u32());
  cert.copies_used = static_cast<int>(r.u32());
  cert.columns_used = static_cast<int>(r.u32());
  cert.rounds_slack_used = static_cast<int>(r.u32());
  const std::uint32_t edges = r.u32();
  cert.edges.reserve(edges);
  for (std::uint32_t i = 0; i < edges; ++i) {
    const auto u = static_cast<VertexId>(r.u32());
    const auto v = static_cast<VertexId>(r.u32());
    cert.edges.emplace_back(u, v);
  }
  if (r.remaining() != 0) malformed("Certificate carries trailing bytes");
  return cert;
}

ServeStats ServeClient::stats() {
  std::vector<std::uint8_t> frame;
  net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kStats));
  const std::vector<std::uint8_t> body = request(ServeMsg::kStats, frame, ServeMsg::kStatsOk);
  net::WireReader r(std::span<const std::uint8_t>(body.data(), body.size()));
  ServeStats s;
  s.updates = r.u64();
  s.inserts = r.u64();
  s.deletes = r.u64();
  s.queries = r.u64();
  s.bank_reuses = r.u64();
  s.bank_replays = r.u64();
  s.pending_updates = r.u64();
  if (r.remaining() != 0) malformed("StatsOk carries trailing bytes");
  return s;
}

void ServeClient::bye() {
  std::vector<std::uint8_t> frame;
  net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kBye));
  const std::vector<std::uint8_t> body = request(ServeMsg::kBye, frame, ServeMsg::kByeOk);
  if (!body.empty()) malformed("ByeOk carries trailing bytes");
}

}  // namespace deck
