#pragma once

// SessionServer — the serving loop that exposes one GraphSession to remote
// clients over net::Transport, speaking the serve protocol
// (serve/protocol.hpp). The servectl shape: a long-lived session ingests a
// mixed insert/delete/query workload from any number of concurrent clients.
//
// Concurrency model: one serving thread per client transport (serve_all),
// all mutating/querying the single shared session under one mutex — the
// session itself is single-threaded. Interleaving across clients is
// arbitrary, but sketch linearity makes the live bank depend only on the
// *set* of applied updates, so any query is bit-identical to a one-shot
// sparsify_stream over some serial order of the updates applied so far.
//
// Fault discipline: a request the server cannot honor draws an Error frame
// and the connection stays open — one client's malformed frame or invalid
// update never tears down the session or the other clients. Transport
// faults (client vanished mid-conversation) end that client's loop only.

#include <cstdint>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace deck {

/// Per-server accounting across all clients served.
struct ServerStats {
  std::uint64_t clients = 0;  // serve() loops completed
  std::uint64_t frames = 0;   // request frames received
  std::uint64_t errors = 0;   // Error frames sent
};

class SessionServer {
 public:
  /// Serves `session`, which must be a local-mode session (the serve
  /// protocol carries per-update ingest) and outlive the server.
  explicit SessionServer(GraphSession& session);

  /// Serves one client until Bye, orderly disconnect, or a transport
  /// fault (which propagates as NetError). Safe to call from multiple
  /// threads with distinct transports.
  void serve(Transport& client);

  /// Serves every client on its own thread and joins them all. Per-client
  /// transport faults are swallowed (that client is simply gone — the
  /// session and the other clients keep serving); any other exception is
  /// rethrown after all clients finish.
  void serve_all(const std::vector<Transport*>& clients);

  ServerStats stats() const;

 private:
  /// Decodes one request and builds the response frame. Never throws on
  /// bad input — refusals become Error frames. Returns false when the
  /// client said Bye (response is still sent).
  bool handle(std::span<const std::uint8_t> request, std::vector<std::uint8_t>& response);

  GraphSession& session_;
  mutable std::mutex mu_;  // serializes session access and stats_
  ServerStats stats_;
};

}  // namespace deck
