#pragma once

// GraphSession — the long-lived session facade over the streaming
// sparsification pipeline, and the single entry point the three historical
// one-shot drivers (sparsify_stream, sharded_sparsify_stream,
// coordinated_sparsify) are now thin wrappers over.
//
// Lifecycle: open → insert/delete (or bulk ingest) → query(k) → resume →
// close. Updates land in a write-optimized guttering stage
// (serve/gutter.hpp) feeding a *live* ℓ₀ sketch bank; a query is
// pause/flush/recover/resume: drain the gutters, clone the live bank, and
// run forest recovery on the clone — the live bank's sketch copies are
// never consumed, so ingest continues where it left off and the next query
// folds only the deltas that arrived since (banks are not rebuilt).
//
// Bit-identity contract: query() at any point returns exactly what the
// one-shot sparsify_stream would return on the stream ingested so far —
// for every gutter flush policy, gutter count, ingest mode, and recovery
// thread count. Two ingredients make that a theorem rather than a test
// hope: sketch linearity (any regrouping of updates sums to the same
// bank) and deterministic recovery (forests are a function of bank bytes
// alone). Adaptive sizing holds the live bank at the attempt-0 sizing;
// attempt 0 of a query clones it, and only the rare grown attempts replay
// the retained stream through GraphStream::updates_since.
//
// Ingest modes (IngestOptions::mode):
//   kSequential  — gutters flush inline on the session thread.
//   kSharded     — gutters flush in parallel on a ThreadPool at drain
//                  points; gutters own disjoint vertex ranges, the same
//                  disjoint-write argument as static sharding.
//   kCoordinated — queries drive the multi-process worker protocol of
//                  net/ingest.hpp (workers hold their own stream slices);
//                  per-update ingest is not available in this mode.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ingest.hpp"
#include "serve/gutter.hpp"
#include "sketch/apply.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

namespace deck {

enum class IngestMode {
  kSequential = 0,
  kSharded = 1,
  kCoordinated = 2,
};

/// Everything that shaped the three historical entry points, in one bag.
/// Defaults reproduce sparsify_stream(stream, k, {}, {}).
struct IngestOptions {
  IngestMode mode = IngestMode::kSequential;
  SketchOptions sketch;
  RecoveryOptions recovery;
  /// kSharded: shard count / lent pool for parallel gutter drains. The
  /// sharding enum is ignored — gutters are always contiguous vertex
  /// ranges (the kVertexRange discipline). shard.backend selects the
  /// batch-apply execution strategy (sketch/apply.hpp) for gutter flushes
  /// in *every* local mode, kSequential included; kCoordinated workers
  /// choose their own via IngestWorkerOptions::backend. Bit-identity
  /// holds across backends, so this is pure execution policy.
  ShardOptions shard;
  /// Gutter layout and flush policy (all modes except kCoordinated).
  GutterOptions gutter;
  /// kCoordinated: connected worker transports (each running
  /// run_ingest_worker) and the coordinator pool sizing.
  std::vector<Transport*> workers;
  IngestCoordinatorOptions coordinator;
};

/// Session-lifetime accounting, including the gutter stage's.
struct SessionStats {
  std::uint64_t updates = 0;  // undirected updates ingested (gutters included)
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t queries = 0;
  /// Query attempts answered by cloning the live bank vs re-ingesting the
  /// retained stream (adaptive growth attempts, or a query for k other
  /// than the session's).
  std::uint64_t bank_reuses = 0;
  std::uint64_t bank_replays = 0;
  GutterStats gutter;
};

class GraphSession {
 public:
  /// Opens a session over an empty n-vertex graph serving k-certificate
  /// queries. The live bank is sized for (opt.sketch, k) — queries for the
  /// session k clone it; other k's fall back to a stream replay.
  GraphSession(int n, int k, IngestOptions opt = {});

  /// Named constructor, for symmetry with the open/…/close lifecycle.
  static GraphSession open(int n, int k, IngestOptions opt = {}) {
    return GraphSession(n, k, opt);
  }

  /// Closes on destruction (best-effort: coordinated worker shutdown
  /// faults are swallowed — call close() to observe them).
  ~GraphSession();

  GraphSession(const GraphSession&) = delete;
  GraphSession& operator=(const GraphSession&) = delete;

  /// Appends one edge update. Validated like GraphStream (inserting a live
  /// edge or deleting an absent one throws); buffered in the gutters, not
  /// yet in the live bank. Unavailable in kCoordinated mode.
  void insert(VertexId u, VertexId v);
  void erase(VertexId u, VertexId v);
  void apply(const StreamUpdate& u);

  /// Bulk ingest: appends every update of `s` (same vertex count) in
  /// order, as if replayed through insert()/erase().
  void ingest(const GraphStream& s);

  /// Pause/flush/recover/resume: drains the gutters into the live bank,
  /// recovers a k-forest Thurimella certificate from a clone, and leaves
  /// the session ready for more updates. Bit-identical to the equivalent
  /// one-shot sparsify_stream on the stream ingested so far. query() uses
  /// the session k (the live bank's shape); query(k) for any other k
  /// replays the retained stream instead of cloning.
  SparsifyResult query();
  SparsifyResult query(int k);

  /// Drains the gutters without querying — bounds live-bank staleness.
  void flush();

  /// Ends the session: drains gutters, and in kCoordinated mode sends the
  /// workers Shutdown (throwing on transport faults). Idempotent; every
  /// other member except stats() throws once closed.
  void close();
  bool closed() const { return closed_; }

  int num_vertices() const { return n_; }
  int k() const { return k_; }
  const IngestOptions& options() const { return opt_; }

  /// The retained update history (ground truth for verification, and the
  /// replay source for non-clone query attempts). Empty in kCoordinated
  /// mode, where the workers own the stream.
  const GraphStream& stream() const { return stream_; }

  /// Undirected updates buffered in the gutters, not yet in the live bank.
  std::size_t pending_updates() const;

  SessionStats stats() const;

 private:
  void check_open() const;
  void check_local(const char* what) const;
  /// The sizing the live bank is held at — recover_certificate's attempt-0
  /// options, so the first attempt of every query is a clone, never a
  /// replay.
  SketchOptions live_bank_options() const;
  SketchConnectivity attempt_bank(const SketchOptions& aopt);
  SparsifyResult query_local(int k);
  SparsifyResult query_coordinated(int k);
  ThreadPool* drain_pool();

  int n_ = 0;
  int k_ = 0;
  IngestOptions opt_;
  bool closed_ = false;
  GraphStream stream_;
  std::size_t folded_ = 0;  // stream_ updates already pushed into gutters
  std::optional<SketchConnectivity> bank_;  // live bank (local modes)
  /// Batch boundary gutter flushes apply through (opt_.shard.backend);
  /// finish() is called at every drain point so an asynchronous offload
  /// backend could slot in without touching the query path.
  std::unique_ptr<BatchApplier> applier_;
  std::optional<GutteringSystem> gutters_;
  std::unique_ptr<ThreadPool> owned_pool_;  // kSharded drain / coordinator pool
  bool roster_validated_ = false;           // kCoordinated: Hellos consumed
  SessionStats stats_;
};

/// ingest() — the facade function behind the deprecated one-shot wrappers:
/// opens a session, bulk-ingests `stream`, and queries once. Local modes
/// only (coordinated_sparsify wraps the session directly).
SparsifyResult ingest(const GraphStream& stream, int k, const IngestOptions& opt);

}  // namespace deck
