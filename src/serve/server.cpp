#include "serve/server.hpp"

#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

struct ServerMetrics {
  obs::Counter& clients = obs::Registry::global().counter("serve.server.clients");
  obs::Counter& frames = obs::Registry::global().counter("serve.server.frames");
  obs::Counter& updates = obs::Registry::global().counter("serve.server.updates");
  obs::Counter& queries = obs::Registry::global().counter("serve.server.queries");
  obs::Counter& errors = obs::Registry::global().counter("serve.server.errors");
  obs::Histogram& frame_ns = obs::Registry::global().histogram("serve.server.frame_ns");

  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

void put_error(std::vector<std::uint8_t>& out, ServeErrorCode code, const std::string& what) {
  out.clear();
  net::put_u32(out, static_cast<std::uint32_t>(ServeMsg::kError));
  net::put_u32(out, static_cast<std::uint32_t>(code));
  for (const char c : what) out.push_back(static_cast<std::uint8_t>(c));
}

}  // namespace

SessionServer::SessionServer(GraphSession& session) : session_(session) {
  DECK_CHECK_MSG(session.options().mode != IngestMode::kCoordinated,
                 "the serve protocol carries per-update ingest — serve a local-mode session");
}

bool SessionServer::handle(std::span<const std::uint8_t> request,
                           std::vector<std::uint8_t>& response) {
  response.clear();
  net::WireReader r(request);

  // The decoder refuses with Error frames, never exceptions: one client's
  // garbage must not end the serving loop. WireReader over-reads surface as
  // NetError — caught here and mapped to kMalformedFrame.
  try {
    const auto type = static_cast<ServeMsg>(r.u32());
    switch (type) {
      case ServeMsg::kHello: {
        const std::uint32_t version = r.u32();
        if (r.remaining() != 0) {
          put_error(response, ServeErrorCode::kMalformedFrame, "Hello carries trailing bytes");
          return true;
        }
        if (version != kServeProtocolVersion) {
          put_error(response, ServeErrorCode::kBadVersion,
                    "client speaks protocol version " + std::to_string(version) +
                        ", server speaks " + std::to_string(kServeProtocolVersion));
          return true;
        }
        const std::lock_guard<std::mutex> lock(mu_);
        net::put_u32(response, static_cast<std::uint32_t>(ServeMsg::kHelloOk));
        net::put_u32(response, kServeProtocolVersion);
        net::put_u32(response, static_cast<std::uint32_t>(session_.num_vertices()));
        net::put_u32(response, static_cast<std::uint32_t>(session_.k()));
        return true;
      }

      case ServeMsg::kUpdate: {
        const std::uint32_t count = r.u32();
        if (r.remaining() != static_cast<std::size_t>(count) * 12) {
          put_error(response, ServeErrorCode::kMalformedFrame,
                    "Update announces " + std::to_string(count) + " update(s) but carries " +
                        std::to_string(r.remaining()) + " body byte(s)");
          return true;
        }
        const std::lock_guard<std::mutex> lock(mu_);
        std::uint32_t applied = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
          StreamUpdate u;
          u.u = static_cast<VertexId>(r.u32());
          u.v = static_cast<VertexId>(r.u32());
          u.insert = r.u32() != 0;
          // Stream validation throws before anything reaches the gutters,
          // so a refused update leaves the session exactly as it was —
          // but updates [0, i) of this batch are already in.
          try {
            session_.apply(u);
          } catch (const std::logic_error& e) {
            put_error(response, ServeErrorCode::kBadUpdate,
                      "update " + std::to_string(i) + " of " + std::to_string(count) +
                          " rejected (" + std::to_string(applied) + " applied): " + e.what());
            return true;
          }
          ++applied;
        }
        if (obs::enabled()) ServerMetrics::get().updates.add(applied);
        net::put_u32(response, static_cast<std::uint32_t>(ServeMsg::kUpdateOk));
        net::put_u32(response, applied);
        return true;
      }

      case ServeMsg::kQuery: {
        const std::uint32_t k_wire = r.u32();
        if (r.remaining() != 0) {
          put_error(response, ServeErrorCode::kMalformedFrame, "Query carries trailing bytes");
          return true;
        }
        const std::lock_guard<std::mutex> lock(mu_);
        const int k = k_wire == 0 ? session_.k() : static_cast<int>(k_wire);
        // Bound k before a bank is sized for it: no vertex can have more
        // than n-1 edge-disjoint paths to another, so a larger k is a
        // client error, not a certificate request.
        if (k < 1 || k > session_.num_vertices()) {
          put_error(response, ServeErrorCode::kBadQuery,
                    "k=" + std::to_string(k) + " out of range for an n=" +
                        std::to_string(session_.num_vertices()) + " session");
          return true;
        }
        SparsifyResult result;
        try {
          result = session_.query(k);
        } catch (const std::logic_error& e) {
          put_error(response, ServeErrorCode::kBadQuery,
                    "query k=" + std::to_string(k) + " failed: " + e.what());
          return true;
        }
        if (obs::enabled()) ServerMetrics::get().queries.inc();
        net::put_u32(response, static_cast<std::uint32_t>(ServeMsg::kCertificate));
        net::put_u32(response, static_cast<std::uint32_t>(k));
        net::put_u32(response, static_cast<std::uint32_t>(result.attempts));
        net::put_u32(response, static_cast<std::uint32_t>(result.copies_used));
        net::put_u32(response, static_cast<std::uint32_t>(result.columns_used));
        net::put_u32(response, static_cast<std::uint32_t>(result.rounds_slack_used));
        net::put_u32(response, static_cast<std::uint32_t>(result.certificate.num_edges()));
        for (const Edge& e : result.certificate.edges()) {
          net::put_u32(response, static_cast<std::uint32_t>(e.u));
          net::put_u32(response, static_cast<std::uint32_t>(e.v));
        }
        return true;
      }

      case ServeMsg::kStats: {
        if (r.remaining() != 0) {
          put_error(response, ServeErrorCode::kMalformedFrame, "Stats carries trailing bytes");
          return true;
        }
        const std::lock_guard<std::mutex> lock(mu_);
        const SessionStats s = session_.stats();
        net::put_u32(response, static_cast<std::uint32_t>(ServeMsg::kStatsOk));
        net::put_u64(response, s.updates);
        net::put_u64(response, s.inserts);
        net::put_u64(response, s.deletes);
        net::put_u64(response, s.queries);
        net::put_u64(response, s.bank_reuses);
        net::put_u64(response, s.bank_replays);
        net::put_u64(response, static_cast<std::uint64_t>(session_.pending_updates()));
        return true;
      }

      case ServeMsg::kBye: {
        if (r.remaining() != 0) {
          put_error(response, ServeErrorCode::kMalformedFrame, "Bye carries trailing bytes");
          return true;
        }
        net::put_u32(response, static_cast<std::uint32_t>(ServeMsg::kByeOk));
        return false;
      }

      default:
        put_error(response, ServeErrorCode::kUnknownType,
                  "unrecognized request type " +
                      std::to_string(static_cast<std::uint32_t>(type)));
        return true;
    }
  } catch (const NetError& e) {
    put_error(response, ServeErrorCode::kMalformedFrame, e.what());
    return true;
  }
}

void SessionServer::serve(Transport& client) {
  obs::Span span("serve.client");
  std::uint64_t frames = 0;
  bool more = true;
  while (more) {
    std::optional<std::vector<std::uint8_t>> request = client.recv();
    if (!request) break;  // orderly disconnect without Bye — client is gone
    const std::uint64_t start = obs::enabled() ? obs::now_ns() : 0;
    ++frames;

    std::vector<std::uint8_t> response;
    more = handle(std::span<const std::uint8_t>(request->data(), request->size()), response);

    const bool is_error =
        response.size() >= 4 &&
        static_cast<ServeMsg>(response[0] | (response[1] << 8) | (response[2] << 16) |
                              (static_cast<std::uint32_t>(response[3]) << 24)) == ServeMsg::kError;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames;
      if (is_error) ++stats_.errors;
    }
    if (obs::enabled()) {
      ServerMetrics& m = ServerMetrics::get();
      m.frames.inc();
      if (is_error) m.errors.inc();
      m.frame_ns.observe(obs::now_ns() - start);
    }
    client.send(response);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.clients;
  }
  if (obs::enabled()) ServerMetrics::get().clients.inc();
  span.arg("frames", frames);
}

void SessionServer::serve_all(const std::vector<Transport*>& clients) {
  DECK_CHECK(!clients.empty());
  for (Transport* t : clients) DECK_CHECK(t != nullptr);

  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (Transport* t : clients) {
    threads.emplace_back([this, t, &err_mu, &first_error] {
      try {
        serve(*t);
      } catch (const NetError&) {
        // This client vanished mid-conversation; the session and the other
        // clients keep serving.
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

ServerStats SessionServer::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace deck
