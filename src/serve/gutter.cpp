#include "serve/gutter.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace deck {

namespace {

struct GutterMetrics {
  obs::Counter& flushes = obs::Registry::global().counter("serve.gutter.flushes");
  obs::Counter& flushed_halves = obs::Registry::global().counter("serve.gutter.flushed_halves");
  obs::Histogram& flush_halves = obs::Registry::global().histogram("serve.gutter.flush_halves");
  obs::Histogram& flush_ns = obs::Registry::global().histogram("serve.gutter.flush_ns");

  static GutterMetrics& get() {
    static GutterMetrics m;
    return m;
  }
};

}  // namespace

GutteringSystem::GutteringSystem(int n, const GutterOptions& opt, Applier apply)
    : n_(n), opt_(opt), apply_(std::move(apply)) {
  DECK_CHECK(n >= 0);
  DECK_CHECK(apply_ != nullptr);
  DECK_CHECK_MSG(opt_.policy.max_halves >= 1, "a gutter must hold at least one half");
  DECK_CHECK(opt_.num_gutters >= 0);
  int gutters = opt_.num_gutters;
  if (gutters == 0) gutters = 4 * (opt_.pool != nullptr ? opt_.pool->size() : 1);
  gutters = std::clamp(gutters, 1, std::max(1, n_));
  gutters_.resize(static_cast<std::size_t>(gutters));
}

int GutteringSystem::gutter_of(VertexId src) const {
  DECK_ASSERT(src >= 0 && src < n_);
  // Contiguous vertex ranges, the cache-friendly kVertexRange assignment:
  // a gutter's flush touches one contiguous slice of the bank.
  return static_cast<int>(static_cast<std::int64_t>(src) * num_gutters() / std::max(1, n_));
}

void GutteringSystem::buffer_half(VertexId src, VertexId dst, int delta) {
  Gutter& g = gutters_[static_cast<std::size_t>(gutter_of(src))];
  if (g.halves.empty()) g.oldest_tick = tick_;
  g.halves.push_back({src, {dst, delta}});
  ++pending_;
  ++stats_.halves_buffered;
}

void GutteringSystem::push(VertexId u, VertexId v, int delta) {
  DECK_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "gutter push endpoint out of range");
  DECK_CHECK_MSG(u != v, "gutter updates must not be self-loops");
  ++tick_;
  buffer_half(u, v, delta);
  buffer_half(v, u, delta);
  // Size trigger on the two gutters just written.
  for (const VertexId src : {u, v}) {
    const int g = gutter_of(src);
    if (gutters_[static_cast<std::size_t>(g)].halves.size() >= opt_.policy.max_halves) {
      ++stats_.size_flushes;
      flush(g);
    }
  }
  // Round-robin age sweep: one gutter per push, so a full rotation costs
  // num_gutters pushes — an idle gutter is detected at most that late.
  if (opt_.policy.max_age > 0) {
    const int g = age_scan_;
    age_scan_ = (age_scan_ + 1) % num_gutters();
    Gutter& gut = gutters_[static_cast<std::size_t>(g)];
    if (!gut.halves.empty() && tick_ - gut.oldest_tick >= opt_.policy.max_age) {
      ++stats_.age_flushes;
      flush(g);
    }
  }
}

std::vector<GutteringSystem::Half> GutteringSystem::extract(int g) {
  Gutter& gut = gutters_[static_cast<std::size_t>(g)];
  std::vector<Half> halves = std::move(gut.halves);
  gut.halves.clear();
  pending_ -= halves.size();
  if (!halves.empty()) {
    ++stats_.flushes;
    stats_.flushed_halves += halves.size();
  }
  return halves;
}

void GutteringSystem::apply_sorted(std::vector<Half> halves) const {
  if (halves.empty()) return;
  const std::uint64_t start = obs::enabled() ? obs::now_ns() : 0;
  // Sorted batch: group the buffered halves into per-source runs (stable,
  // so each source keeps push order) and walk each source's sketch array
  // once while it is hot.
  std::stable_sort(halves.begin(), halves.end(),
                   [](const Half& a, const Half& b) { return a.src < b.src; });
  std::vector<VertexDelta> run;
  run.reserve(halves.size());
  std::size_t i = 0;
  while (i < halves.size()) {
    const VertexId src = halves[i].src;
    run.clear();
    for (; i < halves.size() && halves[i].src == src; ++i) run.push_back(halves[i].delta);
    apply_(src, std::span<const VertexDelta>(run.data(), run.size()));
  }
  if (obs::enabled()) {
    GutterMetrics& m = GutterMetrics::get();
    m.flushes.inc();
    m.flushed_halves.add(halves.size());
    m.flush_halves.observe(halves.size());
    m.flush_ns.observe(obs::now_ns() - start);
  }
}

void GutteringSystem::flush(int g) { apply_sorted(extract(g)); }

void GutteringSystem::drain() {
  // Extract on the calling thread (bookkeeping is not synchronized), then
  // fan the applies out: gutters own disjoint source ranges, so their
  // flushes write disjoint slices of the bank — safe with no locking.
  std::vector<std::vector<Half>> dirty;
  for (int g = 0; g < num_gutters(); ++g) {
    std::vector<Half> halves = extract(g);
    if (!halves.empty()) dirty.push_back(std::move(halves));
  }
  stats_.drain_flushes += dirty.size();
  if (opt_.pool != nullptr && dirty.size() > 1) {
    ThreadPool& pool = *opt_.pool;
    for (std::vector<Half>& halves : dirty) {
      std::vector<Half>* h = &halves;
      pool.submit([this, h] { apply_sorted(std::move(*h)); });
    }
    pool.wait();
    return;
  }
  for (std::vector<Half>& halves : dirty) apply_sorted(std::move(halves));
}

}  // namespace deck
