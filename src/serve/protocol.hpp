#pragma once

// Request/response wire protocol for continuous query serving — the frames a
// SessionServer (serve/server.hpp) speaks with its clients over any
// net::Transport, riding the same length-prefixed LE idiom as the ingest and
// CONGEST protocols (net/wire.hpp).
//
//   client                                 server
//   ──────                                 ──────
//   Hello{version}        ──────────►      validate version
//                         ◄──────────      HelloOk{version, n, k}
//   Update{count, u v ±}… ──────────►      session.apply per update
//                         ◄──────────      UpdateOk{applied}
//   Query{k}              ──────────►      session.query(k)
//                         ◄──────────      Certificate{telemetry, edges}
//   Stats{}               ──────────►
//                         ◄──────────      StatsOk{SessionStats}
//   Bye{}                 ──────────►
//                         ◄──────────      ByeOk{}
//
// Any request the server cannot honor draws an Error{code, message} frame
// instead of the success response, and the connection stays open — a
// malformed frame from one client must not tear down a serving session.
// Client-side decoding turns Error frames (and locally detected malformed
// responses) into the typed ServeError exception.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

namespace deck {

/// Protocol revision carried in Hello/HelloOk. Bumped on any frame layout
/// change; the server rejects every other version with kBadVersion.
inline constexpr std::uint32_t kServeProtocolVersion = 1;

/// Frame types (u32 head of every framed message).
enum class ServeMsg : std::uint32_t {
  kHello = 1,        // client → server: version u32
  kHelloOk = 2,      // server → client: version u32, n u32, k u32
  kUpdate = 3,       // client → server: count u32, then count × (u u32, v u32, insert u32)
  kUpdateOk = 4,     // server → client: applied u32
  kQuery = 5,        // client → server: k u32 (0 = the session's k)
  kCertificate = 6,  // server → client: telemetry + edge list (see encode_certificate)
  kStats = 7,        // client → server: no body
  kStatsOk = 8,      // server → client: 7×u64 (see encode_stats)
  kBye = 9,          // client → server: no body
  kByeOk = 10,       // server → client: no body
  kError = 11,       // server → client: code u32, then the message text
};

/// Why the server refused a request (Error frame code).
enum class ServeErrorCode : std::uint32_t {
  kMalformedFrame = 1,  // frame too short, trailing bytes, or bad field encoding
  kBadUpdate = 2,       // update rejected by stream validation (endpoints / liveness)
  kBadQuery = 3,        // k out of range, or recovery failed to converge
  kUnknownType = 4,     // unrecognized frame type
  kBadVersion = 5,      // Hello version mismatch
};

/// Typed serve-layer fault: an Error frame received by the client, or a
/// request the server-side decoder refused. Subclasses NetError so every
/// existing transport-fault catch keeps working.
class ServeError : public NetError {
 public:
  ServeError(ServeErrorCode code, const std::string& what)
      : NetError("serve: " + what), code_(code) {}

  ServeErrorCode code() const { return code_; }

 private:
  ServeErrorCode code_;
};

/// The decoded kCertificate response: the recovered certificate's edges plus
/// the SparsifyResult telemetry a one-shot caller would see.
struct ServeCertificate {
  int k = 0;
  int attempts = 0;
  int copies_used = 0;
  int columns_used = 0;
  int rounds_slack_used = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
};

/// The decoded kStatsOk response: the serving session's lifetime counters
/// (SessionStats sans the gutter breakdown) plus the updates still buffered
/// in the gutters at receipt of the request.
struct ServeStats {
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t queries = 0;
  std::uint64_t bank_reuses = 0;
  std::uint64_t bank_replays = 0;
  std::uint64_t pending_updates = 0;
};

/// Blocking request/response client for one serving session. Every method
/// sends one request frame and decodes the matching response; an Error frame
/// raises ServeError with the server's code, transport faults raise
/// NetError. Not thread-safe — one ServeClient per client thread.
class ServeClient {
 public:
  explicit ServeClient(Transport& server) : server_(server) {}

  /// Handshake: must be the first call. Returns after the server accepts
  /// the protocol version. num_vertices()/k() are valid afterwards.
  void hello();

  void insert(VertexId u, VertexId v);
  void erase(VertexId u, VertexId v);
  /// Ships a batch of updates in one frame; the server applies them in
  /// order. Returns the applied count (== updates.size() on success).
  std::uint32_t update(std::span<const StreamUpdate> updates);

  /// Queries the session (k = 0 uses the session's k).
  ServeCertificate query(int k = 0);

  /// Session-lifetime counters, as of the server's receipt of the request.
  ServeStats stats();

  /// Orderly goodbye; the server drops this client afterwards.
  void bye();

  int num_vertices() const { return n_; }
  int k() const { return k_; }

 private:
  std::vector<std::uint8_t> request(ServeMsg type, const std::vector<std::uint8_t>& frame,
                                    ServeMsg expect);

  Transport& server_;
  int n_ = 0;
  int k_ = 0;
};

}  // namespace deck
