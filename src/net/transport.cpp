#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace deck {

namespace {

/// Shared by every transport flavor: frame/byte totals both ways plus the
/// time recv() spent blocked waiting for a frame (the round-barrier and
/// chunk-stream stall signal).
struct NetMetrics {
  obs::Counter& tx_frames = obs::Registry::global().counter("net.tx.frames");
  obs::Counter& tx_bytes = obs::Registry::global().counter("net.tx.bytes");
  obs::Counter& rx_frames = obs::Registry::global().counter("net.rx.frames");
  obs::Counter& rx_bytes = obs::Registry::global().counter("net.rx.bytes");
  obs::Histogram& rx_wait_ns = obs::Registry::global().histogram("net.rx.wait_ns");

  static NetMetrics& get() {
    static NetMetrics m;
    return m;
  }
};

[[noreturn]] void fail(const std::string& what) { throw NetError("net: " + what); }

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

void check_size(std::size_t bytes) {
  if (static_cast<std::uint64_t>(bytes) > kMaxMessageBytes)
    fail("message of " + std::to_string(bytes) + " byte(s) exceeds the " +
         std::to_string(kMaxMessageBytes) + "-byte frame limit");
}

// ---------------------------------------------------------------------------
// Loopback: two FIFO queues shared by the endpoint pair. Each endpoint
// writes its peer's inbox and drains its own; close() wakes the peer so a
// blocked recv() observes the orderly shutdown.

struct LoopbackChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> queue;
  bool closed = false;  // the *writer* closed; readable until drained
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> inbox,
                    std::shared_ptr<LoopbackChannel> outbox)
      : inbox_(std::move(inbox)), outbox_(std::move(outbox)) {}

  ~LoopbackTransport() override { LoopbackTransport::close(); }

  void send(std::span<const std::uint8_t> message) override {
    check_size(message.size());
    if (obs::enabled()) {
      NetMetrics::get().tx_frames.inc();
      NetMetrics::get().tx_bytes.add(message.size());
    }
    std::lock_guard<std::mutex> lock(outbox_->mu);
    if (outbox_->closed) fail("send on a closed loopback transport");
    outbox_->queue.emplace_back(message.begin(), message.end());
    outbox_->cv.notify_one();
  }

  std::optional<std::vector<std::uint8_t>> recv() override { return recv_for(-1); }

  std::optional<std::vector<std::uint8_t>> recv_for(int timeout_ms) override {
    const std::uint64_t wait_start = obs::enabled() ? obs::now_ns() : 0;
    std::unique_lock<std::mutex> lock(inbox_->mu);
    const auto ready = [this] { return !inbox_->queue.empty() || inbox_->closed; };
    if (timeout_ms < 0) {
      inbox_->cv.wait(lock, ready);
    } else if (!inbox_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      throw NetTimeout("net: recv timed out after " + std::to_string(timeout_ms) +
                       "ms on a loopback transport");
    }
    if (inbox_->queue.empty()) return std::nullopt;  // peer closed, fully drained
    std::vector<std::uint8_t> message = std::move(inbox_->queue.front());
    inbox_->queue.pop_front();
    if (obs::enabled()) {
      NetMetrics::get().rx_wait_ns.observe(obs::now_ns() - wait_start);
      NetMetrics::get().rx_frames.inc();
      NetMetrics::get().rx_bytes.add(message.size());
    }
    return message;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(outbox_->mu);
    outbox_->closed = true;
    outbox_->cv.notify_all();
  }

  void interrupt() override {
    close();
    // close() only flags the outbox (peer-observable); a recv blocked on
    // *this* endpoint waits on the inbox. Mark it closed too so the wait
    // ends — already-queued frames stay drainable first.
    std::lock_guard<std::mutex> lock(inbox_->mu);
    inbox_->closed = true;
    inbox_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackChannel> inbox_;
  std::shared_ptr<LoopbackChannel> outbox_;
};

// ---------------------------------------------------------------------------
// Stream sockets (TCP and Unix domain): framed messages over a connected
// socket. All loops handle partial transfers and EINTR; SIGPIPE is
// suppressed per send so a reset peer surfaces as NetError.

void put_u64_le(std::uint8_t out[8], std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64_le(const std::uint8_t in[8]) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

class StreamTransport final : public Transport {
 public:
  explicit StreamTransport(int fd, bool tcp) : fd_(fd) {
    if (tcp) {
      // Request/response protocols (per-round barriers in the CONGEST
      // engine, per-attempt ingest coordination) ship many small frames;
      // leaving Nagle on serializes them against delayed ACKs at ~40ms each.
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }

  ~StreamTransport() override { StreamTransport::close(); }

  void send(std::span<const std::uint8_t> message) override {
    check_size(message.size());
    if (fd_ < 0) fail("send on a closed stream transport");
    std::uint8_t prefix[8];
    put_u64_le(prefix, message.size());
    send_all(prefix, sizeof prefix);
    send_all(message.data(), message.size());
    if (obs::enabled()) {
      NetMetrics::get().tx_frames.inc();
      NetMetrics::get().tx_bytes.add(message.size());
    }
  }

  std::optional<std::vector<std::uint8_t>> recv() override { return recv_for(-1); }

  std::optional<std::vector<std::uint8_t>> recv_for(int timeout_ms) override {
    if (fd_ < 0) fail("recv on a closed stream transport");
    const std::uint64_t wait_start = obs::enabled() ? obs::now_ns() : 0;
    if (timeout_ms >= 0) {
      // The deadline guards the idle wait between frames; once the length
      // prefix starts arriving the frame is read to completion below.
      pollfd p{fd_, POLLIN, 0};
      for (;;) {
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc > 0) break;
        if (rc == 0)
          throw NetTimeout("net: recv timed out after " + std::to_string(timeout_ms) +
                           "ms on a stream transport");
        if (errno != EINTR) fail_errno("poll failed");
      }
    }
    std::uint8_t prefix[8];
    const std::size_t got = recv_some(prefix, sizeof prefix);
    // The length prefix is where recv() blocks between frames; payload bytes
    // follow promptly once it lands, so the wait metric stops here.
    if (obs::enabled()) NetMetrics::get().rx_wait_ns.observe(obs::now_ns() - wait_start);
    if (got == 0) return std::nullopt;  // orderly close between frames
    if (got < sizeof prefix) fail("truncated frame: peer closed mid length prefix");
    const std::uint64_t length = get_u64_le(prefix);
    if (length > kMaxMessageBytes)
      fail("frame length " + std::to_string(length) + " exceeds the " +
           std::to_string(kMaxMessageBytes) + "-byte limit — corrupt or hostile peer");
    std::vector<std::uint8_t> message(static_cast<std::size_t>(length));
    if (recv_some(message.data(), message.size()) < message.size())
      fail("truncated frame: peer closed mid payload");
    if (obs::enabled()) {
      NetMetrics::get().rx_frames.inc();
      NetMetrics::get().rx_bytes.add(message.size());
    }
    return message;
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void interrupt() override {
    // shutdown() — not close() — so the fd stays valid while another thread
    // sits in ::recv on it: the blocked read returns 0 (EOF) instead of
    // racing a reused descriptor.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  void send_all(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      const ssize_t w = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        fail_errno("send failed");
      }
      sent += static_cast<std::size_t>(w);
    }
  }

  /// Reads exactly `size` bytes unless EOF interrupts; returns bytes read.
  std::size_t recv_some(std::uint8_t* data, std::size_t size) {
    std::size_t got = 0;
    while (got < size) {
      const ssize_t r = ::recv(fd_, data + got, size - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        fail_errno("recv failed");
      }
      if (r == 0) break;  // EOF
      got += static_cast<std::size_t>(r);
    }
    return got;
  }

  int fd_ = -1;
};

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path)
    fail("unix socket path '" + path + "' must be 1.." +
         std::to_string(sizeof addr.sun_path - 1) + " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Parsed socket address for either IP family: a ':' in the literal selects
/// AF_INET6 (every IPv6 literal contains one; no IPv4 literal does).
struct IpAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_INET;
};

IpAddr make_addr(const std::string& address, std::uint16_t port) {
  IpAddr a;
  if (address.find(':') != std::string::npos) {
    a.family = AF_INET6;
    a.len = sizeof(sockaddr_in6);
    auto* addr6 = reinterpret_cast<sockaddr_in6*>(&a.storage);
    addr6->sin6_family = AF_INET6;
    addr6->sin6_port = htons(port);
    if (::inet_pton(AF_INET6, address.c_str(), &addr6->sin6_addr) != 1)
      fail("invalid IPv6 address '" + address + "'");
  } else {
    a.family = AF_INET;
    a.len = sizeof(sockaddr_in);
    auto* addr4 = reinterpret_cast<sockaddr_in*>(&a.storage);
    addr4->sin_family = AF_INET;
    addr4->sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr4->sin_addr) != 1)
      fail("invalid IPv4 address '" + address + "'");
  }
  return a;
}

std::uint16_t addr_port(const sockaddr_storage& storage) {
  if (storage.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&storage)->sin6_port);
  return ntohs(reinterpret_cast<const sockaddr_in*>(&storage)->sin_port);
}

}  // namespace

std::optional<std::vector<std::uint8_t>> Transport::recv(const RecvOptions& opts) {
  for (int attempt = 1;; ++attempt) {
    try {
      return recv_for(opts.timeout_ms);
    } catch (const NetTimeout&) {
      if (attempt > opts.retries) throw;
      if (opts.backoff_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(opts.backoff_ms * attempt));
    }
  }
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> loopback_pair() {
  auto a_to_b = std::make_shared<LoopbackChannel>();
  auto b_to_a = std::make_shared<LoopbackChannel>();
  return {std::make_unique<LoopbackTransport>(b_to_a, a_to_b),
          std::make_unique<LoopbackTransport>(a_to_b, b_to_a)};
}

TcpListener::TcpListener(std::uint16_t port, const std::string& bind_address) {
  const IpAddr addr = make_addr(bind_address, port);
  fd_ = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr.storage), addr.len) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("bind to " + bind_address + ":" + std::to_string(port) + " failed: " + detail);
  }
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno("getsockname failed");
  }
  port_ = addr_port(bound);
  if (::listen(fd_, SOMAXCONN) < 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno("listen failed");
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Transport> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<StreamTransport>(fd, /*tcp=*/true);
    if (errno != EINTR) fail_errno("accept failed");
  }
}

std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port) {
  const IpAddr addr = make_addr(host, port);
  const int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.storage), addr.len) == 0)
    return std::make_unique<StreamTransport>(fd, /*tcp=*/true);
  if (errno == EINTR) {
    // POSIX: an interrupted connect keeps completing asynchronously, and
    // calling connect() again yields EALREADY — wait for writability and
    // read the real outcome from SO_ERROR instead.
    pollfd p{fd, POLLOUT, 0};
    while (::poll(&p, 1, -1) < 0) {
      if (errno != EINTR) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        fail("connect to " + host + ":" + std::to_string(port) + " failed: poll: " + detail);
      }
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0)
      return std::make_unique<StreamTransport>(fd, /*tcp=*/true);
    const std::string detail = std::strerror(err != 0 ? err : errno);
    ::close(fd);
    fail("connect to " + host + ":" + std::to_string(port) + " failed: " + detail);
  }
  const std::string detail = std::strerror(errno);
  ::close(fd);
  fail("connect to " + host + ":" + std::to_string(port) + " failed: " + detail);
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = make_unix_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket failed");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("bind to unix socket '" + path + "' failed: " + detail);
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    fail("listen on unix socket '" + path + "' failed: " + detail);
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<StreamTransport>(fd, /*tcp=*/false);
    if (errno != EINTR) fail_errno("accept failed");
  }
}

std::unique_ptr<Transport> unix_connect(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket failed");
  // AF_UNIX connect() completes synchronously (or fails); no EINPROGRESS
  // dance like TCP, but EINTR still needs a retry.
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR) continue;
    const std::string detail = std::strerror(errno);
    ::close(fd);
    fail("connect to unix socket '" + path + "' failed: " + detail);
  }
  return std::make_unique<StreamTransport>(fd, /*tcp=*/false);
}

}  // namespace deck
