#pragma once

// Tiny little-endian wire codec for the net layer's protocol messages.
// Mirrors sketch_io's encoding discipline (explicit byte-by-byte LE, bounds
// checks before every read) but raises NetError — a malformed protocol
// message is a transport-layer fault, not a sketch-buffer fault.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace deck::net {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// LEB128 — 7 value bits per byte, high bit = continuation. Used by the
/// CONGEST v4 delta round frames where most encoded values (slot gaps,
/// small payload words) fit in one byte.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Receives one frame, treating orderly close as a protocol fault — for
/// exchanges that know exactly what they are waiting for (`expecting` names
/// it in the error). Both the ingest and the CONGEST engine protocols frame
/// every wait this way.
inline std::vector<std::uint8_t> recv_expected(Transport& t, const char* expecting) {
  std::optional<std::vector<std::uint8_t>> frame = t.recv();
  if (!frame)
    throw NetError(std::string("net: peer closed while waiting for ") + expecting);
  return std::move(*frame);
}

/// Bounds-checked reader over one received message. Over-reads throw
/// NetError; rest() hands the unread tail to nested codecs (e.g. a
/// sketch_io chunk riding in a protocol message).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  /// LEB128 companion of put_varint. A continuation chain longer than ten
  /// bytes or overflowing 64 bits is a malformed message, not a silent wrap.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      need(1);
      const std::uint8_t b = bytes_[pos_++];
      if (shift == 63 && b > 1)
        throw NetError("net: malformed protocol message — varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
    }
    throw NetError("net: malformed protocol message — varint continuation never terminates");
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }

  /// The next `k` bytes (a length-prefixed nested payload).
  std::span<const std::uint8_t> bytes(std::size_t k) {
    need(k);
    const std::span<const std::uint8_t> s = bytes_.subspan(pos_, k);
    pos_ += k;
    return s;
  }

  /// The unread remainder of the message.
  std::span<const std::uint8_t> rest() const { return bytes_.subspan(pos_); }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t k) {
    if (bytes_.size() - pos_ < k)
      throw NetError("net: malformed protocol message — need " + std::to_string(k) +
                     " byte(s) at offset " + std::to_string(pos_) + ", " +
                     std::to_string(bytes_.size() - pos_) + " remain");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace deck::net
