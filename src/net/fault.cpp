#include "net/fault.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace deck {

namespace {

struct FaultMetrics {
  obs::Counter& kills = obs::Registry::global().counter("net.fault.kills");
  obs::Counter& drops = obs::Registry::global().counter("net.fault.drops");
  obs::Counter& delays = obs::Registry::global().counter("net.fault.delays");

  static FaultMetrics& get() {
    static FaultMetrics m;
    return m;
  }
};

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                                 FaultScript script)
    : inner_(std::move(inner)), script_(std::move(script)) {}

FaultInjectingTransport::~FaultInjectingTransport() { FaultInjectingTransport::close(); }

void FaultInjectingTransport::send(std::span<const std::uint8_t> message) {
  if (killed_) throw NetError("net: send on a fault-killed transport");
  inner_->send(message);
}

std::optional<std::vector<std::uint8_t>> FaultInjectingTransport::recv() {
  return recv_impl(-1);
}

std::optional<std::vector<std::uint8_t>> FaultInjectingTransport::recv_for(int timeout_ms) {
  return recv_impl(timeout_ms);
}

std::optional<std::vector<std::uint8_t>> FaultInjectingTransport::recv_impl(int timeout_ms) {
  if (killed_) throw NetError("net: recv on a fault-killed transport");
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame = inner_->recv_for(timeout_ms);
    if (!frame) return std::nullopt;  // orderly close passes through
    const FaultRule* rule = rule_at(frames_seen_++);
    if (rule == nullptr) return frame;
    switch (rule->kind) {
      case FaultRule::Kind::kKill:
        killed_ = true;
        inner_->close();
        if (obs::enabled()) FaultMetrics::get().kills.inc();
        throw NetError("net: fault injection killed the transport at frame " +
                       std::to_string(frames_seen_ - 1));
      case FaultRule::Kind::kDrop:
        // Swallow this frame and wait for the next; the sender believes it
        // was delivered, which is exactly the stall a lossy peer produces.
        if (obs::enabled()) FaultMetrics::get().drops.inc();
        continue;
      case FaultRule::Kind::kDelay:
        if (obs::enabled()) FaultMetrics::get().delays.inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(rule->delay_ms));
        return frame;
    }
  }
}

void FaultInjectingTransport::close() {
  if (inner_ != nullptr) inner_->close();
}

void FaultInjectingTransport::interrupt() {
  if (inner_ != nullptr) inner_->interrupt();
}

const FaultRule* FaultInjectingTransport::rule_at(std::size_t index) const {
  for (const FaultRule& r : script_)
    if (r.frame_index == index) return &r;
  return nullptr;
}

}  // namespace deck
