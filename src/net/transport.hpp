#pragma once

// Minimal length-prefixed message transport — the shipping layer under the
// multi-process sketch ingest (src/net/ingest.*). A Transport moves whole
// messages (byte vectors) between exactly two endpoints, reliably and in
// order; framing is a little-endian u64 length prefix followed by the
// payload, so the receiver always knows message boundaries and a short read
// is a detectable fault, never a misparse.
//
// Three implementations:
//   - LoopbackTransport (loopback_pair()): an in-process queue pair for
//     deterministic tests and benches — no sockets, no timing, FIFO per
//     direction, close() observable from the peer.
//   - TCP (TcpListener / tcp_connect): POSIX stream sockets over IPv4 or
//     IPv6 (an address containing ':' selects AF_INET6 — "::1" works
//     everywhere "127.0.0.1" does), loopback or LAN. Partial reads/writes
//     and EINTR are handled; peers on different hosts interoperate because
//     framing is endian-stable.
//   - Unix domain (UnixListener / unix_connect): stream sockets over a
//     filesystem path for same-host worker fleets — no port allocation, no
//     TCP stack, and the listener unlinks its path on destruction. Framing
//     and fault semantics are identical to TCP (same stream transport).
//
// Faults raise NetError (closed peer, truncated frame, oversized frame,
// socket errors) — never UB and never a silent short message. Orderly
// shutdown is distinguishable: recv() returns std::nullopt when the peer
// closed after a complete message.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace deck {

/// Transport-layer fault: closed/reset peer, truncated or oversized frame,
/// or an OS socket error.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A recv deadline expired with the peer still connected. Subclass of
/// NetError so every existing catch keeps working; death-detection code
/// catches this specifically to distinguish "silent" from "gone".
class NetTimeout : public NetError {
 public:
  using NetError::NetError;
};

/// Blocking policy for Transport::recv(const RecvOptions&): how long one
/// attempt may wait, how many times to retry after a timeout, and the
/// linear backoff between retries. The default blocks forever (exactly
/// recv()).
struct RecvOptions {
  int timeout_ms = -1;  // per-attempt wait; < 0 blocks indefinitely
  int retries = 0;      // extra attempts after the first times out
  int backoff_ms = 0;   // sleep backoff_ms * attempt between attempts
};

/// Frames larger than this are rejected on both send and receive — a forged
/// length prefix must fail on arithmetic, not on a giant allocation.
inline constexpr std::uint64_t kMaxMessageBytes = 1ull << 30;

/// Reliable, ordered, message-oriented channel between two endpoints.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one message (empty allowed). Throws NetError if the peer is gone
  /// or the message exceeds kMaxMessageBytes.
  virtual void send(std::span<const std::uint8_t> message) = 0;

  /// Blocks for the next message. Returns std::nullopt on orderly close
  /// (peer closed with no partial frame pending); throws NetError on a
  /// truncated frame, oversized prefix, or socket error.
  virtual std::optional<std::vector<std::uint8_t>> recv() = 0;

  /// recv() with a deadline: waits at most `timeout_ms` for the *start* of
  /// the next frame, then throws NetTimeout (the peer may still be alive —
  /// the caller decides whether silence means death). timeout_ms < 0 blocks
  /// forever, identical to recv(). Once a frame starts arriving it is read
  /// to completion regardless of the deadline.
  virtual std::optional<std::vector<std::uint8_t>> recv_for(int timeout_ms) = 0;

  /// Policy-driven recv: up to opts.retries + 1 attempts of
  /// recv_for(opts.timeout_ms) with linear backoff between them; throws
  /// NetTimeout when every attempt times out.
  std::optional<std::vector<std::uint8_t>> recv(const RecvOptions& opts);

  /// Closes this endpoint. Further send() calls throw; the peer's pending
  /// messages stay readable and its next recv() after draining them
  /// observes the close.
  virtual void close() = 0;

  /// Unblocks a recv() in progress on *this* endpoint (it observes an
  /// orderly close / NetError) and renders the endpoint unusable. close()
  /// only signals the peer — a loopback close() flags the outbox and a
  /// stream close() races ::close against a blocked ::recv — so a comm
  /// thread that must stop its *own* blocked receiver calls interrupt().
  /// Safe to call from a different thread than the one blocked in recv().
  virtual void interrupt() { close(); }
};

/// Two connected in-process endpoints: messages sent on `first` arrive at
/// `second` and vice versa. Thread-safe per endpoint; FIFO per direction.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> loopback_pair();

/// Listening TCP socket bound to an address (default IPv4 loopback,
/// ephemeral port — read the chosen one back with port()). Passing an IPv6
/// address ("::1", "::") binds an AF_INET6 socket instead; the address
/// family is inferred from the literal.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0, const std::string& bind_address = "127.0.0.1");
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (the ephemeral choice when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection. Throws NetError on failure.
  std::unique_ptr<Transport> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to a listening peer (IPv4 or IPv6 literal — ':' in `host`
/// selects AF_INET6). Throws NetError when the connection is refused or the
/// address is invalid.
std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port);

/// Listening Unix-domain stream socket bound to a filesystem path. The path
/// must not exist yet (stale-socket takeover is an operator decision, not a
/// library default); it is unlinked when the listener is destroyed.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::string& path() const { return path_; }

  /// Blocks for one inbound connection. Throws NetError on failure.
  std::unique_ptr<Transport> accept();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening Unix-domain peer. Throws NetError when nothing
/// listens at `path` or the path does not fit a socket address.
std::unique_ptr<Transport> unix_connect(const std::string& path);

}  // namespace deck
