#pragma once

// Coordinator/worker protocol for multi-process sketch ingest — the
// distributed front-end the paper's pipeline assumes: N worker processes
// each ingest a disjoint slice of the update stream into a private ℓ₀ bank
// and stream it to the coordinator as framed sketch_io chunks; the
// coordinator merges chunks into the global bank as they arrive
// (BankAssembler — peak memory is one bank plus one chunk, not one bank per
// worker), peels the k forests (parallel recovery on the same shared
// ThreadPool that drains the network), and materializes the Thurimella
// certificate for the CONGEST algorithms.
//
//   worker 0..W-1                          coordinator
//   ─────────────                          ───────────
//   Hello{id, n, W}     ──────────────►    validate roster
//                       ◄──────────────    Attempt{SketchOptions}
//   ingest slice, then
//   Chunk{bytes}…, Done ──────────────►    BankAssembler::add_chunk per
//                                          arrival, overlapped across
//                                          workers on the shared pool
//                       (repeat per adaptive attempt)
//                       ◄──────────────    Shutdown
//
// The attempt loop is the same recover_certificate() driver behind
// sparsify_stream()/sharded_sparsify_stream(): with auto-sizing enabled the
// coordinator broadcasts each attempt's grown sizing and workers re-ingest,
// so the distributed flow is bit-identical to the single-process paths for
// fixed seeds — any worker count, any chunking.
//
// Protocol violations, transport faults, and corrupt chunks raise NetError
// / SketchIoError on the side that detects them; nothing is ever silently
// dropped.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "sketch/apply.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"

namespace deck {

/// Protocol message types (u32 head of every framed message).
enum class IngestMsg : std::uint32_t {
  kHello = 1,     // worker → coordinator: worker_id u32, n u32, num_workers u32
  kAttempt = 2,   // coordinator → worker: SketchOptions (seed u64 + 8×u32)
  kChunk = 3,     // worker → coordinator: one sketch_io chunk, verbatim
  kDone = 4,      // worker → coordinator: chunks_sent u32 (attempt finished)
  kShutdown = 5,  // coordinator → worker: no body
};

struct IngestWorkerOptions {
  /// Chunking of the shipped bank (ChunkOptions passthrough; source_id is
  /// always the worker id).
  int vertices_per_chunk = 0;
  std::size_t target_chunk_bytes = 64 * 1024;
  /// Batch-apply execution strategy for the worker's private-bank ingest
  /// (sketch/apply.hpp). Worker-local — not on the wire: linearity plus
  /// backend bit-identity mean any mix of backends across the fleet merges
  /// to the same coordinator bank, so the Attempt protocol never needs to
  /// know.
  ApplyBackend backend = ApplyBackend::kScalar;
  /// Directed halves buffered per source vertex before the buffered run is
  /// batch-applied to the worker's bank (the apply_batched regrouping,
  /// inlined here because a slice of deletes may not be a valid GraphStream
  /// on its own).
  std::size_t batch_halves = 1024;
};

/// Runs one ingest worker to completion: announces itself, then serves
/// Attempt requests — ingesting the strided slice updates[worker_id::
/// num_workers] of `stream` with the attempt's options and streaming the
/// bank back as chunks — until Shutdown. Throws NetError on transport
/// faults or protocol violations.
void run_ingest_worker(Transport& coordinator, const GraphStream& stream, std::uint32_t worker_id,
                       std::uint32_t num_workers, const IngestWorkerOptions& wopt = {});

struct IngestCoordinatorOptions {
  /// Size of the single shared ThreadPool that overlaps network receive
  /// with chunk assembly across workers and then runs parallel recovery.
  int threads = 1;
};

/// Coordinator-side building blocks, shared by the GraphSession facade
/// (serve/session.hpp — its kCoordinated mode drives them once per query)
/// and the deprecated coordinated_sparsify() wrapper.
///
/// Validates every worker's Hello against the fleet (ids distinct and in
/// range, vertex counts agree) — call once per session, before the first
/// attempt is broadcast. Throws NetError on violations.
void validate_ingest_roster(const std::vector<Transport*>& workers, int n);

/// One ingest attempt over the fleet: broadcasts `aopt`, assembles the
/// workers' chunk streams into the global bank on `pool` (receive waits
/// overlap chunk merges across workers). Throws NetError / SketchIoError.
SketchConnectivity coordinated_ingest_attempt(const std::vector<Transport*>& workers, int n,
                                              const SketchOptions& aopt, ThreadPool& pool);

/// Sends every worker Shutdown. best_effort swallows per-worker transport
/// faults (the error-path variant — some workers may already be gone);
/// otherwise the first fault propagates.
void shutdown_ingest_workers(const std::vector<Transport*>& workers, bool best_effort = false);

/// DEPRECATED wrapper over GraphSession (serve/session.hpp): opens a
/// kCoordinated session, queries once, and closes — validating each
/// worker's Hello, broadcasting per-attempt SketchOptions, assembling the
/// chunk streams into the global bank, recovering the k forests, and
/// shutting the workers down. The result (certificate, forests, telemetry)
/// is bit-identical to sharded_sparsify_stream()/sparsify_stream() on the
/// same stream and options, for any worker count and chunk size. Throws
/// NetError on transport/protocol faults and SketchIoError on corrupt or
/// inconsistent chunk streams. New code should open a GraphSession.
SparsifyResult coordinated_sparsify(const std::vector<Transport*>& workers, int n, int k,
                                    const SketchOptions& opt,
                                    const IngestCoordinatorOptions& copt = {});

}  // namespace deck
