#include "net/ingest.hpp"

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sketch/sketch_io.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace deck {

namespace {

[[noreturn]] void fail(const std::string& what) { throw NetError("net: " + what); }

/// Coordinator-side chunk-stream metrics: volume plus how long each receive
/// job sat waiting for its worker's next frame.
struct IngestMetrics {
  obs::Counter& chunks = obs::Registry::global().counter("ingest.chunks");
  obs::Counter& chunk_bytes = obs::Registry::global().counter("ingest.chunk_bytes");
  obs::Histogram& chunk_wait_ns = obs::Registry::global().histogram("ingest.chunk_wait_ns");

  static IngestMetrics& get() {
    static IngestMetrics m;
    return m;
  }
};

std::vector<std::uint8_t> encode_attempt(const SketchOptions& opt) {
  std::vector<std::uint8_t> msg;
  net::put_u32(msg, static_cast<std::uint32_t>(IngestMsg::kAttempt));
  net::put_u64(msg, opt.seed);
  net::put_u32(msg, static_cast<std::uint32_t>(opt.max_forests));
  net::put_u32(msg, static_cast<std::uint32_t>(opt.columns));
  net::put_u32(msg, static_cast<std::uint32_t>(opt.rounds_slack));
  net::put_u32(msg, opt.auto_size.enabled ? 1 : 0);
  net::put_u32(msg, static_cast<std::uint32_t>(opt.auto_size.initial_columns));
  net::put_u32(msg, static_cast<std::uint32_t>(opt.auto_size.initial_rounds_slack));
  net::put_u32(msg, static_cast<std::uint32_t>(opt.auto_size.growth));
  net::put_u32(msg, static_cast<std::uint32_t>(opt.auto_size.max_attempts));
  return msg;
}

/// Reads one sizing field and enforces the same legal range the sketch_io
/// header validation uses — a corrupt Attempt frame must fail with a typed
/// error on the worker, never drive SketchConnectivity into overflowing
/// arithmetic or a forged-size allocation.
int attempt_field(net::WireReader& r, const char* name, std::uint32_t lo, std::uint32_t hi) {
  const std::uint32_t v = r.u32();
  if (v < lo || v > hi)
    fail("attempt field '" + std::string(name) + "' out of range [" + std::to_string(lo) + ", " +
         std::to_string(hi) + "] (value " + std::to_string(v) + ")");
  return static_cast<int>(v);
}

SketchOptions decode_attempt(net::WireReader& r) {
  SketchOptions opt;
  opt.seed = r.u64();
  opt.max_forests = attempt_field(r, "max_forests", 1, 1u << 16);
  opt.columns = attempt_field(r, "columns", 1, 1u << 16);
  opt.rounds_slack = attempt_field(r, "rounds_slack", 1, 1u << 16);
  opt.auto_size.enabled = attempt_field(r, "auto_size.enabled", 0, 1) == 1;
  opt.auto_size.initial_columns = attempt_field(r, "auto_size.initial_columns", 1, 1u << 16);
  opt.auto_size.initial_rounds_slack =
      attempt_field(r, "auto_size.initial_rounds_slack", 1, 1u << 16);
  opt.auto_size.growth = attempt_field(r, "auto_size.growth", 2, 1u << 16);
  opt.auto_size.max_attempts = attempt_field(r, "auto_size.max_attempts", 1, 1u << 16);
  if (r.remaining() != 0) fail("attempt message carries trailing bytes");
  return opt;
}

/// recv() that treats orderly close as a protocol violation — both roles
/// always part with an explicit Done/Shutdown, so a bare EOF means the peer
/// died mid-conversation.
}  // namespace

void run_ingest_worker(Transport& coordinator, const GraphStream& stream, std::uint32_t worker_id,
                       std::uint32_t num_workers, const IngestWorkerOptions& wopt) {
  DECK_CHECK(num_workers >= 1);
  DECK_CHECK(worker_id < num_workers);
  const int n = stream.num_vertices();

  std::vector<std::uint8_t> hello;
  net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
  net::put_u32(hello, worker_id);
  net::put_u32(hello, static_cast<std::uint32_t>(n));
  net::put_u32(hello, num_workers);
  coordinator.send(hello);

  for (;;) {
    const std::vector<std::uint8_t> msg = net::recv_expected(coordinator, "coordinator Attempt/Shutdown");
    net::WireReader r(std::span<const std::uint8_t>(msg.data(), msg.size()));
    const auto type = static_cast<IngestMsg>(r.u32());
    if (type == IngestMsg::kShutdown) return;
    if (type != IngestMsg::kAttempt)
      fail("worker expected Attempt or Shutdown, got message type " +
           std::to_string(static_cast<std::uint32_t>(type)));

    // One attempt: sketch the strided slice updates[worker_id::num_workers]
    // with the broadcast sizing. Linearity makes any disjoint partition of
    // the stream merge to the bank a single ingester would build, and
    // split_seed derives the per-copy seeds from the options alone, so no
    // further coordination is needed. The slice is regrouped into
    // per-source runs (apply_batched's discipline, inlined — a slice of
    // deletes is not a valid GraphStream on its own) and applied through
    // the batch boundary under wopt.backend; bit-identity across backends
    // keeps the shipped chunks byte-stable whatever each worker picks.
    DECK_CHECK(wopt.batch_halves >= 1);
    const SketchOptions aopt = decode_attempt(r);
    SketchConnectivity bank(n, aopt);
    {
      const std::unique_ptr<BatchApplier> applier = make_batch_applier(bank, wopt.backend);
      std::vector<std::vector<VertexDelta>> pending(static_cast<std::size_t>(n));
      auto flush = [&](VertexId src) {
        auto& buf = pending[static_cast<std::size_t>(src)];
        if (buf.empty()) return;
        applier->submit(src, std::span<const VertexDelta>(buf.data(), buf.size()));
        buf.clear();
      };
      auto push = [&](VertexId src, VertexId dst, int delta) {
        auto& buf = pending[static_cast<std::size_t>(src)];
        buf.push_back({dst, delta});
        if (buf.size() >= wopt.batch_halves) flush(src);
      };
      std::size_t index = 0;
      for (const StreamUpdate& u : stream.updates()) {
        if (index++ % num_workers != worker_id) continue;
        const int delta = u.insert ? 1 : -1;
        push(u.u, u.v, delta);
        push(u.v, u.u, delta);
      }
      for (VertexId v = 0; v < n; ++v) flush(v);
      applier->finish();  // merge barrier before the bank is encoded
    }

    ChunkOptions copt;
    copt.source_id = worker_id;
    copt.vertices_per_chunk = wopt.vertices_per_chunk;
    copt.target_chunk_bytes = wopt.target_chunk_bytes;
    std::uint32_t sent = 0;
    for (const std::vector<std::uint8_t>& chunk : encode_bank_chunks(bank, copt)) {
      std::vector<std::uint8_t> frame;
      frame.reserve(4 + chunk.size());
      net::put_u32(frame, static_cast<std::uint32_t>(IngestMsg::kChunk));
      net::put_bytes(frame, std::span<const std::uint8_t>(chunk.data(), chunk.size()));
      coordinator.send(frame);
      ++sent;
    }
    std::vector<std::uint8_t> done;
    net::put_u32(done, static_cast<std::uint32_t>(IngestMsg::kDone));
    net::put_u32(done, sent);
    coordinator.send(done);
  }
}

void validate_ingest_roster(const std::vector<Transport*>& workers, int n) {
  DECK_CHECK(!workers.empty());
  for (Transport* t : workers) DECK_CHECK(t != nullptr);

  // Roster: every worker announces itself before any attempt is broadcast,
  // so a mis-wired transport fails fast instead of corrupting an attempt.
  std::vector<std::uint32_t> ids;
  ids.reserve(workers.size());
  for (Transport* t : workers) {
    const std::vector<std::uint8_t> msg = net::recv_expected(*t, "worker");
    net::WireReader r(std::span<const std::uint8_t>(msg.data(), msg.size()));
    const auto type = static_cast<IngestMsg>(r.u32());
    if (type != IngestMsg::kHello)
      fail("coordinator expected Hello, got message type " +
           std::to_string(static_cast<std::uint32_t>(type)));
    const std::uint32_t id = r.u32();
    const std::uint32_t worker_n = r.u32();
    const std::uint32_t fleet = r.u32();
    if (worker_n != static_cast<std::uint32_t>(n))
      fail("worker " + std::to_string(id) + " ingests n=" + std::to_string(worker_n) +
           ", coordinator expects n=" + std::to_string(n));
    // The strided slices updates[id::num_workers] tile the stream iff every
    // worker agrees on the fleet size and the ids are distinct and in
    // range — anything else silently drops or double-ingests updates, so
    // it fails the roster instead.
    if (fleet != workers.size())
      fail("worker " + std::to_string(id) + " slices for a fleet of " + std::to_string(fleet) +
           ", coordinator drives " + std::to_string(workers.size()) + " worker(s)");
    if (id >= workers.size())
      fail("worker id " + std::to_string(id) + " out of range for a fleet of " +
           std::to_string(workers.size()));
    for (std::uint32_t seen : ids)
      if (seen == id) fail("duplicate worker id " + std::to_string(id) + " in the roster");
    ids.push_back(id);
  }
}

SketchConnectivity coordinated_ingest_attempt(const std::vector<Transport*>& workers, int n,
                                              const SketchOptions& aopt, ThreadPool& pool) {
  obs::Span attempt_span("ingest.attempt");
  attempt_span.arg("workers", workers.size());
  attempt_span.arg("columns", static_cast<std::uint64_t>(aopt.columns));
  const obs::TraceContext attempt_ctx = attempt_span.context();
  const std::vector<std::uint8_t> attempt = encode_attempt(aopt);
  for (Transport* t : workers) t->send(attempt);

  BankAssembler assembler(n, aopt);
  std::mutex mu;  // serializes add_chunk; receive waits overlap across workers
  for (Transport* t : workers) {
    pool.submit([&, t] {
      // Pool threads have no ambient span — parent the receive job under
      // the attempt explicitly so the trace shows the overlap.
      obs::Span recv_span("ingest.recv", attempt_ctx);
      std::uint64_t chunks = 0;
      for (;;) {
        const std::uint64_t wait_start = obs::enabled() ? obs::now_ns() : 0;
        const std::vector<std::uint8_t> msg = net::recv_expected(*t, "worker");
        net::WireReader r(std::span<const std::uint8_t>(msg.data(), msg.size()));
        const auto type = static_cast<IngestMsg>(r.u32());
        if (type == IngestMsg::kDone) {
          (void)r.u32();  // chunks_sent; completeness is checked globally below
          recv_span.arg("chunks", chunks);
          return;
        }
        if (type != IngestMsg::kChunk)
          fail("coordinator expected Chunk or Done, got message type " +
               std::to_string(static_cast<std::uint32_t>(type)));
        if (obs::enabled()) {
          IngestMetrics& m = IngestMetrics::get();
          m.chunk_wait_ns.observe(obs::now_ns() - wait_start);
          m.chunks.inc();
          m.chunk_bytes.add(msg.size());
        }
        ++chunks;
        const std::lock_guard<std::mutex> lock(mu);
        assembler.add_chunk(r.rest());
      }
    });
  }
  pool.wait();
  if (assembler.sources_seen() != workers.size() || !assembler.complete())
    fail("attempt ended with an incomplete chunk stream (" +
         std::to_string(assembler.chunks_received()) + " chunk(s) from " +
         std::to_string(assembler.sources_seen()) + " of " + std::to_string(workers.size()) +
         " worker(s))");
  return assembler.take();
}

void shutdown_ingest_workers(const std::vector<Transport*>& workers, bool best_effort) {
  std::vector<std::uint8_t> bye;
  net::put_u32(bye, static_cast<std::uint32_t>(IngestMsg::kShutdown));
  for (Transport* t : workers) {
    if (!best_effort) {
      t->send(bye);
      continue;
    }
    // Error-path variant: healthy workers should still exit instead of
    // blocking on the next Attempt; the caller's fault stays primary.
    try {
      t->send(bye);
    } catch (const NetError&) {
    }
  }
}

}  // namespace deck
