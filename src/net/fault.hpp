#pragma once

// Deterministic fault injection for Transport-backed protocols.
//
// FaultInjectingTransport wraps any Transport and fires scripted faults
// keyed to the *receive frame index* — the count of frames the wrapped
// endpoint has pulled off the wire. Because every protocol this repo ships
// (ingest, CONGEST engine) is deterministic given its inputs, a frame index
// names one exact protocol moment: "kill the link right after the 7th frame
// from this worker" reproduces bit-for-bit on every run, machine, and
// sanitizer. That is what lets the failover tests sweep *every* kill point
// of a phase instead of praying a sleep lands somewhere interesting.
//
// Three fault kinds:
//   kKill  — close the wrapped transport and raise NetError, as if the peer
//            died mid-phase. Subsequent sends and recvs fail too.
//   kDrop  — swallow the matched inbound frame. The peer believes it was
//            delivered; the protocol above stalls until a recv deadline
//            (RecvOptions) declares the silence a death.
//   kDelay — sleep delay_ms before delivering the matched frame: exercises
//            timeout/retry paths without changing any protocol outcome.
//
// The wrapper is typically installed on the *coordinator's* side of a
// worker link, where it makes the worker look dead/slow/lossy without
// touching worker code.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/transport.hpp"

namespace deck {

/// One scripted fault, armed at a 0-based inbound frame index.
struct FaultRule {
  enum class Kind : std::uint8_t {
    kKill,   // close + NetError at the matched recv
    kDrop,   // discard the matched frame, keep receiving
    kDelay,  // sleep delay_ms, then deliver the matched frame
  };

  std::size_t frame_index = 0;
  Kind kind = Kind::kKill;
  int delay_ms = 0;  // only kDelay reads this
};

/// A scripted fault schedule: rules matched by frame_index as frames arrive.
using FaultScript = std::vector<FaultRule>;

/// Transport decorator applying a FaultScript to the inbound frame stream.
/// Owns the wrapped transport. Sends pass through untouched (until a kKill
/// closes the link); recv/recv_for consult the script at every arriving
/// frame. Not thread-safe beyond the wrapped transport's own guarantees —
/// exactly one receiver, like every Transport in this repo.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultScript script);
  ~FaultInjectingTransport() override;

  void send(std::span<const std::uint8_t> message) override;
  std::optional<std::vector<std::uint8_t>> recv() override;
  std::optional<std::vector<std::uint8_t>> recv_for(int timeout_ms) override;
  void close() override;
  void interrupt() override;

  /// Frames received from the wrapped transport so far (dropped ones
  /// included) — the clock fault rules are keyed to.
  std::size_t frames_seen() const { return frames_seen_; }

 private:
  std::optional<std::vector<std::uint8_t>> recv_impl(int timeout_ms);
  const FaultRule* rule_at(std::size_t index) const;

  std::unique_ptr<Transport> inner_;
  FaultScript script_;
  std::size_t frames_seen_ = 0;
  bool killed_ = false;
};

}  // namespace deck
