#include "obs/trace.hpp"

#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace deck::obs {

namespace {

std::atomic<std::uint32_t> g_node{0};
std::atomic<std::uint64_t> g_trace_id{0};
std::atomic<std::uint64_t> g_next_span{1};

struct TlsTrace {
  std::vector<TraceContext> stack;
  TraceContext base;
};

TlsTrace& tls() {
  thread_local TlsTrace t;
  return t;
}

std::atomic<std::uint32_t> g_next_tid{0};

/// Stable per-thread track id for exported events.
std::uint32_t this_thread_tid() {
  thread_local std::uint32_t tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

struct SinkState {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

SinkState& sink_state() {
  static SinkState s;
  return s;
}

}  // namespace

void set_trace_node(std::uint32_t node) { g_node.store(node, std::memory_order_relaxed); }
std::uint32_t trace_node() { return g_node.load(std::memory_order_relaxed); }

void set_trace_id(std::uint64_t id) { g_trace_id.store(id, std::memory_order_relaxed); }
std::uint64_t trace_id() { return g_trace_id.load(std::memory_order_relaxed); }

std::uint64_t next_span_id() {
  return (static_cast<std::uint64_t>(trace_node()) << 48) |
         g_next_span.fetch_add(1, std::memory_order_relaxed);
}

void set_base_context(const TraceContext& ctx) { tls().base = ctx; }
TraceContext base_context() { return tls().base; }

TraceContext current_context() {
  const TlsTrace& t = tls();
  return t.stack.empty() ? t.base : t.stack.back();
}

// ---------------------------------------------------------------------------
// Sink.

TraceSink& TraceSink::global() {
  static TraceSink instance;
  return instance;
}

void TraceSink::record(TraceEvent ev) {
  SinkState& s = sink_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.events.push_back(std::move(ev));
}

void TraceSink::record_batch(std::vector<TraceEvent> evs) {
  SinkState& s = sink_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (TraceEvent& ev : evs) s.events.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceSink::drain() {
  SinkState& s = sink_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> out = std::move(s.events);
  s.events.clear();
  return out;
}

std::size_t TraceSink::size() const {
  SinkState& s = sink_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.events.size();
}

void TraceSink::clear() {
  SinkState& s = sink_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
}

// ---------------------------------------------------------------------------
// Span.

Span::Span(const char* name) {
  if (!tracing()) return;
  open(name, current_context());
}

Span::Span(const char* name, const TraceContext& parent) {
  if (!tracing()) return;
  open(name, parent);
}

void Span::open(const char* name, const TraceContext& parent) {
  name_ = name;
  parent_id_ = parent.span_id;
  ctx_.trace_id = parent.trace_id != 0 ? parent.trace_id : trace_id();
  ctx_.span_id = next_span_id();
  start_ns_ = now_ns();
  live_ = true;
  tls().stack.push_back(ctx_);
}

Span::~Span() {
  if (!live_) return;
  TlsTrace& t = tls();
  // Pop this span; tolerate an interleaved (non-LIFO) destruction order by
  // searching from the top — observability must not assert on odd scopes.
  for (std::size_t i = t.stack.size(); i > 0; --i) {
    if (t.stack[i - 1].span_id == ctx_.span_id) {
      t.stack.erase(t.stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
      break;
    }
  }
  TraceEvent ev;
  ev.name = name_;
  ev.ts_ns = start_ns_;
  const std::uint64_t end = now_ns();
  ev.dur_ns = end >= start_ns_ ? end - start_ns_ : 0;
  ev.pid = trace_node();
  ev.tid = this_thread_tid();
  ev.trace_id = ctx_.trace_id;
  ev.span_id = ctx_.span_id;
  ev.parent_id = parent_id_;
  ev.args = std::move(args_);
  TraceSink::global().record(std::move(ev));
}

void Span::arg(const char* name, std::uint64_t value) {
  if (!live_) return;
  args_.emplace_back(name, value);
}

// ---------------------------------------------------------------------------
// Wire codec (little-endian, mirrors net/wire.hpp discipline without the
// dependency — obs sits below src/net/).

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t k) {
    if (bytes_.size() - pos_ < k) throw std::runtime_error("obs: malformed trace event buffer");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void encode_trace_events(std::vector<std::uint8_t>& out, std::span<const TraceEvent> events) {
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  for (const TraceEvent& ev : events) {
    put_str(out, ev.name);
    put_u64(out, ev.ts_ns);
    put_u64(out, ev.dur_ns);
    put_u32(out, ev.pid);
    put_u32(out, ev.tid);
    put_u64(out, ev.trace_id);
    put_u64(out, ev.span_id);
    put_u64(out, ev.parent_id);
    put_u32(out, static_cast<std::uint32_t>(ev.args.size()));
    for (const auto& [name, value] : ev.args) {
      put_str(out, name);
      put_u64(out, value);
    }
  }
}

std::vector<TraceEvent> decode_trace_events(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const std::uint32_t count = r.u32();
  // 49 bytes is the minimum encoded event (empty name, zero args); a forged
  // count must fail on arithmetic, not on a giant reserve.
  if (count > bytes.size() / 49 + 1)
    throw std::runtime_error("obs: trace event count exceeds buffer");
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceEvent ev;
    ev.name = r.str();
    ev.ts_ns = r.u64();
    ev.dur_ns = r.u64();
    ev.pid = r.u32();
    ev.tid = r.u32();
    ev.trace_id = r.u64();
    ev.span_id = r.u64();
    ev.parent_id = r.u64();
    const std::uint32_t nargs = r.u32();
    if (nargs > r.remaining() / 12)
      throw std::runtime_error("obs: trace event arg count exceeds buffer");
    for (std::uint32_t a = 0; a < nargs; ++a) {
      std::string name = r.str();
      const std::uint64_t value = r.u64();
      ev.args.emplace_back(std::move(name), value);
    }
    events.push_back(std::move(ev));
  }
  if (r.remaining() != 0)
    throw std::runtime_error("obs: trace event buffer carries trailing bytes");
  return events;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string chrome_trace_json(std::span<const TraceEvent> events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"deck\",\"ph\":\"X\"";
    // Viewer convention: microsecond timestamps. Emit three decimals so
    // nanosecond resolution survives the unit change.
    std::snprintf(buf, sizeof buf, ",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(ev.ts_ns / 1000),
                  static_cast<unsigned long long>(ev.ts_ns % 1000),
                  static_cast<unsigned long long>(ev.dur_ns / 1000),
                  static_cast<unsigned long long>(ev.dur_ns % 1000));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u", ev.pid, ev.tid);
    out += buf;
    out += ",\"args\":{";
    std::snprintf(buf, sizeof buf, "\"trace\":\"%llx\",\"span\":\"%llx\",\"parent\":\"%llx\"",
                  static_cast<unsigned long long>(ev.trace_id),
                  static_cast<unsigned long long>(ev.span_id),
                  static_cast<unsigned long long>(ev.parent_id));
    out += buf;
    for (const auto& [name, value] : ev.args) {
      out += ",\"";
      append_escaped(out, name);
      std::snprintf(buf, sizeof buf, "\":%llu", static_cast<unsigned long long>(value));
      out += buf;
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace deck::obs
