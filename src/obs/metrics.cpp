#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "support/check.hpp"
#include "support/json.hpp"

namespace deck::obs {

namespace detail {

int this_thread_stripe() {
  static std::atomic<unsigned> next{0};
  thread_local int stripe = static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                                             static_cast<unsigned>(kStripes));
  return stripe;
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  DECK_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  DECK_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  stride_ = bounds_.size() + 3;  // buckets, overflow, sum, count
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(kStripes) *
                                                          stride_);
  for (std::size_t i = 0; i < static_cast<std::size_t>(kStripes) * stride_; ++i)
    cells_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t v) {
  if (!enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  std::atomic<std::uint64_t>* base =
      cells_.get() + static_cast<std::size_t>(detail::this_thread_stripe()) * stride_;
  base[bucket].fetch_add(1, std::memory_order_relaxed);
  base[stride_ - 2].fetch_add(v, std::memory_order_relaxed);
  base[stride_ - 1].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snap Histogram::snapshot() const {
  Snap s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  for (int stripe = 0; stripe < kStripes; ++stripe) {
    const std::atomic<std::uint64_t>* base =
        cells_.get() + static_cast<std::size_t>(stripe) * stride_;
    for (std::size_t b = 0; b < s.counts.size(); ++b)
      s.counts[b] += base[b].load(std::memory_order_relaxed);
    s.sum += base[stride_ - 2].load(std::memory_order_relaxed);
    s.count += base[stride_ - 1].load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<std::uint64_t> exponential_bounds(std::uint64_t first, double factor, int count) {
  DECK_CHECK(first >= 1 && factor > 1.0 && count >= 1);
  std::vector<std::uint64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = static_cast<double>(first);
  for (int i = 0; i < count; ++i) {
    const auto v = static_cast<std::uint64_t>(b);
    if (!bounds.empty() && v <= bounds.back())
      bounds.push_back(bounds.back() + 1);
    else
      bounds.push_back(v);
    b *= factor;
  }
  return bounds;
}

const std::vector<std::uint64_t>& latency_bounds_ns() {
  static const std::vector<std::uint64_t> bounds = exponential_bounds(1000, 2.0, 25);
  return bounds;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const CounterVal& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t Snapshot::gauge(std::string_view name) const {
  for (const GaugeVal& g : gauges)
    if (g.name == name) return g.value;
  return 0;
}

const Histogram::Snap* Snapshot::histogram(std::string_view name) const {
  for (const HistVal& h : histograms)
    if (h.name == name) return &h.snap;
  return nullptr;
}

std::string Snapshot::text() const {
  std::string out;
  for (const CounterVal& c : counters)
    out += c.name + " " + std::to_string(c.value) + "\n";
  for (const GaugeVal& g : gauges) out += g.name + " " + std::to_string(g.value) + "\n";
  for (const HistVal& h : histograms) {
    out += h.name + "_count " + std::to_string(h.snap.count) + "\n";
    out += h.name + "_sum " + std::to_string(h.snap.sum) + "\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.snap.bounds.size(); ++b) {
      cumulative += h.snap.counts[b];
      out += h.name + "_le_" + std::to_string(h.snap.bounds[b]) + " " +
             std::to_string(cumulative) + "\n";
    }
  }
  return out;
}

Json Snapshot::to_json() const {
  Json counters_j = Json::object();
  for (const CounterVal& c : counters) counters_j.set(c.name, Json(c.value));
  Json gauges_j = Json::object();
  for (const GaugeVal& g : gauges) gauges_j.set(g.name, Json(g.value));
  Json hists_j = Json::object();
  for (const HistVal& h : histograms) {
    Json hist = Json::object();
    hist.set("count", Json(h.snap.count));
    hist.set("sum", Json(h.snap.sum));
    Json bounds = Json::array();
    for (std::uint64_t b : h.snap.bounds) bounds.push(Json(b));
    Json counts = Json::array();
    for (std::uint64_t c : h.snap.counts) counts.push(Json(c));
    hist.set("bounds", std::move(bounds));
    hist.set("counts", std::move(counts));
    hists_j.set(h.name, std::move(hist));
  }
  Json doc = Json::object();
  doc.set("counters", std::move(counters_j));
  doc.set("gauges", std::move(gauges_j));
  doc.set("histograms", std::move(hists_j));
  return doc;
}

// ---------------------------------------------------------------------------
// Registry.

struct Registry::Impl {
  mutable std::mutex mu;
  // Registration order preserved for deterministic scrape output; the index
  // maps names to (kind, slot) and enforces cross-kind uniqueness.
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
  enum class Kind { kCounter, kGauge, kHistogram };
  std::map<std::string, std::pair<Kind, std::size_t>, std::less<>> index;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  if (const auto it = im.index.find(name); it != im.index.end()) {
    DECK_CHECK_MSG(it->second.first == Impl::Kind::kCounter,
                   "metric name registered with a different kind");
    return *im.counters[it->second.second];
  }
  im.counters.push_back(std::unique_ptr<Counter>(new Counter(std::string(name))));
  im.index.emplace(std::string(name),
                   std::make_pair(Impl::Kind::kCounter, im.counters.size() - 1));
  return *im.counters.back();
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  if (const auto it = im.index.find(name); it != im.index.end()) {
    DECK_CHECK_MSG(it->second.first == Impl::Kind::kGauge,
                   "metric name registered with a different kind");
    return *im.gauges[it->second.second];
  }
  im.gauges.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  im.index.emplace(std::string(name), std::make_pair(Impl::Kind::kGauge, im.gauges.size() - 1));
  return *im.gauges.back();
}

Histogram& Registry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  if (const auto it = im.index.find(name); it != im.index.end()) {
    DECK_CHECK_MSG(it->second.first == Impl::Kind::kHistogram,
                   "metric name registered with a different kind");
    return *im.histograms[it->second.second];
  }
  if (bounds.empty()) bounds = latency_bounds_ns();
  im.histograms.push_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name), std::move(bounds))));
  im.index.emplace(std::string(name),
                   std::make_pair(Impl::Kind::kHistogram, im.histograms.size() - 1));
  return *im.histograms.back();
}

Snapshot Registry::scrape() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  Snapshot snap;
  snap.counters.reserve(im.counters.size());
  for (const auto& c : im.counters) snap.counters.push_back({c->name(), c->value()});
  snap.gauges.reserve(im.gauges.size());
  for (const auto& g : im.gauges) snap.gauges.push_back({g->name(), g->value()});
  snap.histograms.reserve(im.histograms.size());
  for (const auto& h : im.histograms) snap.histograms.push_back({h->name(), h->snapshot()});
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& c : im.counters)
    for (detail::Cell& cell : c->cells_) cell.v.store(0, std::memory_order_relaxed);
  for (const auto& g : im.gauges) g->value_.store(0, std::memory_order_relaxed);
  for (const auto& h : im.histograms)
    for (std::size_t i = 0; i < static_cast<std::size_t>(kStripes) * h->stride_; ++i)
      h->cells_[i].store(0, std::memory_order_relaxed);
}

}  // namespace deck::obs
