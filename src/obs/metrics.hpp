#pragma once

// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, designed so the pool engine and the shared ThreadPool can hit
// the hot hooks from every worker thread without contention.
//
// Write path: each metric keeps kStripes cache-line-sized cells; a thread
// is assigned a stripe once (round-robin on first use) and all its updates
// are relaxed fetch_adds on that cell — per-thread accumulation that is
// lock-free and, with at most kStripes concurrently hot threads, entirely
// uncontended (more threads than stripes share cells, which stays correct
// and TSan-clean, just occasionally contended). Reads merge on scrape: a
// value is the relaxed sum over stripes, so a scrape concurrent with
// writers sees some consistent recent total, never a torn one.
//
// Every hook is gated on obs::enabled() — one relaxed load and branch when
// metrics are off (bench_f12_obs_overhead holds this within noise of a
// hook-free loop).
//
// Handles returned by Registry are interned and live for the process:
// Registry::reset() zeroes values but never invalidates a reference, so
// call sites cache `static Counter& c = Registry::global().counter(...)`.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace deck {
class Json;
}

namespace deck::obs {

inline constexpr int kStripes = 16;

namespace detail {
/// Stripe index of the calling thread, assigned round-robin on first use.
int this_thread_stripe();

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is a relaxed fetch_add on the caller's stripe.
class Counter {
 public:
  void add(std::uint64_t delta) {
    if (!enabled()) return;
    cells_[static_cast<std::size_t>(detail::this_thread_stripe())].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Merged value (relaxed sum over stripes).
  std::uint64_t value() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::string name_;
  std::array<detail::Cell, kStripes> cells_;
};

/// Last-write-wins signed gauge (attempt sizings, fleet sizes).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit overflow bucket above the last one. Each stripe holds a
/// private (buckets + sum + count) block, merged on scrape like counters.
class Histogram {
 public:
  void observe(std::uint64_t v);

  struct Snap {
    std::vector<std::uint64_t> bounds;  ///< inclusive upper bounds
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  Snap snapshot() const;

  const std::string& name() const { return name_; }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<std::uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::string name_;
  std::vector<std::uint64_t> bounds_;
  std::size_t stride_ = 0;  // buckets + overflow + sum + count, per stripe
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// Exponential bucket bounds: first, first*factor, ... (`count` bounds).
std::vector<std::uint64_t> exponential_bounds(std::uint64_t first, double factor, int count);

/// Default latency bounds: 1µs .. ~17s in ×2 steps (25 buckets + overflow).
const std::vector<std::uint64_t>& latency_bounds_ns();

/// One merged, point-in-time view of every registered metric.
struct Snapshot {
  struct CounterVal {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeVal {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistVal {
    std::string name;
    Histogram::Snap snap;
  };
  std::vector<CounterVal> counters;
  std::vector<GaugeVal> gauges;
  std::vector<HistVal> histograms;

  /// Counter value by name (0 when absent) — test / bench convenience.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by name (0 when absent).
  std::int64_t gauge(std::string_view name) const;
  /// Histogram by name (nullptr when absent).
  const Histogram::Snap* histogram(std::string_view name) const;

  /// `name value` exposition lines (histograms: name_count / name_sum /
  /// name_le_<bound> cumulative buckets), deterministic registration order.
  std::string text() const;
  Json to_json() const;
};

/// Process-wide metric registry. Registration takes a mutex (rare); the
/// returned handles write lock-free. Names are unique across metric kinds.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers (or returns) a histogram; `bounds` empty means
  /// latency_bounds_ns(). Re-registration ignores `bounds` (first wins).
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds = {});

  Snapshot scrape() const;

  /// Zeroes every registered value; handles stay valid (tests and
  /// between-run resets — never required for correctness).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace deck::obs
