#pragma once

// Tracing facility: nestable spans over the injectable obs clock, collected
// in a process-wide sink and exported as chrome://tracing / Perfetto
// "trace event" JSON (docs/tracing.md describes the schema).
//
// A Span is RAII: construction stamps the start time and allocates a span
// id parented under the innermost open span on the calling thread (or the
// thread's *base context* when none is open — how Network phases become the
// ambient parent of everything an engine records); destruction appends one
// complete ("ph":"X") event to the sink. When tracing is off a Span is a
// single relaxed load and branch — no clock read, no allocation.
//
// Cross-process correlation: a TraceContext (trace id + parent span id) is
// small enough to ride any wire protocol. The distributed CONGEST engine
// sends the coordinator's context in its Start message; workers record
// spans against it into a *local* buffer (encode_trace_events) and ship
// them back, so one merged timeline shows coordinator phases with each
// worker's execution parented underneath (pid = worker node id).
//
// Span ids embed a node id (top 16 bits) so ids minted by different
// processes of one fleet never collide.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace deck::obs {

/// Correlation handle: which trace, and which span to parent under.
/// trace_id == 0 means "no context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One complete span, ready for export. `pid` is the logical node (0 =
/// coordinator / local process, workers are 1-based), `tid` a track within
/// the node.
struct TraceEvent {
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// This process's node id, embedded in minted span ids and stamped as the
/// pid of locally recorded events (default 0 = coordinator).
void set_trace_node(std::uint32_t node);
std::uint32_t trace_node();

/// This process's trace id. set_tracing(true) alone leaves it 0; callers
/// that export a trace should set one (any nonzero value; distributed
/// workers inherit the coordinator's over the wire).
void set_trace_id(std::uint64_t id);
std::uint64_t trace_id();

/// Mints a fresh span id: (node << 48) | sequence.
std::uint64_t next_span_id();

/// The context new root spans on this thread parent under (thread-local).
/// Network::begin_phase points it at the open phase so engine spans nest.
void set_base_context(const TraceContext& ctx);
TraceContext base_context();

/// Innermost open span on this thread, falling back to the base context.
TraceContext current_context();

/// Process-wide trace event collector. record() appends under a mutex —
/// tracing is a profiling mode, and events are completed spans, not
/// per-message traffic.
class TraceSink {
 public:
  static TraceSink& global();

  void record(TraceEvent ev);
  void record_batch(std::vector<TraceEvent> evs);

  /// Removes and returns everything recorded so far.
  std::vector<TraceEvent> drain();
  std::size_t size() const;
  void clear();

 private:
  TraceSink() = default;
};

/// RAII span. Inert (one relaxed load) when tracing is off at construction.
class Span {
 public:
  explicit Span(const char* name);
  /// Parents under `parent` instead of the thread's current context (wire
  /// contexts, cross-thread handoffs).
  Span(const char* name, const TraceContext& parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument (shows under "args" in the viewer).
  void arg(const char* name, std::uint64_t value);

  /// Whether this span records (tracing was on at construction).
  bool live() const { return live_; }
  /// This span's context — ship it to a worker to parent remote spans.
  TraceContext context() const { return ctx_; }

 private:
  void open(const char* name, const TraceContext& parent);

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceContext ctx_;
  std::uint64_t parent_id_ = 0;
  bool live_ = false;
  std::vector<std::pair<std::string, std::uint64_t>> args_;
};

/// Serializes events for shipping between processes (little-endian,
/// bounds-checked like the net wire codec).
void encode_trace_events(std::vector<std::uint8_t>& out, std::span<const TraceEvent> events);

/// Decodes an encode_trace_events() payload. Throws std::runtime_error on a
/// malformed buffer — callers on a transport boundary wrap it in their own
/// typed error.
std::vector<TraceEvent> decode_trace_events(std::span<const std::uint8_t> bytes);

/// Chrome trace-event JSON ({"traceEvents": [...]}) — open in
/// chrome://tracing or https://ui.perfetto.dev. Timestamps are microseconds
/// (the viewer convention); span/parent/trace ids ride in "args".
std::string chrome_trace_json(std::span<const TraceEvent> events);

}  // namespace deck::obs
