#include "obs/obs.hpp"

namespace deck::obs {

namespace detail {
std::atomic<bool> metrics_on{false};
std::atomic<bool> tracing_on{false};
std::atomic<ClockFn> clock_fn{nullptr};
}  // namespace detail

void set_enabled(bool on) { detail::metrics_on.store(on, std::memory_order_relaxed); }

void set_tracing(bool on) { detail::tracing_on.store(on, std::memory_order_relaxed); }

ClockFn set_clock(ClockFn fn) { return detail::clock_fn.exchange(fn, std::memory_order_relaxed); }

}  // namespace deck::obs
