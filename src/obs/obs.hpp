#pragma once

// Process-wide observability switches and the injectable monotonic clock —
// the substrate under src/obs/metrics.hpp (counters / gauges / histograms)
// and src/obs/trace.hpp (nestable spans, chrome://tracing export).
//
// Everything in src/obs/ compiles to near-zero cost when disabled: every
// hot-path hook (Counter::add, Histogram::observe, Span construction) is a
// single relaxed atomic load plus a predictable branch before any other
// work happens — verified by bench_f12_obs_overhead against a hook-free
// loop. Metrics and tracing are switched independently: metrics are cheap
// enough for production scrapes, tracing buffers whole events and is a
// profiling mode.
//
// The clock is monotonic and injectable (set_clock): tests and benches
// install a fake to make span durations and PhaseStat wall clocks
// deterministic; the default reads std::chrono::steady_clock. Injection is
// process-wide and meant for test setup, not for concurrent flipping.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace deck::obs {

namespace detail {
extern std::atomic<bool> metrics_on;
extern std::atomic<bool> tracing_on;
using ClockFn = std::uint64_t (*)();
extern std::atomic<ClockFn> clock_fn;
}  // namespace detail

/// Whether metric hooks record. The load is relaxed: a flip is eventually
/// visible to every thread, which is all a monitoring switch needs.
inline bool enabled() { return detail::metrics_on.load(std::memory_order_relaxed); }

/// Whether span hooks record trace events.
inline bool tracing() { return detail::tracing_on.load(std::memory_order_relaxed); }

void set_enabled(bool on);
void set_tracing(bool on);

/// Monotonic nanoseconds from the injected clock (steady_clock by default).
inline std::uint64_t now_ns() {
  const detail::ClockFn fn = detail::clock_fn.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

using ClockFn = detail::ClockFn;

/// Installs `fn` as the process clock (nullptr restores steady_clock).
/// Returns the previously installed function (nullptr = default).
ClockFn set_clock(ClockFn fn);

}  // namespace deck::obs
