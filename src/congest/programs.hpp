#pragma once

// The CONGEST primitives as genuine per-vertex send/receive programs.
//
// Each class below is the VertexProgram behind one primitive in
// primitives.hpp: per-vertex state, a synchronous step, and the wire codecs
// the DistributedEngine needs to ship inputs to workers and collect outputs
// back. The thin wrappers in primitives.cpp construct these, run them on the
// Network's engine, and charge the observed rounds/messages — the closed
// forms the seed charged are now *verified* against an actual execution
// instead of asserted on paper.
//
// Program-object discipline: inputs are set on construction (or decoded from
// a spec), outputs are materialized by finish_range() on whichever executor
// owns the vertices (local engines own all of them; distributed workers own
// a slice and ship encode_outputs(), which decode_outputs() absorbs on the
// coordinator). After Engine::execute returns, outputs are complete either
// way.

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "congest/engine.hpp"
#include "congest/primitives.hpp"

namespace deck {

/// Stable wire ids for the distributed program registry.
enum class ProgramId : std::uint32_t {
  kBfs = 1,
  kConvergecast = 2,
  kBroadcast = 3,
  kKeyedUpcast = 4,
  kPipelinedBroadcast = 5,
  kPathDowncast = 6,
  kEdgeExchange = 7,
};

/// Forest topology as shipped to workers: parent + forest-local depth per
/// vertex (children and parent ports are derived locally in setup()).
struct ForestData {
  std::vector<VertexId> parent;
  std::vector<int> depth;

  static ForestData from_comm_forest(const CommForest& f) { return {f.parent, f.depth}; }
  int height() const;
  void encode(std::vector<std::uint8_t>& out) const;
};

/// Shared derived topology: children lists, the graph edge joining each
/// non-root to its parent (forest edges must be graph edges — the engine
/// only moves data along real edges), and the global height.
class ForestProgramBase : public VertexProgram {
 public:
  explicit ForestProgramBase(ForestData f) : f_(std::move(f)) {}

  void setup(const Graph& g) override;

 protected:
  int n() const { return static_cast<int>(f_.parent.size()); }
  bool is_root(VertexId v) const { return f_.parent[static_cast<std::size_t>(v)] == kNoVertex; }
  VertexId parent(VertexId v) const { return f_.parent[static_cast<std::size_t>(v)]; }
  int depth(VertexId v) const { return f_.depth[static_cast<std::size_t>(v)]; }
  EdgeId parent_port(VertexId v) const { return parent_port_[static_cast<std::size_t>(v)]; }
  const std::vector<VertexId>& kids(VertexId v) const {
    return children_[static_cast<std::size_t>(v)];
  }
  /// Sends `msg` to every child of v (the child's parent port is the edge).
  void send_down(VertexId v, const Packet& msg, Outbox& out) const;

  ForestData f_;
  int height_ = 0;

 private:
  std::vector<EdgeId> parent_port_;
  std::vector<std::vector<VertexId>> children_;
};

// ---------------------------------------------------------------------------

/// Flood from a root: every vertex joins at its BFS depth, adopting the
/// smallest announcing neighbor as parent, and announces once itself.
class BfsProgram final : public VertexProgram {
 public:
  BfsProgram(int n, VertexId root);

  std::uint32_t program_id() const override { return static_cast<std::uint32_t>(ProgramId::kBfs); }
  void setup(const Graph& g) override;
  bool starts_active(VertexId v) const override { return v == root_; }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void finish_range(VertexId begin, VertexId end) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;

 private:
  VertexId root_;
  const Graph* g_ = nullptr;
  std::vector<std::uint8_t> joined_;
};

/// Upward aggregation: vertex at depth d sends its combined subtree value at
/// round height - d + 1, so parents hold complete child values when they
/// fire. One message per non-root, height rounds.
class ConvergecastProgram final : public ForestProgramBase {
 public:
  ConvergecastProgram(ForestData f, CombineOp op, std::vector<std::uint64_t> value);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kConvergecast);
  }
  void setup(const Graph& g) override;
  bool starts_active(VertexId v) const override { return !is_root(v); }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<std::uint64_t> value;

 private:
  CombineOp op_;
};

/// Downward value flood along forest edges: depth-d vertices receive at
/// round d. Height rounds, one message per non-root.
class BroadcastProgram final : public ForestProgramBase {
 public:
  BroadcastProgram(ForestData f, std::vector<std::uint64_t> value);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kBroadcast);
  }
  bool starts_active(VertexId v) const override { return is_root(v) && !kids(v).empty(); }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<std::uint64_t> value;
};

/// Pipelined keyed-min upcast (primitives.hpp header comment): per round a
/// vertex may push one (key, prio, payload) message or an end-of-stream
/// marker to its parent; keys flow in ascending order, and a key is only
/// forwarded once every child stream has advanced past it, so forwarded
/// values are final for the subtree. `ancestor_mode` caps emission at keys
/// below depth - 1 (ancestor_min_merge); otherwise everything flows to the
/// roots.
///
/// Note on round counts vs the pre-engine simulation: the old central
/// dirty-list loop could process a vertex twice in one round (once as an
/// emitter, once as a parent of an emitter), letting it push two messages
/// per round over its parent edge — an undercount no real CONGEST execution
/// can match. The engine enforces one message per directed edge per round,
/// so upcast-heavy pipelines now report a few percent more rounds; message
/// counts are unchanged.
class KeyedUpcastProgram final : public ForestProgramBase {
 public:
  KeyedUpcastProgram(ForestData f, bool ancestor_mode, std::vector<std::vector<KeyedItem>> items);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kKeyedUpcast);
  }
  void setup(const Graph& g) override;
  bool starts_active(VertexId) const override { return true; }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void finish_range(VertexId begin, VertexId end) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  /// Items the vertex finalized (complete after execute): min per key over
  /// its subtree for keys it does not emit upward.
  std::vector<std::vector<KeyedItem>> finalized;

 private:
  struct ItemValue {
    std::uint64_t prio;
    std::uint64_t payload;
  };
  std::uint64_t emit_below(VertexId v) const;
  void merge_in(VertexId v, std::uint64_t key, std::uint64_t prio, std::uint64_t payload);

  bool ancestor_mode_;
  std::vector<std::vector<KeyedItem>> items_;  // inputs (consumed by setup)
  std::vector<std::map<std::uint64_t, ItemValue>> pending_;
  std::vector<std::multiset<std::int64_t>> frontiers_;
  std::vector<std::unordered_map<VertexId, std::int64_t>> child_frontier_;
  std::vector<int> live_children_;
  std::vector<std::uint8_t> eos_sent_;
};

/// Root list streamed down a single-root tree, one item per round per edge,
/// with an end-of-stream marker wave behind the last item so every vertex
/// learns the stream ended.
class PipelinedBroadcastProgram final : public ForestProgramBase {
 public:
  PipelinedBroadcastProgram(ForestData f, VertexId root, std::vector<KeyedItem> list);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kPipelinedBroadcast);
  }
  bool starts_active(VertexId v) const override { return v == root_ && !kids(v).empty(); }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void finish_range(VertexId begin, VertexId end) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<std::vector<KeyedItem>> received;

 private:
  VertexId root_;
  std::vector<KeyedItem> list_;
};

/// Each non-root vertex streams its own item followed by its ancestor
/// stream to its children: afterwards every vertex holds the items of all
/// edges on its forest root path, ordered from itself upward.
class PathDowncastProgram final : public ForestProgramBase {
 public:
  PathDowncastProgram(ForestData f, std::vector<KeyedItem> own_item);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kPathDowncast);
  }
  void setup(const Graph& g) override;
  bool starts_active(VertexId v) const override {
    return !is_root(v) && !contig_kids_[static_cast<std::size_t>(v)].empty();
  }
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<std::vector<KeyedItem>> received;

 private:
  std::vector<KeyedItem> own_;
  // Children in the *same forest tree* (depth(c) == depth(v) + 1): the
  // ancestor stream never crosses a segment boundary even though the parent
  // links do.
  std::vector<std::vector<VertexId>> contig_kids_;
};

/// Simultaneous payload exchange across selected edges, one word per round
/// per direction.
class EdgeExchangeProgram final : public VertexProgram {
 public:
  EdgeExchangeProgram(int n, std::vector<EdgeId> edges,
                      std::vector<std::vector<std::uint64_t>> from_u,
                      std::vector<std::vector<std::uint64_t>> from_v);

  std::uint32_t program_id() const override {
    return static_cast<std::uint32_t>(ProgramId::kEdgeExchange);
  }
  void setup(const Graph& g) override;
  bool starts_active(VertexId v) const override;
  void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) override;
  void encode_spec(std::vector<std::uint8_t>& out) const override;
  void encode_outputs(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_outputs(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;
  void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const override;
  void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) override;

  std::vector<std::vector<std::uint64_t>> at_u;  // what u received (from v)
  std::vector<std::vector<std::uint64_t>> at_v;  // what v received (from u)

 private:
  struct SendSlot {
    std::size_t index;  // into edges_
    EdgeId edge;
    VertexId peer;
  };

  int n_;
  std::vector<EdgeId> edges_;
  std::vector<std::vector<std::uint64_t>> from_u_, from_v_;
  std::vector<std::vector<SendSlot>> send_slots_;          // per vertex
  std::unordered_map<EdgeId, std::size_t> edge_index_;
  const Graph* g_ = nullptr;
};

/// Reconstructs a program from its wire id and encoded spec (worker side of
/// the DistributedEngine). Throws NetError on unknown ids or malformed
/// specs.
std::unique_ptr<VertexProgram> decode_congest_program(std::uint32_t id,
                                                      std::span<const std::uint8_t> spec);

}  // namespace deck
