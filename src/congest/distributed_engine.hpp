#pragma once

// Transport-backed CONGEST execution: vertex ranges owned by worker
// processes, rounds barriered by the coordinator, inter-worker edge
// messages framed on the src/net/ wire protocol (PR 4's length-prefixed
// Transport plus the little-endian codec in net/wire.hpp).
//
//   worker 0..W-1                         coordinator (DistributedEngine)
//   ─────────────                         ──────────────────────────────
//   Hello{version}      ─────────────►    roster validation (hub ctor)
//                       ◄─────────────    LoadGraph{id, edges, own range}
//                       ◄─────────────    Start{graph, program id, spec}
//   step owned range,
//   RoundDone{sent,     ─────────────►    barrier: sum sends; route
//     boundary msgs}                      boundary messages to owners
//                       ◄─────────────    Round{deliveries}   (repeat)
//                       ◄─────────────    Collect            (quiescent)
//   Outputs{range}      ─────────────►    program absorbs per-range outputs
//                       ◄─────────────    DropGraph / Shutdown
//
// Every worker steps its own contiguous vertex range with the same BspRunner
// the local engines use, so schedules, mailbox ordering, and therefore
// program outputs and round/message counters are bit-identical to
// SequentialEngine for any worker count. The coordinator counts a round
// whenever any worker sent (locally or across), exactly like the local
// engines count non-silent rounds.
//
// Faults (peer death, malformed frames, protocol violations) raise NetError
// on the side that observes them; nothing is silently dropped.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "congest/engine.hpp"
#include "net/transport.hpp"

namespace deck {

/// Protocol message types (u32 head of every framed message).
enum class CongestMsg : std::uint32_t {
  kHello = 1,      // worker → coordinator: protocol version u32
  kLoadGraph = 2,  // coordinator → worker: graph id, n, m, edges, owned range
  kDropGraph = 3,  // coordinator → worker: graph id
  kStart = 4,      // coordinator → worker: graph id, program id, node id,
                   //   trace flags, trace id, parent span, spec bytes
  kRoundDone = 5,  // worker → coordinator: sends u64, boundary messages
  kRound = 6,      // coordinator → worker: boundary deliveries, continue
  kCollect = 7,    // coordinator → worker: phase quiescent, ship outputs
  kOutputs = 8,    // worker → coordinator: encode_outputs bytes for the range
  kShutdown = 9,   // coordinator → worker: no body
  kTraceData = 10, // worker → coordinator: encoded trace events for the
                   //   execution just collected (only when Start's trace
                   //   flags bit 0 was set)
};

/// v2 added the trace-context fields to Start and the kTraceData reply —
/// the execution protocol itself (barriers, routing, outputs) is unchanged.
inline constexpr std::uint32_t kCongestProtoVersion = 2;

/// Coordinator-side backend factory over connected worker transports. The
/// constructor validates each worker's Hello; engine_for() ships the graph
/// (assigning contiguous vertex ranges); shutdown() (or destruction) sends
/// Shutdown. Not thread-safe: one pipeline drives the fleet at a time, which
/// is exactly how the algorithms sequence their primitive executions.
class DistributedEngineHub final : public EngineHub {
 public:
  /// Validates the fleet roster. Throws NetError on a bad Hello.
  explicit DistributedEngineHub(std::vector<Transport*> workers);
  ~DistributedEngineHub() override;

  std::string name() const override { return "net"; }
  std::unique_ptr<Engine> engine_for(const Graph& g) override;

  /// Sends Shutdown to every worker once; later engine use throws.
  void shutdown();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  Transport& worker(int w) { return *workers_[static_cast<std::size_t>(w)]; }
  bool is_down() const { return down_; }

 private:
  std::vector<Transport*> workers_;
  std::uint32_t next_graph_id_ = 1;
  bool down_ = false;
};

/// Convenience factory mirroring EngineHub::sequential()/parallel().
std::shared_ptr<DistributedEngineHub> make_distributed_hub(std::vector<Transport*> workers);

/// Runs one CONGEST worker to completion: announces itself, then serves
/// LoadGraph/Start/DropGraph until Shutdown (or orderly close). Each Start
/// executes the identified program over the worker's owned vertex range,
/// exchanging boundary messages through the coordinator every round. Throws
/// NetError on transport faults or protocol violations.
void run_congest_worker(Transport& coordinator);

/// In-process worker fleet for tests, benches, and the `--engine net` axis:
/// spawns `workers` threads running run_congest_worker over loopback
/// transports and exposes the connected hub. Destroy every Network using the
/// hub before the fleet; the fleet destructor shuts the hub down and joins.
class CongestWorkerFleet {
 public:
  explicit CongestWorkerFleet(int workers);
  ~CongestWorkerFleet();

  CongestWorkerFleet(const CongestWorkerFleet&) = delete;
  CongestWorkerFleet& operator=(const CongestWorkerFleet&) = delete;

  const std::shared_ptr<DistributedEngineHub>& hub() const { return hub_; }

 private:
  std::vector<std::unique_ptr<Transport>> coordinator_side_;
  std::vector<std::thread> threads_;
  std::shared_ptr<DistributedEngineHub> hub_;
};

}  // namespace deck
