#pragma once

// Transport-backed CONGEST execution: vertex ranges owned by worker
// processes, rounds barriered by the coordinator, inter-worker edge
// messages framed on the src/net/ wire protocol (PR 4's length-prefixed
// Transport plus the little-endian codec in net/wire.hpp).
//
//   worker 0..W-1                         coordinator (DistributedEngine)
//   ─────────────                         ──────────────────────────────
//   Hello{version}      ─────────────►    roster validation (hub ctor)
//                       ◄─────────────    LoadGraph{id, edges, own range}
//                       ◄─────────────    Start{graph, program id, exec
//                                           flags, checkpoint interval, spec}
//   step owned ranges,
//   RoundDone{sent,     ─────────────►    barrier: sum sends; route
//     boundary msgs}                      boundary messages to owners
//                       ◄─────────────    Round{flags, deliveries}  (repeat)
//   Checkpoint{range}   ─────────────►    blob stored, delivery log truncated
//                       ◄─────────────    Collect            (quiescent)
//   Outputs{range}      ─────────────►    program absorbs per-range outputs
//                       ◄─────────────    DropGraph / Shutdown
//
// Every worker steps its owned contiguous vertex ranges with the same
// BspRunner the local engines use, so schedules, mailbox ordering, and
// therefore program outputs and round/message counters are bit-identical to
// SequentialEngine for any worker count. The coordinator counts a round
// whenever any worker sent (locally or across), exactly like the local
// engines count non-silent rounds.
//
// Round hot path (protocol v4): the per-round frames scale with the
// *frontier*, not the graph.
//   * Delta round frames — kRoundDone/kRound pack flags and a 16-bit round
//     stamp into the head word and carry boundary messages in the
//     congest/delta_codec format: varint slot gaps plus repeat markers
//     against a per-link payload cache, with a full-frame fallback whenever
//     the delta body would be larger. Checkpoint and Restore frames stay in
//     the fixed v3 packet format — failover replay must decode without any
//     link cache (the adopting survivor never saw the dead link's frames).
//   * Comm-thread pipelining — each worker runs a dedicated send thread and
//     receive thread around bounded frame queues (WorkerOptions::pipeline),
//     so serializing round R's RoundDone overlaps with stepping round
//     R + 1's interior vertices (vertices with no neighbor outside the
//     owned range, precomputed at LoadGraph; see BspRunner's split-round
//     API). Eager stepping is skipped on checkpoint-interval rounds so
//     resume state is captured outside any split.
//   * Pool×net — WorkerOptions::threads (or a borrowed WorkerOptions::pool)
//     steps each worker's active list on a support/ThreadPool with the same
//     unique-writer mailboxes the pool engine uses.
// All three are transparent to outputs and to the solver-visible
// rounds/messages counters, for every combination with each other, with
// worker counts, and with kill schedules.
//
// Migration v3 → v4: the head word of kRoundDone/kRound became
// `type | flags << 8 | (round & 0xffff) << 16` (v3 shipped a bare type
// u32 and a separate flags u32 on kRound); kStart gained an exec-flags u32
// (bit 0: delta frames) and the checkpoint-interval u32 ahead of the spec;
// kRoundDone/kRound bodies may be delta-encoded (head flags bit 0). A v3
// peer is rejected at Hello with a version-skew error — the formats do not
// interoperate.
//
// Fault tolerance (since protocol v3): the coordinator detects a dead worker at
// any receive — orderly close, transport fault, or silence past the
// RecvOptions deadline — and reassigns the dead worker's vertex ranges to a
// surviving worker (spares, i.e. workers holding no range, are preferred)
// with a Restore frame: the last Checkpoint blob for the range plus the
// logged boundary deliveries since. Range execution is a pure function of
// (graph, spec, per-round deliveries), so the survivor replays to exactly
// the state the dead worker held and the phase continues with bit-identical
// outputs and counters — for ANY kill point. With no checkpoint yet, replay
// starts from round 1; DistributedHubOptions::checkpoint_interval bounds
// the replay (and the coordinator's delivery-log memory) at the price of
// periodic Checkpoint traffic. Only when no worker survives does the fault
// surface as NetError, preserving the fail-typed contract.
//
// Faults a worker observes (malformed frames, protocol violations) raise
// NetError on the worker; nothing is silently dropped.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "congest/engine.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"

namespace deck {

/// Protocol message types (low byte of the u32 head of every framed
/// message; kRoundDone/kRound pack flags and a round stamp into the upper
/// bytes, every other type leaves them zero).
enum class CongestMsg : std::uint32_t {
  kHello = 1,      // worker → coordinator: protocol version u32
  kLoadGraph = 2,  // coordinator → worker: graph id, n, m, edges, owned range
  kDropGraph = 3,  // coordinator → worker: graph id
  kStart = 4,      // coordinator → worker: graph id, program id, node id,
                   //   trace flags, trace id, parent span, exec flags u32
                   //   (bit 0: delta frames), checkpoint interval u32,
                   //   spec bytes
  kRoundDone = 5,  // worker → coordinator: head packs flags (bit 0: delta
                   //   body) and round & 0xffff; then sends u64, boundary
                   //   message count u32, boundary messages
  kRound = 6,      // coordinator → worker: head packs flags (bit 0: delta
                   //   body, bit 1: checkpoint after applying) and
                   //   round & 0xffff; then delivery count u32, deliveries
  kCollect = 7,    // coordinator → worker: phase quiescent, ship outputs
  kOutputs = 8,    // worker → coordinator: lo, hi, encode_outputs bytes
  kShutdown = 9,   // coordinator → worker: no body
  kTraceData = 10, // worker → coordinator: encoded trace events for the
                   //   execution just collected (only when Start's trace
                   //   flags bit 0 was set)
  kHeartbeat = 11, // worker → coordinator: no body; keeps the coordinator's
                   //   recv deadline from declaring a slow worker dead
  kCheckpoint = 12,// worker → coordinator: lo, hi, checkpoint blob
                   //   (congest/checkpoint.hpp) for one owned range
  kRestore = 13,   // coordinator → worker: mode (0 resume mid-phase,
                   //   1 finish post-phase), graph id, program id, range,
                   //   optional checkpoint blob, logged deliveries, spec —
                   //   fully self-contained range adoption
};

/// v4 packed flags + a 16-bit round stamp into the kRoundDone/kRound head,
/// added delta round-frame bodies (congest/delta_codec) with their flag
/// bit, and appended the exec-flags and checkpoint-interval words to Start.
/// v3 added the fault-tolerance frames (Heartbeat/Checkpoint/Restore), the
/// flags word on Round, and the range prefix on Outputs. v2 added the
/// trace-context fields to Start and the kTraceData reply.
inline constexpr std::uint32_t kCongestProtoVersion = 4;

/// Coordinator-side failover policy.
struct DistributedHubOptions {
  /// Deadline + retry budget for every coordinator receive. The default
  /// (timeout_ms = -1) blocks forever, so only an orderly close or a
  /// transport fault counts as death — the zero-overhead configuration.
  /// With a deadline, silence (a stalled or lossy worker) is death too;
  /// pair with WorkerOptions::heartbeat_ms so slow-but-alive workers keep
  /// resetting the deadline.
  RecvOptions recv{};

  /// Checkpoint every N rounds (0 = never). Recovery replays from the last
  /// checkpoint, so N bounds both replay work and the coordinator's
  /// delivery-log memory; without checkpoints recovery replays the whole
  /// phase from round 1 (always possible — the log is unconditional).
  int checkpoint_interval = 0;

  /// Leave the trailing N workers rangeless when partitioning a graph.
  /// Spares still join every barrier (zero-cost rounds) and are the
  /// preferred adoption target when a range-owning worker dies.
  int spares = 0;

  /// Encode kRoundDone/kRound bodies with the delta codec (per-link payload
  /// caches, full-frame fallback). Off ships every packet in the fixed v3
  /// format inside v4 frames. Outputs and counters are identical either
  /// way; only wire bytes move.
  bool delta_frames = true;
};

/// Coordinator-side backend factory over connected worker transports. The
/// constructor validates each worker's Hello; engine_for() ships the graph
/// (assigning contiguous vertex ranges); shutdown() (or destruction) sends
/// Shutdown. Not thread-safe: one pipeline drives the fleet at a time, which
/// is exactly how the algorithms sequence their primitive executions.
class DistributedEngineHub final : public EngineHub {
 public:
  /// Validates the fleet roster. Throws NetError on a bad Hello.
  explicit DistributedEngineHub(std::vector<Transport*> workers,
                                DistributedHubOptions options = {});
  ~DistributedEngineHub() override;

  std::string name() const override { return "net"; }
  std::unique_ptr<Engine> engine_for(const Graph& g) override;

  /// Sends Shutdown to every live worker once; later engine use throws.
  void shutdown();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  Transport& worker(int w) { return *workers_[static_cast<std::size_t>(w)]; }
  bool is_down() const { return down_; }
  const DistributedHubOptions& options() const { return options_; }

  /// Liveness roster. mark_dead() is called by engines when a worker's
  /// transport faults or times out; it closes the transport and the worker
  /// never rejoins. Death is hub-wide: every graph's engine sees it.
  bool alive(int w) const { return alive_[static_cast<std::size_t>(w)] != 0; }
  int num_alive() const;
  void mark_dead(int w);

 private:
  std::vector<Transport*> workers_;
  std::vector<char> alive_;
  DistributedHubOptions options_;
  std::uint32_t next_graph_id_ = 1;
  bool down_ = false;
};

/// Convenience factory mirroring EngineHub::sequential()/parallel().
std::shared_ptr<DistributedEngineHub> make_distributed_hub(std::vector<Transport*> workers,
                                                           DistributedHubOptions options = {});

/// Worker-side behavior knobs.
struct WorkerOptions {
  /// > 0: step owned ranges on a worker-owned ThreadPool of this many
  /// threads — the pool×net composition. 0 = single-threaded stepping.
  /// Identity is unconditional either way (BspRunner's contract).
  int threads = 0;

  /// Borrow a caller-owned pool instead (shared with sketch recovery, other
  /// fleet workers, ...). Takes precedence over `threads`; must outlive the
  /// worker.
  ThreadPool* pool = nullptr;

  /// Run dedicated send/receive comm threads so frame serialization and
  /// shipping overlap with stepping the next round's interior vertices.
  /// Identity is unconditional (the split-round schedule is proven
  /// equivalent); off reverts to the synchronous v3-style loop.
  bool pipeline = true;

  /// > 0: send a Heartbeat frame every N ms from a background thread, so a
  /// coordinator running recv deadlines can tell slow from dead.
  int heartbeat_ms = 0;

  /// > 0: die upon receiving the Nth Round frame (counted across the whole
  /// worker lifetime) — a deterministic mid-phase kill point for failover
  /// tests and the fault-injection CI wall. Death is a transport close +
  /// NetError by default; with hard_kill the process raises SIGKILL, the
  /// real thing for multi-process harnesses.
  int kill_after_rounds = 0;
  bool hard_kill = false;
};

/// Runs one CONGEST worker to completion: announces itself, then serves
/// LoadGraph/Start/Restore/DropGraph until Shutdown (or orderly close).
/// Each Start executes the identified program over the worker's owned
/// vertex ranges, exchanging boundary messages through the coordinator
/// every round. Throws NetError on transport faults or protocol violations.
void run_congest_worker(Transport& coordinator);
void run_congest_worker(Transport& coordinator, const WorkerOptions& options);

/// In-process fleet configuration: hub policy, worker behavior, and
/// per-worker fault scripts applied to the coordinator's side of each link
/// (making worker w look dead/slow/lossy at an exact frame index).
struct FleetOptions {
  DistributedHubOptions hub{};
  WorkerOptions worker{};
  std::vector<FaultScript> coordinator_faults{};
};

/// In-process worker fleet for tests, benches, and the `--engine net` axis:
/// spawns `workers` threads running run_congest_worker over loopback
/// transports and exposes the connected hub. Destroy every Network using the
/// hub before the fleet; the fleet destructor shuts the hub down and joins.
class CongestWorkerFleet {
 public:
  explicit CongestWorkerFleet(int workers);
  CongestWorkerFleet(int workers, FleetOptions options);
  ~CongestWorkerFleet();

  CongestWorkerFleet(const CongestWorkerFleet&) = delete;
  CongestWorkerFleet& operator=(const CongestWorkerFleet&) = delete;

  const std::shared_ptr<DistributedEngineHub>& hub() const { return hub_; }

 private:
  std::vector<std::unique_ptr<Transport>> coordinator_side_;
  std::vector<std::thread> threads_;
  std::shared_ptr<DistributedEngineHub> hub_;
};

}  // namespace deck
