#pragma once

// Wire codec for CONGEST boundary messages (protocol v4).
//
// A boundary message addresses a directed-edge mailbox: slot = 2 * edge +
// dir, the same indexing BspRunner's double-buffered mailboxes use. The
// fixed encoding (36 bytes per packet, protocol v3's only format) remains
// the format of checkpoint/restore frames and of every round frame whose
// delta body would not be smaller.
//
// The delta format exploits the two dominant redundancies of frontier-style
// rounds (BFS flood, upcast, downcast):
//   * most rounds re-ship a small set of slots — the slot id is encoded as
//     a varint gap from the previous packet's slot (packets are sorted by
//     slot), typically one byte;
//   * payloads repeat — either the last payload shipped on the same slot
//     over this link ("repeat-slot") or the previous packet's payload in
//     the same frame ("repeat-previous"), either way one control byte
//     instead of 25 payload bytes.
//
// One DeltaCodec instance per link direction per execution: the encoder and
// decoder at the two ends of a link advance the same per-slot cache in
// frame order, so a reference to "what this link last shipped on slot s" is
// well defined even across the full-frame fallback (state updates are
// format-independent). Failover keeps this sound for free: a reassigned
// range's traffic moves to the survivor's link and is encoded against that
// link's own cache — slots the survivor never saw are simply encoded
// explicitly.
//
// Every malformed byte raises NetError with a distinct message: truncated
// payloads (bounds-checked reads), overlapping slots (zero gap), slots
// outside the graph, repeat markers referencing a slot the link never
// shipped, reserved control bits, and unknown packet kinds.

#include <cstdint>
#include <span>
#include <vector>

#include "congest/engine.hpp"
#include "net/wire.hpp"

namespace deck {

/// One boundary message as framed on the wire: the directed edge it
/// crosses plus the payload.
struct WirePacket {
  EdgeId edge = kNoEdge;
  std::uint8_t dir = 0;  // 0: u -> v, 1: v -> u
  Packet msg;

  friend bool operator==(const WirePacket&, const WirePacket&) = default;
};

/// Encoded size of one fixed-format packet: 3 × u32 + 3 × u64.
inline constexpr std::size_t kFixedPacketBytes = 36;

/// Fixed (v3) packet encoding — still the format of checkpoint Restore
/// replay logs, where a reassigned range must decode without any link
/// cache.
void encode_packet_fixed(std::vector<std::uint8_t>& out, EdgeId e, std::uint8_t dir,
                         const Packet& msg);
WirePacket decode_packet_fixed(net::WireReader& r);

/// Stateful per-link-direction round-frame codec. encode() and decode()
/// must be applied to the link's frames in ship order — both ends advance
/// the same per-slot payload cache regardless of the per-frame format
/// choice.
class DeltaCodec {
 public:
  DeltaCodec() = default;
  explicit DeltaCodec(EdgeId num_edges) { reset(num_edges); }

  /// Rearms for a new execution on a graph of `num_edges` edges: the cache
  /// forgets everything (protocol executions are independent).
  void reset(EdgeId num_edges);

  /// Appends `packets` to `out` in the smaller of the two formats and
  /// returns true when the delta body was chosen (the caller flags the
  /// frame head accordingly). Packets are sorted by slot internally;
  /// callers pass them in routing order.
  bool encode(std::vector<std::uint8_t>& out, std::span<const WirePacket> packets);

  /// Decodes `count` packets in delta or fixed format (the frame head's
  /// flag bit names which). Throws NetError on any malformed byte.
  std::vector<WirePacket> decode(net::WireReader& r, std::uint32_t count, bool delta);

 private:
  std::size_t slots_ = 0;
  std::vector<Packet> last_;  // last payload shipped per slot on this link
  std::vector<char> seen_;    // slot ever shipped on this link
};

}  // namespace deck
