#pragma once

// CONGEST communication primitives (paper §1.3, §3.1).
//
// Every primitive is a genuine per-vertex send/receive program (see
// congest/programs.hpp) executed on the Network's pluggable engine
// (congest/engine.hpp): one message per directed edge per round, rounds and
// messages counted by the engine as they actually move, then charged to the
// Network. Callers supply and receive *per-vertex* data only — the
// discipline is that a vertex's outputs depend solely on its inputs and the
// messages it received — and results plus counters are bit-identical across
// the sequential, thread-pool, and Transport-backed backends.
//
// The workhorse is the pipelined keyed-min upcast: every vertex holds
// (key, value) items; merged min-per-key streams flow towards the root in
// ascending key order; k distinct keys complete in O(height + k) rounds.
// Instantiations:
//   * keyed_min_upcast           — root learns min value per key (global
//                                  aggregates keyed by segment/fragment id).
//   * ancestor_min_merge         — keys are ancestor-edge depths inside a
//                                  forest; the deeper endpoint of each tree
//                                  edge finalizes the min over its subtree
//                                  ("each tree edge learns the best edge
//                                  covering it", §3.1 (II)).
// Downstream flows:
//   * pipelined_broadcast        — root's list delivered to every vertex.
//   * path_downcast              — every vertex learns the items of all its
//                                  ancestors inside its forest (Claim 3.2).
// Point-to-point:
//   * edge_exchange              — endpoint payload swap over selected edges
//                                  (used for non-tree edge computations).

#include <cstdint>
#include <optional>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

/// A keyed item: `key` orders the pipeline; `prio` is the minimised quantity;
/// `payload` rides along with the winning prio.
struct KeyedItem {
  std::uint64_t key = 0;
  std::uint64_t prio = 0;
  std::uint64_t payload = 0;
};

/// Communication forest: parent/children restricted to some tree structure,
/// with *forest-local* depths. For a global BFS tree this is the whole tree;
/// for the segment decomposition each segment is its own tree (segment roots
/// have parent kNoVertex *within the forest* even though they have tree
/// parents in T).
struct CommForest {
  std::vector<VertexId> parent;        // kNoVertex at forest roots
  std::vector<int> depth;              // forest-local depth
  std::vector<std::vector<VertexId>> children;

  static CommForest from_tree(const RootedTree& t);
  int height() const;
};

/// Builds a BFS tree by flooding from `root`; charges ecc(root)+1 rounds.
/// Requires the graph connected.
RootedTree distributed_bfs(Network& net, VertexId root);

/// Combine operations a convergecast can run (associative + commutative, so
/// results are independent of child arrival order). An enum — not an
/// arbitrary std::function — because the distributed backend ships the
/// program to worker processes.
enum class CombineOp : std::uint32_t {
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kOr = 4,
};

std::uint64_t apply_combine(CombineOp op, std::uint64_t a, std::uint64_t b);

/// Convergecast: combine per-vertex 64-bit values with `op` up to the
/// forest roots. Returns the value at each vertex after its subtree is
/// combined (roots hold the totals). Charges height rounds.
std::vector<std::uint64_t> convergecast(Network& net, const CommForest& f,
                                        std::vector<std::uint64_t> value, CombineOp op);

/// Broadcast one value from each forest root down its tree; returns the
/// per-vertex received value. Charges height rounds.
std::vector<std::uint64_t> broadcast(Network& net, const CommForest& f,
                                     std::vector<std::uint64_t> root_value);

/// Pipelined keyed-min upcast (see header comment). Returns, per vertex, the
/// items the vertex *finalized* (merged over its entire subtree): at forest
/// roots this is the global min per key for that tree.
/// Keys flow in ascending order. ~O(height + #keys) rounds.
std::vector<std::vector<KeyedItem>> keyed_min_upcast(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> items);

/// Ancestor merge (§3.1 machinery II): each vertex contributes items keyed
/// by the forest-depth of one of its *ancestor edges* (key = depth of the
/// edge's deeper endpoint minus one ... i.e. depth(upper endpoint)); the
/// deeper endpoint v of each forest edge finalizes the min over the whole
/// subtree under v. Returns per non-root vertex the final item for its
/// parent edge (nullopt when nobody covers it). ~O(height) rounds.
std::vector<std::optional<KeyedItem>> ancestor_min_merge(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> items);

/// Pipelined broadcast of a list from each forest root to every vertex in
/// its tree. `root_items[r]` must be non-empty only at roots. Returns the
/// list each vertex received. ~O(height + max list) rounds.
std::vector<std::vector<KeyedItem>> pipelined_broadcast(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> root_items);

/// Path downcast (Claims 3.1/3.2): each non-root vertex holds one item (for
/// its parent edge); afterwards every vertex knows the items of all edges on
/// its forest root path, ordered from itself upward. ~O(2·height) rounds.
std::vector<std::vector<KeyedItem>> path_downcast(Network& net, const CommForest& f,
                                                  std::vector<KeyedItem> own_item);

/// Simultaneous payload exchange across the listed edges: endpoint u of
/// edge e receives payload_from_v and vice versa. One word per round per
/// edge; charges max payload length rounds. Returns received payloads
/// aligned with `edges` (first = what u received, second = what v received).
struct ExchangeResult {
  std::vector<std::vector<std::uint64_t>> at_u;
  std::vector<std::vector<std::uint64_t>> at_v;
};
ExchangeResult edge_exchange(Network& net, const std::vector<EdgeId>& edges,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_u,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_v);

}  // namespace deck
