#include "congest/network.hpp"

#include <utility>

#include "support/check.hpp"

namespace deck {

Network::Network(const Graph& g) : Network(g, EngineHub::sequential()) {}

Network::Network(const Graph& g, std::shared_ptr<EngineHub> hub)
    : g_(&g), hub_(std::move(hub)) {
  DECK_CHECK_MSG(hub_ != nullptr, "Network needs an engine hub");
}

Engine& Network::engine() {
  if (!engine_) engine_ = hub_->engine_for(*g_);
  return *engine_;
}

void Network::charge(std::uint64_t rounds, std::uint64_t messages) {
  rounds_ += rounds;
  messages_ += messages;
  if (!phases_.empty()) {
    phases_.back().rounds += rounds;
    phases_.back().messages += messages;
  }
}

void Network::begin_phase(const std::string& name) {
  end_phase();
  phases_.push_back(PhaseStat{name, 0, 0, 0});
  phase_start_ns_ = obs::now_ns();
  phase_open_ = true;
  if (obs::tracing()) {
    if (!have_phase_parent_) {
      phase_parent_ = obs::current_context();
      have_phase_parent_ = true;
    }
    phase_span_name_ = name;
    phase_span_ = std::make_unique<obs::Span>(phase_span_name_.c_str(), phase_parent_);
  }
}

void Network::end_phase() {
  if (!phase_open_) return;
  phases_.back().wall_ns = obs::now_ns() - phase_start_ns_;
  phase_open_ = false;
  if (phase_span_) {
    phase_span_->arg("rounds", phases_.back().rounds);
    phase_span_->arg("messages", phases_.back().messages);
    phase_span_.reset();
  }
}

void Network::reset_counters() {
  end_phase();
  rounds_ = 0;
  messages_ = 0;
  phases_.clear();
  have_phase_parent_ = false;
}

}  // namespace deck
