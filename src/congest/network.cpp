#include "congest/network.hpp"

#include <utility>

#include "support/check.hpp"

namespace deck {

Network::Network(const Graph& g) : Network(g, EngineHub::sequential()) {}

Network::Network(const Graph& g, std::shared_ptr<EngineHub> hub)
    : g_(&g), hub_(std::move(hub)) {
  DECK_CHECK_MSG(hub_ != nullptr, "Network needs an engine hub");
}

Engine& Network::engine() {
  if (!engine_) engine_ = hub_->engine_for(*g_);
  return *engine_;
}

void Network::charge(std::uint64_t rounds, std::uint64_t messages) {
  rounds_ += rounds;
  messages_ += messages;
  if (!phases_.empty()) {
    phases_.back().rounds += rounds;
    phases_.back().messages += messages;
  }
}

void Network::begin_phase(const std::string& name) {
  phases_.push_back(PhaseStat{name, 0, 0});
}

void Network::reset_counters() {
  rounds_ = 0;
  messages_ = 0;
  phases_.clear();
}

}  // namespace deck
