#include "congest/programs.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "net/wire.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

// Message tags. Every program uses 1 for payload-bearing messages; streamed
// programs add 2 as the end-of-stream marker.
constexpr std::uint8_t kTagData = 1;
constexpr std::uint8_t kTagEos = 2;


std::uint32_t id32(std::int32_t v) { return static_cast<std::uint32_t>(v); }

void encode_u64s(std::vector<std::uint8_t>& out, const std::vector<std::uint64_t>& xs) {
  net::put_u32(out, static_cast<std::uint32_t>(xs.size()));
  for (std::uint64_t x : xs) net::put_u64(out, x);
}

std::vector<std::uint64_t> decode_u64s(net::WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 8)
    throw NetError("congest program spec: word list longer than the message");
  std::vector<std::uint64_t> xs(count);
  for (auto& x : xs) x = r.u64();
  return xs;
}

void encode_items(std::vector<std::uint8_t>& out, const std::vector<KeyedItem>& items) {
  net::put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const KeyedItem& it : items) {
    net::put_u64(out, it.key);
    net::put_u64(out, it.prio);
    net::put_u64(out, it.payload);
  }
}

std::vector<KeyedItem> decode_items(net::WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 24)
    throw NetError("congest program spec: item list longer than the message");
  std::vector<KeyedItem> items(count);
  for (auto& it : items) {
    it.key = r.u64();
    it.prio = r.u64();
    it.payload = r.u64();
  }
  return items;
}

ForestData decode_forest(net::WireReader& r) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 8)
    throw NetError("congest program spec: forest larger than the message");
  ForestData f;
  f.parent.resize(n);
  f.depth.resize(n);
  for (auto& p : f.parent) p = static_cast<VertexId>(r.u32());
  for (auto& d : f.depth) d = static_cast<int>(r.u32());
  return f;
}

}  // namespace

int ForestData::height() const {
  int h = 0;
  for (int d : depth) h = std::max(h, d);
  return h;
}

void ForestData::encode(std::vector<std::uint8_t>& out) const {
  net::put_u32(out, static_cast<std::uint32_t>(parent.size()));
  for (VertexId p : parent) net::put_u32(out, id32(p));
  for (int d : depth) net::put_u32(out, static_cast<std::uint32_t>(d));
}

void ForestProgramBase::setup(const Graph& g) {
  const int n = this->n();
  DECK_CHECK_MSG(n == g.num_vertices(), "forest and graph disagree on the vertex count");
  // Forests can arrive over the wire (distributed Start specs), so bogus
  // ids/depths must fail typed before they index anything.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = f_.parent[static_cast<std::size_t>(v)];
    if (p != kNoVertex && (p < 0 || p >= n))
      throw NetError("congest program spec: forest parent id out of range");
    const int d = f_.depth[static_cast<std::size_t>(v)];
    if (d < 0 || d > n) throw NetError("congest program spec: forest depth out of range");
  }
  height_ = f_.height();
  parent_port_.assign(static_cast<std::size_t>(n), kNoEdge);
  children_.assign(static_cast<std::size_t>(n), {});
  // Note: depth is *forest-local* and may jump across parent links (the
  // segment forest keeps full tree parents with per-segment depths; the
  // contiguity relation depth(v) == depth(p) + 1 is how primitives that care
  // tell "same forest tree" — see PathDowncastProgram).
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = parent(v);
    if (p == kNoVertex) continue;
    const EdgeId e = g.find_edge(v, p);
    DECK_CHECK_MSG(e != kNoEdge, "forest edge must be a graph edge (CONGEST moves data on edges)");
    parent_port_[static_cast<std::size_t>(v)] = e;
    children_[static_cast<std::size_t>(p)].push_back(v);
  }
}

void ForestProgramBase::send_down(VertexId v, const Packet& msg, Outbox& out) const {
  for (VertexId c : kids(v)) out.send(c, parent_port(c), msg);
}

// ---------------------------------------------------------------------------
// BFS flood.

BfsProgram::BfsProgram(int n, VertexId root)
    : parent(static_cast<std::size_t>(n), kNoVertex),
      parent_edge(static_cast<std::size_t>(n), kNoEdge),
      root_(root),
      joined_(static_cast<std::size_t>(n), 0) {}

void BfsProgram::setup(const Graph& g) {
  DECK_CHECK(static_cast<int>(joined_.size()) == g.num_vertices());
  if (root_ < 0 || root_ >= g.num_vertices())
    throw NetError("congest program spec: bfs root out of range");
  g_ = &g;
}

void BfsProgram::step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) {
  const auto sv = static_cast<std::size_t>(v);
  if (joined_[sv]) return;  // late announcements are ignored
  if (v == root_) {
    DECK_CHECK(round == 1 && inbox.empty());
  } else {
    if (inbox.empty()) return;
    // Deterministic adoption: smallest announcing neighbor wins.
    const Delivery* best = &inbox[0];
    for (const Delivery& d : inbox)
      if (d.from < best->from) best = &d;
    parent[sv] = best->from;
    parent_edge[sv] = best->edge;
  }
  joined_[sv] = 1;
  for (const Adj& a : g_->neighbors(v)) out.send(a.to, a.edge, Packet{0, 0, 0, kTagData});
}

void BfsProgram::finish_range(VertexId begin, VertexId end) {
  for (VertexId v = begin; v < end; ++v)
    DECK_CHECK_MSG(joined_[static_cast<std::size_t>(v)],
                   "distributed_bfs requires a connected graph");
}

void BfsProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  net::put_u32(out, static_cast<std::uint32_t>(joined_.size()));
  net::put_u32(out, id32(root_));
}

void BfsProgram::encode_outputs(VertexId begin, VertexId end,
                                std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) {
    net::put_u32(out, id32(parent[static_cast<std::size_t>(v)]));
    net::put_u32(out, id32(parent_edge[static_cast<std::size_t>(v)]));
  }
}

void BfsProgram::decode_outputs(VertexId begin, VertexId end,
                                std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) {
    parent[static_cast<std::size_t>(v)] = static_cast<VertexId>(r.u32());
    parent_edge[static_cast<std::size_t>(v)] = static_cast<EdgeId>(r.u32());
  }
}

void BfsProgram::encode_state(VertexId begin, VertexId end,
                              std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    net::put_u32(out, joined_[sv]);
    net::put_u32(out, id32(parent[sv]));
    net::put_u32(out, id32(parent_edge[sv]));
  }
}

void BfsProgram::decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    joined_[sv] = static_cast<std::uint8_t>(r.u32());
    parent[sv] = static_cast<VertexId>(r.u32());
    parent_edge[sv] = static_cast<EdgeId>(r.u32());
  }
}

// ---------------------------------------------------------------------------
// Convergecast.

std::uint64_t apply_combine(CombineOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case CombineOp::kSum:
      return a + b;
    case CombineOp::kMin:
      return std::min(a, b);
    case CombineOp::kMax:
      return std::max(a, b);
    case CombineOp::kOr:
      return a | b;
  }
  DECK_CHECK_MSG(false, "unknown CombineOp");
  return 0;
}

ConvergecastProgram::ConvergecastProgram(ForestData f, CombineOp op,
                                         std::vector<std::uint64_t> value)
    : ForestProgramBase(std::move(f)), value(std::move(value)), op_(op) {
  DECK_CHECK(this->value.size() == f_.parent.size());
}

void ConvergecastProgram::setup(const Graph& g) {
  ForestProgramBase::setup(g);
  // The stall-free fire schedule requires honest forest-local depths.
  for (VertexId v = 0; v < n(); ++v)
    if (!is_root(v)) DECK_CHECK(depth(v) == depth(parent(v)) + 1);
}

void ConvergecastProgram::step(VertexId v, int round, std::span<const Delivery> inbox,
                               Outbox& out) {
  const auto sv = static_cast<std::size_t>(v);
  for (const Delivery& d : inbox) value[sv] = apply_combine(op_, value[sv], d.msg.a);
  if (is_root(v)) return;
  // Stall-free schedule: depth d fires at round height - d + 1, exactly when
  // its children's values (fired one round earlier) arrive.
  const int fire = height_ - depth(v) + 1;
  if (round == fire) {
    out.send(parent(v), parent_port(v), Packet{value[sv], 0, 0, kTagData});
  } else if (round < fire) {
    out.stay_awake();
  }
}

void ConvergecastProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  f_.encode(out);
  net::put_u32(out, static_cast<std::uint32_t>(op_));
  encode_u64s(out, value);
}

void ConvergecastProgram::encode_outputs(VertexId begin, VertexId end,
                                         std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) net::put_u64(out, value[static_cast<std::size_t>(v)]);
}

void ConvergecastProgram::decode_outputs(VertexId begin, VertexId end,
                                         std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) value[static_cast<std::size_t>(v)] = r.u64();
}

void ConvergecastProgram::encode_state(VertexId begin, VertexId end,
                                       std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) net::put_u64(out, value[static_cast<std::size_t>(v)]);
}

void ConvergecastProgram::decode_state(VertexId begin, VertexId end,
                                       std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) value[static_cast<std::size_t>(v)] = r.u64();
}

// ---------------------------------------------------------------------------
// Broadcast.

BroadcastProgram::BroadcastProgram(ForestData f, std::vector<std::uint64_t> value)
    : ForestProgramBase(std::move(f)), value(std::move(value)) {
  DECK_CHECK(this->value.size() == f_.parent.size());
}

void BroadcastProgram::step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) {
  const auto sv = static_cast<std::size_t>(v);
  if (is_root(v)) {
    DECK_CHECK(round == 1 && inbox.empty());
  } else {
    DECK_CHECK(inbox.size() == 1);
    value[sv] = inbox[0].msg.a;
  }
  send_down(v, Packet{value[sv], 0, 0, kTagData}, out);
}

void BroadcastProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  f_.encode(out);
  encode_u64s(out, value);
}

void BroadcastProgram::encode_outputs(VertexId begin, VertexId end,
                                      std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) net::put_u64(out, value[static_cast<std::size_t>(v)]);
}

void BroadcastProgram::decode_outputs(VertexId begin, VertexId end,
                                      std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) value[static_cast<std::size_t>(v)] = r.u64();
}

void BroadcastProgram::encode_state(VertexId begin, VertexId end,
                                    std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) net::put_u64(out, value[static_cast<std::size_t>(v)]);
}

void BroadcastProgram::decode_state(VertexId begin, VertexId end,
                                    std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) value[static_cast<std::size_t>(v)] = r.u64();
}

// ---------------------------------------------------------------------------
// Pipelined keyed-min upcast.

KeyedUpcastProgram::KeyedUpcastProgram(ForestData f, bool ancestor_mode,
                                       std::vector<std::vector<KeyedItem>> items)
    : ForestProgramBase(std::move(f)), ancestor_mode_(ancestor_mode), items_(std::move(items)) {
  DECK_CHECK(items_.size() == f_.parent.size());
}

std::uint64_t KeyedUpcastProgram::emit_below(VertexId v) const {
  if (!ancestor_mode_) return std::numeric_limits<std::uint64_t>::max();
  const int d = depth(v);
  return d >= 1 ? static_cast<std::uint64_t>(d - 1) : 0;
}

void KeyedUpcastProgram::merge_in(VertexId v, std::uint64_t key, std::uint64_t prio,
                                  std::uint64_t payload) {
  auto& pend = pending_[static_cast<std::size_t>(v)];
  auto [pos, fresh] = pend.try_emplace(key, ItemValue{prio, payload});
  if (!fresh && (prio < pos->second.prio ||
                 (prio == pos->second.prio && payload < pos->second.payload))) {
    pos->second = ItemValue{prio, payload};
  }
}

void KeyedUpcastProgram::setup(const Graph& g) {
  ForestProgramBase::setup(g);
  const auto n = static_cast<std::size_t>(this->n());
  pending_.assign(n, {});
  frontiers_.assign(n, {});
  child_frontier_.assign(n, {});
  live_children_.assign(n, 0);
  eos_sent_.assign(n, 0);
  finalized.assign(n, {});
  constexpr std::int64_t kNotYet = -1;
  for (VertexId v = 0; v < this->n(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    for (const KeyedItem& it : items_[sv]) merge_in(v, it.key, it.prio, it.payload);
    live_children_[sv] = static_cast<int>(kids(v).size());
    for (VertexId c : kids(v)) {
      frontiers_[sv].insert(kNotYet);
      child_frontier_[sv][c] = kNotYet;
    }
  }
}

void KeyedUpcastProgram::step(VertexId v, int, std::span<const Delivery> inbox, Outbox& out) {
  const auto sv = static_cast<std::size_t>(v);
  for (const Delivery& d : inbox) {
    auto it = child_frontier_[sv].find(d.from);
    DECK_CHECK_MSG(it != child_frontier_[sv].end(), "upcast message from a non-child");
    frontiers_[sv].erase(frontiers_[sv].find(it->second));
    if (d.msg.tag == kTagEos) {
      child_frontier_[sv].erase(it);
      --live_children_[sv];
    } else {
      merge_in(v, d.msg.a, d.msg.b, d.msg.c);
      it->second = static_cast<std::int64_t>(d.msg.a);
      frontiers_[sv].insert(it->second);
    }
  }
  if (is_root(v) || eos_sent_[sv]) return;
  auto& pend = pending_[sv];
  const auto it = pend.begin();
  const bool has_emittable = it != pend.end() && it->first < emit_below(v);
  const std::int64_t min_frontier =
      frontiers_[sv].empty() ? std::numeric_limits<std::int64_t>::max() : *frontiers_[sv].begin();
  if (has_emittable) {
    // A key is final for the subtree once every child stream has advanced to
    // it; emitting may free the next key for the following round.
    if (min_frontier >= static_cast<std::int64_t>(it->first)) {
      out.send(parent(v), parent_port(v),
               Packet{it->first, it->second.prio, it->second.payload, kTagData});
      pend.erase(it);
      out.stay_awake();
    }
    // else: blocked; a child emission will wake us.
  } else if (live_children_[sv] == 0) {
    out.send(parent(v), parent_port(v), Packet{0, 0, 0, kTagEos});
    eos_sent_[sv] = 1;
  }
  // else: waiting for children to finish; their EOS wakes us.
}

void KeyedUpcastProgram::finish_range(VertexId begin, VertexId end) {
  for (VertexId v = begin; v < end; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    DECK_CHECK_MSG(is_root(v) || eos_sent_[sv], "upcast engine deadlock");
    for (const auto& [key, val] : pending_[sv])
      finalized[sv].push_back(KeyedItem{key, val.prio, val.payload});
  }
}

void KeyedUpcastProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  f_.encode(out);
  net::put_u32(out, ancestor_mode_ ? 1 : 0);
  for (const auto& items : items_) encode_items(out, items);
}

void KeyedUpcastProgram::encode_outputs(VertexId begin, VertexId end,
                                        std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) encode_items(out, finalized[static_cast<std::size_t>(v)]);
}

void KeyedUpcastProgram::decode_outputs(VertexId begin, VertexId end,
                                        std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) finalized[static_cast<std::size_t>(v)] = decode_items(r);
}

void KeyedUpcastProgram::encode_state(VertexId begin, VertexId end,
                                      std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    net::put_u32(out, eos_sent_[sv]);
    net::put_u32(out, static_cast<std::uint32_t>(pending_[sv].size()));
    for (const auto& [key, val] : pending_[sv]) {
      net::put_u64(out, key);
      net::put_u64(out, val.prio);
      net::put_u64(out, val.payload);
    }
    // child_frontier_ is an unordered_map: serialize sorted by child id so
    // the blob is byte-identical across runs and standard libraries.
    std::vector<std::pair<VertexId, std::int64_t>> fronts(child_frontier_[sv].begin(),
                                                          child_frontier_[sv].end());
    std::sort(fronts.begin(), fronts.end());
    net::put_u32(out, static_cast<std::uint32_t>(fronts.size()));
    for (const auto& [child, frontier] : fronts) {
      net::put_u32(out, id32(child));
      net::put_u64(out, static_cast<std::uint64_t>(frontier));
    }
  }
}

void KeyedUpcastProgram::decode_state(VertexId begin, VertexId end,
                                      std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    eos_sent_[sv] = static_cast<std::uint8_t>(r.u32());
    pending_[sv].clear();
    const std::uint32_t pend_count = r.u32();
    if (pend_count > r.remaining() / 24)
      throw NetError("congest checkpoint: pending list longer than the blob");
    for (std::uint32_t i = 0; i < pend_count; ++i) {
      const std::uint64_t key = r.u64();
      const std::uint64_t prio = r.u64();
      const std::uint64_t payload = r.u64();
      pending_[sv].emplace_hint(pending_[sv].end(), key, ItemValue{prio, payload});
    }
    child_frontier_[sv].clear();
    frontiers_[sv].clear();
    const std::uint32_t child_count = r.u32();
    if (child_count > r.remaining() / 12)
      throw NetError("congest checkpoint: frontier list longer than the blob");
    for (std::uint32_t i = 0; i < child_count; ++i) {
      const auto child = static_cast<VertexId>(r.u32());
      const auto frontier = static_cast<std::int64_t>(r.u64());
      child_frontier_[sv][child] = frontier;
      frontiers_[sv].insert(frontier);
    }
    // Live children are exactly the child streams that have not hit EOS.
    live_children_[sv] = static_cast<int>(child_frontier_[sv].size());
  }
}

// ---------------------------------------------------------------------------
// Pipelined broadcast.

PipelinedBroadcastProgram::PipelinedBroadcastProgram(ForestData f, VertexId root,
                                                     std::vector<KeyedItem> list)
    : ForestProgramBase(std::move(f)),
      received(f_.parent.size()),
      root_(root),
      list_(std::move(list)) {}

void PipelinedBroadcastProgram::step(VertexId v, int round, std::span<const Delivery> inbox,
                                     Outbox& out) {
  if (v == root_) {
    // Emit the list one item per round, then the end-of-stream wave that
    // tells every vertex nothing more comes.
    const auto len = static_cast<int>(list_.size());
    if (round <= len) {
      const KeyedItem& it = list_[static_cast<std::size_t>(round - 1)];
      send_down(v, Packet{it.key, it.prio, it.payload, kTagData}, out);
      out.stay_awake();
    } else if (round == len + 1) {
      send_down(v, Packet{0, 0, 0, kTagEos}, out);
    }
    return;
  }
  DECK_CHECK(inbox.size() == 1);
  const Packet& m = inbox[0].msg;
  if (m.tag == kTagData)
    received[static_cast<std::size_t>(v)].push_back(KeyedItem{m.a, m.b, m.c});
  send_down(v, m, out);
}

void PipelinedBroadcastProgram::finish_range(VertexId begin, VertexId end) {
  if (root_ >= begin && root_ < end) received[static_cast<std::size_t>(root_)] = list_;
}

void PipelinedBroadcastProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  f_.encode(out);
  net::put_u32(out, id32(root_));
  encode_items(out, list_);
}

void PipelinedBroadcastProgram::encode_outputs(VertexId begin, VertexId end,
                                               std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) encode_items(out, received[static_cast<std::size_t>(v)]);
}

void PipelinedBroadcastProgram::decode_outputs(VertexId begin, VertexId end,
                                               std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) received[static_cast<std::size_t>(v)] = decode_items(r);
}

void PipelinedBroadcastProgram::encode_state(VertexId begin, VertexId end,
                                             std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) encode_items(out, received[static_cast<std::size_t>(v)]);
}

void PipelinedBroadcastProgram::decode_state(VertexId begin, VertexId end,
                                             std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) received[static_cast<std::size_t>(v)] = decode_items(r);
}

// ---------------------------------------------------------------------------
// Path downcast.

PathDowncastProgram::PathDowncastProgram(ForestData f, std::vector<KeyedItem> own_item)
    : ForestProgramBase(std::move(f)), received(f_.parent.size()), own_(std::move(own_item)) {
  DECK_CHECK(own_.size() == f_.parent.size());
}

void PathDowncastProgram::setup(const Graph& g) {
  ForestProgramBase::setup(g);
  contig_kids_.assign(f_.parent.size(), {});
  for (VertexId v = 0; v < n(); ++v) {
    const VertexId p = parent(v);
    if (p != kNoVertex && depth(v) == depth(p) + 1)
      contig_kids_[static_cast<std::size_t>(p)].push_back(v);
  }
}

void PathDowncastProgram::step(VertexId v, int round, std::span<const Delivery> inbox,
                               Outbox& out) {
  const auto sv = static_cast<std::size_t>(v);
  auto send_contig = [&](const Packet& m) {
    for (VertexId c : contig_kids_[sv]) out.send(c, parent_port(c), m);
  };
  if (round == 1 && !is_root(v)) {
    const KeyedItem& it = own_[sv];
    send_contig(Packet{it.key, it.prio, it.payload, kTagData});
    return;
  }
  // Forward the ancestor stream FIFO: at most one item arrives per round
  // (from the same-tree parent), and children receive it one round later.
  for (const Delivery& d : inbox) {
    received[sv].push_back(KeyedItem{d.msg.a, d.msg.b, d.msg.c});
    send_contig(d.msg);
  }
}

void PathDowncastProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  f_.encode(out);
  encode_items(out, own_);
}

void PathDowncastProgram::encode_outputs(VertexId begin, VertexId end,
                                         std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) encode_items(out, received[static_cast<std::size_t>(v)]);
}

void PathDowncastProgram::decode_outputs(VertexId begin, VertexId end,
                                         std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) received[static_cast<std::size_t>(v)] = decode_items(r);
}

void PathDowncastProgram::encode_state(VertexId begin, VertexId end,
                                       std::vector<std::uint8_t>& out) const {
  for (VertexId v = begin; v < end; ++v) encode_items(out, received[static_cast<std::size_t>(v)]);
}

void PathDowncastProgram::decode_state(VertexId begin, VertexId end,
                                       std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  for (VertexId v = begin; v < end; ++v) received[static_cast<std::size_t>(v)] = decode_items(r);
}

// ---------------------------------------------------------------------------
// Edge exchange.

EdgeExchangeProgram::EdgeExchangeProgram(int n, std::vector<EdgeId> edges,
                                         std::vector<std::vector<std::uint64_t>> from_u,
                                         std::vector<std::vector<std::uint64_t>> from_v)
    : at_u(edges.size()),
      at_v(edges.size()),
      n_(n),
      edges_(std::move(edges)),
      from_u_(std::move(from_u)),
      from_v_(std::move(from_v)) {
  DECK_CHECK(from_u_.size() == edges_.size() && from_v_.size() == edges_.size());
}

void EdgeExchangeProgram::setup(const Graph& g) {
  DECK_CHECK(n_ == g.num_vertices());
  g_ = &g;
  send_slots_.assign(static_cast<std::size_t>(n_), {});
  edge_index_.clear();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const EdgeId e = edges_[i];
    if (e < 0 || e >= g.num_edges())
      throw NetError("congest program spec: edge_exchange edge id out of range");
    DECK_CHECK_MSG(edge_index_.emplace(e, i).second, "edge_exchange edges must be distinct");
    const Edge& ed = g.edge(e);
    if (!from_u_[i].empty()) send_slots_[static_cast<std::size_t>(ed.u)].push_back({i, e, ed.v});
    if (!from_v_[i].empty()) send_slots_[static_cast<std::size_t>(ed.v)].push_back({i, e, ed.u});
  }
}

bool EdgeExchangeProgram::starts_active(VertexId v) const {
  return !send_slots_[static_cast<std::size_t>(v)].empty();
}

void EdgeExchangeProgram::step(VertexId v, int round, std::span<const Delivery> inbox,
                               Outbox& out) {
  for (const Delivery& d : inbox) {
    const auto pos = edge_index_.find(d.edge);
    DECK_CHECK(pos != edge_index_.end());
    const Edge& ed = g_->edge(d.edge);
    auto& dst = v == ed.u ? at_u[pos->second] : at_v[pos->second];
    dst.push_back(d.msg.a);
  }
  bool more = false;
  for (const SendSlot& slot : send_slots_[static_cast<std::size_t>(v)]) {
    const auto& payload =
        v == g_->edge(slot.edge).u ? from_u_[slot.index] : from_v_[slot.index];
    if (static_cast<std::size_t>(round) <= payload.size()) {
      out.send(slot.peer, slot.edge,
               Packet{payload[static_cast<std::size_t>(round - 1)], 0, 0, kTagData});
      if (static_cast<std::size_t>(round) < payload.size()) more = true;
    }
  }
  if (more) out.stay_awake();
}

void EdgeExchangeProgram::encode_spec(std::vector<std::uint8_t>& out) const {
  net::put_u32(out, static_cast<std::uint32_t>(n_));
  net::put_u32(out, static_cast<std::uint32_t>(edges_.size()));
  for (EdgeId e : edges_) net::put_u32(out, id32(e));
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    encode_u64s(out, from_u_[i]);
    encode_u64s(out, from_v_[i]);
  }
}

void EdgeExchangeProgram::encode_outputs(VertexId begin, VertexId end,
                                         std::vector<std::uint8_t>& out) const {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& ed = g_->edge(edges_[i]);
    if (ed.u >= begin && ed.u < end) encode_u64s(out, at_u[i]);
    if (ed.v >= begin && ed.v < end) encode_u64s(out, at_v[i]);
  }
}

void EdgeExchangeProgram::decode_outputs(VertexId begin, VertexId end,
                                         std::span<const std::uint8_t> bytes) {
  DECK_CHECK_MSG(g_ != nullptr, "decode_outputs before setup");
  net::WireReader r(bytes);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& ed = g_->edge(edges_[i]);
    if (ed.u >= begin && ed.u < end) at_u[i] = decode_u64s(r);
    if (ed.v >= begin && ed.v < end) at_v[i] = decode_u64s(r);
  }
}

void EdgeExchangeProgram::encode_state(VertexId begin, VertexId end,
                                       std::vector<std::uint8_t>& out) const {
  DECK_CHECK_MSG(g_ != nullptr, "encode_state before setup");
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& ed = g_->edge(edges_[i]);
    if (ed.u >= begin && ed.u < end) encode_u64s(out, at_u[i]);
    if (ed.v >= begin && ed.v < end) encode_u64s(out, at_v[i]);
  }
}

void EdgeExchangeProgram::decode_state(VertexId begin, VertexId end,
                                       std::span<const std::uint8_t> bytes) {
  DECK_CHECK_MSG(g_ != nullptr, "decode_state before setup");
  net::WireReader r(bytes);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& ed = g_->edge(edges_[i]);
    if (ed.u >= begin && ed.u < end) at_u[i] = decode_u64s(r);
    if (ed.v >= begin && ed.v < end) at_v[i] = decode_u64s(r);
  }
}

// ---------------------------------------------------------------------------
// Worker-side registry.

std::unique_ptr<VertexProgram> decode_congest_program(std::uint32_t id,
                                                      std::span<const std::uint8_t> spec) {
  net::WireReader r(spec);
  switch (static_cast<ProgramId>(id)) {
    case ProgramId::kBfs: {
      const auto n = static_cast<int>(r.u32());
      const auto root = static_cast<VertexId>(r.u32());
      return std::make_unique<BfsProgram>(n, root);
    }
    case ProgramId::kConvergecast: {
      ForestData f = decode_forest(r);
      const auto op = static_cast<CombineOp>(r.u32());
      return std::make_unique<ConvergecastProgram>(std::move(f), op, decode_u64s(r));
    }
    case ProgramId::kBroadcast: {
      ForestData f = decode_forest(r);
      return std::make_unique<BroadcastProgram>(std::move(f), decode_u64s(r));
    }
    case ProgramId::kKeyedUpcast: {
      ForestData f = decode_forest(r);
      const bool ancestor = r.u32() != 0;
      std::vector<std::vector<KeyedItem>> items(f.parent.size());
      for (auto& xs : items) xs = decode_items(r);
      return std::make_unique<KeyedUpcastProgram>(std::move(f), ancestor, std::move(items));
    }
    case ProgramId::kPipelinedBroadcast: {
      ForestData f = decode_forest(r);
      const auto root = static_cast<VertexId>(r.u32());
      return std::make_unique<PipelinedBroadcastProgram>(std::move(f), root, decode_items(r));
    }
    case ProgramId::kPathDowncast: {
      ForestData f = decode_forest(r);
      std::vector<KeyedItem> own = decode_items(r);
      return std::make_unique<PathDowncastProgram>(std::move(f), std::move(own));
    }
    case ProgramId::kEdgeExchange: {
      const auto n = static_cast<int>(r.u32());
      const auto count = r.u32();
      if (count > r.remaining() / 4)
        throw NetError("congest program spec: edge list longer than the message");
      std::vector<EdgeId> edges(count);
      for (auto& e : edges) e = static_cast<EdgeId>(r.u32());
      std::vector<std::vector<std::uint64_t>> fu(count), fv(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        fu[i] = decode_u64s(r);
        fv[i] = decode_u64s(r);
      }
      return std::make_unique<EdgeExchangeProgram>(n, std::move(edges), std::move(fu),
                                                   std::move(fv));
    }
  }
  throw NetError("congest program registry: unknown program id " + std::to_string(id));
}

}  // namespace deck
