#pragma once

// Checkpoint blobs for the fault-tolerant distributed CONGEST engine.
//
// A checkpoint captures everything needed to resume one vertex range of one
// program execution from the end of round R on a *fresh* worker:
//   * the program's mutable per-vertex state for [lo, hi)
//     (VertexProgram::encode_state — setup()-derived tables are rebuilt from
//     the spec, so they never travel),
//   * the BSP runner's resume state (BspRunner::save_resume): the vertices
//     awake for round R + 1 and the live mailbox slots — messages sent in
//     round R into the range that round R + 1 will read.
//
// Determinism makes this sufficient: range execution is a pure function of
// (graph, spec, per-round boundary deliveries), so a restored worker that
// replays the coordinator's post-checkpoint delivery log rejoins the phase
// in exactly the state the dead worker died in. The blob is byte-identical
// across runs, platforms, and standard libraries — encode_state
// implementations serialize unordered containers in sorted order.
//
// Framing: a magic ('DKCP') + version header, the identity of the captured
// execution (program id, range, round), then the three payload sections.
// decode_checkpoint() throws NetError on truncation, corruption, or a
// version this build does not speak — a damaged checkpoint must fail typed
// before the engine trusts it, exactly like a malformed protocol frame.

#include <cstdint>
#include <span>
#include <vector>

#include "congest/engine.hpp"

namespace deck {

inline constexpr std::uint32_t kCheckpointMagic = 0x504B4344u;  // "DCKP" little-endian
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One range's resume state at the end of a round.
struct CheckpointBlob {
  std::uint32_t program_id = 0;
  VertexId lo = 0;
  VertexId hi = 0;
  int round = 0;  // rounds completed when captured (0 = before round 1)
  std::vector<std::uint8_t> state;                     // encode_state over [lo, hi)
  std::vector<VertexId> awake;                         // awake for round + 1, ascending
  std::vector<detail::BspRunner::RemoteSend> pending;  // live inbound mailbox slots

  friend bool operator==(const CheckpointBlob&, const CheckpointBlob&) = default;
};

/// Serializes `cp` (appending to `out`). Deterministic: equal blobs encode
/// to equal bytes.
void encode_checkpoint(const CheckpointBlob& cp, std::vector<std::uint8_t>& out);

/// Parses one encoded checkpoint. Throws NetError on bad magic, an
/// unsupported version, truncation, or list lengths exceeding the payload.
CheckpointBlob decode_checkpoint(std::span<const std::uint8_t> bytes);

}  // namespace deck
