#include "congest/primitives.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "congest/programs.hpp"
#include "support/check.hpp"

namespace deck {

CommForest CommForest::from_tree(const RootedTree& t) {
  CommForest f;
  const int n = t.num_vertices();
  f.parent.resize(static_cast<std::size_t>(n));
  f.depth.resize(static_cast<std::size_t>(n));
  f.children.assign(static_cast<std::size_t>(n), {});
  for (VertexId v = 0; v < n; ++v) {
    f.parent[static_cast<std::size_t>(v)] = t.parent(v);
    f.depth[static_cast<std::size_t>(v)] = t.depth(v);
    for (VertexId c : t.children(v)) f.children[static_cast<std::size_t>(v)].push_back(c);
  }
  return f;
}

int CommForest::height() const {
  int h = 0;
  for (int d : depth) h = std::max(h, d);
  return h;
}

namespace {

/// Runs a primitive's program on the network's engine and charges the
/// observed cost: the counters are exact execution counts, identical across
/// backends.
ExecStats run_charged(Network& net, VertexProgram& prog) {
  const ExecStats stats = net.engine().execute(prog);
  net.charge(stats.rounds, stats.messages);
  return stats;
}

}  // namespace

RootedTree distributed_bfs(Network& net, VertexId root) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  BfsProgram prog(n, root);
  if (n == 1) {
    // Degenerate single-vertex network: the root's lone announcement round
    // (seed accounting) moves nothing.
    net.charge(1, 0);
    return RootedTree(std::move(prog.parent), std::move(prog.parent_edge));
  }
  run_charged(net, prog);
  return RootedTree(std::move(prog.parent), std::move(prog.parent_edge));
}

std::vector<std::uint64_t> convergecast(Network& net, const CommForest& f,
                                        std::vector<std::uint64_t> value, CombineOp op) {
  DECK_CHECK(value.size() == f.parent.size());
  ConvergecastProgram prog(ForestData::from_comm_forest(f), op, std::move(value));
  const ExecStats stats = run_charged(net, prog);
  DECK_CHECK(stats.rounds == static_cast<std::uint64_t>(f.height()));
  return std::move(prog.value);
}

std::vector<std::uint64_t> broadcast(Network& net, const CommForest& f,
                                     std::vector<std::uint64_t> root_value) {
  DECK_CHECK(root_value.size() == f.parent.size());
  BroadcastProgram prog(ForestData::from_comm_forest(f), std::move(root_value));
  const ExecStats stats = run_charged(net, prog);
  DECK_CHECK(stats.rounds == static_cast<std::uint64_t>(f.height()));
  return std::move(prog.value);
}

std::vector<std::vector<KeyedItem>> keyed_min_upcast(Network& net, const CommForest& f,
                                                     std::vector<std::vector<KeyedItem>> items) {
  KeyedUpcastProgram prog(ForestData::from_comm_forest(f), /*ancestor_mode=*/false,
                          std::move(items));
  run_charged(net, prog);
  return std::move(prog.finalized);
}

std::vector<std::optional<KeyedItem>> ancestor_min_merge(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> items) {
  const auto n = f.parent.size();
  for (std::size_t v = 0; v < n; ++v) {
    const int d = f.depth[v];
    for (const KeyedItem& it : items[v])
      DECK_CHECK_MSG(it.key < static_cast<std::uint64_t>(std::max(d, 1)),
                     "ancestor item key must address a proper ancestor edge");
  }
  KeyedUpcastProgram prog(ForestData::from_comm_forest(f), /*ancestor_mode=*/true,
                          std::move(items));
  run_charged(net, prog);
  std::vector<std::optional<KeyedItem>> out(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto& fin = prog.finalized[v];
    DECK_CHECK(fin.size() <= 1);
    if (!fin.empty()) {
      DECK_CHECK(f.depth[v] >= 1 && fin[0].key == static_cast<std::uint64_t>(f.depth[v] - 1));
      out[v] = fin[0];
    }
  }
  return out;
}

std::vector<std::vector<KeyedItem>> pipelined_broadcast(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> root_items) {
  const auto n = f.parent.size();
  DECK_CHECK(root_items.size() == n);
  int roots = 0;
  std::size_t root = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (f.parent[v] == kNoVertex) {
      ++roots;
      root = v;
    } else {
      DECK_CHECK_MSG(root_items[v].empty(), "only roots may hold broadcast lists");
    }
  }
  DECK_CHECK_MSG(roots == 1, "pipelined_broadcast expects a single-root tree");

  const auto len = static_cast<std::uint64_t>(root_items[root].size());
  PipelinedBroadcastProgram prog(ForestData::from_comm_forest(f),
                                 static_cast<VertexId>(root), std::move(root_items[root]));
  const ExecStats stats = net.engine().execute(prog);
  // The executed pipeline delivers len items plus the end-of-stream wave:
  // height + len rounds, (len + 1)(n - 1) frames. The charged message count
  // keeps the seed's convention of folding the end-of-stream marker into the
  // final data frame (one spare bit) — except for the empty list, where the
  // marker is the only traffic.
  if (n > 1) {
    DECK_CHECK(stats.rounds == static_cast<std::uint64_t>(f.height()) + len);
    DECK_CHECK(stats.messages == (len + 1) * (n - 1));
  }
  net.charge(static_cast<std::uint64_t>(f.height()) + len,
             std::max<std::uint64_t>(len, 1) * (n - 1));
  return std::move(prog.received);
}

std::vector<std::vector<KeyedItem>> path_downcast(Network& net, const CommForest& f,
                                                  std::vector<KeyedItem> own_item) {
  DECK_CHECK(own_item.size() == f.parent.size());
  PathDowncastProgram prog(ForestData::from_comm_forest(f), std::move(own_item));
  run_charged(net, prog);
  return std::move(prog.received);
}

ExchangeResult edge_exchange(Network& net, const std::vector<EdgeId>& edges,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_u,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_v) {
  DECK_CHECK(payload_from_u.size() == edges.size() && payload_from_v.size() == edges.size());
  EdgeExchangeProgram prog(net.n(), edges, payload_from_u, payload_from_v);
  run_charged(net, prog);
  ExchangeResult r;
  r.at_u = std::move(prog.at_u);
  r.at_v = std::move(prog.at_v);
  return r;
}

}  // namespace deck
