#include "congest/primitives.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "support/check.hpp"

namespace deck {

CommForest CommForest::from_tree(const RootedTree& t) {
  CommForest f;
  const int n = t.num_vertices();
  f.parent.resize(static_cast<std::size_t>(n));
  f.depth.resize(static_cast<std::size_t>(n));
  f.children.assign(static_cast<std::size_t>(n), {});
  for (VertexId v = 0; v < n; ++v) {
    f.parent[static_cast<std::size_t>(v)] = t.parent(v);
    f.depth[static_cast<std::size_t>(v)] = t.depth(v);
    for (VertexId c : t.children(v)) f.children[static_cast<std::size_t>(v)].push_back(c);
  }
  return f;
}

int CommForest::height() const {
  int h = 0;
  for (int d : depth) h = std::max(h, d);
  return h;
}

RootedTree distributed_bfs(Network& net, VertexId root) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kNoEdge);
  std::vector<char> joined(static_cast<std::size_t>(n), 0);

  std::vector<VertexId> frontier{root};
  joined[static_cast<std::size_t>(root)] = 1;
  std::uint64_t rounds = 0, messages = 0;
  while (!frontier.empty()) {
    ++rounds;
    // Each frontier vertex announces over every incident edge this round.
    std::vector<std::pair<VertexId, Adj>> arrivals;  // (sender, adjacency at sender)
    for (VertexId v : frontier) {
      for (const Adj& a : g.neighbors(v)) {
        ++messages;
        arrivals.emplace_back(v, a);
      }
    }
    // Deterministic adoption: smallest sender id wins.
    std::sort(arrivals.begin(), arrivals.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    std::vector<VertexId> next;
    for (const auto& [from, a] : arrivals) {
      if (joined[static_cast<std::size_t>(a.to)]) continue;
      joined[static_cast<std::size_t>(a.to)] = 1;
      parent[static_cast<std::size_t>(a.to)] = from;
      parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
      next.push_back(a.to);
    }
    frontier = std::move(next);
  }
  for (char j : joined) DECK_CHECK_MSG(j, "distributed_bfs requires a connected graph");
  net.charge(rounds, messages);
  return RootedTree(std::move(parent), std::move(parent_edge));
}

std::vector<std::uint64_t> convergecast(
    Network& net, const CommForest& f, std::vector<std::uint64_t> value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine) {
  const auto n = f.parent.size();
  DECK_CHECK(value.size() == n);
  // Stall-free upward flow: vertex at depth d sends at round (height - d);
  // total rounds = height, messages = one per non-root vertex.
  std::vector<VertexId> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<VertexId>(v);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return f.depth[static_cast<std::size_t>(a)] > f.depth[static_cast<std::size_t>(b)];
  });
  std::uint64_t messages = 0;
  for (VertexId v : order) {
    const VertexId p = f.parent[static_cast<std::size_t>(v)];
    if (p == kNoVertex) continue;
    DECK_CHECK(f.depth[static_cast<std::size_t>(v)] == f.depth[static_cast<std::size_t>(p)] + 1);
    value[static_cast<std::size_t>(p)] =
        combine(value[static_cast<std::size_t>(p)], value[static_cast<std::size_t>(v)]);
    ++messages;
  }
  net.charge(static_cast<std::uint64_t>(f.height()), messages);
  return value;
}

std::vector<std::uint64_t> broadcast(Network& net, const CommForest& f,
                                     std::vector<std::uint64_t> root_value) {
  const auto n = f.parent.size();
  DECK_CHECK(root_value.size() == n);
  std::vector<VertexId> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<VertexId>(v);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return f.depth[static_cast<std::size_t>(a)] < f.depth[static_cast<std::size_t>(b)];
  });
  std::uint64_t messages = 0;
  for (VertexId v : order) {
    const VertexId p = f.parent[static_cast<std::size_t>(v)];
    if (p == kNoVertex) continue;
    root_value[static_cast<std::size_t>(v)] = root_value[static_cast<std::size_t>(p)];
    ++messages;
  }
  net.charge(static_cast<std::uint64_t>(f.height()), messages);
  return root_value;
}

namespace {

constexpr std::uint64_t kNoLimit = std::numeric_limits<std::uint64_t>::max();

struct ItemValue {
  std::uint64_t prio;
  std::uint64_t payload;
};

/// Shared engine for pipelined keyed-min upcast flows. Exact synchronous
/// simulation: per round each vertex may push one (key,prio,payload) message
/// or an end-of-stream marker to its parent; keys flow in ascending order;
/// a vertex forwards key k only once every child's stream has advanced to
/// >= k (or ended), so forwarded values are final for the subtree.
/// `emit_below[v]`: keys >= this stay at v ("finalized" there).
std::vector<std::vector<KeyedItem>> run_upcast_engine(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> items,
    const std::vector<std::uint64_t>& emit_below) {
  const auto n = f.parent.size();
  constexpr std::int64_t kNotYet = -1;

  std::vector<std::map<std::uint64_t, ItemValue>> pending(n);
  std::vector<std::multiset<std::int64_t>> frontiers(n);  // one entry per non-EOS child
  std::vector<std::int64_t> my_frontier(n, kNotYet);
  std::vector<char> eos_sent(n, 0);
  std::vector<int> live_children(n, 0);

  auto merge_in = [&](std::size_t v, const KeyedItem& it) {
    auto [pos, fresh] = pending[v].try_emplace(it.key, ItemValue{it.prio, it.payload});
    if (!fresh && (it.prio < pos->second.prio ||
                   (it.prio == pos->second.prio && it.payload < pos->second.payload))) {
      pos->second = ItemValue{it.prio, it.payload};
    }
  };

  for (std::size_t v = 0; v < n; ++v) {
    for (const KeyedItem& it : items[v]) merge_in(v, it);
    live_children[v] = static_cast<int>(f.children[v].size());
    for (std::size_t c = 0; c < f.children[v].size(); ++c) frontiers[v].insert(kNotYet);
  }

  std::vector<char> in_dirty(n, 1);
  std::vector<VertexId> dirty;
  dirty.reserve(n);
  for (std::size_t v = 0; v < n; ++v) dirty.push_back(static_cast<VertexId>(v));

  int remaining = 0;  // non-root vertices that have not sent EOS
  for (std::size_t v = 0; v < n; ++v)
    if (f.parent[v] != kNoVertex) ++remaining;

  std::uint64_t rounds = 0, messages = 0;

  struct Emission {
    VertexId from;
    bool eos;
    KeyedItem item;
  };

  while (remaining > 0) {
    std::vector<Emission> emissions;
    std::vector<VertexId> still_dirty;
    for (VertexId v : dirty) {
      const auto sv = static_cast<std::size_t>(v);
      in_dirty[sv] = 0;
      if (f.parent[sv] == kNoVertex || eos_sent[sv]) continue;
      // Smallest emittable key.
      auto it = pending[sv].begin();
      const bool has_emittable = it != pending[sv].end() && it->first < emit_below[sv];
      const std::int64_t min_frontier =
          frontiers[sv].empty() ? std::numeric_limits<std::int64_t>::max() : *frontiers[sv].begin();
      if (has_emittable) {
        if (min_frontier >= static_cast<std::int64_t>(it->first)) {
          emissions.push_back({v, false, KeyedItem{it->first, it->second.prio, it->second.payload}});
          pending[sv].erase(it);
          // May have another emittable key next round.
          still_dirty.push_back(v);
        }
        // else: blocked; child emission will re-dirty us.
      } else if (live_children[sv] == 0) {
        emissions.push_back({v, true, {}});
        eos_sent[sv] = 1;
      }
      // else: waiting for children to finish; their EOS re-dirties us.
    }

    DECK_CHECK_MSG(!emissions.empty(), "upcast engine deadlock");
    ++rounds;
    for (const Emission& em : emissions) {
      ++messages;
      const auto sv = static_cast<std::size_t>(em.from);
      const auto sp = static_cast<std::size_t>(f.parent[sv]);
      if (em.eos) {
        --remaining;
        frontiers[sp].erase(frontiers[sp].find(my_frontier[sv]));
        --live_children[sp];
      } else {
        merge_in(sp, em.item);
        frontiers[sp].erase(frontiers[sp].find(my_frontier[sv]));
        my_frontier[sv] = static_cast<std::int64_t>(em.item.key);
        frontiers[sp].insert(my_frontier[sv]);
      }
      if (!in_dirty[sp]) {
        in_dirty[sp] = 1;
        still_dirty.push_back(f.parent[sv]);
      }
    }
    for (VertexId v : still_dirty) in_dirty[static_cast<std::size_t>(v)] = 1;
    dirty = std::move(still_dirty);
  }

  net.charge(rounds, messages);

  std::vector<std::vector<KeyedItem>> finalized(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& [key, val] : pending[v])
      finalized[v].push_back(KeyedItem{key, val.prio, val.payload});
  }
  return finalized;
}

}  // namespace

std::vector<std::vector<KeyedItem>> keyed_min_upcast(Network& net, const CommForest& f,
                                                     std::vector<std::vector<KeyedItem>> items) {
  std::vector<std::uint64_t> emit_below(f.parent.size(), kNoLimit);
  return run_upcast_engine(net, f, std::move(items), emit_below);
}

std::vector<std::optional<KeyedItem>> ancestor_min_merge(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> items) {
  const auto n = f.parent.size();
  std::vector<std::uint64_t> emit_below(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const int d = f.depth[v];
    emit_below[v] = d >= 1 ? static_cast<std::uint64_t>(d - 1) : 0;
    for (const KeyedItem& it : items[v])
      DECK_CHECK_MSG(it.key < static_cast<std::uint64_t>(std::max(d, 1)),
                     "ancestor item key must address a proper ancestor edge");
  }
  auto fin = run_upcast_engine(net, f, std::move(items), emit_below);
  std::vector<std::optional<KeyedItem>> out(n);
  for (std::size_t v = 0; v < n; ++v) {
    DECK_CHECK(fin[v].size() <= 1);
    if (!fin[v].empty()) {
      DECK_CHECK(f.depth[v] >= 1 &&
                 fin[v][0].key == static_cast<std::uint64_t>(f.depth[v] - 1));
      out[v] = fin[v][0];
    }
  }
  return out;
}

std::vector<std::vector<KeyedItem>> pipelined_broadcast(
    Network& net, const CommForest& f, std::vector<std::vector<KeyedItem>> root_items) {
  const auto n = f.parent.size();
  DECK_CHECK(root_items.size() == n);
  int roots = 0;
  std::size_t root = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (f.parent[v] == kNoVertex) {
      ++roots;
      root = v;
    } else {
      DECK_CHECK_MSG(root_items[v].empty(), "only roots may hold broadcast lists");
    }
  }
  DECK_CHECK_MSG(roots == 1, "pipelined_broadcast expects a single-root tree");

  // FIFO pipeline has no data-dependent stalls: vertex at depth d receives
  // item j at round d + j; completion = height + L, messages = L per
  // non-root vertex. An empty list still costs the height (the
  // end-of-stream marker must reach the leaves so they know nothing comes).
  const auto len = static_cast<std::uint64_t>(root_items[root].size());
  std::vector<std::vector<KeyedItem>> out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = root_items[root];
  net.charge(static_cast<std::uint64_t>(f.height()) + len,
             std::max<std::uint64_t>(len, 1) * (n - 1));
  return out;
}

std::vector<std::vector<KeyedItem>> path_downcast(Network& net, const CommForest& f,
                                                  std::vector<KeyedItem> own_item) {
  const auto n = f.parent.size();
  DECK_CHECK(own_item.size() == n);
  // Vertex v sends, to each child c with depth[c] == depth[v] + 1 (same
  // forest tree): its own item first, then the stream received from its
  // parent, FIFO. Stall-free: c receives its j-th proper-ancestor item at
  // round j. Completion = height - 1 rounds (max items received by any
  // vertex); messages = sum over vertices of (#proper ancestors above the
  // parent edge + 1) = sum of forest depths.
  std::vector<std::vector<KeyedItem>> out(n);
  std::vector<VertexId> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<VertexId>(v);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return f.depth[static_cast<std::size_t>(a)] < f.depth[static_cast<std::size_t>(b)];
  });
  std::uint64_t messages = 0;
  std::uint64_t max_received = 0;
  for (VertexId v : order) {
    const auto sv = static_cast<std::size_t>(v);
    const VertexId p = f.parent[sv];
    if (p == kNoVertex) continue;  // forest root: empty list
    const auto sp = static_cast<std::size_t>(p);
    if (f.depth[sv] == f.depth[sp] + 1 && f.parent[sp] != kNoVertex) {
      // Same forest tree and the parent is not a forest root: receive the
      // parent's own item followed by the parent's ancestor stream.
      out[sv].push_back(own_item[sp]);
      out[sv].insert(out[sv].end(), out[sp].begin(), out[sp].end());
    }
    messages += out[sv].size();
    max_received = std::max(max_received, static_cast<std::uint64_t>(out[sv].size()));
  }
  net.charge(max_received, messages);
  return out;
}

ExchangeResult edge_exchange(Network& net, const std::vector<EdgeId>& edges,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_u,
                             const std::vector<std::vector<std::uint64_t>>& payload_from_v) {
  DECK_CHECK(payload_from_u.size() == edges.size() && payload_from_v.size() == edges.size());
  std::uint64_t rounds = 0, messages = 0;
  ExchangeResult r;
  r.at_u.resize(edges.size());
  r.at_v.resize(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    rounds = std::max({rounds, static_cast<std::uint64_t>(payload_from_u[i].size()),
                       static_cast<std::uint64_t>(payload_from_v[i].size())});
    messages += payload_from_u[i].size() + payload_from_v[i].size();
    r.at_v[i] = payload_from_u[i];
    r.at_u[i] = payload_from_v[i];
  }
  net.charge(rounds, messages);
  return r;
}

}  // namespace deck
