#include "congest/delta_codec.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace deck {

namespace {

// Control byte layout: bits 0-1 packet kind, bits 2-5 explicit-field
// presence (tag / a / b / c), bits 6-7 reserved (must be zero).
constexpr std::uint8_t kKindExplicit = 0;
constexpr std::uint8_t kKindRepeatSlot = 1;  // same payload as last_[slot]
constexpr std::uint8_t kKindRepeatPrev = 2;  // same payload as the previous packet
constexpr std::uint8_t kPresentTag = 1u << 2;
constexpr std::uint8_t kPresentA = 1u << 3;
constexpr std::uint8_t kPresentB = 1u << 4;
constexpr std::uint8_t kPresentC = 1u << 5;
constexpr std::uint8_t kReservedBits = 0xc0;

std::size_t slot_of(const WirePacket& p) {
  return 2 * static_cast<std::size_t>(p.edge) + p.dir;
}

}  // namespace

void encode_packet_fixed(std::vector<std::uint8_t>& out, EdgeId e, std::uint8_t dir,
                         const Packet& msg) {
  net::put_u32(out, static_cast<std::uint32_t>(e));
  net::put_u32(out, dir);
  net::put_u32(out, msg.tag);
  net::put_u64(out, msg.a);
  net::put_u64(out, msg.b);
  net::put_u64(out, msg.c);
}

WirePacket decode_packet_fixed(net::WireReader& r) {
  WirePacket p;
  p.edge = static_cast<EdgeId>(r.u32());
  const std::uint32_t dir = r.u32();
  if (dir > 1) throw NetError("congest: boundary message direction must be 0 or 1");
  p.dir = static_cast<std::uint8_t>(dir);
  p.msg.tag = static_cast<std::uint8_t>(r.u32());
  p.msg.a = r.u64();
  p.msg.b = r.u64();
  p.msg.c = r.u64();
  return p;
}

void DeltaCodec::reset(EdgeId num_edges) {
  DECK_CHECK(num_edges >= 0);
  slots_ = 2 * static_cast<std::size_t>(num_edges);
  last_.assign(slots_, Packet{});
  seen_.assign(slots_, 0);
}

bool DeltaCodec::encode(std::vector<std::uint8_t>& out, std::span<const WirePacket> packets) {
  std::vector<WirePacket> sorted(packets.begin(), packets.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const WirePacket& x, const WirePacket& y) { return slot_of(x) < slot_of(y); });

  std::vector<std::uint8_t> body;
  std::size_t prev_slot = 0;
  const Packet* prev_msg = nullptr;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const WirePacket& p = sorted[i];
    const std::size_t slot = slot_of(p);
    DECK_CHECK_MSG(slot < slots_, "delta codec: packet addresses a slot outside the graph");
    DECK_CHECK_MSG(i == 0 || slot > prev_slot,
                   "delta codec: one message per directed edge per round");
    net::put_varint(body, i == 0 ? slot : slot - prev_slot);
    prev_slot = slot;

    if (seen_[slot] != 0 && last_[slot] == p.msg) {
      body.push_back(kKindRepeatSlot);
    } else if (prev_msg != nullptr && *prev_msg == p.msg) {
      body.push_back(kKindRepeatPrev);
    } else {
      std::uint8_t ctrl = kKindExplicit;
      if (p.msg.tag != 0) ctrl |= kPresentTag;
      if (p.msg.a != 0) ctrl |= kPresentA;
      if (p.msg.b != 0) ctrl |= kPresentB;
      if (p.msg.c != 0) ctrl |= kPresentC;
      body.push_back(ctrl);
      if (p.msg.tag != 0) body.push_back(p.msg.tag);
      if (p.msg.a != 0) net::put_varint(body, p.msg.a);
      if (p.msg.b != 0) net::put_varint(body, p.msg.b);
      if (p.msg.c != 0) net::put_varint(body, p.msg.c);
    }
    last_[slot] = p.msg;
    seen_[slot] = 1;
    prev_msg = &last_[slot];
  }

  if (body.size() < sorted.size() * kFixedPacketBytes) {
    net::put_bytes(out, body);
    return true;
  }
  // Fallback: the fixed format is no larger (dense novel payloads). The
  // per-slot cache was already advanced above — identically to what the
  // decoder derives from the fixed bytes — so the formats interleave freely.
  for (const WirePacket& p : packets) encode_packet_fixed(out, p.edge, p.dir, p.msg);
  return false;
}

std::vector<WirePacket> DeltaCodec::decode(net::WireReader& r, std::uint32_t count,
                                           bool delta) {
  if (count > slots_)
    throw NetError("congest: round frame carries more packets than directed edges");
  std::vector<WirePacket> out;
  out.reserve(count);
  std::size_t slot = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    WirePacket p;
    if (delta) {
      const std::uint64_t gap = r.varint();
      if (i == 0) {
        slot = static_cast<std::size_t>(gap);
      } else {
        if (gap == 0)
          throw NetError(
              "congest: overlapping delta payload — duplicate directed edge in a round frame");
        slot += static_cast<std::size_t>(gap);
      }
      if (slot >= slots_)
        throw NetError("congest: delta payload addresses a directed edge outside the graph");
      const std::uint8_t ctrl = r.u8();
      if ((ctrl & kReservedBits) != 0)
        throw NetError("congest: malformed delta payload — reserved control bits set");
      switch (ctrl & 0x03) {
        case kKindExplicit:
          p.msg.tag = (ctrl & kPresentTag) != 0 ? r.u8() : 0;
          p.msg.a = (ctrl & kPresentA) != 0 ? r.varint() : 0;
          p.msg.b = (ctrl & kPresentB) != 0 ? r.varint() : 0;
          p.msg.c = (ctrl & kPresentC) != 0 ? r.varint() : 0;
          break;
        case kKindRepeatSlot:
          if (seen_[slot] == 0)
            throw NetError(
                "congest: stale delta payload — round frame references a mailbox this link "
                "never shipped");
          p.msg = last_[slot];
          break;
        case kKindRepeatPrev:
          if (out.empty())
            throw NetError(
                "congest: malformed delta payload — repeat marker with no previous message");
          p.msg = out.back().msg;
          break;
        default:
          throw NetError("congest: malformed delta payload — unknown packet encoding");
      }
      p.edge = static_cast<EdgeId>(slot / 2);
      p.dir = static_cast<std::uint8_t>(slot & 1);
    } else {
      p = decode_packet_fixed(r);
      slot = slot_of(p);
      if (p.edge < 0 || slot >= slots_)
        throw NetError("congest: round frame packet addresses an edge outside the graph");
    }
    last_[slot] = p.msg;
    seen_[slot] = 1;
    out.push_back(p);
  }
  return out;
}

}  // namespace deck
