#include "congest/checkpoint.hpp"

#include <string>

#include "net/wire.hpp"

namespace deck {

void encode_checkpoint(const CheckpointBlob& cp, std::vector<std::uint8_t>& out) {
  net::put_u32(out, kCheckpointMagic);
  net::put_u32(out, kCheckpointVersion);
  net::put_u32(out, cp.program_id);
  net::put_u32(out, static_cast<std::uint32_t>(cp.lo));
  net::put_u32(out, static_cast<std::uint32_t>(cp.hi));
  net::put_u32(out, static_cast<std::uint32_t>(cp.round));
  net::put_u64(out, cp.state.size());
  net::put_bytes(out, cp.state);
  net::put_u32(out, static_cast<std::uint32_t>(cp.awake.size()));
  for (VertexId v : cp.awake) net::put_u32(out, static_cast<std::uint32_t>(v));
  net::put_u32(out, static_cast<std::uint32_t>(cp.pending.size()));
  for (const auto& s : cp.pending) {
    net::put_u32(out, static_cast<std::uint32_t>(s.edge));
    net::put_u32(out, s.dir);
    net::put_u64(out, s.msg.a);
    net::put_u64(out, s.msg.b);
    net::put_u64(out, s.msg.c);
    net::put_u32(out, s.msg.tag);
  }
}

CheckpointBlob decode_checkpoint(std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kCheckpointMagic)
    throw NetError("congest checkpoint: bad magic 0x" + std::to_string(magic) +
                   " — not a checkpoint blob");
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion)
    throw NetError("congest checkpoint: version " + std::to_string(version) +
                   " not supported (this build speaks " + std::to_string(kCheckpointVersion) +
                   ")");
  CheckpointBlob cp;
  cp.program_id = r.u32();
  cp.lo = static_cast<VertexId>(r.u32());
  cp.hi = static_cast<VertexId>(r.u32());
  cp.round = static_cast<int>(r.u32());
  if (cp.lo < 0 || cp.hi < cp.lo || cp.round < 0)
    throw NetError("congest checkpoint: corrupt range or round");
  const std::uint64_t state_len = r.u64();
  if (state_len > r.remaining())
    throw NetError("congest checkpoint: state longer than the blob");
  const auto state = r.bytes(static_cast<std::size_t>(state_len));
  cp.state.assign(state.begin(), state.end());
  const std::uint32_t awake_count = r.u32();
  if (awake_count > r.remaining() / 4)
    throw NetError("congest checkpoint: awake list longer than the blob");
  cp.awake.resize(awake_count);
  for (auto& v : cp.awake) v = static_cast<VertexId>(r.u32());
  for (std::size_t i = 0; i < cp.awake.size(); ++i) {
    if (cp.awake[i] < cp.lo || cp.awake[i] >= cp.hi)
      throw NetError("congest checkpoint: awake vertex outside the range");
    if (i > 0 && cp.awake[i] <= cp.awake[i - 1])
      throw NetError("congest checkpoint: awake list not strictly ascending");
  }
  const std::uint32_t pending_count = r.u32();
  if (pending_count > r.remaining() / 36)
    throw NetError("congest checkpoint: pending list longer than the blob");
  cp.pending.resize(pending_count);
  for (auto& s : cp.pending) {
    s.edge = static_cast<EdgeId>(r.u32());
    const std::uint32_t dir = r.u32();
    if (dir > 1) throw NetError("congest checkpoint: pending direction out of range");
    s.dir = static_cast<std::uint8_t>(dir);
    s.msg.a = r.u64();
    s.msg.b = r.u64();
    s.msg.c = r.u64();
    const std::uint32_t tag = r.u32();
    if (tag > 0xff) throw NetError("congest checkpoint: pending tag out of range");
    s.msg.tag = static_cast<std::uint8_t>(tag);
  }
  if (r.remaining() != 0)
    throw NetError("congest checkpoint: " + std::to_string(r.remaining()) +
                   " trailing byte(s) after the blob");
  return cp;
}

}  // namespace deck
