#include "congest/distributed_engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "congest/checkpoint.hpp"
#include "congest/delta_codec.hpp"
#include "congest/programs.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace deck {

namespace {

using detail::BspRunner;

/// Coordinator-side model, barrier, and failover telemetry for the net
/// engine.
struct NetEngineMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("congest.net.rounds");
  obs::Counter& messages = obs::Registry::global().counter("congest.net.messages");
  obs::Counter& boundary = obs::Registry::global().counter("congest.net.boundary_messages");
  obs::Counter& worker_deaths = obs::Registry::global().counter("congest.net.worker_deaths");
  obs::Counter& reassigns = obs::Registry::global().counter("congest.net.reassigns");
  // Round-frame format split and per-round wire volume, counted on the
  // coordinator only (in-process fleets share the registry — worker-side
  // increments would double every frame).
  obs::Counter& delta_frames = obs::Registry::global().counter("congest.net.delta_frames");
  obs::Counter& full_frames = obs::Registry::global().counter("congest.net.full_frames");
  obs::Histogram& round_wire_bytes =
      obs::Registry::global().histogram("congest.net.round_wire_bytes");
  obs::Histogram& barrier_wait_ns =
      obs::Registry::global().histogram("congest.net.barrier_wait_ns");
  obs::Histogram& checkpoint_bytes =
      obs::Registry::global().histogram("congest.net.checkpoint_bytes");
  // Worker-side: how long the protocol thread blocks shipping a frame /
  // waiting for the next one. Pipelining shrinks exactly these waits —
  // bench_a2_breakdown's attribution signal for the overlap win.
  obs::Histogram& send_wait_ns =
      obs::Registry::global().histogram("congest.net.send_thread_wait_ns");
  obs::Histogram& recv_wait_ns =
      obs::Registry::global().histogram("congest.net.recv_thread_wait_ns");

  static NetEngineMetrics& get() {
    static NetEngineMetrics m;
    return m;
  }
};

/// Cap on per-round trace spans per execution (matches the local engines).
constexpr int kNetMaxRoundSpans = 64;

void put_head(std::vector<std::uint8_t>& out, CongestMsg type) {
  net::put_u32(out, static_cast<std::uint32_t>(type));
}

/// v4 kRoundDone/kRound head word. Every other type ships a bare type u32
/// (upper bytes zero), so head_type() decodes both shapes.
std::uint32_t packed_head(CongestMsg type, std::uint32_t flags, int round) {
  return static_cast<std::uint32_t>(type) | (flags << 8) |
         ((static_cast<std::uint32_t>(round) & 0xffffu) << 16);
}

CongestMsg head_type(std::uint32_t head) { return static_cast<CongestMsg>(head & 0xffu); }

/// Per-link round-frame codec pair for one execution: tx encodes the
/// frames this end ships, rx decodes the frames it receives. Disabled
/// (delta_frames off) still routes through decode() for the fixed format.
struct RoundCodecs {
  bool enabled = false;
  DeltaCodec tx, rx;

  void arm(EdgeId num_edges, bool delta) {
    enabled = delta;
    tx.reset(num_edges);
    rx.reset(num_edges);
  }
};

/// Contiguous vertex partition: active worker w owns [lo(w), lo(w + 1)).
VertexId range_lo(int n, int workers, int w) {
  const int base = n / workers, rem = n % workers;
  return static_cast<VertexId>(w * base + std::min(w, rem));
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator side.

DistributedEngineHub::DistributedEngineHub(std::vector<Transport*> workers,
                                           DistributedHubOptions options)
    : workers_(std::move(workers)), options_(options) {
  DECK_CHECK_MSG(!workers_.empty(), "distributed engine needs at least one worker");
  alive_.assign(workers_.size(), 1);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const std::vector<std::uint8_t> frame = net::recv_expected(*workers_[w], "Hello");
    net::WireReader r(frame);
    if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kHello)
      throw NetError("congest: worker " + std::to_string(w) + " did not open with Hello");
    const std::uint32_t version = r.u32();
    if (version != kCongestProtoVersion)
      throw NetError("congest: worker " + std::to_string(w) + " speaks protocol version " +
                     std::to_string(version) + ", coordinator speaks " +
                     std::to_string(kCongestProtoVersion));
  }
}

DistributedEngineHub::~DistributedEngineHub() {
  try {
    shutdown();
  } catch (...) {
    // Destructor: a dead worker cannot be shut down any harder.
  }
}

int DistributedEngineHub::num_alive() const {
  int n = 0;
  for (char a : alive_) n += a != 0;
  return n;
}

void DistributedEngineHub::mark_dead(int w) {
  auto& flag = alive_[static_cast<std::size_t>(w)];
  if (flag == 0) return;
  flag = 0;
  if (obs::enabled()) NetEngineMetrics::get().worker_deaths.inc();
  try {
    workers_[static_cast<std::size_t>(w)]->close();
  } catch (...) {
    // Closing a faulted transport may itself fault; dead is dead.
  }
}

void DistributedEngineHub::shutdown() {
  if (down_) return;
  down_ = true;
  std::vector<std::uint8_t> frame;
  put_head(frame, CongestMsg::kShutdown);
  for (int w = 0; w < num_workers(); ++w) {
    if (!alive(w)) continue;
    try {
      workers_[static_cast<std::size_t>(w)]->send(frame);
    } catch (const NetError&) {
      mark_dead(w);
    }
  }
}

namespace {

class DistributedEngine final : public Engine {
 public:
  DistributedEngine(DistributedEngineHub& hub, const Graph& g, std::uint32_t graph_id)
      : hub_(&hub), g_(&g), graph_id_(graph_id) {
    const int n = g.num_vertices();
    std::vector<int> eligible;
    for (int w = 0; w < hub.num_workers(); ++w)
      if (hub.alive(w)) eligible.push_back(w);
    DECK_CHECK_MSG(!eligible.empty(), "distributed engine has no live workers");
    const int spares =
        std::clamp(hub.options().spares, 0, static_cast<int>(eligible.size()) - 1);
    const int active = static_cast<int>(eligible.size()) - spares;

    // The header + edge list is identical for every worker; only the
    // trailing owned-range pair differs, so encode the shared prefix once.
    // Every worker holds the full edge list, which is what makes mid-phase
    // reassignment graph-shipping-free.
    std::vector<std::uint8_t> frame;
    put_head(frame, CongestMsg::kLoadGraph);
    net::put_u32(frame, graph_id_);
    net::put_u32(frame, static_cast<std::uint32_t>(n));
    net::put_u32(frame, static_cast<std::uint32_t>(g.num_edges()));
    for (const Edge& e : g.edges()) {
      net::put_u32(frame, static_cast<std::uint32_t>(e.u));
      net::put_u32(frame, static_cast<std::uint32_t>(e.v));
      net::put_u64(frame, static_cast<std::uint64_t>(e.w));
    }
    const std::size_t shared_bytes = frame.size();
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      const VertexId lo = i < static_cast<std::size_t>(active)
                              ? range_lo(n, active, static_cast<int>(i))
                              : 0;
      const VertexId hi = i < static_cast<std::size_t>(active)
                              ? range_lo(n, active, static_cast<int>(i) + 1)
                              : 0;
      frame.resize(shared_bytes);
      net::put_u32(frame, static_cast<std::uint32_t>(lo));
      net::put_u32(frame, static_cast<std::uint32_t>(hi));
      const int w = eligible[i];
      try {
        hub_->worker(w).send(frame);
      } catch (const NetError&) {
        hub_->mark_dead(w);
        // The range stays in the table owned by the dead worker; the first
        // barrier of the first execute adopts it.
      }
      if (lo < hi) {
        RangeState rs;
        rs.lo = lo;
        rs.hi = hi;
        rs.owner = w;
        ranges_.push_back(std::move(rs));
      }
    }
  }

  ~DistributedEngine() override {
    if (hub_->is_down()) return;
    try {
      std::vector<std::uint8_t> frame;
      put_head(frame, CongestMsg::kDropGraph);
      net::put_u32(frame, graph_id_);
      for (int w = 0; w < hub_->num_workers(); ++w) {
        if (!hub_->alive(w)) continue;
        try {
          hub_->worker(w).send(frame);
        } catch (const NetError&) {
          hub_->mark_dead(w);
        }
      }
    } catch (...) {
      // Destructor: the worker that died already surfaced its NetError.
    }
  }

  std::string name() const override { return "net"; }

  ExecStats execute(VertexProgram& prog) override {
    DECK_CHECK_MSG(!hub_->is_down(), "distributed engine used after shutdown");
    const int workers = hub_->num_workers();
    // The coordinator-side program instance validates inputs and hosts the
    // collected outputs; all stepping happens on the workers.
    prog.setup(*g_);

    // The execute span's context rides in Start; workers parent their spans
    // under it and ship them back as kTraceData, merging every worker's
    // timeline under this one node in the coordinator's trace.
    obs::Span exec_span("net.execute");
    const bool trace_on = exec_span.live();
    const obs::TraceContext ctx =
        trace_on ? exec_span.context() : obs::TraceContext{};

    std::vector<std::uint8_t> spec;
    prog.encode_spec(spec);
    const std::uint32_t program_id = prog.program_id();

    // Per-phase recovery state starts clean: no checkpoint, empty logs.
    for (RangeState& rg : ranges_) {
      rg.cp_round = 0;
      rg.cp_blob.clear();
      rg.log.clear();
      rg.collected = false;
    }

    // Round-frame codecs are per execution and per link: both ends of a
    // link reset at Start, so the shared encoder model never straddles
    // executions. A worker death discards its pair; the survivor's tx
    // codec simply encodes the adopted link's unseen slots explicitly.
    const bool delta = hub_->options().delta_frames;
    const int cp_interval = hub_->options().checkpoint_interval;
    std::vector<RoundCodecs> codecs(static_cast<std::size_t>(workers));
    for (RoundCodecs& c : codecs) c.arm(g_->num_edges(), delta);

    std::vector<std::uint8_t> frame;
    std::vector<char> tracing_from(static_cast<std::size_t>(workers), 0);
    for (int w = 0; w < workers; ++w) {
      if (!hub_->alive(w)) continue;
      frame.clear();
      put_head(frame, CongestMsg::kStart);
      net::put_u32(frame, graph_id_);
      net::put_u32(frame, program_id);
      net::put_u32(frame, static_cast<std::uint32_t>(w) + 1);  // worker node id (0 = coordinator)
      net::put_u32(frame, trace_on ? 1 : 0);
      net::put_u64(frame, ctx.trace_id);
      net::put_u64(frame, ctx.span_id);
      net::put_u32(frame, delta ? 1u : 0u);  // execution flags, bit 0: delta frames
      net::put_u32(frame, static_cast<std::uint32_t>(cp_interval));
      net::put_bytes(frame, spec);
      try {
        hub_->worker(w).send(frame);
        tracing_from[static_cast<std::size_t>(w)] = trace_on ? 1 : 0;
      } catch (const NetError&) {
        hub_->mark_dead(w);
      }
    }

    ExecStats stats;
    std::uint64_t boundary_total = 0;
    for (int round = 1;; ++round) {
      std::uint64_t round_wire = 0;  // RoundDone bytes in + kRound bytes out
      std::optional<obs::Span> round_span;
      if (trace_on && round <= kNetMaxRoundSpans) {
        round_span.emplace("round");
        round_span->arg("round", static_cast<std::uint64_t>(round));
      }

      // Supplementary RoundDones owed this barrier: one per range restored
      // onto a survivor while the barrier is open (the dead owner's
      // round-`round` contribution was lost with it).
      std::vector<std::pair<int, std::size_t>> supp;
      // Adopt ranges orphaned between barriers (send failures, deaths after
      // their round was already counted, checkpoint-time deaths).
      for (std::size_t i = 0; i < ranges_.size(); ++i)
        if (!hub_->alive(ranges_[i].owner)) {
          send_restore(i, /*finish=*/false, program_id, spec);
          supp.emplace_back(ranges_[i].owner, i);
        }

      std::vector<char> orig(static_cast<std::size_t>(workers), 0);
      for (int w = 0; w < workers; ++w)
        orig[static_cast<std::size_t>(w)] = hub_->alive(w) ? 1 : 0;
      for (RangeState& rg : ranges_) {
        rg.cur_count = 0;
        rg.cur_wire.clear();
      }

      // Barrier: collect every live worker's round result (plus one
      // supplementary per range restored mid-barrier), then route boundary
      // messages to the owner of each receiving endpoint.
      std::uint64_t total = 0;
      const std::uint64_t barrier_start = obs::enabled() ? obs::now_ns() : 0;
      for (;;) {
        int w = -1;
        for (int i = 0; i < workers; ++i)
          if (orig[static_cast<std::size_t>(i)]) {
            w = i;
            break;
          }
        if (w < 0 && !supp.empty()) w = supp.front().first;
        if (w < 0) break;
        try {
          const std::vector<std::uint8_t> done = recv_protocol(w, "RoundDone");
          net::WireReader r(done);
          const std::uint32_t head = r.u32();
          if (head_type(head) != CongestMsg::kRoundDone)
            throw NetError("congest: expected RoundDone from worker " + std::to_string(w));
          const std::uint32_t flags = (head >> 8) & 0xffu;
          if (head >> 16 != (static_cast<std::uint32_t>(round) & 0xffffu))
            throw NetError("congest: stale RoundDone — worker " + std::to_string(w) +
                           " stamped round " + std::to_string(head >> 16) +
                           " at barrier round " + std::to_string(round));
          const bool body_delta = (flags & 1u) != 0;
          if (body_delta && !delta)
            throw NetError("congest: delta RoundDone from worker " + std::to_string(w) +
                           " but delta frames are disabled");
          total += r.u64();
          const std::uint32_t boundary = r.u32();
          boundary_total += boundary;
          round_wire += done.size();
          if (obs::enabled())
            (body_delta ? NetEngineMetrics::get().delta_frames
                        : NetEngineMetrics::get().full_frames)
                .inc();
          for (const WirePacket& p :
               codecs[static_cast<std::size_t>(w)].rx.decode(r, boundary, body_delta)) {
            if (p.edge < 0 || p.edge >= g_->num_edges())
              throw NetError("congest: boundary message on a bogus edge id");
            const Edge& e = g_->edge(p.edge);
            const VertexId to = p.dir == 0 ? e.v : e.u;
            RangeState& dst = ranges_[range_of(to)];
            dst.cur_wire.push_back(p);
            ++dst.cur_count;
          }
          if (orig[static_cast<std::size_t>(w)]) {
            orig[static_cast<std::size_t>(w)] = 0;
          } else {
            const auto it = std::find_if(supp.begin(), supp.end(),
                                         [w](const auto& s) { return s.first == w; });
            if (it == supp.end())
              throw NetError("congest: unsolicited RoundDone from worker " + std::to_string(w));
            supp.erase(it);
          }
        } catch (const NetError&) {
          // Worker w is dead: orderly close, transport fault, or silence
          // past the recv deadline. Recover onto survivors or rethrow.
          hub_->mark_dead(w);
          if (hub_->num_alive() == 0) throw;
          const bool orig_lost = orig[static_cast<std::size_t>(w)] != 0;
          orig[static_cast<std::size_t>(w)] = 0;
          // Ranges w adopted during this barrier still owe their
          // round-`round` contribution: move range and debt to a survivor.
          for (auto& s : supp)
            if (s.first == w) {
              send_restore(s.second, /*finish=*/false, program_id, spec);
              s.first = ranges_[s.second].owner;
            }
          if (orig_lost) {
            // w's own units' round-`round` contribution died with it:
            // restore every remaining w-owned range now.
            for (std::size_t i = 0; i < ranges_.size(); ++i)
              if (ranges_[i].owner == w) {
                send_restore(i, /*finish=*/false, program_id, spec);
                supp.emplace_back(ranges_[i].owner, i);
              }
          }
          // else: w reported before dying, so its ranges' contributions are
          // already counted; the next barrier (or collect) adopts them with
          // this round's deliveries in the log.
        }
      }
      if (obs::enabled())
        NetEngineMetrics::get().barrier_wait_ns.observe(obs::now_ns() - barrier_start);
      if (round_span) round_span->arg("messages", total);

      if (total == 0) break;
      stats.rounds += 1;
      stats.messages += total;
      const bool want_cp = cp_interval > 0 && round % cp_interval == 0;
      std::vector<WirePacket> wire_pkts;
      std::vector<std::uint8_t> body;
      for (int w = 0; w < workers; ++w) {
        if (!hub_->alive(w)) continue;
        wire_pkts.clear();
        for (const RangeState& rg : ranges_)
          if (rg.owner == w)
            wire_pkts.insert(wire_pkts.end(), rg.cur_wire.begin(), rg.cur_wire.end());
        std::uint32_t flags = want_cp ? 2u : 0u;
        body.clear();
        if (delta) {
          if (codecs[static_cast<std::size_t>(w)].tx.encode(body, wire_pkts)) flags |= 1u;
        } else {
          for (const WirePacket& p : wire_pkts) encode_packet_fixed(body, p.edge, p.dir, p.msg);
        }
        frame.clear();
        net::put_u32(frame, packed_head(CongestMsg::kRound, flags, round));
        net::put_u32(frame, static_cast<std::uint32_t>(wire_pkts.size()));
        net::put_bytes(frame, body);
        round_wire += frame.size();
        if (obs::enabled())
          ((flags & 1u) != 0 ? NetEngineMetrics::get().delta_frames
                             : NetEngineMetrics::get().full_frames)
              .inc();
        try {
          hub_->worker(w).send(frame);
        } catch (const NetError&) {
          hub_->mark_dead(w);
          if (hub_->num_alive() == 0) throw;
        }
      }
      if (obs::enabled()) NetEngineMetrics::get().round_wire_bytes.observe(round_wire);
      // Extend every range's replay log with this round's deliveries —
      // unconditionally, so recovery is possible from round 1 even with
      // checkpoints off. Logs always store the fixed encoding: Restore
      // replay must not depend on any live delta-codec state.
      for (RangeState& rg : ranges_) {
        LogEntry le;
        le.count = rg.cur_count;
        for (const WirePacket& p : rg.cur_wire)
          encode_packet_fixed(le.packets, p.edge, p.dir, p.msg);
        rg.log.push_back(std::move(le));
        rg.cur_wire.clear();
      }

      if (want_cp) {
        // Workers checkpoint every unit right after applying this round's
        // deliveries; FIFO puts the blobs ahead of the next RoundDone.
        for (int w = 0; w < workers; ++w) {
          if (!hub_->alive(w)) continue;
          std::size_t expected = 0;
          for (const RangeState& rg : ranges_) expected += rg.owner == w ? 1 : 0;
          for (std::size_t k = 0; k < expected; ++k) {
            try {
              const std::vector<std::uint8_t> cpf = recv_protocol(w, "Checkpoint");
              net::WireReader r(cpf);
              if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kCheckpoint)
                throw NetError("congest: expected Checkpoint from worker " + std::to_string(w));
              const auto lo = static_cast<VertexId>(r.u32());
              const auto hi = static_cast<VertexId>(r.u32());
              RangeState* rg = nullptr;
              for (RangeState& cand : ranges_)
                if (cand.owner == w && cand.lo == lo && cand.hi == hi) rg = &cand;
              if (rg == nullptr)
                throw NetError("congest: Checkpoint for a range worker " + std::to_string(w) +
                               " does not own");
              const std::span<const std::uint8_t> blob = r.rest();
              rg->cp_blob.assign(blob.begin(), blob.end());
              rg->cp_round = round;
              rg->log.clear();
              if (obs::enabled())
                NetEngineMetrics::get().checkpoint_bytes.observe(blob.size());
            } catch (const NetError&) {
              hub_->mark_dead(w);
              if (hub_->num_alive() == 0) throw;
              break;  // w's ranges keep their older checkpoint + longer log
            }
          }
        }
      }
    }

    // Collect: every range ships its outputs from whichever worker owns it
    // now; ranges orphaned since the last barrier (or dying mid-collect)
    // are finish-restored onto survivors.
    frame.clear();
    put_head(frame, CongestMsg::kCollect);
    for (int w = 0; w < workers; ++w) {
      if (!hub_->alive(w)) continue;
      try {
        hub_->worker(w).send(frame);
      } catch (const NetError&) {
        hub_->mark_dead(w);
        if (hub_->num_alive() == 0) throw;
      }
    }
    for (std::size_t i = 0; i < ranges_.size(); ++i)
      if (!hub_->alive(ranges_[i].owner)) send_restore(i, /*finish=*/true, program_id, spec);

    std::vector<std::vector<std::uint8_t>> trace_frames(static_cast<std::size_t>(workers));
    for (;;) {
      std::size_t idx = ranges_.size();
      for (std::size_t i = 0; i < ranges_.size(); ++i)
        if (!ranges_[i].collected) {
          idx = i;
          break;
        }
      if (idx == ranges_.size()) break;
      const int w = ranges_[idx].owner;
      try {
        const std::vector<std::uint8_t> outs = recv_protocol(w, "Outputs");
        net::WireReader r(outs);
        const auto type = static_cast<CongestMsg>(r.u32());
        if (type == CongestMsg::kOutputs) {
          const auto lo = static_cast<VertexId>(r.u32());
          const auto hi = static_cast<VertexId>(r.u32());
          RangeState* rg = nullptr;
          for (RangeState& cand : ranges_)
            if (!cand.collected && cand.owner == w && cand.lo == lo && cand.hi == hi)
              rg = &cand;
          if (rg == nullptr)
            throw NetError("congest: Outputs for a range worker " + std::to_string(w) +
                           " does not own");
          prog.decode_outputs(lo, hi, r.rest());
          rg->collected = true;
        } else if (type == CongestMsg::kTraceData) {
          if (!tracing_from[static_cast<std::size_t>(w)] ||
              !trace_frames[static_cast<std::size_t>(w)].empty())
            throw NetError("congest: unexpected TraceData from worker " + std::to_string(w));
          trace_frames[static_cast<std::size_t>(w)] = std::move(outs);
        } else {
          throw NetError("congest: expected Outputs from worker " + std::to_string(w));
        }
      } catch (const NetError&) {
        hub_->mark_dead(w);
        if (hub_->num_alive() == 0) throw;
        tracing_from[static_cast<std::size_t>(w)] = 0;
        for (std::size_t i = 0; i < ranges_.size(); ++i)
          if (!ranges_[i].collected && ranges_[i].owner == w)
            send_restore(i, /*finish=*/true, program_id, spec);
      }
    }

    if (trace_on) {
      for (int w = 0; w < workers; ++w) {
        if (!tracing_from[static_cast<std::size_t>(w)]) continue;
        if (trace_frames[static_cast<std::size_t>(w)].empty()) {
          try {
            const std::vector<std::uint8_t> td = recv_protocol(w, "TraceData");
            net::WireReader peek(td);
            if (static_cast<CongestMsg>(peek.u32()) != CongestMsg::kTraceData)
              throw NetError("congest: expected TraceData from worker " + std::to_string(w));
            trace_frames[static_cast<std::size_t>(w)] = td;
          } catch (const NetError&) {
            // All outputs are in; a death this late only costs the trace.
            hub_->mark_dead(w);
            continue;
          }
        }
        net::WireReader r(trace_frames[static_cast<std::size_t>(w)]);
        (void)r.u32();  // head, already validated
        std::vector<obs::TraceEvent> events;
        try {
          events = obs::decode_trace_events(r.rest());
        } catch (const std::exception& e) {
          throw NetError(std::string("congest: worker ") + std::to_string(w) +
                         " shipped malformed trace data: " + e.what());
        }
        // Stamp the pid authoritatively — the merged trace's process lanes
        // must reflect the coordinator's fleet numbering, whatever a worker
        // put in the field.
        for (obs::TraceEvent& ev : events) ev.pid = static_cast<std::uint32_t>(w) + 1;
        obs::TraceSink::global().record_batch(std::move(events));
      }
    }

    if (obs::enabled()) {
      NetEngineMetrics& m = NetEngineMetrics::get();
      m.rounds.add(stats.rounds);
      m.messages.add(stats.messages);
      m.boundary.add(boundary_total);
    }
    exec_span.arg("rounds", stats.rounds);
    exec_span.arg("messages", stats.messages);
    exec_span.arg("boundary_messages", boundary_total);
    return stats;
  }

 private:
  struct LogEntry {
    std::uint32_t count = 0;
    std::vector<std::uint8_t> packets;
  };

  /// One contiguous vertex range with its recovery state: the last
  /// checkpoint blob (round cp_round) plus every boundary delivery routed
  /// into the range since — rounds cp_round + 1 .. cp_round + log.size().
  struct RangeState {
    VertexId lo = 0, hi = 0;
    int owner = 0;
    int cp_round = 0;
    std::vector<std::uint8_t> cp_blob;  // empty = restore from round 1
    std::vector<LogEntry> log;
    std::uint32_t cur_count = 0;  // deliveries routed this barrier
    std::vector<WirePacket> cur_wire;
    bool collected = false;
  };

  /// Receives one protocol frame from worker w under the hub's recv policy,
  /// transparently consuming heartbeats (each one restarts the deadline).
  std::vector<std::uint8_t> recv_protocol(int w, const char* expecting) {
    for (;;) {
      std::optional<std::vector<std::uint8_t>> f = hub_->worker(w).recv(hub_->options().recv);
      if (!f)
        throw NetError("congest: worker " + std::to_string(w) + " closed while waiting for " +
                       expecting);
      if (f->size() >= 4) {
        net::WireReader r(*f);
        if (head_type(r.u32()) == CongestMsg::kHeartbeat) continue;
      }
      return std::move(*f);
    }
  }

  /// The range owning vertex v (partition covers [0, n), ranges_ ascending).
  std::size_t range_of(VertexId v) const {
    std::size_t lo = 0, hi = ranges_.size();
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (ranges_[mid].lo <= v)
        lo = mid;
      else
        hi = mid;
    }
    DECK_CHECK(v >= ranges_[lo].lo && v < ranges_[lo].hi);
    return lo;
  }

  /// The adoption target: fewest owned vertices (spares first), then lowest
  /// index. Throws NetError when nobody survives.
  int pick_adoptive() const {
    int best = -1;
    std::int64_t best_load = 0;
    for (int w = 0; w < hub_->num_workers(); ++w) {
      if (!hub_->alive(w)) continue;
      std::int64_t load = 0;
      for (const RangeState& rg : ranges_)
        if (rg.owner == w) load += rg.hi - rg.lo;
      if (best < 0 || load < best_load) {
        best = w;
        best_load = load;
      }
    }
    if (best < 0)
      throw NetError("congest: no surviving worker to adopt an orphaned vertex range");
    return best;
  }

  /// Ships range `idx` to a survivor as a self-contained Restore: program
  /// spec, last checkpoint (if any), and the logged deliveries since. The
  /// survivor replays to the exact state the dead owner held.
  void send_restore(std::size_t idx, bool finish, std::uint32_t program_id,
                    const std::vector<std::uint8_t>& spec) {
    RangeState& rg = ranges_[idx];
    std::vector<std::uint8_t> frame;
    put_head(frame, CongestMsg::kRestore);
    net::put_u32(frame, finish ? 1 : 0);
    net::put_u32(frame, graph_id_);
    net::put_u32(frame, program_id);
    net::put_u32(frame, static_cast<std::uint32_t>(rg.lo));
    net::put_u32(frame, static_cast<std::uint32_t>(rg.hi));
    net::put_u32(frame, rg.cp_blob.empty() ? 0 : 1);
    if (!rg.cp_blob.empty()) {
      net::put_u64(frame, rg.cp_blob.size());
      net::put_bytes(frame, rg.cp_blob);
    }
    net::put_u32(frame, static_cast<std::uint32_t>(rg.log.size()));
    for (std::size_t i = 0; i < rg.log.size(); ++i) {
      net::put_u32(frame, static_cast<std::uint32_t>(rg.cp_round + 1 + static_cast<int>(i)));
      net::put_u32(frame, rg.log[i].count);
      net::put_bytes(frame, rg.log[i].packets);
    }
    net::put_bytes(frame, spec);
    for (;;) {
      const int a = pick_adoptive();
      try {
        hub_->worker(a).send(frame);
        rg.owner = a;
        if (obs::enabled()) NetEngineMetrics::get().reassigns.inc();
        return;
      } catch (const NetError&) {
        hub_->mark_dead(a);
      }
    }
  }

  DistributedEngineHub* hub_;
  const Graph* g_;
  std::uint32_t graph_id_;
  std::vector<RangeState> ranges_;
};

}  // namespace

std::unique_ptr<Engine> DistributedEngineHub::engine_for(const Graph& g) {
  DECK_CHECK_MSG(!down_, "distributed engine hub used after shutdown");
  return std::make_unique<DistributedEngine>(*this, g, next_graph_id_++);
}

std::shared_ptr<DistributedEngineHub> make_distributed_hub(std::vector<Transport*> workers,
                                                           DistributedHubOptions options) {
  return std::make_shared<DistributedEngineHub>(std::move(workers), options);
}

// ---------------------------------------------------------------------------
// Worker side.

namespace {

/// Serializes sends on the coordinator link: the main protocol loop and the
/// heartbeat pump share one transport.
struct WorkerLink {
  Transport& t;
  std::mutex mu;

  explicit WorkerLink(Transport& transport) : t(transport) {}

  void send(const std::vector<std::uint8_t>& frame) {
    std::lock_guard<std::mutex> lock(mu);
    t.send(frame);
  }
};

/// Background heartbeat sender (WorkerOptions::heartbeat_ms > 0): proof of
/// life for coordinators running recv deadlines. Stops on destruction or on
/// the first send fault (the main loop surfaces the real error).
class HeartbeatPump {
 public:
  HeartbeatPump(WorkerLink& link, int interval_ms) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, &link, interval_ms] {
      std::vector<std::uint8_t> beat;
      put_head(beat, CongestMsg::kHeartbeat);
      std::unique_lock<std::mutex> lock(mu_);
      while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return stop_; })) {
        lock.unlock();
        bool ok = true;
        try {
          link.send(beat);
        } catch (...) {
          ok = false;
        }
        lock.lock();
        if (!ok) return;
      }
    });
  }

  ~HeartbeatPump() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

struct WorkerRange {
  VertexId lo = 0, hi = 0;
  // interior[v] != 0: every neighbor of v lies inside [lo, hi), so v can
  // neither receive a boundary delivery nor produce a remote send —
  // eligible for split-round eager stepping. Computed once per range.
  std::vector<char> interior;
};

struct WorkerGraph {
  Graph g;
  std::vector<WorkerRange> ranges;  // grows as orphaned ranges are adopted
};

/// Marks the vertices of [lo, hi) whose neighborhoods are entirely owned.
std::vector<char> interior_mask(const Graph& g, VertexId lo, VertexId hi) {
  std::vector<char> mask(static_cast<std::size_t>(g.num_vertices()), 0);
  for (VertexId v = lo; v < hi; ++v) {
    char inside = 1;
    for (const Adj& a : g.neighbors(v))
      if (a.to < lo || a.to >= hi) {
        inside = 0;
        break;
      }
    mask[static_cast<std::size_t>(v)] = inside;
  }
  return mask;
}

struct WorkerState {
  WorkerLink link;
  WorkerOptions opts;
  std::unique_ptr<ThreadPool> owned_pool;  // pool×net stepping when threads > 0
  RoundCodecs codecs;                      // round-frame codecs, re-armed per Start
  int round_frames = 0;                    // kill_after_rounds clock

  WorkerState(Transport& transport, const WorkerOptions& options)
      : link(transport), opts(options) {
    if (options.pool == nullptr && options.threads > 0)
      owned_pool = std::make_unique<ThreadPool>(options.threads);
  }

  /// The stepping pool: a caller-shared one wins over an owned one.
  ThreadPool* step_pool() const {
    return opts.pool != nullptr ? opts.pool : owned_pool.get();
  }
};

/// Serializes one RoundDone through the worker's tx codec (or the fixed
/// format when delta is off). Must run in codec FIFO order.
void encode_round_done(std::vector<std::uint8_t>& frame, int round, std::uint64_t sent,
                       std::span<const WirePacket> packets, RoundCodecs& codecs) {
  std::vector<std::uint8_t> body;
  std::uint32_t flags = 0;
  if (codecs.enabled) {
    if (codecs.tx.encode(body, packets)) flags |= 1u;
  } else {
    for (const WirePacket& p : packets) encode_packet_fixed(body, p.edge, p.dir, p.msg);
  }
  net::put_u32(frame, packed_head(CongestMsg::kRoundDone, flags, round));
  net::put_u64(frame, sent);
  net::put_u32(frame, static_cast<std::uint32_t>(packets.size()));
  net::put_bytes(frame, body);
}

std::vector<WirePacket> to_wire(const std::vector<BspRunner::RemoteSend>& sends) {
  std::vector<WirePacket> out;
  out.reserve(sends.size());
  for (const BspRunner::RemoteSend& s : sends)
    out.push_back(WirePacket{s.edge, s.dir, s.msg});
  return out;
}

/// Worker comm pipeline (WorkerOptions::pipeline): a dedicated send thread
/// serializes and ships outbound frames from a bounded FIFO — so encoding
/// round R's RoundDone overlaps with stepping round R + 1's interior — and
/// a dedicated recv thread reads ahead (the protocol is flow-controlled, so
/// the read-ahead queue stays shallow). With pipelining off the same calls
/// run inline: one protocol code path either way.
///
/// RoundDone jobs are encoded *on the send thread* through the execution's
/// RoundCodecs; keeping every outbound frame except heartbeats in the FIFO
/// preserves codec order. flush() must drain the FIFO before the codecs are
/// re-armed for the next execution. Both modes record how long the protocol
/// thread blocks on comm into the send/recv wait histograms.
class CommPipe {
 public:
  CommPipe(Transport& t, WorkerLink& link, RoundCodecs& codecs, bool pipelined)
      : t_(t), link_(link), codecs_(codecs), pipelined_(pipelined) {
    if (!pipelined_) return;
    send_thread_ = std::thread([this] { send_loop(); });
    recv_thread_ = std::thread([this] { recv_loop(); });
  }

  ~CommPipe() { abort(); }

  /// Ships (or enqueues) one RoundDone; pipelined, the serialization cost
  /// moves off the protocol thread.
  void send_round_done(int round, std::uint64_t sent, std::vector<WirePacket> packets) {
    if (!pipelined_) {
      std::vector<std::uint8_t> frame;
      encode_round_done(frame, round, sent, packets, codecs_);
      const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
      link_.send(frame);
      if (obs::enabled()) NetEngineMetrics::get().send_wait_ns.observe(obs::now_ns() - t0);
      return;
    }
    SendJob job;
    job.round_done = true;
    job.round = round;
    job.sent = sent;
    job.packets = std::move(packets);
    enqueue(std::move(job));
  }

  /// Ships (or enqueues) an already-encoded frame.
  void send_frame(std::vector<std::uint8_t> frame) {
    if (!pipelined_) {
      const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
      link_.send(frame);
      if (obs::enabled()) NetEngineMetrics::get().send_wait_ns.observe(obs::now_ns() - t0);
      return;
    }
    SendJob job;
    job.raw = std::move(frame);
    enqueue(std::move(job));
  }

  /// Next inbound frame; nullopt on orderly close. Comm-thread faults
  /// resurface here as typed NetErrors.
  std::optional<std::vector<std::uint8_t>> recv() {
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    if (!pipelined_) {
      std::optional<std::vector<std::uint8_t>> f = t_.recv();
      if (obs::enabled()) NetEngineMetrics::get().recv_wait_ns.observe(obs::now_ns() - t0);
      return f;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_main_.wait(lock, [this] { return !recvq_.empty() || recv_done_ || stop_; });
    if (obs::enabled()) NetEngineMetrics::get().recv_wait_ns.observe(obs::now_ns() - t0);
    if (!recvq_.empty()) {
      std::vector<std::uint8_t> f = std::move(recvq_.front());
      recvq_.pop_front();
      return f;
    }
    if (!recv_error_.empty()) throw NetError(recv_error_);
    return std::nullopt;
  }

  /// Blocks until every enqueued frame left the transport; rethrows send
  /// faults. Call before re-arming the codecs or finishing an execution —
  /// queued RoundDone jobs reference the current codec state.
  void flush() {
    if (!pipelined_) return;
    std::unique_lock<std::mutex> lock(mu_);
    cv_main_.wait(lock, [this] { return pending_ == 0 || stop_; });
    if (!send_error_.empty()) throw NetError(send_error_);
  }

  /// Tears the comm threads down (scheduled deaths, worker exit): raises
  /// stop, wakes a blocked receive via Transport::interrupt, discards any
  /// unsent frames, joins. Idempotent; called by the destructor.
  void abort() {
    if (!pipelined_) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      stop_ = true;
    }
    cv_send_.notify_all();
    cv_main_.notify_all();
    try {
      t_.interrupt();
    } catch (...) {
    }
    if (send_thread_.joinable()) send_thread_.join();
    if (recv_thread_.joinable()) recv_thread_.join();
  }

 private:
  struct SendJob {
    std::vector<std::uint8_t> raw;  // pre-encoded frame when !round_done
    bool round_done = false;
    int round = 0;
    std::uint64_t sent = 0;
    std::vector<WirePacket> packets;
  };

  static constexpr std::size_t kSendQueueCap = 16;

  void enqueue(SendJob job) {
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    std::unique_lock<std::mutex> lock(mu_);
    cv_main_.wait(lock, [this] { return sendq_.size() < kSendQueueCap || stop_; });
    if (obs::enabled()) NetEngineMetrics::get().send_wait_ns.observe(obs::now_ns() - t0);
    if (stop_) throw NetError("congest: send on a torn-down worker comm pipe");
    if (!send_error_.empty()) throw NetError(send_error_);
    sendq_.push_back(std::move(job));
    ++pending_;
    cv_send_.notify_one();
  }

  void send_loop() {
    for (;;) {
      SendJob job;
      bool discard = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_send_.wait(lock, [this] { return !sendq_.empty() || stop_; });
        if (sendq_.empty()) return;  // stop with a drained queue
        job = std::move(sendq_.front());
        sendq_.pop_front();
        // After stop or a fault the pipe only completes bookkeeping —
        // dropping the frames keeps flush() from hanging on a dead link.
        discard = stop_ || !send_error_.empty();
      }
      if (!discard) {
        try {
          if (job.round_done) {
            std::vector<std::uint8_t> frame;
            encode_round_done(frame, job.round, job.sent, job.packets, codecs_);
            link_.send(frame);
          } else {
            link_.send(job.raw);
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(mu_);
          if (send_error_.empty()) send_error_ = e.what();
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      cv_main_.notify_all();
    }
  }

  void recv_loop() {
    for (;;) {
      std::optional<std::vector<std::uint8_t>> f;
      try {
        f = t_.recv();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        if (recv_error_.empty()) recv_error_ = e.what();
        recv_done_ = true;
        cv_main_.notify_all();
        return;
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (!f) {
        recv_done_ = true;
        cv_main_.notify_all();
        return;
      }
      recvq_.push_back(std::move(*f));
      cv_main_.notify_all();
      if (stop_) return;
    }
  }

  Transport& t_;
  WorkerLink& link_;
  RoundCodecs& codecs_;
  const bool pipelined_;
  std::thread send_thread_, recv_thread_;
  std::mutex mu_;
  std::condition_variable cv_send_;   // wakes the send thread
  std::condition_variable cv_main_;   // wakes the protocol thread
  std::deque<SendJob> sendq_;
  std::deque<std::vector<std::uint8_t>> recvq_;
  std::size_t pending_ = 0;  // enqueued frames not yet shipped (or dropped)
  std::string send_error_, recv_error_;
  bool recv_done_ = false;
  bool stop_ = false;
};

/// The scripted death point: close-and-throw by default (in-process fleets
/// must not nuke the host), SIGKILL when the worker is its own process.
[[noreturn]] void die_on_schedule(WorkerState& st, CommPipe& pipe) {
  if (st.opts.hard_kill) {
    std::raise(SIGKILL);
    std::abort();  // unreachable; keeps [[noreturn] ] honest if SIGKILL is blocked
  }
  pipe.abort();
  try {
    st.link.t.close();
  } catch (...) {
  }
  throw NetError("congest: worker killed by schedule (kill_after_rounds)");
}

WorkerGraph decode_graph(net::WireReader& r) {
  WorkerGraph wg;
  const std::uint32_t n = r.u32();
  const std::uint32_t m = r.u32();
  if (m > r.remaining() / 16) throw NetError("congest: LoadGraph edge list longer than frame");
  wg.g = Graph(static_cast<int>(n));
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(r.u32());
    const auto v = static_cast<VertexId>(r.u32());
    const auto w = static_cast<Weight>(r.u64());
    if (u < 0 || v < 0 || u >= static_cast<VertexId>(n) || v >= static_cast<VertexId>(n))
      throw NetError("congest: LoadGraph edge endpoint out of range");
    wg.g.add_edge(u, v, w);
  }
  WorkerRange range;
  range.lo = static_cast<VertexId>(r.u32());
  range.hi = static_cast<VertexId>(r.u32());
  if (range.lo < 0 || range.hi < range.lo || range.hi > static_cast<VertexId>(n))
    throw NetError("congest: LoadGraph vertex range is malformed");
  range.interior = interior_mask(wg.g, range.lo, range.hi);
  wg.ranges.push_back(std::move(range));
  return wg;
}

/// One owned range mid-execution: its own program instance (decoded from
/// the spec — setup() must never run twice on live state) plus the BSP
/// runner for the slice.
struct WorkerUnit {
  VertexId lo = 0, hi = 0;
  std::unique_ptr<VertexProgram> prog;
  std::unique_ptr<BspRunner> runner;
};

/// Rebuilds a Restore frame's range on this worker: decode the spec, absorb
/// the checkpoint (or start from round 1), then replay the logged boundary
/// deliveries round by round — discarding the re-derived sends, which the
/// dead owner already routed. Returns the unit plus the next round it is
/// ready to run. Malformed frames and checkpoints fail typed.
std::pair<WorkerUnit, int> build_restored_unit(WorkerState& st, WorkerGraph& wg,
                                               net::WireReader& r) {
  const std::uint32_t program_id = r.u32();
  const auto lo = static_cast<VertexId>(r.u32());
  const auto hi = static_cast<VertexId>(r.u32());
  if (lo < 0 || hi < lo || hi > wg.g.num_vertices())
    throw NetError("congest: Restore range is malformed");
  const std::uint32_t cp_present = r.u32();
  CheckpointBlob cp;
  if (cp_present != 0) {
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) throw NetError("congest: Restore checkpoint longer than frame");
    cp = decode_checkpoint(r.bytes(static_cast<std::size_t>(len)));
    if (cp.program_id != program_id || cp.lo != lo || cp.hi != hi)
      throw NetError("congest: Restore checkpoint does not match the adopted range");
  }
  const std::uint32_t replay_rounds = r.u32();
  std::vector<std::pair<int, std::vector<WirePacket>>> replay;
  replay.reserve(replay_rounds);
  for (std::uint32_t i = 0; i < replay_rounds; ++i) {
    const int q = static_cast<int>(r.u32());
    const std::uint32_t count = r.u32();
    if (count > r.remaining() / kFixedPacketBytes)
      throw NetError("congest: Restore replay longer than frame");
    std::vector<WirePacket> packets(count);
    for (auto& p : packets) p = decode_packet_fixed(r);
    replay.emplace_back(q, std::move(packets));
  }

  WorkerUnit u;
  u.lo = lo;
  u.hi = hi;
  u.prog = decode_congest_program(program_id, r.rest());
  u.runner = std::make_unique<BspRunner>(wg.g, lo, hi, st.step_pool(),
                                         interior_mask(wg.g, lo, hi));
  int next = 1;
  if (cp_present != 0) {
    u.prog->setup(wg.g);
    u.prog->decode_state(lo, hi, cp.state);
    u.runner->attach(*u.prog);
    u.runner->restore_resume(cp.round, cp.awake, cp.pending);
    next = cp.round + 1;
  } else {
    u.runner->start(*u.prog);
  }
  std::vector<BspRunner::RemoteSend> discard;
  for (const auto& [q, packets] : replay) {
    if (q != next) throw NetError("congest: Restore replay rounds are not consecutive");
    discard.clear();
    u.runner->run_round(q, &discard);  // re-derived sends were already routed
    for (const WirePacket& p : packets) {
      if (p.edge < 0 || p.edge >= wg.g.num_edges())
        throw NetError("congest: Restore replay delivery on a bogus edge id");
      u.runner->deliver_remote(q, p.edge, p.dir, p.msg);
    }
    ++next;
  }
  return {std::move(u), next};
}

/// Trace context a Start message carries for the execution it launches.
struct StartTrace {
  std::uint32_t node = 0;       // this worker's process lane in the merged trace
  bool tracing = false;         // Start's trace flags, bit 0
  std::uint64_t trace_id = 0;   // coordinator's trace
  std::uint64_t parent_span = 0;  // coordinator's net.execute span
};

/// Per-execution knobs a Start message carries.
struct ExecConfig {
  bool delta = false;    // Start exec flags bit 0 (coordinator's choice)
  bool pipeline = false; // this worker's WorkerOptions::pipeline
  int cp_interval = 0;   // coordinator's checkpoint cadence, for the eager gate
};

/// Executes one Start to quiescence; returns after shipping per-range
/// Outputs (and, when the Start asked for tracing, the worker's span buffer
/// as kTraceData). Mid-phase Restore frames adopt orphaned ranges into the
/// running execution.
///
/// Worker spans are built by hand into a *local* vector rather than through
/// obs::Span and the global TraceSink: with the in-process fleet, workers
/// share the coordinator's process, and sink-recorded events would surface
/// twice (once drained locally, once shipped back). The local buffer keeps
/// exactly one copy — the shipped one — on every deployment shape.
void run_program(WorkerState& st, CommPipe& pipe, std::uint32_t graph_id, WorkerGraph& wg,
                 std::uint32_t program_id, std::span<const std::uint8_t> spec,
                 const StartTrace& trace, const ExecConfig& cfg) {
  std::vector<WorkerUnit> units;
  for (const WorkerRange& range : wg.ranges) {
    if (range.lo >= range.hi) continue;
    WorkerUnit u;
    u.lo = range.lo;
    u.hi = range.hi;
    u.prog = decode_congest_program(program_id, spec);
    u.runner = std::make_unique<BspRunner>(wg.g, u.lo, u.hi, st.step_pool(), range.interior);
    u.runner->start(*u.prog);
    units.push_back(std::move(u));
  }

  std::vector<obs::TraceEvent> local_events;
  const std::uint64_t exec_span_id = trace.tracing ? obs::next_span_id() : 0;
  const std::uint64_t exec_start = trace.tracing ? obs::now_ns() : 0;
  const auto record_local = [&](const char* name, std::uint64_t start, std::uint64_t parent,
                                std::uint64_t span_id) -> obs::TraceEvent& {
    obs::TraceEvent ev;
    ev.name = name;
    ev.ts_ns = start;
    ev.dur_ns = obs::now_ns() - start;
    ev.pid = trace.node;
    ev.trace_id = trace.trace_id;
    ev.span_id = span_id;
    ev.parent_id = parent;
    local_events.push_back(std::move(ev));
    return local_events.back();
  };

  const auto deliver = [&](int round, const WirePacket& p) {
    if (p.edge < 0 || p.edge >= wg.g.num_edges())
      throw NetError("congest: Round delivery on a bogus edge id");
    const Edge& e = wg.g.edge(p.edge);
    const VertexId to = p.dir == 0 ? e.v : e.u;
    for (WorkerUnit& u : units)
      if (to >= u.lo && to < u.hi) {
        u.runner->deliver_remote(round, p.edge, p.dir, p.msg);
        return;
      }
    throw NetError("congest: delivery for a vertex this worker does not own");
  };

  std::vector<BspRunner::RemoteSend> boundary;
  std::vector<std::uint8_t> frame;
  std::uint64_t rounds = 0, messages = 0;

  // Round 1 runs before the loop. Each iteration then ships RoundDone for
  // `round`, optionally half-steps round + 1's interior while the frames
  // are in flight, and completes round + 1 once the coordinator's verdict
  // arrives.
  int round = 1;
  std::uint64_t sent = 0;
  {
    const bool round_traced = trace.tracing && round <= kNetMaxRoundSpans;
    const std::uint64_t round_start = round_traced ? obs::now_ns() : 0;
    for (WorkerUnit& u : units) sent += u.runner->run_round(round, &boundary);
    if (round_traced) {
      obs::TraceEvent& ev =
          record_local("worker.round", round_start, exec_span_id, obs::next_span_id());
      ev.args.emplace_back("round", static_cast<std::uint64_t>(round));
      ev.args.emplace_back("sent", sent);
    }
  }
  for (;;) {
    rounds += sent != 0 ? 1 : 0;
    messages += sent;
    pipe.send_round_done(round, sent, to_wire(boundary));
    boundary.clear();

    // Eager half-step: our own sends guarantee the coordinator continues
    // (total > 0 at the barrier ⇒ a kRound verdict is coming), and skipping
    // checkpoint-cadence rounds keeps save_resume outside any split.
    const bool eager = cfg.pipeline && sent > 0 &&
                       !(cfg.cp_interval > 0 && round % cfg.cp_interval == 0);
    std::uint64_t eager_sent = 0;
    if (eager)
      for (WorkerUnit& u : units) eager_sent += u.runner->run_round_interior(round + 1, &boundary);

    for (bool advance = false; !advance;) {
      std::optional<std::vector<std::uint8_t>> reply_opt = pipe.recv();
      if (!reply_opt)
        throw NetError("congest: worker closed while waiting for Round/Collect/Restore");
      const std::vector<std::uint8_t> reply = std::move(*reply_opt);
      net::WireReader r(reply);
      const std::uint32_t head = r.u32();
      switch (head_type(head)) {
        case CongestMsg::kRound: {
          ++st.round_frames;
          if (st.opts.kill_after_rounds > 0 && st.round_frames == st.opts.kill_after_rounds)
            die_on_schedule(st, pipe);
          const std::uint32_t flags = (head >> 8) & 0xffu;
          if (head >> 16 != (static_cast<std::uint32_t>(round) & 0xffffu))
            throw NetError("congest: stale Round frame — coordinator stamped round " +
                           std::to_string(head >> 16) + ", worker is at round " +
                           std::to_string(round));
          const bool body_delta = (flags & 1u) != 0;
          if (body_delta && !cfg.delta)
            throw NetError("congest: delta Round frame but delta frames are disabled");
          const std::uint32_t count = r.u32();
          for (const WirePacket& p : st.codecs.rx.decode(r, count, body_delta))
            deliver(round, p);
          if ((flags & 2u) != 0) {
            for (const WorkerUnit& u : units) {
              if (u.runner->split_open())
                throw NetError("congest: checkpoint requested inside a pipelined round");
              CheckpointBlob cp;
              cp.program_id = program_id;
              cp.lo = u.lo;
              cp.hi = u.hi;
              cp.round = round;
              u.prog->encode_state(u.lo, u.hi, cp.state);
              u.runner->save_resume(round, cp.awake, cp.pending);
              frame.clear();
              put_head(frame, CongestMsg::kCheckpoint);
              net::put_u32(frame, static_cast<std::uint32_t>(u.lo));
              net::put_u32(frame, static_cast<std::uint32_t>(u.hi));
              encode_checkpoint(cp, frame);
              pipe.send_frame(std::move(frame));
              frame = {};
            }
          }
          const bool round_traced = trace.tracing && round + 1 <= kNetMaxRoundSpans;
          const std::uint64_t round_start = round_traced ? obs::now_ns() : 0;
          std::uint64_t next_sent = eager_sent;
          for (WorkerUnit& u : units)
            next_sent += u.runner->split_open()
                             ? u.runner->run_round_boundary(round + 1, &boundary)
                             : u.runner->run_round(round + 1, &boundary);
          ++round;
          if (round_traced) {
            obs::TraceEvent& ev =
                record_local("worker.round", round_start, exec_span_id, obs::next_span_id());
            ev.args.emplace_back("round", static_cast<std::uint64_t>(round));
            ev.args.emplace_back("sent", next_sent);
          }
          sent = next_sent;
          advance = true;
          break;
        }
        case CongestMsg::kCollect: {
          for (const WorkerUnit& u : units)
            if (u.runner->split_open())
              throw NetError("congest: Collect arrived while a pipelined round was in flight");
          for (WorkerUnit& u : units) u.runner->finish();
          for (const WorkerUnit& u : units) {
            frame.clear();
            put_head(frame, CongestMsg::kOutputs);
            net::put_u32(frame, static_cast<std::uint32_t>(u.lo));
            net::put_u32(frame, static_cast<std::uint32_t>(u.hi));
            u.prog->encode_outputs(u.lo, u.hi, frame);
            pipe.send_frame(std::move(frame));
            frame = {};
          }
          if (trace.tracing) {
            obs::TraceEvent& ev =
                record_local("worker.execute", exec_start, trace.parent_span, exec_span_id);
            ev.args.emplace_back("rounds", rounds);
            ev.args.emplace_back("messages", messages);
            frame.clear();
            put_head(frame, CongestMsg::kTraceData);
            obs::encode_trace_events(frame, local_events);
            pipe.send_frame(std::move(frame));
            frame = {};
          }
          pipe.flush();
          return;
        }
        case CongestMsg::kRestore: {
          // Adopt a dead worker's range mid-phase: rebuild it to the end of
          // the previous round, run the current round, and report the
          // contribution the dead owner never delivered.
          if (r.u32() != 0)
            throw NetError("congest: finish-mode Restore arrived mid-phase");
          if (r.u32() != graph_id)
            throw NetError("congest: mid-phase Restore names a different graph");
          auto [unit, next] = build_restored_unit(st, wg, r);
          if (next != round)
            throw NetError("congest: Restore replay does not reach the current round");
          std::vector<BspRunner::RemoteSend> adopted_boundary;
          const std::uint64_t adopted_sent = unit.runner->run_round(round, &adopted_boundary);
          messages += adopted_sent;
          pipe.send_round_done(round, adopted_sent, to_wire(adopted_boundary));
          WorkerRange adopted;
          adopted.lo = unit.lo;
          adopted.hi = unit.hi;
          adopted.interior = interior_mask(wg.g, unit.lo, unit.hi);
          wg.ranges.push_back(std::move(adopted));
          units.push_back(std::move(unit));
          break;  // keep waiting for this round's verdict
        }
        default:
          throw NetError("congest: worker expected Round, Collect, or Restore mid-phase");
      }
    }
  }
}

}  // namespace

void run_congest_worker(Transport& coordinator) {
  run_congest_worker(coordinator, WorkerOptions{});
}

void run_congest_worker(Transport& coordinator, const WorkerOptions& options) {
  WorkerState st(coordinator, options);
  {
    std::vector<std::uint8_t> hello;
    put_head(hello, CongestMsg::kHello);
    net::put_u32(hello, kCongestProtoVersion);
    st.link.send(hello);
  }
  HeartbeatPump pump(st.link, options.heartbeat_ms);
  // Worker-lifetime comm pipeline: heartbeats bypass it (no codec state),
  // every other outbound frame flows through to keep codec FIFO order.
  CommPipe pipe(coordinator, st.link, st.codecs, options.pipeline);
  std::map<std::uint32_t, WorkerGraph> graphs;
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame = pipe.recv();
    if (!frame) return;  // orderly close = shutdown
    net::WireReader r(*frame);
    switch (head_type(r.u32())) {
      case CongestMsg::kLoadGraph: {
        const std::uint32_t id = r.u32();
        WorkerGraph wg = decode_graph(r);
        if (!graphs.emplace(id, std::move(wg)).second)
          throw NetError("congest: LoadGraph reuses live graph id " + std::to_string(id));
        break;
      }
      case CongestMsg::kDropGraph: {
        const std::uint32_t id = r.u32();
        if (graphs.erase(id) != 1)
          throw NetError("congest: DropGraph names unknown graph id " + std::to_string(id));
        break;
      }
      case CongestMsg::kStart: {
        const std::uint32_t id = r.u32();
        const auto it = graphs.find(id);
        if (it == graphs.end())
          throw NetError("congest: Start names unknown graph id " + std::to_string(id));
        const std::uint32_t program_id = r.u32();
        StartTrace trace;
        trace.node = r.u32();
        trace.tracing = (r.u32() & 1) != 0;
        trace.trace_id = r.u64();
        trace.parent_span = r.u64();
        const std::uint32_t exec_flags = r.u32();
        ExecConfig cfg;
        cfg.delta = (exec_flags & 1u) != 0;
        cfg.pipeline = options.pipeline;
        cfg.cp_interval = static_cast<int>(r.u32());
        // Any queued frames still reference the previous execution's codec
        // state — drain them before re-arming.
        pipe.flush();
        st.codecs.arm(it->second.g.num_edges(), cfg.delta);
        run_program(st, pipe, id, it->second, program_id, r.rest(), trace, cfg);
        break;
      }
      case CongestMsg::kRestore: {
        // Post-phase adoption: the owner died between quiescence and
        // Collect. Replay the whole range (checkpoint + log), run the
        // final silent round, and ship the outputs it never delivered.
        if (r.u32() != 1)
          throw NetError("congest: resume-mode Restore arrived outside a phase");
        const std::uint32_t id = r.u32();
        const auto it = graphs.find(id);
        if (it == graphs.end())
          throw NetError("congest: Restore names unknown graph id " + std::to_string(id));
        auto [unit, final_round] = build_restored_unit(st, it->second, r);
        std::vector<BspRunner::RemoteSend> discard;
        if (unit.runner->run_round(final_round, &discard) != 0)
          throw NetError("congest: restored range was not quiescent at the phase end");
        unit.runner->finish();
        std::vector<std::uint8_t> out;
        put_head(out, CongestMsg::kOutputs);
        net::put_u32(out, static_cast<std::uint32_t>(unit.lo));
        net::put_u32(out, static_cast<std::uint32_t>(unit.hi));
        unit.prog->encode_outputs(unit.lo, unit.hi, out);
        pipe.send_frame(std::move(out));
        WorkerRange adopted;
        adopted.lo = unit.lo;
        adopted.hi = unit.hi;
        adopted.interior = interior_mask(it->second.g, unit.lo, unit.hi);
        it->second.ranges.push_back(std::move(adopted));
        break;
      }
      case CongestMsg::kShutdown:
        return;
      default:
        throw NetError("congest: worker received an unexpected message type");
    }
  }
}

// ---------------------------------------------------------------------------
// In-process fleet.

CongestWorkerFleet::CongestWorkerFleet(int workers)
    : CongestWorkerFleet(workers, FleetOptions{}) {}

CongestWorkerFleet::CongestWorkerFleet(int workers, FleetOptions options) {
  DECK_CHECK(workers >= 1);
  std::vector<Transport*> raw;
  for (int w = 0; w < workers; ++w) {
    auto [coord, work] = loopback_pair();
    std::unique_ptr<Transport> coordinator_end = std::move(coord);
    if (static_cast<std::size_t>(w) < options.coordinator_faults.size() &&
        !options.coordinator_faults[static_cast<std::size_t>(w)].empty()) {
      coordinator_end = std::make_unique<FaultInjectingTransport>(
          std::move(coordinator_end), options.coordinator_faults[static_cast<std::size_t>(w)]);
    }
    coordinator_side_.push_back(std::move(coordinator_end));
    raw.push_back(coordinator_side_.back().get());
    threads_.emplace_back(
        [t = std::shared_ptr<Transport>(std::move(work)), wopts = options.worker] {
          try {
            run_congest_worker(*t, wopts);
          } catch (const NetError&) {
            // Coordinator-side faults close the transport under us and
            // scheduled kills close it themselves; a worker-side protocol
            // error (malformed frame) must also surface as a death, so
            // close unconditionally — closing twice is harmless.
            t->close();
          } catch (const std::exception&) {
            // Program-invariant failures (DECK_CHECK) must not
            // std::terminate the host process: close the link so the
            // coordinator observes a typed NetError instead.
            t->close();
          }
        });
  }
  hub_ = make_distributed_hub(std::move(raw), options.hub);
}

CongestWorkerFleet::~CongestWorkerFleet() {
  try {
    hub_->shutdown();
  } catch (...) {
  }
  for (auto& t : coordinator_side_) t->close();
  for (auto& th : threads_) th.join();
}

}  // namespace deck
