#include "congest/distributed_engine.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "congest/programs.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

using detail::BspRunner;

/// Coordinator-side model and barrier telemetry for the net engine.
struct NetEngineMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("congest.net.rounds");
  obs::Counter& messages = obs::Registry::global().counter("congest.net.messages");
  obs::Counter& boundary = obs::Registry::global().counter("congest.net.boundary_messages");
  obs::Histogram& barrier_wait_ns =
      obs::Registry::global().histogram("congest.net.barrier_wait_ns");

  static NetEngineMetrics& get() {
    static NetEngineMetrics m;
    return m;
  }
};

/// Cap on per-round trace spans per execution (matches the local engines).
constexpr int kNetMaxRoundSpans = 64;

void put_head(std::vector<std::uint8_t>& out, CongestMsg type) {
  net::put_u32(out, static_cast<std::uint32_t>(type));
}

void encode_packet(std::vector<std::uint8_t>& out, EdgeId e, std::uint8_t dir,
                   const Packet& msg) {
  net::put_u32(out, static_cast<std::uint32_t>(e));
  net::put_u32(out, dir);
  net::put_u32(out, msg.tag);
  net::put_u64(out, msg.a);
  net::put_u64(out, msg.b);
  net::put_u64(out, msg.c);
}

struct WirePacket {
  EdgeId edge;
  std::uint8_t dir;
  Packet msg;
};

WirePacket decode_packet(net::WireReader& r) {
  WirePacket p;
  p.edge = static_cast<EdgeId>(r.u32());
  const std::uint32_t dir = r.u32();
  if (dir > 1) throw NetError("congest: boundary message direction must be 0 or 1");
  p.dir = static_cast<std::uint8_t>(dir);
  p.msg.tag = static_cast<std::uint8_t>(r.u32());
  p.msg.a = r.u64();
  p.msg.b = r.u64();
  p.msg.c = r.u64();
  return p;
}

/// Contiguous vertex partition: worker w owns [lo(w), lo(w + 1)).
VertexId range_lo(int n, int workers, int w) {
  const int base = n / workers, rem = n % workers;
  return static_cast<VertexId>(w * base + std::min(w, rem));
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator side.

DistributedEngineHub::DistributedEngineHub(std::vector<Transport*> workers)
    : workers_(std::move(workers)) {
  DECK_CHECK_MSG(!workers_.empty(), "distributed engine needs at least one worker");
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const std::vector<std::uint8_t> frame = net::recv_expected(*workers_[w], "Hello");
    net::WireReader r(frame);
    if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kHello)
      throw NetError("congest: worker " + std::to_string(w) + " did not open with Hello");
    const std::uint32_t version = r.u32();
    if (version != kCongestProtoVersion)
      throw NetError("congest: worker " + std::to_string(w) + " speaks protocol version " +
                     std::to_string(version) + ", coordinator speaks " +
                     std::to_string(kCongestProtoVersion));
  }
}

DistributedEngineHub::~DistributedEngineHub() {
  try {
    shutdown();
  } catch (...) {
    // Destructor: a dead worker cannot be shut down any harder.
  }
}

void DistributedEngineHub::shutdown() {
  if (down_) return;
  down_ = true;
  std::vector<std::uint8_t> frame;
  put_head(frame, CongestMsg::kShutdown);
  for (Transport* t : workers_) t->send(frame);
}

namespace {

class DistributedEngine final : public Engine {
 public:
  DistributedEngine(DistributedEngineHub& hub, const Graph& g, std::uint32_t graph_id)
      : hub_(&hub), g_(&g), graph_id_(graph_id) {
    const int n = g.num_vertices();
    const int workers = hub.num_workers();
    lows_.reserve(static_cast<std::size_t>(workers) + 1);
    for (int w = 0; w <= workers; ++w) lows_.push_back(range_lo(n, workers, w));
    // The header + edge list is identical for every worker; only the
    // trailing owned-range pair differs, so encode the shared prefix once.
    std::vector<std::uint8_t> frame;
    put_head(frame, CongestMsg::kLoadGraph);
    net::put_u32(frame, graph_id_);
    net::put_u32(frame, static_cast<std::uint32_t>(n));
    net::put_u32(frame, static_cast<std::uint32_t>(g.num_edges()));
    for (const Edge& e : g.edges()) {
      net::put_u32(frame, static_cast<std::uint32_t>(e.u));
      net::put_u32(frame, static_cast<std::uint32_t>(e.v));
      net::put_u64(frame, static_cast<std::uint64_t>(e.w));
    }
    const std::size_t shared_bytes = frame.size();
    for (int w = 0; w < workers; ++w) {
      frame.resize(shared_bytes);
      net::put_u32(frame, static_cast<std::uint32_t>(lows_[static_cast<std::size_t>(w)]));
      net::put_u32(frame, static_cast<std::uint32_t>(lows_[static_cast<std::size_t>(w) + 1]));
      hub_->worker(w).send(frame);
    }
  }

  ~DistributedEngine() override {
    if (hub_->is_down()) return;
    try {
      std::vector<std::uint8_t> frame;
      put_head(frame, CongestMsg::kDropGraph);
      net::put_u32(frame, graph_id_);
      for (int w = 0; w < hub_->num_workers(); ++w) hub_->worker(w).send(frame);
    } catch (...) {
      // Destructor: the worker that died already surfaced its NetError.
    }
  }

  std::string name() const override { return "net"; }

  ExecStats execute(VertexProgram& prog) override {
    DECK_CHECK_MSG(!hub_->is_down(), "distributed engine used after shutdown");
    const int workers = hub_->num_workers();
    // The coordinator-side program instance validates inputs and hosts the
    // collected outputs; all stepping happens on the workers.
    prog.setup(*g_);

    // The execute span's context rides in Start; workers parent their spans
    // under it and ship them back as kTraceData, merging every worker's
    // timeline under this one node in the coordinator's trace.
    obs::Span exec_span("net.execute");
    const bool trace_on = exec_span.live();
    const obs::TraceContext ctx =
        trace_on ? exec_span.context() : obs::TraceContext{};

    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> spec;
    prog.encode_spec(spec);
    for (int w = 0; w < workers; ++w) {
      frame.clear();
      put_head(frame, CongestMsg::kStart);
      net::put_u32(frame, graph_id_);
      net::put_u32(frame, prog.program_id());
      net::put_u32(frame, static_cast<std::uint32_t>(w) + 1);  // worker node id (0 = coordinator)
      net::put_u32(frame, trace_on ? 1 : 0);
      net::put_u64(frame, ctx.trace_id);
      net::put_u64(frame, ctx.span_id);
      net::put_bytes(frame, spec);
      hub_->worker(w).send(frame);
    }

    ExecStats stats;
    std::uint64_t boundary_total = 0;
    std::vector<std::vector<std::uint8_t>> deliveries(static_cast<std::size_t>(workers));
    for (int round = 1;; ++round) {
      std::optional<obs::Span> round_span;
      if (trace_on && round <= kNetMaxRoundSpans) {
        round_span.emplace("round");
        round_span->arg("round", static_cast<std::uint64_t>(round));
      }
      // Barrier: collect every worker's round result, then route boundary
      // messages to the owner of each receiving endpoint.
      std::uint64_t total = 0;
      for (auto& d : deliveries) d.clear();
      std::vector<std::uint32_t> delivery_counts(static_cast<std::size_t>(workers), 0);
      const std::uint64_t barrier_start = obs::enabled() ? obs::now_ns() : 0;
      for (int w = 0; w < workers; ++w) {
        const std::vector<std::uint8_t> done =
            net::recv_expected(hub_->worker(w), "RoundDone");
        net::WireReader r(done);
        if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kRoundDone)
          throw NetError("congest: expected RoundDone from worker " + std::to_string(w));
        total += r.u64();
        const std::uint32_t boundary = r.u32();
        boundary_total += boundary;
        for (std::uint32_t i = 0; i < boundary; ++i) {
          const WirePacket p = decode_packet(r);
          if (p.edge < 0 || p.edge >= g_->num_edges())
            throw NetError("congest: boundary message on a bogus edge id");
          const Edge& e = g_->edge(p.edge);
          const VertexId to = p.dir == 0 ? e.v : e.u;
          const auto owner = static_cast<int>(
              std::upper_bound(lows_.begin(), lows_.end(), to) - lows_.begin() - 1);
          DECK_CHECK(owner >= 0 && owner < workers);
          encode_packet(deliveries[static_cast<std::size_t>(owner)], p.edge, p.dir, p.msg);
          ++delivery_counts[static_cast<std::size_t>(owner)];
        }
      }
      if (obs::enabled())
        NetEngineMetrics::get().barrier_wait_ns.observe(obs::now_ns() - barrier_start);
      if (round_span) round_span->arg("messages", total);

      if (total == 0) break;
      stats.rounds += 1;
      stats.messages += total;
      for (int w = 0; w < workers; ++w) {
        frame.clear();
        put_head(frame, CongestMsg::kRound);
        net::put_u32(frame, delivery_counts[static_cast<std::size_t>(w)]);
        net::put_bytes(frame, deliveries[static_cast<std::size_t>(w)]);
        hub_->worker(w).send(frame);
      }
    }

    frame.clear();
    put_head(frame, CongestMsg::kCollect);
    for (int w = 0; w < hub_->num_workers(); ++w) hub_->worker(w).send(frame);
    for (int w = 0; w < workers; ++w) {
      const std::vector<std::uint8_t> outs =
          net::recv_expected(hub_->worker(w), "Outputs");
      net::WireReader r(outs);
      if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kOutputs)
        throw NetError("congest: expected Outputs from worker " + std::to_string(w));
      prog.decode_outputs(lows_[static_cast<std::size_t>(w)],
                          lows_[static_cast<std::size_t>(w) + 1], r.rest());
    }

    if (trace_on) {
      // Workers ship their local span buffers only when asked (Start's trace
      // flags), so this wait is unconditional given trace_on.
      for (int w = 0; w < workers; ++w) {
        const std::vector<std::uint8_t> td =
            net::recv_expected(hub_->worker(w), "TraceData");
        net::WireReader r(td);
        if (static_cast<CongestMsg>(r.u32()) != CongestMsg::kTraceData)
          throw NetError("congest: expected TraceData from worker " + std::to_string(w));
        std::vector<obs::TraceEvent> events;
        try {
          events = obs::decode_trace_events(r.rest());
        } catch (const std::exception& e) {
          throw NetError(std::string("congest: worker ") + std::to_string(w) +
                         " shipped malformed trace data: " + e.what());
        }
        // Stamp the pid authoritatively — the merged trace's process lanes
        // must reflect the coordinator's fleet numbering, whatever a worker
        // put in the field.
        for (obs::TraceEvent& ev : events) ev.pid = static_cast<std::uint32_t>(w) + 1;
        obs::TraceSink::global().record_batch(std::move(events));
      }
    }

    if (obs::enabled()) {
      NetEngineMetrics& m = NetEngineMetrics::get();
      m.rounds.add(stats.rounds);
      m.messages.add(stats.messages);
      m.boundary.add(boundary_total);
    }
    exec_span.arg("rounds", stats.rounds);
    exec_span.arg("messages", stats.messages);
    exec_span.arg("boundary_messages", boundary_total);
    return stats;
  }

 private:
  DistributedEngineHub* hub_;
  const Graph* g_;
  std::uint32_t graph_id_;
  std::vector<VertexId> lows_;
};

}  // namespace

std::unique_ptr<Engine> DistributedEngineHub::engine_for(const Graph& g) {
  DECK_CHECK_MSG(!down_, "distributed engine hub used after shutdown");
  return std::make_unique<DistributedEngine>(*this, g, next_graph_id_++);
}

std::shared_ptr<DistributedEngineHub> make_distributed_hub(std::vector<Transport*> workers) {
  return std::make_shared<DistributedEngineHub>(std::move(workers));
}

// ---------------------------------------------------------------------------
// Worker side.

namespace {

struct WorkerGraph {
  Graph g;
  VertexId lo = 0, hi = 0;
};

WorkerGraph decode_graph(net::WireReader& r) {
  WorkerGraph wg;
  const std::uint32_t n = r.u32();
  const std::uint32_t m = r.u32();
  if (m > r.remaining() / 16) throw NetError("congest: LoadGraph edge list longer than frame");
  wg.g = Graph(static_cast<int>(n));
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(r.u32());
    const auto v = static_cast<VertexId>(r.u32());
    const auto w = static_cast<Weight>(r.u64());
    if (u < 0 || v < 0 || u >= static_cast<VertexId>(n) || v >= static_cast<VertexId>(n))
      throw NetError("congest: LoadGraph edge endpoint out of range");
    wg.g.add_edge(u, v, w);
  }
  wg.lo = static_cast<VertexId>(r.u32());
  wg.hi = static_cast<VertexId>(r.u32());
  if (wg.lo < 0 || wg.hi < wg.lo || wg.hi > static_cast<VertexId>(n))
    throw NetError("congest: LoadGraph vertex range is malformed");
  return wg;
}

/// Trace context a Start message carries for the execution it launches.
struct StartTrace {
  std::uint32_t node = 0;       // this worker's process lane in the merged trace
  bool tracing = false;         // Start's trace flags, bit 0
  std::uint64_t trace_id = 0;   // coordinator's trace
  std::uint64_t parent_span = 0;  // coordinator's net.execute span
};

/// Executes one Start to quiescence; returns after shipping Outputs (and,
/// when the Start asked for tracing, the worker's span buffer as
/// kTraceData).
///
/// Worker spans are built by hand into a *local* vector rather than through
/// obs::Span and the global TraceSink: with the in-process fleet, workers
/// share the coordinator's process, and sink-recorded events would surface
/// twice (once drained locally, once shipped back). The local buffer keeps
/// exactly one copy — the shipped one — on every deployment shape.
void run_program(Transport& coordinator, const WorkerGraph& wg, std::uint32_t program_id,
                 std::span<const std::uint8_t> spec, const StartTrace& trace) {
  const std::unique_ptr<VertexProgram> prog = decode_congest_program(program_id, spec);
  BspRunner runner(wg.g, wg.lo, wg.hi, nullptr);
  runner.start(*prog);

  std::vector<obs::TraceEvent> local_events;
  const std::uint64_t exec_span_id = trace.tracing ? obs::next_span_id() : 0;
  const std::uint64_t exec_start = trace.tracing ? obs::now_ns() : 0;
  const auto record_local = [&](const char* name, std::uint64_t start, std::uint64_t parent,
                                std::uint64_t span_id) -> obs::TraceEvent& {
    obs::TraceEvent ev;
    ev.name = name;
    ev.ts_ns = start;
    ev.dur_ns = obs::now_ns() - start;
    ev.pid = trace.node;
    ev.trace_id = trace.trace_id;
    ev.span_id = span_id;
    ev.parent_id = parent;
    local_events.push_back(std::move(ev));
    return local_events.back();
  };

  std::vector<BspRunner::RemoteSend> boundary;
  std::vector<std::uint8_t> frame;
  std::uint64_t rounds = 0, messages = 0;
  for (int round = 1;; ++round) {
    boundary.clear();
    const bool round_traced = trace.tracing && round <= kNetMaxRoundSpans;
    const std::uint64_t round_start = round_traced ? obs::now_ns() : 0;
    const std::uint64_t sent = runner.run_round(round, &boundary);
    if (round_traced) {
      obs::TraceEvent& ev =
          record_local("worker.round", round_start, exec_span_id, obs::next_span_id());
      ev.args.emplace_back("round", static_cast<std::uint64_t>(round));
      ev.args.emplace_back("sent", sent);
    }
    rounds += sent != 0 ? 1 : 0;
    messages += sent;
    frame.clear();
    put_head(frame, CongestMsg::kRoundDone);
    net::put_u64(frame, sent);
    net::put_u32(frame, static_cast<std::uint32_t>(boundary.size()));
    for (const BspRunner::RemoteSend& s : boundary) encode_packet(frame, s.edge, s.dir, s.msg);
    coordinator.send(frame);

    const std::vector<std::uint8_t> reply = net::recv_expected(coordinator, "Round/Collect");
    net::WireReader r(reply);
    const auto type = static_cast<CongestMsg>(r.u32());
    if (type == CongestMsg::kCollect) {
      runner.finish();
      frame.clear();
      put_head(frame, CongestMsg::kOutputs);
      prog->encode_outputs(wg.lo, wg.hi, frame);
      coordinator.send(frame);
      if (trace.tracing) {
        obs::TraceEvent& ev =
            record_local("worker.execute", exec_start, trace.parent_span, exec_span_id);
        ev.args.emplace_back("rounds", rounds);
        ev.args.emplace_back("messages", messages);
        frame.clear();
        put_head(frame, CongestMsg::kTraceData);
        obs::encode_trace_events(frame, local_events);
        coordinator.send(frame);
      }
      return;
    }
    if (type != CongestMsg::kRound)
      throw NetError("congest: worker expected Round or Collect mid-phase");
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const WirePacket p = decode_packet(r);
      if (p.edge < 0 || p.edge >= wg.g.num_edges())
        throw NetError("congest: Round delivery on a bogus edge id");
      runner.deliver_remote(round, p.edge, p.dir, p.msg);
    }
  }
}

}  // namespace

void run_congest_worker(Transport& coordinator) {
  {
    std::vector<std::uint8_t> hello;
    put_head(hello, CongestMsg::kHello);
    net::put_u32(hello, kCongestProtoVersion);
    coordinator.send(hello);
  }
  std::map<std::uint32_t, WorkerGraph> graphs;
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame = coordinator.recv();
    if (!frame) return;  // orderly close = shutdown
    net::WireReader r(*frame);
    switch (static_cast<CongestMsg>(r.u32())) {
      case CongestMsg::kLoadGraph: {
        const std::uint32_t id = r.u32();
        WorkerGraph wg = decode_graph(r);
        if (!graphs.emplace(id, std::move(wg)).second)
          throw NetError("congest: LoadGraph reuses live graph id " + std::to_string(id));
        break;
      }
      case CongestMsg::kDropGraph: {
        const std::uint32_t id = r.u32();
        if (graphs.erase(id) != 1)
          throw NetError("congest: DropGraph names unknown graph id " + std::to_string(id));
        break;
      }
      case CongestMsg::kStart: {
        const std::uint32_t id = r.u32();
        const auto it = graphs.find(id);
        if (it == graphs.end())
          throw NetError("congest: Start names unknown graph id " + std::to_string(id));
        const std::uint32_t program_id = r.u32();
        StartTrace trace;
        trace.node = r.u32();
        trace.tracing = (r.u32() & 1) != 0;
        trace.trace_id = r.u64();
        trace.parent_span = r.u64();
        run_program(coordinator, it->second, program_id, r.rest(), trace);
        break;
      }
      case CongestMsg::kShutdown:
        return;
      default:
        throw NetError("congest: worker received an unexpected message type");
    }
  }
}

// ---------------------------------------------------------------------------
// In-process fleet.

CongestWorkerFleet::CongestWorkerFleet(int workers) {
  DECK_CHECK(workers >= 1);
  std::vector<Transport*> raw;
  for (int w = 0; w < workers; ++w) {
    auto [coord, work] = loopback_pair();
    coordinator_side_.push_back(std::move(coord));
    raw.push_back(coordinator_side_.back().get());
    threads_.emplace_back([t = std::shared_ptr<Transport>(std::move(work))] {
      try {
        run_congest_worker(*t);
      } catch (const NetError&) {
        // Coordinator-side faults close the transport under us; the
        // coordinator surfaces the error.
      } catch (const std::exception&) {
        // Program-invariant failures (DECK_CHECK) must not std::terminate
        // the host process: close the link so the coordinator observes a
        // typed NetError instead.
        t->close();
      }
    });
  }
  hub_ = make_distributed_hub(std::move(raw));
}

CongestWorkerFleet::~CongestWorkerFleet() {
  try {
    hub_->shutdown();
  } catch (...) {
  }
  for (auto& t : coordinator_side_) t->close();
  for (auto& th : threads_) th.join();
}

}  // namespace deck
