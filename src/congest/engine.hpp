#pragma once

// Pluggable CONGEST execution engine.
//
// A primitive is expressed as a VertexProgram: per-vertex state plus a
// synchronous step function. Each round, every awake vertex reads the
// messages delivered over its incident edges (sent by its neighbors in the
// previous round), updates its own state, and may send at most one Packet
// per incident edge. An Engine drives the program to quiescence — the first
// round in which no vertex sends ends the execution — and reports the exact
// number of rounds and messages that moved, which the Network charges.
//
// Determinism contract (the engine-identity property): a vertex's inbox is
// ordered by its adjacency slot of the arriving edge, each directed edge
// carries at most one packet per round, and step(v) may only touch v's own
// state. Under that contract every backend produces bit-identical program
// outputs and counters:
//   * SequentialEngine  — single-threaded reference execution.
//   * ParallelEngine    — vertices partitioned over a shared
//     support/ThreadPool with a barrier per round; per-directed-edge
//     mailboxes have a unique writer, so no thread count changes anything.
//   * DistributedEngine — vertex ranges owned by worker processes over
//     src/net/Transport (see congest/distributed_engine.hpp).
//
// An EngineHub is the backend factory shared by a pipeline: algorithms that
// build internal sub-Networks (thurimella, kecss levels, tap fragment
// forcing) create their engines through the parent Network's hub, so one
// `--engine` choice rides through every layer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

class ThreadPool;

/// One CONGEST message in flight: an O(log n)-bit word triple plus a small
/// program-defined tag (flood / item / end-of-stream ...).
struct Packet {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint8_t tag = 0;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// One delivered message: the sending neighbor, the edge it arrived on, and
/// the payload. Inboxes are ordered by the receiver's adjacency slot.
struct Delivery {
  VertexId from = kNoVertex;
  EdgeId edge = kNoEdge;
  Packet msg;
};

/// Per-step send interface handed to VertexProgram::step. Bound to the
/// stepping vertex: sends are validated against its incident edges.
class Outbox {
 public:
  virtual ~Outbox() = default;

  /// Ships `msg` over edge `e` to the far endpoint `to` this round. At most
  /// one send per incident edge per round; `e` must join the stepping vertex
  /// to `to`.
  virtual void send(VertexId to, EdgeId e, const Packet& msg) = 0;

  /// Requests a step next round even if no message arrives (pipelines that
  /// emit on consecutive rounds without inbound traffic).
  virtual void stay_awake() = 0;
};

/// A synchronous per-vertex message-passing program. State lives inside the
/// program object as per-vertex slots; step(v) may read shared immutable
/// inputs but write only v's slots (the parallel backend steps vertices
/// concurrently). Programs must be send-continuous: once no vertex sends in
/// a round, none may ever send again — the engine treats the first silent
/// round as termination.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Wire identifier for the distributed backend's program registry.
  virtual std::uint32_t program_id() const = 0;

  /// One-time local precomputation (port maps, children lists) before round
  /// 1. Called by every executor with the graph it runs on.
  virtual void setup(const Graph& g) = 0;

  /// Whether v takes a step in round 1 unprompted.
  virtual bool starts_active(VertexId v) const = 0;

  /// One synchronous step of v at `round` (1-based): `inbox` holds the
  /// messages sent to v in the previous round, ordered by v's adjacency
  /// slot.
  virtual void step(VertexId v, int round, std::span<const Delivery> inbox, Outbox& out) = 0;

  /// Post-quiescence hook for the vertex range an executor owns (invariant
  /// checks, output finalization). Default: nothing.
  virtual void finish_range(VertexId begin, VertexId end);

  /// Serializes the full program input (all vertices) for shipping to
  /// workers.
  virtual void encode_spec(std::vector<std::uint8_t>& out) const = 0;

  /// Serializes the per-vertex outputs for [begin, end) (worker side).
  virtual void encode_outputs(VertexId begin, VertexId end,
                              std::vector<std::uint8_t>& out) const = 0;

  /// Absorbs the per-vertex outputs for [begin, end) shipped by a worker
  /// (coordinator side). `bytes` is exactly one encode_outputs payload.
  virtual void decode_outputs(VertexId begin, VertexId end,
                              std::span<const std::uint8_t> bytes) = 0;

  /// Serializes the *mutable* per-vertex execution state for [begin, end) —
  /// everything step() writes, nothing setup() derives from the spec. The
  /// checkpoint/restore path of the distributed engine requires
  /// decode_state(encode_state(...)) on a freshly setup() program to
  /// reproduce the exact mid-phase state, byte for byte and independent of
  /// container iteration order. Default: no mutable state (stateless range).
  virtual void encode_state(VertexId begin, VertexId end, std::vector<std::uint8_t>& out) const;

  /// Restores the state encode_state captured for [begin, end) into this
  /// program (which must have completed setup() on the same graph/spec).
  virtual void decode_state(VertexId begin, VertexId end, std::span<const std::uint8_t> bytes);
};

/// Exact execution cost of one program run.
struct ExecStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// One execution backend bound to one graph.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Backend name: "seq", "pool", or "net".
  virtual std::string name() const = 0;

  /// Runs `prog` to quiescence; program outputs are left inside `prog`.
  virtual ExecStats execute(VertexProgram& prog) = 0;
};

/// Backend factory shared across the Networks of one pipeline run.
class EngineHub {
 public:
  virtual ~EngineHub() = default;

  virtual std::string name() const = 0;

  /// Creates an engine bound to `g`. The graph must outlive the engine.
  virtual std::unique_ptr<Engine> engine_for(const Graph& g) = 0;

  /// Single-threaded exact simulation (the default everywhere).
  static std::shared_ptr<EngineHub> sequential();

  /// Vertices partitioned over a pool the hub owns (`threads` workers).
  static std::shared_ptr<EngineHub> parallel(int threads);

  /// Same, borrowing a caller-owned pool (shared with sketch recovery etc.).
  /// The pool must outlive the hub.
  static std::shared_ptr<EngineHub> parallel(ThreadPool* pool);
};

namespace detail {

/// Shared BSP execution core: steps the owned vertex range [lo, hi) of one
/// graph round by round over double-buffered per-directed-edge mailboxes.
/// Local engines own the whole range; the distributed worker owns a slice
/// and exchanges boundary messages through the hooks below.
class BspRunner {
 public:
  /// A send whose receiving endpoint lies outside the owned range.
  struct RemoteSend {
    EdgeId edge = kNoEdge;
    std::uint8_t dir = 0;  // 0: u -> v, 1: v -> u
    Packet msg;

    friend bool operator==(const RemoteSend&, const RemoteSend&) = default;
  };

  /// `interior` (optional, indexed by vertex id) marks the owned vertices
  /// whose neighborhoods lie entirely inside [lo, hi) — the set eligible
  /// for split-round eager stepping (run_round_interior). Empty disables
  /// the split API; run_round is unaffected either way.
  BspRunner(const Graph& g, VertexId lo, VertexId hi, ThreadPool* pool,
            std::vector<char> interior = {});

  /// Binds the program: setup() plus the round-1 active set.
  void start(VertexProgram& prog);

  /// Binds an already-setup() program without touching its state — the
  /// restore path, where the program was rebuilt from its spec and is about
  /// to absorb a checkpoint (or activate_initial() for a round-0 restore).
  void attach(VertexProgram& prog);

  /// Marks the round-1 active set (starts_active over [lo, hi)). start() ==
  /// attach() + prog.setup() + activate_initial().
  void activate_initial();

  /// Captures the runner-side resume state right after the deliveries of
  /// `round` were applied: the vertices awake for round + 1, and the live
  /// mailbox slots (messages sent in `round` into [lo, hi), not yet read).
  /// Both lists come out deterministically ordered.
  void save_resume(int round, std::vector<VertexId>& awake_out,
                   std::vector<RemoteSend>& pending_out) const;

  /// Reinstates save_resume() state on a fresh runner whose program state
  /// was already restored: after this call run_round(round + 1, ...)
  /// continues the execution exactly where the checkpoint left it.
  void restore_resume(int round, std::span<const VertexId> awake,
                      std::span<const RemoteSend> pending);

  /// Runs one synchronous round over the awake owned vertices. Local sends
  /// are delivered next round; sends leaving the range are appended to
  /// `remote_out` (must be non-null when the range is a strict slice).
  /// Returns the total number of sends, local and remote.
  std::uint64_t run_round(int round, std::vector<RemoteSend>* remote_out);

  /// Splits round `round` for comm/compute overlap: steps the interior
  /// part of the round's active set now (interior vertices can neither
  /// receive boundary deliveries nor produce remote sends, so their steps
  /// commute with the round-(round-1) boundary exchange still in flight)
  /// and parks the rest. The split stays open until run_round_boundary.
  /// Returns the sends of the interior part.
  std::uint64_t run_round_interior(int round, std::vector<RemoteSend>* remote_out);

  /// Completes a split round: steps the parked boundary vertices plus
  /// everything boundary deliveries woke since the split opened, closing
  /// the split. run_round_interior + deliveries + run_round_boundary is
  /// schedule-identical to deliveries + run_round. Returns the sends of
  /// the boundary part.
  std::uint64_t run_round_boundary(int round, std::vector<RemoteSend>* remote_out);

  /// Whether a split round is in flight (checkpoints and collects are
  /// illegal until run_round_boundary closes it).
  bool split_open() const { return split_open_; }

  /// Applies one boundary message sent in `round` by a remote owner; must be
  /// called after run_round(round, ...) and before run_round(round + 1, ...).
  void deliver_remote(int round, EdgeId e, std::uint8_t dir, const Packet& msg);

  /// Post-quiescence program hook for the owned range.
  void finish();

 private:
  const Graph* g_;
  VertexId lo_, hi_;
  ThreadPool* pool_;
  VertexProgram* prog_ = nullptr;

  // Double-buffered mailboxes: round r writes parity r & 1 and reads the
  // other buffer; a slot is live iff its stamp equals the sending round.
  std::vector<Packet> box_[2];
  std::vector<std::int32_t> stamp_[2];

  // awake_[v] != 0: v steps next round. Senders mark their receivers from
  // worker threads (relaxed stores of the same value — order-free) and
  // record the ids in per-chunk wake lists merged into woken_; the next
  // round sorts + dedupes the candidates against the flags, so the schedule
  // is identical to a full index scan for every thread count while staying
  // output-sensitive (O(active + wakes log wakes) per round, not O(n)).
  std::unique_ptr<std::atomic<std::uint8_t>[]> awake_;
  std::vector<VertexId> woken_;
  std::vector<VertexId> active_;

  /// Gathers this round's candidates out of woken_/awake_ into active_
  /// (sorted, deduped, flags cleared); steps active_ for `round`.
  void collect_candidates();
  std::uint64_t step_active(int round, std::vector<RemoteSend>* remote_out);

  // Split-round state: interior_[v] marks all-neighbors-owned vertices;
  // while a split is open the round's non-interior candidates wait in
  // boundary_pending_ and boundary-delivery wakes divert into
  // delivered_pending_ (awake_/woken_ meanwhile accumulate wakes for the
  // round *after* the split one — the two generations must not mix).
  std::vector<char> interior_;
  std::vector<VertexId> boundary_pending_;
  std::vector<VertexId> delivered_pending_;
  bool split_open_ = false;
};

}  // namespace detail

}  // namespace deck
