#include "congest/engine.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace deck {

void VertexProgram::finish_range(VertexId, VertexId) {}

void VertexProgram::encode_state(VertexId, VertexId, std::vector<std::uint8_t>&) const {}

void VertexProgram::decode_state(VertexId, VertexId, std::span<const std::uint8_t> bytes) {
  DECK_CHECK_MSG(bytes.empty(), "program declared no mutable state but a checkpoint has some");
}

namespace detail {

BspRunner::BspRunner(const Graph& g, VertexId lo, VertexId hi, ThreadPool* pool,
                     std::vector<char> interior)
    : g_(&g), lo_(lo), hi_(hi), pool_(pool), interior_(std::move(interior)) {
  const auto slots = 2 * static_cast<std::size_t>(g.num_edges());
  for (int p = 0; p < 2; ++p) {
    box_[p].resize(slots);
    stamp_[p].assign(slots, -1);  // rounds are 1-based: round 1 reads stamp 0, never -1
  }
  const auto n = static_cast<std::size_t>(g.num_vertices());
  awake_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::size_t v = 0; v < n; ++v) awake_[v].store(0, std::memory_order_relaxed);
}

void BspRunner::start(VertexProgram& prog) {
  attach(prog);
  prog.setup(*g_);
  activate_initial();
}

void BspRunner::attach(VertexProgram& prog) { prog_ = &prog; }

void BspRunner::activate_initial() {
  DECK_CHECK(prog_ != nullptr);
  for (VertexId v = lo_; v < hi_; ++v) {
    if (prog_->starts_active(v)) {
      awake_[static_cast<std::size_t>(v)].store(1, std::memory_order_relaxed);
      woken_.push_back(v);
    }
  }
}

void BspRunner::save_resume(int round, std::vector<VertexId>& awake_out,
                            std::vector<RemoteSend>& pending_out) const {
  DECK_CHECK_MSG(!split_open_, "checkpoint capture inside a split round");
  // Wake state lives in woken_ (with possible duplicates) gated by the
  // awake_ flags; sorting + deduping here yields the same canonical list
  // run_round would compute, without consuming it.
  awake_out = woken_;
  std::sort(awake_out.begin(), awake_out.end());
  awake_out.erase(std::unique(awake_out.begin(), awake_out.end()), awake_out.end());
  std::erase_if(awake_out, [&](VertexId v) {
    return awake_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed) == 0;
  });
  // Live mailboxes: slots written in `round` (parity round & 1, stamp ==
  // round) whose receiving endpoint this runner owns — exactly what
  // run_round(round + 1, ...) will read. Slot order is deterministic.
  const int wp = round & 1;
  pending_out.clear();
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    const Edge& ed = g_->edge(e);
    for (std::uint8_t dir = 0; dir <= 1; ++dir) {
      const VertexId to = dir == 0 ? ed.v : ed.u;
      if (to < lo_ || to >= hi_) continue;
      const std::size_t slot = 2 * static_cast<std::size_t>(e) + dir;
      if (stamp_[wp][slot] == round) pending_out.push_back({e, dir, box_[wp][slot]});
    }
  }
}

void BspRunner::restore_resume(int round, std::span<const VertexId> awake,
                               std::span<const RemoteSend> pending) {
  DECK_CHECK(prog_ != nullptr);
  for (VertexId v : awake) {
    DECK_CHECK_MSG(v >= lo_ && v < hi_, "checkpoint wakes a vertex outside the owned range");
    awake_[static_cast<std::size_t>(v)].store(1, std::memory_order_relaxed);
    woken_.push_back(v);
  }
  const int wp = round & 1;
  for (const RemoteSend& s : pending) {
    DECK_CHECK_MSG(s.edge >= 0 && s.edge < g_->num_edges() && s.dir <= 1,
                   "checkpoint mailbox entry addresses a bogus edge");
    const Edge& ed = g_->edge(s.edge);
    const VertexId to = s.dir == 0 ? ed.v : ed.u;
    DECK_CHECK_MSG(to >= lo_ && to < hi_,
                   "checkpoint mailbox entry delivered to the wrong owner");
    const std::size_t slot = 2 * static_cast<std::size_t>(s.edge) + s.dir;
    stamp_[wp][slot] = round;
    box_[wp][slot] = s.msg;
  }
}

namespace {

/// Outbox bound to one stepping vertex for one round. Writes go straight
/// into the runner's mailbox buffers: each directed edge has a unique
/// sending vertex, so concurrent steps never touch the same slot.
class RunnerOutbox final : public Outbox {
 public:
  RunnerOutbox(const Graph& g, VertexId self, int round, std::vector<Packet>& box,
               std::vector<std::int32_t>& stamp, std::atomic<std::uint8_t>* awake,
               std::vector<VertexId>& woken, VertexId lo, VertexId hi,
               std::vector<BspRunner::RemoteSend>* remote, std::mutex* remote_mu)
      : g_(&g),
        self_(self),
        round_(round),
        box_(&box),
        stamp_(&stamp),
        awake_(awake),
        woken_(&woken),
        lo_(lo),
        hi_(hi),
        remote_(remote),
        remote_mu_(remote_mu) {}

  void send(VertexId to, EdgeId e, const Packet& msg) override {
    const Edge& ed = g_->edge(e);
    DECK_CHECK_MSG((ed.u == self_ && ed.v == to) || (ed.v == self_ && ed.u == to),
                   "congest engine: send must cross one incident graph edge");
    const std::uint8_t dir = ed.u == self_ ? 0 : 1;
    const std::size_t slot = 2 * static_cast<std::size_t>(e) + dir;
    DECK_CHECK_MSG((*stamp_)[slot] != round_,
                   "congest engine: one message per directed edge per round");
    (*stamp_)[slot] = round_;
    ++sent_;
    if (to >= lo_ && to < hi_) {
      (*box_)[slot] = msg;
      awake_[static_cast<std::size_t>(to)].store(1, std::memory_order_relaxed);
      woken_->push_back(to);
    } else {
      DECK_CHECK_MSG(remote_ != nullptr, "congest engine: send leaves the owned vertex range");
      std::lock_guard<std::mutex> lock(*remote_mu_);
      remote_->push_back({e, dir, msg});
    }
  }

  void stay_awake() override {
    awake_[static_cast<std::size_t>(self_)].store(1, std::memory_order_relaxed);
    woken_->push_back(self_);
  }

  std::uint64_t sent() const { return sent_; }

 private:
  const Graph* g_;
  VertexId self_;
  int round_;
  std::vector<Packet>* box_;
  std::vector<std::int32_t>* stamp_;
  std::atomic<std::uint8_t>* awake_;
  std::vector<VertexId>* woken_;
  VertexId lo_, hi_;
  std::vector<BspRunner::RemoteSend>* remote_;
  std::mutex* remote_mu_;
  std::uint64_t sent_ = 0;
};

}  // namespace

void BspRunner::collect_candidates() {
  // The active list for this round: everything woken since the last round
  // (sends, stay_awake, boundary deliveries; starts_active for round 1).
  // Wake lists accumulate per stepping chunk in nondeterministic order, but
  // sorting + deduping against the awake_ flags yields exactly the ascending
  // schedule a full index scan would — for every backend and thread count —
  // at O(active + wakes log wakes) instead of O(n) per round.
  std::sort(woken_.begin(), woken_.end());
  active_.clear();
  for (std::size_t i = 0; i < woken_.size(); ++i) {
    const VertexId v = woken_[i];
    if (i > 0 && v == woken_[i - 1]) continue;
    auto& flag = awake_[static_cast<std::size_t>(v)];
    if (flag.load(std::memory_order_relaxed)) {
      flag.store(0, std::memory_order_relaxed);
      active_.push_back(v);
    }
  }
  woken_.clear();
}

std::uint64_t BspRunner::run_round(int round, std::vector<RemoteSend>* remote_out) {
  DECK_CHECK(prog_ != nullptr);
  DECK_CHECK_MSG(!split_open_, "run_round inside a split round");
  collect_candidates();
  return step_active(round, remote_out);
}

std::uint64_t BspRunner::run_round_interior(int round, std::vector<RemoteSend>* remote_out) {
  DECK_CHECK(prog_ != nullptr);
  DECK_CHECK_MSG(!split_open_, "run_round_interior inside a split round");
  DECK_CHECK_MSG(!interior_.empty(), "split rounds need the interior mask");
  collect_candidates();
  // Park the boundary candidates (ascending, like active_) and step only
  // the interior ones now. Flags were cleared for both halves — from here
  // until run_round_boundary, awake_/woken_ mean "wake for round + 1".
  boundary_pending_.clear();
  std::size_t keep = 0;
  for (const VertexId v : active_) {
    if (interior_[static_cast<std::size_t>(v)] != 0)
      active_[keep++] = v;
    else
      boundary_pending_.push_back(v);
  }
  active_.resize(keep);
  delivered_pending_.clear();
  split_open_ = true;
  return step_active(round, remote_out);
}

std::uint64_t BspRunner::run_round_boundary(int round, std::vector<RemoteSend>* remote_out) {
  DECK_CHECK(prog_ != nullptr);
  DECK_CHECK_MSG(split_open_, "run_round_boundary without an open split");
  // The parked candidates plus everything boundary deliveries woke since
  // the split opened — together exactly the non-interior slice of the
  // candidate set an unsplit run_round would have stepped. Flags are not
  // consulted: they now carry next round's wakes.
  active_ = boundary_pending_;
  active_.insert(active_.end(), delivered_pending_.begin(), delivered_pending_.end());
  std::sort(active_.begin(), active_.end());
  active_.erase(std::unique(active_.begin(), active_.end()), active_.end());
  boundary_pending_.clear();
  delivered_pending_.clear();
  split_open_ = false;
  return step_active(round, remote_out);
}

std::uint64_t BspRunner::step_active(int round, std::vector<RemoteSend>* remote_out) {
  if (active_.empty()) return 0;

  const int wp = round & 1;      // written this round
  const int rp = wp ^ 1;         // sent last round, read now
  std::mutex remote_mu;
  std::mutex woken_mu;
  std::atomic<std::uint64_t> sent_total{0};

  auto step_span = [&](std::size_t begin, std::size_t end) {
    std::vector<Delivery> inbox;
    std::vector<VertexId> woken_here;
    std::uint64_t sent_here = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId v = active_[i];
      inbox.clear();
      for (const Adj& a : g_->neighbors(v)) {
        const std::uint8_t dir = g_->edge(a.edge).u == a.to ? 0 : 1;
        const std::size_t slot = 2 * static_cast<std::size_t>(a.edge) + dir;
        if (stamp_[rp][slot] == round - 1) inbox.push_back({a.to, a.edge, box_[rp][slot]});
      }
      RunnerOutbox out(*g_, v, round, box_[wp], stamp_[wp], awake_.get(), woken_here, lo_, hi_,
                       remote_out, &remote_mu);
      prog_->step(v, round, inbox, out);
      sent_here += out.sent();
    }
    sent_total.fetch_add(sent_here, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(woken_mu);
    woken_.insert(woken_.end(), woken_here.begin(), woken_here.end());
  };

  if (pool_ != nullptr) {
    pool_->for_range(active_.size(), step_span);
  } else {
    step_span(0, active_.size());
  }
  return sent_total.load(std::memory_order_relaxed);
}

void BspRunner::deliver_remote(int round, EdgeId e, std::uint8_t dir, const Packet& msg) {
  DECK_CHECK_MSG(e >= 0 && e < g_->num_edges() && dir <= 1,
                 "congest engine: boundary message addresses a bogus edge");
  const Edge& ed = g_->edge(e);
  const VertexId to = dir == 0 ? ed.v : ed.u;
  DECK_CHECK_MSG(to >= lo_ && to < hi_,
                 "congest engine: boundary message delivered to the wrong owner");
  const int wp = round & 1;
  const std::size_t slot = 2 * static_cast<std::size_t>(e) + dir;
  DECK_CHECK_MSG(stamp_[wp][slot] != round,
                 "congest engine: duplicate boundary message on a directed edge");
  stamp_[wp][slot] = round;
  box_[wp][slot] = msg;
  if (split_open_) {
    // The delivery wakes `to` for round + 1, but awake_/woken_ are already
    // collecting wakes for round + 2 (the interior half of round + 1 ran).
    // Interior vertices have no remote neighbors, so `to` is necessarily a
    // boundary vertex — park the wake with the other pending candidates.
    delivered_pending_.push_back(to);
    return;
  }
  awake_[static_cast<std::size_t>(to)].store(1, std::memory_order_relaxed);
  woken_.push_back(to);
}

void BspRunner::finish() {
  DECK_CHECK(prog_ != nullptr);
  prog_->finish_range(lo_, hi_);
}

}  // namespace detail

namespace {

/// Model-cost counters shared by every engine backend.
struct EngineMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("congest.rounds");
  obs::Counter& messages = obs::Registry::global().counter("congest.messages");

  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

/// Per-round spans are capped per execution: long executions (BFS on a path
/// graph) would otherwise dominate the trace with thousands of slivers.
constexpr int kMaxRoundSpans = 64;

/// In-process execution over the full vertex range: sequential when `pool`
/// is null, partitioned over the pool otherwise. Identical schedules either
/// way — the pool only splits the deterministic active list.
class LocalEngine : public Engine {
 public:
  LocalEngine(const Graph& g, ThreadPool* pool, std::string name)
      : g_(&g), pool_(pool), name_(std::move(name)), span_name_(name_ + ".execute") {}

  std::string name() const override { return name_; }

  ExecStats execute(VertexProgram& prog) override {
    obs::Span exec_span(span_name_.c_str());
    detail::BspRunner runner(*g_, 0, g_->num_vertices(), pool_);
    runner.start(prog);
    ExecStats stats;
    for (int round = 1;; ++round) {
      std::uint64_t sent = 0;
      if (obs::tracing() && round <= kMaxRoundSpans) {
        obs::Span round_span("round");
        round_span.arg("round", static_cast<std::uint64_t>(round));
        sent = runner.run_round(round, nullptr);
        round_span.arg("messages", sent);
      } else {
        sent = runner.run_round(round, nullptr);
      }
      if (sent == 0) break;  // first silent round = quiescence
      stats.rounds += 1;
      stats.messages += sent;
    }
    runner.finish();
    if (obs::enabled()) {
      EngineMetrics::get().rounds.add(stats.rounds);
      EngineMetrics::get().messages.add(stats.messages);
    }
    exec_span.arg("rounds", stats.rounds);
    exec_span.arg("messages", stats.messages);
    return stats;
  }

 private:
  const Graph* g_;
  ThreadPool* pool_;
  std::string name_;
  std::string span_name_;
};

class SequentialHub final : public EngineHub {
 public:
  std::string name() const override { return "seq"; }
  std::unique_ptr<Engine> engine_for(const Graph& g) override {
    return std::make_unique<LocalEngine>(g, nullptr, "seq");
  }
};

class ParallelHub final : public EngineHub {
 public:
  explicit ParallelHub(int threads) : owned_(std::make_unique<ThreadPool>(threads)) {}
  explicit ParallelHub(ThreadPool* pool) : borrowed_(pool) {
    DECK_CHECK_MSG(pool != nullptr, "parallel engine hub needs a pool");
  }

  std::string name() const override { return "pool"; }
  std::unique_ptr<Engine> engine_for(const Graph& g) override {
    return std::make_unique<LocalEngine>(g, pool(), "pool");
  }

 private:
  ThreadPool* pool() const { return borrowed_ != nullptr ? borrowed_ : owned_.get(); }

  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* borrowed_ = nullptr;
};

}  // namespace

std::shared_ptr<EngineHub> EngineHub::sequential() { return std::make_shared<SequentialHub>(); }

std::shared_ptr<EngineHub> EngineHub::parallel(int threads) {
  return std::make_shared<ParallelHub>(threads);
}

std::shared_ptr<EngineHub> EngineHub::parallel(ThreadPool* pool) {
  return std::make_shared<ParallelHub>(pool);
}

}  // namespace deck
