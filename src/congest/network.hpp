#pragma once

// CONGEST model simulator core.
//
// The model (paper §1.3): the input graph *is* the communication network;
// computation proceeds in synchronous rounds; per round, each vertex may send
// one B-bit message over each incident edge, B = O(log n). Local computation
// is free. We fix the message budget at a few 64-bit payload words (ids +
// weight fit comfortably; weights are polynomial in n).
//
// Architecture: algorithms are decomposed into *primitives* (flooding,
// convergecast, pipelined keyed upcast, path downcast, per-edge exchange —
// see primitives.hpp), each a genuine per-vertex message-passing program
// executed on a pluggable Engine (engine.hpp): sequential exact simulation,
// vertices partitioned over a thread pool, or vertex ranges owned by worker
// processes over src/net/Transport. Phase sequencing between primitives is
// orchestrated by the algorithm driver (free, like local computation), but
// data only ever moves along edges inside primitive executions, so round and
// message counts equal those of a real execution — and are bit-identical
// across backends.
//
// Per-phase counters support the round-breakdown experiment (A2).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "congest/engine.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace deck {

class Network {
 public:
  /// Sequential engine (exact synchronous simulation) — the default that
  /// every seed call site keeps using unchanged.
  explicit Network(const Graph& g);

  /// Execution backend chosen by the caller: EngineHub::sequential(),
  /// EngineHub::parallel(...), or make_distributed_hub(...). Algorithms that
  /// build internal sub-Networks construct them with this hub so the choice
  /// rides through every layer.
  Network(const Graph& g, std::shared_ptr<EngineHub> hub);

  const Graph& graph() const { return *g_; }
  int n() const { return g_->num_vertices(); }

  /// The hub this network's engines come from (never null).
  const std::shared_ptr<EngineHub>& hub() const { return hub_; }

  /// The engine bound to this network's graph, created lazily on first use
  /// (a distributed hub ships the graph to its workers at that point).
  Engine& engine();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }

  /// Charges exactly-simulated cost (called by primitives).
  void charge(std::uint64_t rounds, std::uint64_t messages);

  /// Begins a named accounting phase; subsequent charges accrue to it. The
  /// previous phase (if any) is closed: its wall clock stops and its trace
  /// span (when tracing) is emitted.
  void begin_phase(const std::string& name);

  /// Closes the currently open phase without starting a new one. Safe to
  /// call when no phase is open. phases() entries only carry a final
  /// wall_ns once closed, so readers of the timing column call this first.
  void end_phase();

  struct PhaseStat {
    std::string name;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    /// Wall-clock duration via the obs clock (obs::now_ns), 0 while the
    /// phase is still open. Model costs stay in rounds/messages — wall_ns
    /// is host-side telemetry and never feeds the simulation.
    std::uint64_t wall_ns = 0;
  };
  const std::vector<PhaseStat>& phases() const { return phases_; }

  /// Resets counters and phases (graph and engine unchanged).
  void reset_counters();

 private:
  const Graph* g_;
  std::shared_ptr<EngineHub> hub_;
  std::unique_ptr<Engine> engine_;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::vector<PhaseStat> phases_;
  std::uint64_t phase_start_ns_ = 0;
  bool phase_open_ = false;
  // Open-phase trace span. All phases parent under the context that was
  // current at the *first* begin_phase (siblings on one timeline), not under
  // each other; the span name must outlive the span, hence the copy.
  std::string phase_span_name_;
  std::unique_ptr<obs::Span> phase_span_;
  bool have_phase_parent_ = false;
  obs::TraceContext phase_parent_;
};

}  // namespace deck
