#pragma once

// CONGEST model simulator core.
//
// The model (paper §1.3): the input graph *is* the communication network;
// computation proceeds in synchronous rounds; per round, each vertex may send
// one B-bit message over each incident edge, B = O(log n). Local computation
// is free. We fix the message budget at two 64-bit payload words (ids +
// weight fit comfortably; weights are polynomial in n).
//
// Architecture: algorithms are decomposed into *primitives* (flooding,
// convergecast, pipelined keyed upcast, path downcast, per-edge exchange —
// see primitives.hpp). Each primitive performs an exact synchronous
// simulation with per-edge single-message channels and charges the observed
// rounds/messages to the Network. Phase sequencing between primitives is
// orchestrated centrally (free, like local computation), but data only ever
// moves along edges inside primitives, so round and message counts equal
// those of a real execution.
//
// Per-phase counters support the round-breakdown experiment (A2).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// One CONGEST message: fixed two-word payload.
struct Msg {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Network {
 public:
  explicit Network(const Graph& g);

  const Graph& graph() const { return *g_; }
  int n() const { return g_->num_vertices(); }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }

  /// Charges exactly-simulated cost (called by primitives).
  void charge(std::uint64_t rounds, std::uint64_t messages);

  /// Begins a named accounting phase; subsequent charges accrue to it.
  void begin_phase(const std::string& name);

  struct PhaseStat {
    std::string name;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
  };
  const std::vector<PhaseStat>& phases() const { return phases_; }

  /// Resets counters and phases (graph unchanged).
  void reset_counters();

 private:
  const Graph* g_;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::vector<PhaseStat> phases_;
};

}  // namespace deck
