#pragma once

// Cycle space sampling (Pritchard–Thurimella, paper §5.1).
//
// A random b-bit circulation assigns every edge e of a 2-edge-connected
// graph H a label phi(e) such that (Corollary 5.3 / Lemma 5.4):
//   * {e, f} a cut pair  =>  phi(e) == phi(f)      (always), and
//   * phi(e) == phi(f)   =>  {e, f} a cut pair      (w.h.p., error 2^-b).
//
// Sampling: every non-tree edge of a spanning tree T of H draws a uniform
// b-bit string; each tree edge's label is the XOR of the labels of the
// non-tree edges covering it. The XOR is computed with one leaf-to-root
// scan: phi(v, p(v)) = XOR of phi over non-tree edges incident to the
// subtree under v — exactly the O(height) CONGEST scan of Theorem 4.2 [32].
//
// Labels carry up to 128 bits (one simulator message); the `bits` parameter
// truncates them for the false-positive-rate experiment (F5).

#include <cstdint>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "support/rng.hpp"

namespace deck {

struct BitLabel {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  BitLabel& operator^=(const BitLabel& o) {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
  friend BitLabel operator^(BitLabel a, const BitLabel& b) { return a ^= b; }
  bool operator==(const BitLabel&) const = default;
  bool operator<(const BitLabel& o) const { return hi != o.hi ? hi < o.hi : lo < o.lo; }
  bool is_zero() const { return lo == 0 && hi == 0; }

  /// Keeps only the low `bits` bits (1..128).
  BitLabel truncated(int bits) const;

  static BitLabel random(Rng& rng, int bits);
};

struct CycleSpace {
  /// Per host-edge label; zero for edges outside the sampled subgraph.
  std::vector<BitLabel> phi;
  int bits = 128;
};

/// Samples a random b-bit circulation of the subgraph selected by h_mask,
/// with spanning tree `t` (host edge ids; every selected non-tree edge draws
/// a label, tree edges get covering XORs). Purely sequential utility.
CycleSpace sample_circulation(const Graph& g, const std::vector<char>& h_mask,
                              const RootedTree& t, int bits, Rng& rng);

/// Distributed variant (Lemma 5.5): identical output; charges the O(height)
/// leaf-to-root scan (non-tree labels are drawn locally at the endpoint with
/// smaller id and shared over the edge in one round).
CycleSpace sample_circulation_distributed(Network& net, const std::vector<char>& h_mask,
                                          const RootedTree& t, int bits, Rng& rng);

/// All pairs {e, f} of selected edges with phi(e) == phi(f) — the label-
/// detected cut pair candidates (exact cut pairs w.h.p.; one-sided error).
std::vector<std::pair<EdgeId, EdgeId>> label_cut_pairs(const Graph& g,
                                                       const std::vector<char>& h_mask,
                                                       const CycleSpace& cs);

}  // namespace deck
