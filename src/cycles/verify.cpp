#include "cycles/verify.hpp"

#include <map>

#include "congest/primitives.hpp"
#include "cycles/cycle_space.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

struct Labels {
  CycleSpace cs;
  RootedTree tree;
};

Labels label_graph(Network& net, std::uint64_t seed, int bits) {
  const Graph& g = net.graph();
  Labels out;
  out.tree = distributed_bfs(net, 0);
  Rng rng(seed);
  std::vector<char> all(static_cast<std::size_t>(g.num_edges()), 1);
  out.cs = sample_circulation_distributed(net, all, out.tree, bits, rng);
  return out;
}

/// OR-convergecast charge for the verdict collection.
void verdict_round(Network& net, const RootedTree& tree) {
  net.charge(static_cast<std::uint64_t>(tree.height()) + 1,
             static_cast<std::uint64_t>(tree.num_vertices()));
}

}  // namespace

VerifyResult verify_2_edge_connected(Network& net, std::uint64_t seed, int bits) {
  const Graph& g = net.graph();
  const Labels l = label_graph(net, seed, bits);
  VerifyResult r;
  r.is_k_connected = true;
  // A bridge is a tree edge covered by no non-tree edge: phi == 0.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId t = l.tree.parent_edge(v);
    if (t == kNoEdge) continue;
    if (l.cs.phi[static_cast<std::size_t>(t)].is_zero()) {
      r.is_k_connected = false;
      r.witness = {t};
      break;
    }
  }
  verdict_round(net, l.tree);
  return r;
}

VerifyResult verify_3_edge_connected(Network& net, std::uint64_t seed, int bits) {
  const Graph& g = net.graph();
  const Labels l = label_graph(net, seed, bits);
  VerifyResult r;
  r.is_k_connected = true;
  std::map<BitLabel, EdgeId> seen;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const BitLabel& lab = l.cs.phi[static_cast<std::size_t>(e)];
    if (lab.is_zero()) {
      // Bridge (tree edge) or label collision with the empty circulation.
      r.is_k_connected = false;
      r.witness = {e};
      break;
    }
    auto [it, fresh] = seen.try_emplace(lab, e);
    if (!fresh) {
      r.is_k_connected = false;
      r.witness = {it->second, e};
      break;
    }
  }
  verdict_round(net, l.tree);
  return r;
}

}  // namespace deck
