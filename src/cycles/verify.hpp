#pragma once

// O(D)-round distributed verification of 2- and 3-edge-connectivity via
// cycle space sampling — the Pritchard–Thurimella application the paper
// highlights in §1.2/§5: "an O(D)-round algorithm for verifying if a graph
// is 2-edge-connected or 3-edge-connected".
//
// With a random b-bit circulation over a BFS tree of G:
//   * a tree edge t is a bridge            iff phi(t) == 0        (w.h.p.),
//   * {e, f} is a cut pair                 iff phi(e) == phi(f)   (w.h.p.),
// and the error is one-sided: a reported violation of size 1 is always a
// real bridge candidate set to re-check; a clean pass is correct w.h.p.

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace deck {

struct VerifyResult {
  bool is_k_connected = false;
  /// Witness edges of a small cut when verification fails (1 edge for a
  /// bridge, 2 for a cut pair). Empty on success.
  std::vector<EdgeId> witness;
};

/// Verifies 2-edge-connectivity of net.graph() (which must be connected).
/// Charges O(D) rounds. One-sided error 2^-bits per edge (pair).
VerifyResult verify_2_edge_connected(Network& net, std::uint64_t seed, int bits = 64);

/// Verifies 3-edge-connectivity; also fails on bridges. Charges O(D).
VerifyResult verify_3_edge_connected(Network& net, std::uint64_t seed, int bits = 64);

}  // namespace deck
