#include "cycles/cycle_space.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace deck {

BitLabel BitLabel::truncated(int bits) const {
  DECK_CHECK(bits >= 1 && bits <= 128);
  BitLabel t = *this;
  if (bits <= 64) {
    t.hi = 0;
    if (bits < 64) t.lo &= (1ULL << bits) - 1;
  } else if (bits < 128) {
    t.hi &= (1ULL << (bits - 64)) - 1;
  }
  return t;
}

BitLabel BitLabel::random(Rng& rng, int bits) {
  BitLabel l{rng(), rng()};
  return l.truncated(bits);
}

namespace {

CycleSpace compute_labels(const Graph& g, const std::vector<char>& h_mask, const RootedTree& t,
                          int bits, Rng& rng) {
  const int n = g.num_vertices();
  CycleSpace cs;
  cs.bits = bits;
  cs.phi.assign(static_cast<std::size_t>(g.num_edges()), BitLabel{});

  std::vector<char> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
  for (VertexId v = 0; v < n; ++v)
    if (t.parent_edge(v) != kNoEdge) is_tree[static_cast<std::size_t>(t.parent_edge(v))] = 1;

  // Non-tree edges draw uniform labels (deterministic order for
  // reproducibility: ascending edge id).
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h_mask[static_cast<std::size_t>(e)] || is_tree[static_cast<std::size_t>(e)]) continue;
    cs.phi[static_cast<std::size_t>(e)] = BitLabel::random(rng, bits);
  }

  // Leaf-to-root scan: accumulate the XOR of non-tree labels incident to
  // each subtree; that XOR is the label of the subtree's parent edge.
  std::vector<BitLabel> acc(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    for (const Adj& a : g.neighbors(v)) {
      if (!h_mask[static_cast<std::size_t>(a.edge)] || is_tree[static_cast<std::size_t>(a.edge)])
        continue;
      acc[static_cast<std::size_t>(v)] ^= cs.phi[static_cast<std::size_t>(a.edge)];
    }
  }
  const auto pre = t.preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const VertexId v = *it;
    const VertexId p = t.parent(v);
    if (p == kNoVertex) continue;
    cs.phi[static_cast<std::size_t>(t.parent_edge(v))] = acc[static_cast<std::size_t>(v)];
    acc[static_cast<std::size_t>(p)] ^= acc[static_cast<std::size_t>(v)];
  }
  return cs;
}

}  // namespace

CycleSpace sample_circulation(const Graph& g, const std::vector<char>& h_mask,
                              const RootedTree& t, int bits, Rng& rng) {
  return compute_labels(g, h_mask, t, bits, rng);
}

CycleSpace sample_circulation_distributed(Network& net, const std::vector<char>& h_mask,
                                          const RootedTree& t, int bits, Rng& rng) {
  CycleSpace cs = compute_labels(net.graph(), h_mask, t, bits, rng);
  // Charges: one round for non-tree endpoints to share their draw, then the
  // leaf-to-root scan (one 128-bit message per tree edge, height rounds).
  const auto n = static_cast<std::uint64_t>(net.graph().num_vertices());
  std::uint64_t non_tree = 0;
  for (EdgeId e = 0; e < net.graph().num_edges(); ++e)
    if (h_mask[static_cast<std::size_t>(e)]) ++non_tree;
  net.charge(static_cast<std::uint64_t>(t.height()) + 1, non_tree + (n - 1));
  return cs;
}

std::vector<std::pair<EdgeId, EdgeId>> label_cut_pairs(const Graph& g,
                                                       const std::vector<char>& h_mask,
                                                       const CycleSpace& cs) {
  std::map<BitLabel, std::vector<EdgeId>> groups;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h_mask[static_cast<std::size_t>(e)]) continue;
    groups[cs.phi[static_cast<std::size_t>(e)]].push_back(e);
  }
  std::vector<std::pair<EdgeId, EdgeId>> out;
  for (const auto& [label, edges] : groups) {
    for (std::size_t i = 0; i < edges.size(); ++i)
      for (std::size_t j = i + 1; j < edges.size(); ++j) out.emplace_back(edges[i], edges[j]);
  }
  return out;
}

}  // namespace deck
