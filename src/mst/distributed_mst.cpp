#include "mst/distributed_mst.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "graph/mst_seq.hpp"
#include "graph/union_find.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

/// Canonical MOE order key: (weight, edge id), strict total order.
struct MoeKey {
  Weight w = 0;
  EdgeId e = kNoEdge;
  bool operator<(const MoeKey& o) const { return w != o.w ? w < o.w : e < o.e; }
};

struct Stage1 {
  std::vector<int> frag;                    // per vertex: representative vertex id
  std::vector<VertexId> frag_parent;        // within-fragment tree (kNoVertex at frag roots)
  std::vector<EdgeId> frag_parent_edge;
  std::vector<VertexId> frag_root;          // per representative: comm-tree root vertex
  std::vector<std::vector<VertexId>> members;  // per representative
};

/// Height of each fragment's tree (indexed by representative); also fills
/// per-vertex depth for re-rooting floods.
std::vector<int> fragment_heights(const Stage1& s, int n) {
  std::vector<int> height(static_cast<std::size_t>(n), 0);
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  // Process vertices by walking up; memoize via repeated sweeps (fragment
  // trees are shallow). Simple approach: topological order by repeatedly
  // relaxing, O(n * h) worst; fragment sizes are O(sqrt n) so this is cheap.
  for (int rep = 0; rep < n; ++rep) {
    if (s.members[static_cast<std::size_t>(rep)].empty()) continue;
    for (VertexId v : s.members[static_cast<std::size_t>(rep)]) {
      int d = 0;
      VertexId x = v;
      while (s.frag_parent[static_cast<std::size_t>(x)] != kNoVertex) {
        x = s.frag_parent[static_cast<std::size_t>(x)];
        ++d;
      }
      depth[static_cast<std::size_t>(v)] = d;
      height[static_cast<std::size_t>(rep)] = std::max(height[static_cast<std::size_t>(rep)], d);
    }
  }
  return height;
}

/// Re-roots fragment `rep`'s tree at vertex u (BFS over the undirected view
/// of the fragment tree links).
void reroot_fragment(Stage1& s, int rep, VertexId u) {
  // Build undirected adjacency of the fragment tree.
  std::map<VertexId, std::vector<std::pair<VertexId, EdgeId>>> adj;
  for (VertexId v : s.members[static_cast<std::size_t>(rep)]) {
    const VertexId p = s.frag_parent[static_cast<std::size_t>(v)];
    if (p != kNoVertex) {
      const EdgeId pe = s.frag_parent_edge[static_cast<std::size_t>(v)];
      adj[v].push_back({p, pe});
      adj[p].push_back({v, pe});
    }
  }
  std::set<VertexId> seen{u};
  std::queue<VertexId> q;
  q.push(u);
  s.frag_parent[static_cast<std::size_t>(u)] = kNoVertex;
  s.frag_parent_edge[static_cast<std::size_t>(u)] = kNoEdge;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const auto& [w, e] : adj[v]) {
      if (seen.count(w)) continue;
      seen.insert(w);
      s.frag_parent[static_cast<std::size_t>(w)] = v;
      s.frag_parent_edge[static_cast<std::size_t>(w)] = e;
      q.push(w);
    }
  }
}

}  // namespace

MstResult distributed_mst(Network& net, const RootedTree& bfs) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  DECK_CHECK(n >= 1);
  const VertexId root = bfs.roots().empty() ? 0 : bfs.roots()[0];
  const CommForest bfs_forest = CommForest::from_tree(bfs);

  std::set<EdgeId> mst;
  Stage1 s;
  s.frag.resize(static_cast<std::size_t>(n));
  s.frag_parent.assign(static_cast<std::size_t>(n), kNoVertex);
  s.frag_parent_edge.assign(static_cast<std::size_t>(n), kNoEdge);
  s.frag_root.resize(static_cast<std::size_t>(n));
  s.members.assign(static_cast<std::size_t>(n), {});
  for (VertexId v = 0; v < n; ++v) {
    s.frag[static_cast<std::size_t>(v)] = v;
    s.frag_root[static_cast<std::size_t>(v)] = v;
    s.members[static_cast<std::size_t>(v)] = {v};
  }

  const int cap = std::max(2, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  const int phase_cap = 2 * static_cast<int>(std::ceil(std::log2(std::max(2, n)))) + 8;

  net.begin_phase("mst.stage1");
  for (int phase = 0; phase < phase_cap; ++phase) {
    // Active fragments: size < cap.
    std::vector<int> reps;
    for (int rep = 0; rep < n; ++rep)
      if (!s.members[static_cast<std::size_t>(rep)].empty()) reps.push_back(rep);
    if (static_cast<int>(reps.size()) <= 1) break;
    if (static_cast<int>(reps.size()) <= cap) break;

    std::vector<char> active(static_cast<std::size_t>(n), 0);
    bool any_active = false;
    for (int rep : reps) {
      if (static_cast<int>(s.members[static_cast<std::size_t>(rep)].size()) < cap) {
        active[static_cast<std::size_t>(rep)] = 1;
        any_active = true;
      }
    }
    if (!any_active) break;

    const auto heights = fragment_heights(s, n);
    int max_h = 0;
    std::uint64_t active_size_total = 0;
    for (int rep : reps) {
      max_h = std::max(max_h, heights[static_cast<std::size_t>(rep)]);
      if (active[static_cast<std::size_t>(rep)])
        active_size_total += s.members[static_cast<std::size_t>(rep)].size();
    }

    // MOE per active fragment (neighbour fragment-id exchange, then
    // convergecast to the fragment root, then decision broadcast).
    std::map<int, std::pair<MoeKey, int>> moe;  // rep -> (key, target rep)
    for (int rep : reps) {
      if (!active[static_cast<std::size_t>(rep)]) continue;
      MoeKey best;
      best.w = -1;
      int target = -1;
      for (VertexId v : s.members[static_cast<std::size_t>(rep)]) {
        for (const Adj& a : g.neighbors(v)) {
          const int orep = s.frag[static_cast<std::size_t>(a.to)];
          if (orep == rep) continue;
          const MoeKey k{g.edge(a.edge).w, a.edge};
          if (best.w < 0 || k < best) {
            best = k;
            target = orep;
          }
        }
      }
      DECK_CHECK_MSG(target >= 0, "active fragment with no outgoing edge: graph disconnected?");
      moe[rep] = {best, target};
    }
    // Charge: 1 round frag-id exchange (2m msgs) + MOE convergecast and
    // decision broadcast within active fragments (2 * max height rounds).
    net.charge(1 + 2 * static_cast<std::uint64_t>(max_h) + 2,
               2 * static_cast<std::uint64_t>(g.num_edges()) + 2 * active_size_total);

    // Roles: mutual-MOE pairs pick the smaller rep as star root; a fragment
    // joins its target iff the target is a star root or inactive.
    auto is_mutual_root = [&](int rep) {
      auto it = moe.find(rep);
      if (it == moe.end()) return false;
      const int t = it->second.second;
      auto jt = moe.find(t);
      return jt != moe.end() && jt->second.first.e == it->second.first.e && rep < t;
    };
    // Charge proposal/reply exchanges + the in-target relay of "am I a
    // root" (convergecast + broadcast within target fragments).
    net.charge(2 + 2 * static_cast<std::uint64_t>(max_h),
               4 * static_cast<std::uint64_t>(moe.size()) + 2 * active_size_total);

    struct Join {
      int rep;
      int target;
      EdgeId edge;
    };
    std::vector<Join> joins;
    for (const auto& [rep, info] : moe) {
      const auto& [key, target] = info;
      const bool target_root = is_mutual_root(target) || !active[static_cast<std::size_t>(target)];
      if (is_mutual_root(rep)) continue;  // star root absorbs, never joins
      if (target_root) joins.push_back({rep, target, key.e});
    }
    if (joins.size() == 0) break;  // no progress possible under the star rule

    std::uint64_t joined_size_total = 0;
    for (const Join& j : joins) {
      mst.insert(j.edge);
      const Edge& e = g.edge(j.edge);
      const VertexId u = s.frag[static_cast<std::size_t>(e.u)] == j.rep ? e.u : e.v;
      const VertexId w = e.other(u);
      DECK_CHECK(s.frag[static_cast<std::size_t>(u)] == j.rep);
      reroot_fragment(s, j.rep, u);
      s.frag_parent[static_cast<std::size_t>(u)] = w;
      s.frag_parent_edge[static_cast<std::size_t>(u)] = j.edge;
      joined_size_total += s.members[static_cast<std::size_t>(j.rep)].size();
    }
    // Apply membership transfers after all re-rootings.
    for (const Join& j : joins) {
      auto& from = s.members[static_cast<std::size_t>(j.rep)];
      auto& to = s.members[static_cast<std::size_t>(j.target)];
      for (VertexId v : from) s.frag[static_cast<std::size_t>(v)] = j.target;
      to.insert(to.end(), from.begin(), from.end());
      from.clear();
    }
    // Relabel/re-root flood within joined fragments.
    net.charge(static_cast<std::uint64_t>(max_h) + 1, joined_size_total);
  }

  // Record stage-1 fragments (these feed the segment decomposition).
  std::vector<int> frag_label(static_cast<std::size_t>(n), -1);
  int num_frags = 0;
  int max_size = 0;
  for (int rep = 0; rep < n; ++rep) {
    if (s.members[static_cast<std::size_t>(rep)].empty()) continue;
    for (VertexId v : s.members[static_cast<std::size_t>(rep)])
      frag_label[static_cast<std::size_t>(v)] = num_frags;
    max_size =
        std::max(max_size, static_cast<int>(s.members[static_cast<std::size_t>(rep)].size()));
    ++num_frags;
  }
  const auto final_heights = fragment_heights(s, n);
  int max_height = 0;
  for (int rep = 0; rep < n; ++rep)
    max_height = std::max(max_height, final_heights[static_cast<std::size_t>(rep)]);

  // Stage 2: central Borůvka over the BFS tree. Fragment ids are the
  // stage-1 representatives; the BFS root merges and broadcasts relabels.
  net.begin_phase("mst.stage2");
  std::vector<EdgeId> global_edges;
  std::vector<int> frag2 = s.frag;  // working labels
  for (int guard = 0; guard < 2 * 32; ++guard) {
    std::set<int> live(frag2.begin(), frag2.end());
    if (live.size() <= 1) break;

    // Neighbour fragment-id exchange: 1 round, 2m messages.
    net.charge(1, 2 * static_cast<std::uint64_t>(g.num_edges()));

    // Per-vertex MOE candidates keyed by own fragment.
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      const int f = frag2[static_cast<std::size_t>(v)];
      MoeKey best;
      best.w = -1;
      for (const Adj& a : g.neighbors(v)) {
        if (frag2[static_cast<std::size_t>(a.to)] == f) continue;
        const MoeKey k{g.edge(a.edge).w, a.edge};
        if (best.w < 0 || k < best) best = k;
      }
      if (best.w >= 0) {
        items[static_cast<std::size_t>(v)].push_back(
            KeyedItem{static_cast<std::uint64_t>(f), static_cast<std::uint64_t>(best.w),
                      static_cast<std::uint64_t>(best.e)});
      }
    }
    auto finalized = keyed_min_upcast(net, bfs_forest, std::move(items));
    const auto& at_root = finalized[static_cast<std::size_t>(root)];

    // Root merges locally.
    std::map<int, int> rep_index;
    std::vector<int> live_list(live.begin(), live.end());
    for (std::size_t i = 0; i < live_list.size(); ++i)
      rep_index[live_list[i]] = static_cast<int>(i);
    UnionFind uf(static_cast<int>(live_list.size()));
    std::set<EdgeId> chosen;
    for (const KeyedItem& it : at_root) {
      const auto e = static_cast<EdgeId>(it.payload);
      chosen.insert(e);
    }
    for (EdgeId e : chosen) {
      uf.unite(rep_index.at(frag2[static_cast<std::size_t>(g.edge(e).u)]),
               rep_index.at(frag2[static_cast<std::size_t>(g.edge(e).v)]));
    }
    // Relabel map: old rep -> representative rep.
    std::vector<KeyedItem> bcast;
    for (int old_rep : live_list) {
      const int new_rep = live_list[static_cast<std::size_t>(uf.find(rep_index.at(old_rep)))];
      bcast.push_back(KeyedItem{static_cast<std::uint64_t>(old_rep),
                                static_cast<std::uint64_t>(new_rep), 0});
    }
    for (EdgeId e : chosen) {
      // Tag chosen-edge announcements with prio = max to separate from
      // relabels (keys are edge ids offset beyond vertex ids).
      bcast.push_back(KeyedItem{static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(e),
                                0, 1});
    }
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(root)] = bcast;
    pipelined_broadcast(net, bfs_forest, std::move(root_items));

    // Everyone applies the relabel map; edge endpoints record MST edges.
    std::map<int, int> relabel;
    for (int old_rep : live_list)
      relabel[old_rep] = live_list[static_cast<std::size_t>(uf.find(rep_index.at(old_rep)))];
    for (VertexId v = 0; v < n; ++v)
      frag2[static_cast<std::size_t>(v)] = relabel.at(frag2[static_cast<std::size_t>(v)]);
    for (EdgeId e : chosen) {
      mst.insert(e);
      global_edges.push_back(e);
    }
  }
  DECK_CHECK_MSG(std::set<int>(frag2.begin(), frag2.end()).size() <= 1,
                 "stage 2 failed to converge");
  DECK_CHECK_MSG(static_cast<int>(mst.size()) == n - 1, "MST edge count mismatch");

  // Orientation (§3.2 preliminary step): everyone learns the global edges
  // (upcast + broadcast over the BFS tree), deduces fragment roots from the
  // virtual fragment tree, and each fragment orients towards its root.
  net.begin_phase("mst.orient");
  {
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    for (EdgeId e : global_edges) {
      const Edge& ed = g.edge(e);
      items[static_cast<std::size_t>(std::min(ed.u, ed.v))].push_back(
          KeyedItem{static_cast<std::uint64_t>(e), 0, 0});
    }
    auto fin = keyed_min_upcast(net, bfs_forest, std::move(items));
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(root)] = fin[static_cast<std::size_t>(root)];
    pipelined_broadcast(net, bfs_forest, std::move(root_items));
  }

  // Virtual fragment tree (identical local computation at every vertex).
  Graph frag_graph(num_frags);
  std::vector<EdgeId> frag_edge_host;
  for (EdgeId e : global_edges) {
    const Edge& ed = g.edge(e);
    frag_graph.add_edge(frag_label[static_cast<std::size_t>(ed.u)],
                        frag_label[static_cast<std::size_t>(ed.v)], 1);
    frag_edge_host.push_back(e);
  }
  const RootedTree frag_tree = bfs_tree(frag_graph, frag_label[static_cast<std::size_t>(root)]);

  // Fragment root vertices: for the root fragment it is the BFS root; for
  // any other fragment, the endpoint of its parent global edge inside it.
  std::vector<VertexId> frag_root_vertex(static_cast<std::size_t>(num_frags), kNoVertex);
  std::vector<EdgeId> frag_root_edge(static_cast<std::size_t>(num_frags), kNoEdge);
  frag_root_vertex[static_cast<std::size_t>(frag_label[static_cast<std::size_t>(root)])] = root;
  for (int fb = 0; fb < num_frags; ++fb) {
    const EdgeId fe = frag_tree.parent_edge(fb);
    if (fe == kNoEdge) continue;
    const EdgeId he = frag_edge_host[static_cast<std::size_t>(fe)];
    const Edge& ed = g.edge(he);
    const VertexId inside = frag_label[static_cast<std::size_t>(ed.u)] == fb ? ed.u : ed.v;
    frag_root_vertex[static_cast<std::size_t>(fb)] = inside;
    frag_root_edge[static_cast<std::size_t>(fb)] = he;
  }

  // Within-fragment orientation: BFS from the fragment root over the MST
  // edges inside the fragment. Charged one flood of max fragment height.
  std::vector<char> in_mst(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : mst) in_mst[static_cast<std::size_t>(e)] = 1;
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kNoVertex);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kNoEdge);
  for (int fb = 0; fb < num_frags; ++fb) {
    const VertexId fr = frag_root_vertex[static_cast<std::size_t>(fb)];
    DECK_CHECK(fr != kNoVertex);
    if (fr != root) {
      const EdgeId he = frag_root_edge[static_cast<std::size_t>(fb)];
      parent[static_cast<std::size_t>(fr)] = g.edge(he).other(fr);
      parent_edge[static_cast<std::size_t>(fr)] = he;
    }
    std::queue<VertexId> q;
    q.push(fr);
    std::set<VertexId> seen{fr};
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (const Adj& a : g.neighbors(v)) {
        if (!in_mst[static_cast<std::size_t>(a.edge)]) continue;
        if (frag_label[static_cast<std::size_t>(a.to)] != fb) continue;
        if (frag_label[static_cast<std::size_t>(v)] != fb) continue;
        if (seen.count(a.to)) continue;
        seen.insert(a.to);
        parent[static_cast<std::size_t>(a.to)] = v;
        parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        q.push(a.to);
      }
    }
  }
  net.charge(static_cast<std::uint64_t>(max_height) + 1, static_cast<std::uint64_t>(n));

  MstResult r;
  r.mst_edges.assign(mst.begin(), mst.end());
  r.tree = RootedTree(std::move(parent), std::move(parent_edge));
  r.fragment = std::move(frag_label);
  r.num_fragments = num_frags;
  r.global_edges = std::move(global_edges);
  r.max_fragment_size = max_size;
  r.max_fragment_height = max_height;
  return r;
}

}  // namespace deck
