#pragma once

// Distributed MST in the CONGEST model (Kutten–Peleg structure, §3/§4).
//
// Two stages, as in Garay–Kutten–Peleg / Kutten–Peleg:
//
//  Stage 1 — controlled Borůvka: fragments merge along minimum outgoing
//  edges (MOEs) in star patterns (mutual-MOE pairs become star roots;
//  fragments whose MOE points at a star root or at an inactive fragment are
//  absorbed). Only fragments of size < ceil(sqrt(n)) stay active, so stage 1
//  ends with O(sqrt(n)) fragments whose trees have O(sqrt(n)) size; their
//  diameters stay O(sqrt(n)) on all tested families (see DESIGN.md for the
//  worst-case caveat vs. the full GKP matching machinery).
//
//  Stage 2 — pipelined central Borůvka: per-fragment MOEs are upcast over
//  the BFS tree (O(D + F) rounds via the keyed-min pipeline), the root
//  merges fragments locally, and relabel + chosen-edge lists are broadcast
//  back. O(log n) iterations.
//
// The result is exactly the Kruskal MST under the canonical (w, id) order;
// tests verify edge-for-edge equality. The stage-1 fragments and the
// stage-2 "global" edges are returned for the segment decomposition (§3.2),
// together with the paper's fragment-root orientation of the tree.

#include <vector>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

struct MstResult {
  std::vector<EdgeId> mst_edges;       // all n-1 MST edge ids
  RootedTree tree;                     // MST rooted at the BFS root
  std::vector<int> fragment;           // per vertex: stage-1 fragment label, 0..F-1
  int num_fragments = 0;               // F
  std::vector<EdgeId> global_edges;    // MST edges between different fragments
  int max_fragment_size = 0;           // stage-1 stats (tests assert O(sqrt n))
  int max_fragment_height = 0;
};

/// Runs the distributed MST over net.graph() (which must be connected, with
/// the canonical unique (w,id) edge order). `bfs` is the BFS tree used for
/// stage-2 pipelining and orientation; its root becomes the MST root.
MstResult distributed_mst(Network& net, const RootedTree& bfs);

}  // namespace deck
