#include "ecss/distributed_3ecss.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "congest/primitives.hpp"
#include "cycles/cycle_space.hpp"
#include "decomp/segments.hpp"
#include "ecss/aug_framework.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "ecss/unweighted_2ecss.hpp"
#include "mst/distributed_mst.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

void control_round(Network& net, const CommForest& bfs) {
  std::vector<std::uint64_t> val(bfs.parent.size(), 0);
  convergecast(net, bfs, val, CombineOp::kMax);
  broadcast(net, bfs, val);
}

/// The §5 augmentation loop: covers all cut pairs of the 2-edge-connected
/// subgraph ha_mask using cycle-space labels over `tree` (a spanning tree
/// contained in ha_mask). Weighted per §5.4 when `weighted` is set.
/// Returns the iteration count; extends ha_mask in place.
int aug3_label_loop(Network& net, const RootedTree& tree, std::vector<char>& ha_mask,
                    const Ecss3Options& opt, bool weighted) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  const int m = g.num_edges();
  const CommForest forest = CommForest::from_tree(tree);

  std::vector<char> is_tree(static_cast<std::size_t>(m), 0);
  for (VertexId v = 0; v < n; ++v)
    if (tree.parent_edge(v) != kNoEdge) is_tree[static_cast<std::size_t>(tree.parent_edge(v))] = 1;

  Rng rng(opt.seed);
  const int log_n = std::max(1, static_cast<int>(std::ceil(std::log2(std::max(2, n)))));
  const int phase_len = std::max(1, opt.phase_m * log_n);
  const int p_start_exp = static_cast<int>(std::ceil(std::log2(std::max(2, m))));

  int cap_exp = std::numeric_limits<int>::max();  // Lemma 5.11 clamp
  int p_exp = p_start_exp;
  int iter_in_phase = 0;
  int last_max = std::numeric_limits<int>::max();
  int iterations = 0;

  // Cached per-iteration state, recomputed when A changes (the paper
  // resamples labels every iteration; with unchanged H∪A the recomputation
  // yields the same counts w.h.p., so we cache and charge the rounds).
  bool dirty = true;
  std::vector<int> exponent(static_cast<std::size_t>(m), std::numeric_limits<int>::min());
  std::vector<int> rho(static_cast<std::size_t>(m), 0);
  bool three_connected_by_labels = false;

  auto recompute = [&]() {
    // (a) Sample an O(log n)-bit circulation of H∪A over the tree.
    CycleSpace cs = sample_circulation_distributed(net, ha_mask, tree, opt.label_bits, rng);

    // (b) Knowledge: root-path labels for every vertex (pipelined downcast;
    // two passes to carry edge id + 128-bit label).
    {
      std::vector<KeyedItem> own(static_cast<std::size_t>(n));
      for (VertexId v = 0; v < n; ++v)
        if (tree.parent_edge(v) != kNoEdge)
          own[static_cast<std::size_t>(v)] =
              KeyedItem{static_cast<std::uint64_t>(tree.parent_edge(v)), 0, 0};
      path_downcast(net, forest, own);
      path_downcast(net, forest, own);
    }

    // (c) n_phi(t) per tree edge via the minimum-id covering edge of H∪A
    // (Claim 5.9): selection by an ancestor-merge over the tree, then a
    // count within that edge's fundamental cycle.
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    std::vector<std::vector<EdgeId>> path_cache(static_cast<std::size_t>(m));
    for (EdgeId e = 0; e < m; ++e) {
      if (!ha_mask[static_cast<std::size_t>(e)] || is_tree[static_cast<std::size_t>(e)]) continue;
      const Edge& ed = g.edge(e);
      const VertexId l = tree.lca(ed.u, ed.v);
      for (VertexId x : {ed.u, ed.v}) {
        for (VertexId y = x; y != l; y = tree.parent(y)) {
          items[static_cast<std::size_t>(x)].push_back(
              KeyedItem{static_cast<std::uint64_t>(tree.depth(y) - 1),
                        static_cast<std::uint64_t>(e), 0});
        }
      }
    }
    auto selected = ancestor_min_merge(net, forest, std::move(items));

    std::vector<int> nphi(static_cast<std::size_t>(m), 0);  // per tree edge id
    auto cycle_path = [&](EdgeId e) -> const std::vector<EdgeId>& {
      auto& p = path_cache[static_cast<std::size_t>(e)];
      if (p.empty()) p = tree.path_edges(g.edge(e).u, g.edge(e).v);
      return p;
    };
    for (VertexId x = 0; x < n; ++x) {
      const EdgeId t = tree.parent_edge(x);
      if (t == kNoEdge) continue;
      const auto& sel = selected[static_cast<std::size_t>(x)];
      DECK_CHECK_MSG(sel.has_value(), "tree edge with no covering edge: H not 2-edge-connected");
      const auto estar = static_cast<EdgeId>(sel->prio);
      int cnt =
          cs.phi[static_cast<std::size_t>(estar)] == cs.phi[static_cast<std::size_t>(t)] ? 1 : 0;
      for (EdgeId t2 : cycle_path(estar))
        if (cs.phi[static_cast<std::size_t>(t2)] == cs.phi[static_cast<std::size_t>(t)]) ++cnt;
      nphi[static_cast<std::size_t>(t)] = cnt;
    }
    // Downcast of (t, n_phi(t)) along root paths (pipelined).
    {
      std::vector<KeyedItem> own(static_cast<std::size_t>(n));
      for (VertexId v = 0; v < n; ++v)
        if (tree.parent_edge(v) != kNoEdge)
          own[static_cast<std::size_t>(v)] = KeyedItem{
              static_cast<std::uint64_t>(tree.parent_edge(v)),
              static_cast<std::uint64_t>(nphi[static_cast<std::size_t>(tree.parent_edge(v))]), 0};
      path_downcast(net, forest, own);
    }

    // (d) rho(e) per candidate edge (Claim 5.8), after a fundamental-path
    // exchange over each non-H∪A edge (labels + counts: 3 words per hop).
    {
      std::vector<EdgeId> ex;
      std::vector<std::vector<std::uint64_t>> fu, fv;
      for (EdgeId e = 0; e < m; ++e) {
        if (ha_mask[static_cast<std::size_t>(e)]) continue;
        ex.push_back(e);
        const Edge& ed = g.edge(e);
        fu.emplace_back(static_cast<std::size_t>(3 * tree.depth(ed.u)), 0);
        fv.emplace_back(static_cast<std::size_t>(3 * tree.depth(ed.v)), 0);
      }
      edge_exchange(net, ex, fu, fv);
    }
    int global_max = std::numeric_limits<int>::min();
    for (EdgeId e = 0; e < m; ++e) {
      exponent[static_cast<std::size_t>(e)] = std::numeric_limits<int>::min();
      rho[static_cast<std::size_t>(e)] = 0;
      if (ha_mask[static_cast<std::size_t>(e)]) continue;
      const Edge& ed = g.edge(e);
      std::map<BitLabel, int> on_path;
      for (EdgeId t : tree.path_edges(ed.u, ed.v)) ++on_path[cs.phi[static_cast<std::size_t>(t)]];
      long long r = 0;
      for (EdgeId t : tree.path_edges(ed.u, ed.v)) {
        const BitLabel& lab = cs.phi[static_cast<std::size_t>(t)];
        auto it = on_path.find(lab);
        if (it == on_path.end()) continue;  // label already accounted
        const int here = it->second;
        r += static_cast<long long>(here) * (nphi[static_cast<std::size_t>(t)] - here);
        on_path.erase(it);
      }
      rho[static_cast<std::size_t>(e)] = static_cast<int>(std::min<long long>(r, 1 << 30));
      if (r > 0) {
        const Weight w = weighted ? std::max<Weight>(1, g.edge(e).w) : 1;
        exponent[static_cast<std::size_t>(e)] =
            rounded_ce_exponent(rho[static_cast<std::size_t>(e)], w);
        global_max = std::max(global_max, exponent[static_cast<std::size_t>(e)]);
      }
    }

    // Termination predicate (Claim 5.10): no tree edge in a cut pair.
    three_connected_by_labels = true;
    {
      std::map<BitLabel, int> counts;
      for (EdgeId e = 0; e < m; ++e)
        if (ha_mask[static_cast<std::size_t>(e)]) ++counts[cs.phi[static_cast<std::size_t>(e)]];
      for (EdgeId e = 0; e < m && three_connected_by_labels; ++e)
        if (ha_mask[static_cast<std::size_t>(e)] && is_tree[static_cast<std::size_t>(e)] &&
            counts[cs.phi[static_cast<std::size_t>(e)]] > 1)
          three_connected_by_labels = false;
    }
    return global_max;
  };

  int computed_max = std::numeric_limits<int>::min();
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    if (dirty) {
      computed_max = recompute();
      dirty = false;
    } else {
      // The paper recomputes labels and counts every iteration; the values
      // are unchanged without additions, so we only charge the rounds.
      net.charge(static_cast<std::uint64_t>(4 * (tree.height() + 1)),
                 4ULL * static_cast<std::uint64_t>(n));
    }
    control_round(net, forest);  // max rounded cost-effectiveness + termination bit
    if (three_connected_by_labels) break;
    DECK_CHECK_MSG(computed_max != std::numeric_limits<int>::min(),
                   "cut pair with no covering edge: input not 3-edge-connected");

    const int global_max = std::min(computed_max, cap_exp);  // Lemma 5.11 clamp
    if (global_max != last_max) {
      last_max = global_max;
      p_exp = p_start_exp;
      iter_in_phase = 0;
    }

    // Candidate activation (coin drawn at the smaller endpoint, 1 round).
    std::vector<EdgeId> adds;
    for (EdgeId e = 0; e < m; ++e) {
      if (ha_mask[static_cast<std::size_t>(e)]) continue;
      const int ee = std::min(exponent[static_cast<std::size_t>(e)], cap_exp);
      if (ee != global_max || rho[static_cast<std::size_t>(e)] <= 0) continue;
      const std::uint64_t coin =
          mix64(opt.seed ^ 0x3ec5ull ^ (static_cast<std::uint64_t>(iter) << 20) ^
                static_cast<std::uint64_t>(e));
      // Activation with probability 2^-p_exp: top p_exp bits all zero.
      if (p_exp == 0 || (coin >> (64 - p_exp)) == 0) adds.push_back(e);
    }
    net.charge(1, adds.size() + 1);

    for (EdgeId e : adds) ha_mask[static_cast<std::size_t>(e)] = 1;
    if (!adds.empty()) dirty = true;
    ++iterations;

    if (p_exp == 0) {
      // After a p = 1 iteration every remaining candidate joined; the
      // maximum rounded cost-effectiveness must halve (Lemma 5.11).
      cap_exp = global_max - 1;
      dirty = true;
      if (!weighted && cap_exp < 1) {
        // rho >= 1 for any edge covering a cut pair (Claim 5.12): at this
        // point everything useful was added; verify and stop.
        computed_max = recompute();
        control_round(net, forest);
        break;
      }
      if (weighted && cap_exp < -2 * 62) break;  // exponent floor
    }
    if (++iter_in_phase >= phase_len && p_exp > 0) {
      --p_exp;
      iter_in_phase = 0;
    }
  }
  return iterations;
}

}  // namespace

Ecss3Result distributed_3ecss_unweighted(Network& net, const Ecss3Options& opt) {
  const Graph& g = net.graph();
  const int m = g.num_edges();
  Ecss3Result result;

  // Base: 2-approximate unweighted 2-ECSS, O(D) rounds (§5 / [1]).
  net.begin_phase("3ecss.base");
  auto base = unweighted_2ecss_2approx(net, 0);
  std::vector<char> ha_mask(static_cast<std::size_t>(m), 0);
  for (EdgeId e : base.edges) ha_mask[static_cast<std::size_t>(e)] = 1;
  result.base_size = static_cast<int>(base.edges.size());

  net.begin_phase("3ecss.aug");
  result.iterations = aug3_label_loop(net, base.bfs, ha_mask, opt, /*weighted=*/false);

  for (EdgeId e = 0; e < m; ++e)
    if (ha_mask[static_cast<std::size_t>(e)]) result.edges.push_back(e);
  result.size = static_cast<int>(result.edges.size());
  return result;
}

Ecss3WeightedResult distributed_3ecss_weighted(Network& net, const Ecss3Options& opt) {
  const Graph& g = net.graph();
  const int m = g.num_edges();
  Ecss3WeightedResult result;

  // Base: weighted 2-ECSS = distributed MST + TAP (Theorem 1.1), with the
  // MST as the label tree (§5.4: iterations cost O(h_MST)).
  net.begin_phase("3ecss_w.base");
  const VertexId root = 0;
  const RootedTree bfs = distributed_bfs(net, root);
  const CommForest bfs_forest = CommForest::from_tree(bfs);
  MstResult mst = distributed_mst(net, bfs);
  SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, bfs_forest, root);
  TapOptions topt;
  topt.seed = opt.seed ^ 0x2ec55ull;
  const TapResult tap = distributed_tap(net, dec, bfs_forest, root, topt);

  std::vector<char> ha_mask(static_cast<std::size_t>(m), 0);
  for (EdgeId e : mst.mst_edges) ha_mask[static_cast<std::size_t>(e)] = 1;
  for (EdgeId e : tap.augmentation) ha_mask[static_cast<std::size_t>(e)] = 1;
  // Weight-0 edges are free cover for the augmentation step.
  for (EdgeId e = 0; e < m; ++e)
    if (g.edge(e).w == 0) ha_mask[static_cast<std::size_t>(e)] = 1;

  net.begin_phase("3ecss_w.aug");
  result.iterations = aug3_label_loop(net, mst.tree, ha_mask, opt, /*weighted=*/true);

  for (EdgeId e = 0; e < m; ++e)
    if (ha_mask[static_cast<std::size_t>(e)]) {
      result.edges.push_back(e);
      result.weight += g.edge(e).w;
    }
  return result;
}

}  // namespace deck
