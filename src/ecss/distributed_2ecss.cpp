#include "ecss/distributed_2ecss.hpp"

#include <algorithm>

#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "support/check.hpp"

namespace deck {

Ecss2Result distributed_2ecss(Network& net, const TapOptions& opt) {
  net.begin_phase("2ecss.bfs");
  const VertexId root = 0;
  const RootedTree bfs = distributed_bfs(net, root);
  const CommForest bfs_forest = CommForest::from_tree(bfs);

  net.begin_phase("2ecss.mst");
  MstResult mst = distributed_mst(net, bfs);

  SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, bfs_forest, root);

  TapResult tap = distributed_tap(net, dec, bfs_forest, root, opt);

  Ecss2Result out;
  out.edges = mst.mst_edges;
  out.edges.insert(out.edges.end(), tap.augmentation.begin(), tap.augmentation.end());
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()), out.edges.end());
  for (EdgeId e : out.edges) out.weight += net.graph().edge(e).w;
  out.tap_iterations = tap.iterations;
  out.num_segments = dec.num_segments();
  out.max_segment_diameter = dec.max_segment_diameter();
  return out;
}

TapResult distributed_tap_standalone(Network& net, const TapInstance& inst,
                                     const TapOptions& opt) {
  const Graph& g = net.graph();
  DECK_CHECK(g.num_vertices() == inst.g.num_vertices() && g.num_edges() == inst.g.num_edges());

  net.begin_phase("tap.bfs");
  const VertexId root = 0;
  const RootedTree bfs = distributed_bfs(net, root);
  const CommForest bfs_forest = CommForest::from_tree(bfs);

  // Fragments for the *given* tree: run the distributed MST on a copy whose
  // tree edges weigh 0 — the unique MST is the input tree, and the stage-1
  // fragments / global edges come out as in §3.2. Rounds are charged through.
  net.begin_phase("tap.fragments");
  Graph forced(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    forced.add_edge(g.edge(e).u, g.edge(e).v,
                    inst.tree_mask[static_cast<std::size_t>(e)] ? 0 : 1 + g.edge(e).w);
  }
  Network sub(forced, net.hub());
  const RootedTree sub_bfs = distributed_bfs(sub, root);
  MstResult mst = distributed_mst(sub, sub_bfs);
  net.charge(sub.rounds(), sub.messages());
  for (EdgeId e : mst.mst_edges)
    DECK_CHECK_MSG(inst.tree_mask[static_cast<std::size_t>(e)], "forced MST deviated from tree");

  SegmentDecomposition dec(net, mst.tree, mst.fragment, mst.global_edges, bfs_forest, root);
  return distributed_tap(net, dec, bfs_forest, root, opt);
}

}  // namespace deck
