#include "ecss/lower_bounds.hpp"

#include <algorithm>

#include "graph/mst_seq.hpp"
#include "support/check.hpp"

namespace deck {

Weight degree_lower_bound(const Graph& g, int k) {
  DECK_CHECK(k >= 1);
  Weight doubled = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<Weight> ws;
    for (const Adj& a : g.neighbors(v)) ws.push_back(g.edge(a.edge).w);
    DECK_CHECK_MSG(static_cast<int>(ws.size()) >= k, "vertex degree below k: no k-ECSS exists");
    std::sort(ws.begin(), ws.end());
    for (int i = 0; i < k; ++i) doubled += ws[static_cast<std::size_t>(i)];
  }
  return (doubled + 1) / 2;
}

Weight kecss_lower_bound(const Graph& g, int k) {
  Weight lb = degree_lower_bound(g, k);
  // Spanning-connectivity bound: any k-ECSS contains a spanning tree, and
  // the lightest possible spanning subgraph weight contribution is w(MST).
  Weight mst_w = 0;
  for (EdgeId e : kruskal_mst(g)) mst_w += g.edge(e).w;
  lb = std::max(lb, mst_w);
  return lb;
}

}  // namespace deck
