#pragma once

// Distributed unweighted 3-ECSS (paper §5, Theorem 1.3): O(D log^3 n)
// rounds, O(log n)-approximation in expectation.
//
// Base: the O(D)-round 2-approximate unweighted 2-ECSS H (BFS tree +
// highest-reach augmentation). Augmentation to 3-edge-connectivity runs the
// §4 framework where the cuts are H∪A's *cut pairs*, detected with cycle
// space sampling: each iteration samples an O(log n)-bit circulation
// (Lemma 5.5, O(D)); an edge e computes its cost-effectiveness locally as
//   rho(e) = sum over labels L on its fundamental path of
//            n_{L,e} * (n_L - n_{L,e})                          (Claim 5.8)
// using per-tree-edge counts n_phi(t) learned from a covering edge's
// fundamental cycle (Claim 5.9) and pipelined up/down the BFS tree. Active
// candidates join A directly (no MST filter is needed: all edges have unit
// weight). Per Lemma 5.11 the maximum rounded cost-effectiveness is clamped
// to be non-increasing, and forced to halve after a p = 1 iteration, so the
// algorithm always terminates 3-edge-connected after O(log^3 n) iterations.

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace deck {

struct Ecss3Options {
  std::uint64_t seed = 1;
  int label_bits = 64;
  int phase_m = 2;
  bool fast_forward = true;
  int max_iterations = 1 << 20;
};

struct Ecss3Result {
  std::vector<EdgeId> edges;   // H ∪ A
  int size = 0;
  int iterations = 0;
  int base_size = 0;           // |H| from the 2-approximation
};

/// Requires net.graph() 3-edge-connected (unit weights assumed).
Ecss3Result distributed_3ecss_unweighted(Network& net, const Ecss3Options& opt);

/// §5.4 remark: the same algorithm for *weighted* 3-ECSS. The base is the
/// weighted 2-ECSS (distributed MST + TAP, Theorem 1.1) and the labels live
/// on the MST, so each iteration costs O(h_MST) rounds instead of O(D) —
/// the trade-off the paper discusses (worst case O(n log^3 n)).
struct Ecss3WeightedResult {
  std::vector<EdgeId> edges;
  Weight weight = 0;
  int iterations = 0;
};
Ecss3WeightedResult distributed_3ecss_weighted(Network& net, const Ecss3Options& opt);

}  // namespace deck
