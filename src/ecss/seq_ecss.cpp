#include "ecss/seq_ecss.hpp"

#include "ecss/aug_framework.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/mst_seq.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

std::vector<EdgeId> greedy_aug(const Graph& g, const std::vector<char>& h_mask, int cut_size,
                               std::uint64_t seed) {
  AugState st(g, h_mask, cut_size, seed);
  std::vector<EdgeId> added;
  // Weight-0 edges are free cover.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (st.in_h(e) || g.edge(e).w != 0) continue;
    if (st.coverage(e) > 0) {
      st.add_to_a(e);
      added.push_back(e);
    }
  }
  while (!st.all_covered()) {
    EdgeId best = kNoEdge;
    long long best_num = 0;  // compare ce_a * w_b > ce_b * w_a
    Weight best_w = 1;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (st.in_h(e) || st.in_a(e)) continue;
      const int ce = st.coverage(e);
      if (ce == 0) continue;
      const Weight w = std::max<Weight>(1, g.edge(e).w);
      if (best == kNoEdge || static_cast<long long>(ce) * best_w > best_num * w) {
        best = e;
        best_num = ce;
        best_w = w;
      }
    }
    DECK_CHECK_MSG(best != kNoEdge, "uncoverable cut: input not sufficiently connected");
    st.add_to_a(best);
    added.push_back(best);
  }
  return added;
}

std::vector<EdgeId> greedy_kecss(const Graph& g, int k, std::uint64_t seed) {
  DECK_CHECK(k >= 1);
  Rng rng(seed);
  std::vector<EdgeId> h = kruskal_mst(g);  // optimal Aug_1
  for (int i = 2; i <= k; ++i) {
    const auto mask = edge_mask(g, h);
    const auto added = greedy_aug(g, mask, i - 1, rng());
    h.insert(h.end(), added.begin(), added.end());
  }
  return h;
}

}  // namespace deck
