#include "ecss/thurimella.hpp"

#include "congest/primitives.hpp"
#include "graph/mst_seq.hpp"
#include "graph/union_find.hpp"
#include "mst/distributed_mst.hpp"
#include "support/check.hpp"

namespace deck {

std::vector<EdgeId> sparse_certificate(const Graph& g, int k) {
  DECK_CHECK(k >= 1);
  std::vector<char> used(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<EdgeId> cert;
  for (int i = 0; i < k; ++i) {
    UnionFind uf(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (used[static_cast<std::size_t>(e)]) continue;
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        used[static_cast<std::size_t>(e)] = 1;
        cert.push_back(e);
      }
    }
  }
  return cert;
}

std::vector<EdgeId> sparse_certificate_distributed(Network& net, int k) {
  // The remainder after removing forests may be disconnected (a forest can
  // take several edges of one cut), so each round runs the distributed MST
  // over the whole graph with remaining edges light (weight 1) and already-
  // certified edges heavy (weight 2): the light edges the MST selects are
  // exactly a maximal spanning forest of the remainder.
  const Graph& g = net.graph();
  std::vector<char> used(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<EdgeId> cert;
  for (int i = 0; i < k; ++i) {
    Graph weighted(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      weighted.add_edge(g.edge(e).u, g.edge(e).v, used[static_cast<std::size_t>(e)] ? 2 : 1);
    Network sub(weighted, net.hub());
    RootedTree bfs = distributed_bfs(sub, 0);
    MstResult mst = distributed_mst(sub, bfs);
    net.charge(sub.rounds(), sub.messages());
    for (EdgeId e : mst.mst_edges) {
      if (used[static_cast<std::size_t>(e)]) continue;  // heavy filler, not forest
      used[static_cast<std::size_t>(e)] = 1;
      cert.push_back(e);
    }
  }
  return cert;
}

}  // namespace deck
