#pragma once

// Distributed weighted k-ECSS (paper §4, Theorem 1.2).
//
// Claim 2.1 stacks augmentations: Aug_1 is a distributed MST (the optimal
// connectivity-1 augmentation, as in the 2-ECSS algorithm); Aug_i for i >= 2
// follows §4: every vertex knows H and A in full (maintained by pipelined
// broadcasts of all added edges, O(D + n_i) rounds per iteration and O(n)
// total since A is a forest per Claim 4.1), so cost-effectiveness is a free
// local computation over the enumerated cuts of size i-1. Candidates at the
// maximum rounded cost-effectiveness activate with probability p, where p
// doubles every M log n iterations (the "guessing" schedule of §4), and an
// activated candidate joins A iff it survives the MST filter of Line 4 —
// which, by Claims 4.1/4.2, equals a Kruskal pass over A ∪ {active
// candidates} that every vertex runs identically on its global knowledge
// (see DESIGN.md, "per-iteration MST → Kruskal filter").

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace deck {

struct KecssOptions {
  std::uint64_t seed = 1;
  /// Phase length multiplier: p doubles every ceil(M * log2 n) iterations.
  int phase_m = 2;
  /// Skip the activation upcast + filter when no candidate activated
  /// (detected by an O(D) convergecast). The paper's schedule still charges
  /// the detection round cost.
  bool fast_forward = true;
  int max_iterations_per_level = 1 << 20;
};

struct KecssResult {
  std::vector<EdgeId> edges;          // the k-ECSS H
  Weight weight = 0;
  int iterations = 0;                 // total Aug iterations across levels
  std::vector<int> iterations_per_aug;  // indexed by i-2 for Aug_i
};

/// Requires net.graph() k-edge-connected (checked by callers/tests).
KecssResult distributed_kecss(Network& net, int k, const KecssOptions& opt);

/// Standalone Aug (Claim 2.1 building block): augments an *existing*
/// subgraph H (given by edge ids; its connectivity lambda(H) is whatever it
/// is) up to target_k-edge-connectivity, one §4 level per step
/// lambda+1, ..., target_k. The level lambda(H)=0 -> 1 uses the MST filter
/// over all of G (optimal connector). Requires net.graph() to be
/// target_k-edge-connected. Returns only the added edges.
struct AugmentResult {
  std::vector<EdgeId> added;
  Weight added_weight = 0;
  int iterations = 0;
};
AugmentResult distributed_augment(Network& net, const std::vector<EdgeId>& h_edges, int target_k,
                                  const KecssOptions& opt);

}  // namespace deck
