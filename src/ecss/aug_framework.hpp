#pragma once

// Shared Aug_k machinery (paper §2.1): cut bookkeeping for augmenting a
// (k-1)-edge-connected H to k-edge-connectivity by covering all its cuts of
// size k-1. Both the sequential greedy baseline and the distributed §4
// algorithm (where every vertex performs this computation locally on its
// global knowledge of H and A) build on this state.

#include <cstdint>
#include <vector>

#include "graph/cut_enum.hpp"
#include "graph/graph.hpp"

namespace deck {

class AugState {
 public:
  /// Enumerates the cuts of size `cut_size` of the subgraph h_mask of g.
  /// `seed` drives the (shared) randomized enumeration for cut_size >= 3.
  AugState(const Graph& g, std::vector<char> h_mask, int cut_size, std::uint64_t seed);

  const Graph& graph() const { return *g_; }
  int cut_size() const { return cuts_.cut_size; }
  int num_cuts() const { return static_cast<int>(cuts_.cuts.size()); }
  int num_uncovered() const { return uncovered_; }
  bool all_covered() const { return uncovered_ == 0; }

  bool in_h(EdgeId e) const { return h_mask_[static_cast<std::size_t>(e)] != 0; }
  bool in_a(EdgeId e) const { return a_mask_[static_cast<std::size_t>(e)] != 0; }

  /// |Ce|: uncovered cuts that edge e covers. O(#cuts).
  int coverage(EdgeId e) const;

  /// Adds e to the augmentation A and marks the cuts it covers.
  void add_to_a(EdgeId e);

  /// H ∪ A as an edge mask.
  std::vector<char> result_mask() const;

  const CutCollection& cuts() const { return cuts_; }
  bool cut_is_covered(int i) const { return covered_[static_cast<std::size_t>(i)] != 0; }

 private:
  const Graph* g_;
  std::vector<char> h_mask_;
  std::vector<char> a_mask_;
  CutCollection cuts_;
  std::vector<char> covered_;
  int uncovered_ = 0;
};

/// Rounded cost-effectiveness exponent: the minimum j with 2^j > ce / w.
/// Requires ce >= 1 and w >= 1. (Paper: rounding to the next power of two.)
int rounded_ce_exponent(int ce, Weight w);

}  // namespace deck
