#include "ecss/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/edge_connectivity.hpp"
#include "support/check.hpp"

namespace deck {

namespace {

struct Search {
  const Graph* g;
  int k;
  std::vector<EdgeId> order;      // edges sorted by descending weight (decide big first)
  std::vector<char> chosen;       // current partial selection (by edge id)
  Weight chosen_w = 0;
  Weight best = std::numeric_limits<Weight>::max();
  std::vector<char> best_mask;

  void dfs(std::size_t i) {
    if (chosen_w >= best) return;
    if (i == order.size()) {
      if (is_k_edge_connected(*g, chosen, k) && chosen_w < best) {
        best = chosen_w;
        best_mask = chosen;
      }
      return;
    }
    // Optimistic completion: chosen + all undecided edges. If even that is
    // not k-connected, no completion works.
    std::vector<char> optimistic = chosen;
    for (std::size_t j = i; j < order.size(); ++j)
      optimistic[static_cast<std::size_t>(order[j])] = 1;
    if (!is_k_edge_connected(*g, optimistic, k)) return;
    const EdgeId e = order[i];
    // Branch 1: drop e (preferred: we want minimal weight).
    chosen[static_cast<std::size_t>(e)] = 0;
    dfs(i + 1);
    // Branch 2: keep e.
    chosen[static_cast<std::size_t>(e)] = 1;
    chosen_w += g->edge(e).w;
    dfs(i + 1);
    chosen_w -= g->edge(e).w;
    chosen[static_cast<std::size_t>(e)] = 0;
  }
};

}  // namespace

std::vector<EdgeId> exact_kecss(const Graph& g, int k) {
  DECK_CHECK_MSG(g.num_edges() <= 24, "exact k-ECSS limited to m <= 24");
  DECK_CHECK_MSG(is_k_edge_connected(g, k), "input graph is not k-edge-connected");
  Search s;
  s.g = &g;
  s.k = k;
  s.order.resize(static_cast<std::size_t>(g.num_edges()));
  std::iota(s.order.begin(), s.order.end(), 0);
  std::sort(s.order.begin(), s.order.end(),
            [&](EdgeId a, EdgeId b) { return g.edge(a).w > g.edge(b).w; });
  s.chosen.assign(static_cast<std::size_t>(g.num_edges()), 0);
  s.dfs(0);
  DECK_CHECK(s.best != std::numeric_limits<Weight>::max());
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (s.best_mask[static_cast<std::size_t>(e)]) out.push_back(e);
  return out;
}

}  // namespace deck
