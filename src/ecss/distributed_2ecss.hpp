#pragma once

// Distributed weighted 2-ECSS (paper §3, Theorem 1.1): distributed MST,
// segment decomposition, then the distributed weighted TAP augmentation.
// O(log n)-approximation (1 for the MST step + O(log n) for TAP, Claim 2.1)
// in O((D + sqrt n) log^2 n) rounds w.h.p.

#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "mst/distributed_mst.hpp"
#include "tap/distributed_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {

struct Ecss2Result {
  std::vector<EdgeId> edges;   // MST ∪ augmentation
  Weight weight = 0;
  int tap_iterations = 0;
  int num_segments = 0;
  int max_segment_diameter = 0;
};

/// Requires net.graph() 2-edge-connected with the paper's weight model.
Ecss2Result distributed_2ecss(Network& net, const TapOptions& opt);

/// Standalone distributed weighted TAP (Theorem 3.12) for a given tree:
/// fragments are derived by running the distributed MST with the tree edges
/// forced to weight zero (the unique MST is then the input tree), after
/// which the 2-ECSS machinery runs unchanged.
TapResult distributed_tap_standalone(Network& net, const TapInstance& inst,
                                     const TapOptions& opt);

}  // namespace deck
