#pragma once

// Lower bounds on the minimum k-ECSS weight, used to report approximation
// ratios when the exact optimum is out of reach (T1/T2/T3).
//
//  * degree bound: every vertex needs >= k incident edges in any k-ECSS, so
//    OPT >= ceil( sum_v (k cheapest incident weights) / 2 ).
//  * unweighted count bound: any k-ECSS has >= ceil(k n / 2) edges.
//  * spanning bound (k >= 1): OPT >= w(MST) since a k-ECSS is spanning
//    connected.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Degree-based weighted lower bound.
Weight degree_lower_bound(const Graph& g, int k);

/// max(degree bound, MST weight for k >= 1, ceil(kn/2) for unit weights).
Weight kecss_lower_bound(const Graph& g, int k);

}  // namespace deck
