#include "ecss/aug_framework.hpp"

#include "support/check.hpp"

namespace deck {

AugState::AugState(const Graph& g, std::vector<char> h_mask, int cut_size, std::uint64_t seed)
    : g_(&g), h_mask_(std::move(h_mask)), a_mask_(static_cast<std::size_t>(g.num_edges()), 0) {
  cuts_ = enumerate_cuts(g, h_mask_, cut_size, seed);
  covered_.assign(cuts_.cuts.size(), 0);
  uncovered_ = static_cast<int>(cuts_.cuts.size());
}

int AugState::coverage(EdgeId e) const {
  if (in_h(e) || in_a(e)) return 0;
  int cnt = 0;
  for (std::size_t i = 0; i < cuts_.cuts.size(); ++i) {
    if (covered_[i]) continue;
    if (cut_covered_by(cuts_.cuts[i], *g_, e)) ++cnt;
  }
  return cnt;
}

void AugState::add_to_a(EdgeId e) {
  DECK_CHECK(!in_h(e));
  if (in_a(e)) return;
  a_mask_[static_cast<std::size_t>(e)] = 1;
  for (std::size_t i = 0; i < cuts_.cuts.size(); ++i) {
    if (!covered_[i] && cut_covered_by(cuts_.cuts[i], *g_, e)) {
      covered_[i] = 1;
      --uncovered_;
    }
  }
}

std::vector<char> AugState::result_mask() const {
  std::vector<char> out = h_mask_;
  for (std::size_t e = 0; e < a_mask_.size(); ++e)
    if (a_mask_[e]) out[e] = 1;
  return out;
}

int rounded_ce_exponent(int ce, Weight w) {
  DECK_CHECK(ce >= 1 && w >= 1);
  int j = -62;
  for (; j < 62; ++j) {
    // Does 2^j > ce / w hold, i.e. w * 2^j > ce?
    bool holds;
    if (j >= 0) {
      const int shift = j > 40 ? 40 : j;
      holds = (w << shift) > ce;
    } else {
      const int shift = -j > 40 ? 40 : -j;
      holds = w > (static_cast<Weight>(ce) << shift);
    }
    if (holds) break;
  }
  return j;
}

}  // namespace deck
