#pragma once

// Thurimella sparse certificates [36]: k successive maximal spanning forests
// form a k-edge-connected spanning subgraph with <= k(n-1) edges — the
// classic 2-approximation for *unweighted* k-ECSS the paper improves on for
// the weighted case, and a baseline for T3/T2.

#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace deck {

/// Sequential certificate: union of k edge-disjoint spanning forests.
/// Requires g to be k-edge-connected (each forest is then a spanning tree).
std::vector<EdgeId> sparse_certificate(const Graph& g, int k);

/// Distributed variant: runs k distributed MSTs on the remaining edges
/// (weights = edge ids, any spanning tree works), charging rounds to `net`.
/// Matches the O(k(D + sqrt n log* n)) bound of [36] up to log factors.
std::vector<EdgeId> sparse_certificate_distributed(Network& net, int k);

}  // namespace deck
