#include "ecss/unweighted_2ecss.hpp"

#include <algorithm>
#include <set>

#include "congest/primitives.hpp"
#include "support/check.hpp"

namespace deck {

Unweighted2EcssResult unweighted_2ecss_2approx(Network& net, VertexId root) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  Unweighted2EcssResult out;
  out.bfs = distributed_bfs(net, root);
  const CommForest forest = CommForest::from_tree(out.bfs);

  std::vector<char> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
  for (VertexId v = 0; v < n; ++v)
    if (out.bfs.parent_edge(v) != kNoEdge)
      is_tree[static_cast<std::size_t>(out.bfs.parent_edge(v))] = 1;

  // Root-path exchange across every non-tree edge so both endpoints learn
  // the LCA depth (payload = own depth in words; pipelined, O(D) rounds).
  {
    std::vector<EdgeId> ex;
    std::vector<std::vector<std::uint64_t>> fu, fv;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (is_tree[static_cast<std::size_t>(e)]) continue;
      ex.push_back(e);
      fu.emplace_back(static_cast<std::size_t>(out.bfs.depth(g.edge(e).u)), 0);
      fv.emplace_back(static_cast<std::size_t>(out.bfs.depth(g.edge(e).v)), 0);
    }
    edge_exchange(net, ex, fu, fv);
  }

  // Per-vertex: minimum LCA depth over non-tree edges into the subtree,
  // carrying the winning edge id. Encode (depth << 32) | edge.
  constexpr std::uint64_t kNone = ~0ULL;
  std::vector<std::uint64_t> val(static_cast<std::size_t>(n), kNone);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_tree[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    const VertexId l = out.bfs.lca(ed.u, ed.v);
    const std::uint64_t enc =
        (static_cast<std::uint64_t>(out.bfs.depth(l)) << 32) | static_cast<std::uint64_t>(e);
    for (VertexId x : {ed.u, ed.v}) {
      val[static_cast<std::size_t>(x)] = std::min(val[static_cast<std::size_t>(x)], enc);
    }
  }
  val = convergecast(net, forest, std::move(val), CombineOp::kMin);

  std::set<EdgeId> aug;
  for (VertexId v = 0; v < n; ++v) {
    if (v == root) continue;
    const std::uint64_t enc = val[static_cast<std::size_t>(v)];
    DECK_CHECK_MSG(enc != kNone, "graph is not 2-edge-connected: subtree has no exit");
    const auto lca_depth = static_cast<int>(enc >> 32);
    DECK_CHECK_MSG(lca_depth < out.bfs.depth(v),
                   "graph is not 2-edge-connected: no edge leaves the subtree");
    aug.insert(static_cast<EdgeId>(enc & 0xffffffffULL));
  }

  for (VertexId v = 0; v < n; ++v)
    if (out.bfs.parent_edge(v) != kNoEdge) out.edges.push_back(out.bfs.parent_edge(v));
  out.edges.insert(out.edges.end(), aug.begin(), aug.end());
  return out;
}

}  // namespace deck
