#pragma once

// O(D)-round 2-approximation for unweighted 2-ECSS (Censor-Hillel–Dory [1],
// used by §5 to build the 2-edge-connected base H of the 3-ECSS algorithm).
//
// BFS tree T plus, for every non-root vertex v, the "highest-reaching"
// non-tree edge out of v's subtree (minimum BFS depth of the endpoints'
// LCA). Each such edge covers (v, p(v)); the union has <= 2(n-1) edges,
// and any 2-ECSS needs >= n edges, giving the factor 2. The subtree minima
// are one convergecast; LCA depths come from root-path exchanges over the
// non-tree edges (pipelined, O(D) rounds).

#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace deck {

struct Unweighted2EcssResult {
  std::vector<EdgeId> edges;   // tree + augmentation
  RootedTree bfs;              // the BFS tree (reused by 3-ECSS for labels)
};

/// Requires net.graph() 2-edge-connected. Charges O(D) rounds.
Unweighted2EcssResult unweighted_2ecss_2approx(Network& net, VertexId root = 0);

}  // namespace deck
