#pragma once

// Sequential greedy k-ECSS baseline: the §2.1 framework run with the classic
// greedy set-cover rule (always take the edge of maximum cost-effectiveness).
// Per Claim 2.1 this stacks k augmentations: MST first (the optimal Aug_1),
// then greedy covers of the size-(i-1) cuts for i = 2..k. O(k log n)-approx.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Greedy augmentation of h_mask (which must be (cut_size)-edge-connected)
/// to (cut_size+1)-edge-connectivity; returns the added edges.
std::vector<EdgeId> greedy_aug(const Graph& g, const std::vector<char>& h_mask, int cut_size,
                               std::uint64_t seed);

/// Full greedy k-ECSS; returns the selected edge set. Requires g to be
/// k-edge-connected.
std::vector<EdgeId> greedy_kecss(const Graph& g, int k, std::uint64_t seed);

}  // namespace deck
