#pragma once

// Exact minimum-weight k-ECSS by branch and bound, for the small instances
// used to report true approximation ratios (T1/T2). Prunes with the running
// best, a degree-based lower bound on the undecided suffix, and feasibility
// of the optimistic completion.

#include <vector>

#include "graph/graph.hpp"

namespace deck {

/// Returns the optimal edge set; DECK_CHECKs m <= 24.
std::vector<EdgeId> exact_kecss(const Graph& g, int k);

}  // namespace deck
