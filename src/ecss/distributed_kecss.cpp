#include "ecss/distributed_kecss.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "congest/primitives.hpp"
#include "ecss/aug_framework.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/mst_seq.hpp"
#include "mst/distributed_mst.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

/// Shares a list of edge ids with every vertex via the BFS pipeline
/// (keyed upcast from the endpoints + pipelined broadcast), O(D + |list|).
void share_edges_globally(Network& net, const CommForest& bfs, VertexId root,
                          const Graph& g, const std::vector<EdgeId>& edges) {
  const int n = g.num_vertices();
  std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
  for (EdgeId e : edges)
    items[static_cast<std::size_t>(std::min(g.edge(e).u, g.edge(e).v))].push_back(
        KeyedItem{static_cast<std::uint64_t>(e), 0, 0});
  auto fin = keyed_min_upcast(net, bfs, std::move(items));
  std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
  root_items[static_cast<std::size_t>(root)] = fin[static_cast<std::size_t>(root)];
  pipelined_broadcast(net, bfs, std::move(root_items));
}

/// O(D) control exchange (max/OR aggregation + broadcast of one word).
void control_round(Network& net, const CommForest& bfs) {
  std::vector<std::uint64_t> val(bfs.parent.size(), 0);
  convergecast(net, bfs, val, CombineOp::kMax);
  broadcast(net, bfs, val);
}

struct LevelOutcome {
  std::vector<EdgeId> added;
  int iterations = 0;
};

/// One §4 augmentation level: covers all cuts of size `level - 1` of the
/// (level-1)-edge-connected subgraph `h`. Every vertex knows H (shared
/// beforehand) and learns every addition, so cost-effectiveness is local.
LevelOutcome run_aug_level(Network& net, const CommForest& bfs_forest, VertexId root,
                           const std::vector<EdgeId>& h, int level, const KecssOptions& opt,
                           std::uint64_t cut_seed) {
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  const int m = g.num_edges();
  const int log_n = std::max(1, static_cast<int>(std::ceil(std::log2(std::max(2, n)))));
  const int phase_len = std::max(1, opt.phase_m * log_n);
  const int p_start_exp = static_cast<int>(std::ceil(std::log2(std::max(2, m))));

  net.begin_phase("kecss.aug" + std::to_string(level));
  // Shared enumeration seed (one O(D) broadcast).
  control_round(net, bfs_forest);
  AugState st(g, edge_mask(g, h), level - 1, cut_seed);

  LevelOutcome out;

  // Free cover: weight-0 edges pass through the Kruskal filter first.
  {
    std::vector<EdgeId> zero;
    for (EdgeId e = 0; e < m; ++e)
      if (!st.in_h(e) && g.edge(e).w == 0 && st.coverage(e) > 0) zero.push_back(e);
    if (!zero.empty()) {
      share_edges_globally(net, bfs_forest, root, g, zero);
      for (EdgeId e : kruskal_filter(g, {}, zero)) {
        st.add_to_a(e);
        out.added.push_back(e);
      }
    }
  }

  int last_exp = std::numeric_limits<int>::max();
  int p_exp = p_start_exp;  // activation probability = 2^-p_exp
  int iter_in_phase = 0;

  // Cost-effectiveness is a pure function of (H, A); cache it between
  // iterations and refresh only after additions. (The per-iteration O(D)
  // control exchanges are still charged each iteration.)
  std::vector<int> exponent(static_cast<std::size_t>(m), std::numeric_limits<int>::min());
  int global_max = std::numeric_limits<int>::min();
  bool dirty = true;

  while (!st.all_covered()) {
    DECK_CHECK_MSG(out.iterations < opt.max_iterations_per_level, "Aug did not converge");
    ++out.iterations;

    // (1)-(2) Local cost-effectiveness; global max exponent (O(D)).
    if (dirty) {
      dirty = false;
      global_max = std::numeric_limits<int>::min();
      for (EdgeId e = 0; e < m; ++e) {
        exponent[static_cast<std::size_t>(e)] = std::numeric_limits<int>::min();
        if (st.in_h(e) || st.in_a(e)) continue;
        const int ce = st.coverage(e);
        if (ce == 0) continue;
        const Weight w = std::max<Weight>(1, g.edge(e).w);
        exponent[static_cast<std::size_t>(e)] = rounded_ce_exponent(ce, w);
        global_max = std::max(global_max, exponent[static_cast<std::size_t>(e)]);
      }
    }
    control_round(net, bfs_forest);
    DECK_CHECK_MSG(global_max != std::numeric_limits<int>::min(),
                   "uncovered cut with no covering edge: input not k-edge-connected");

    // Schedule: a new (smaller) maximum resets p to 1/2^ceil(log m).
    if (global_max != last_exp) {
      last_exp = global_max;
      p_exp = p_start_exp;
      iter_in_phase = 0;
    }

    // (3) Candidate activation with probability 2^-p_exp (coin drawn by
    // the smaller endpoint, shared over the edge: 1 round).
    std::vector<EdgeId> actives;
    for (EdgeId e = 0; e < m; ++e) {
      if (exponent[static_cast<std::size_t>(e)] != global_max) continue;
      const std::uint64_t coin = mix64(opt.seed ^ 0x6b45ull ^
                                       (static_cast<std::uint64_t>(level) << 48) ^
                                       (static_cast<std::uint64_t>(out.iterations) << 24) ^
                                       static_cast<std::uint64_t>(e));
      // Activation with probability 2^-p_exp: top p_exp bits all zero.
      if (p_exp == 0 || (coin >> (64 - p_exp)) == 0) actives.push_back(e);
    }
    net.charge(1, actives.size() + 1);

    // (4) Activation share + Kruskal filter (== the §4 MST filter).
    const bool skip = actives.empty() && opt.fast_forward;
    if (!skip) {
      share_edges_globally(net, bfs_forest, root, g, actives);
      const auto joined = kruskal_filter(g, out.added, actives);
      for (EdgeId e : joined) {
        st.add_to_a(e);
        out.added.push_back(e);
      }
      if (!actives.empty()) dirty = true;  // Claim 4.3: their cuts are now covered
    }
    // else: "no active candidate anywhere" piggybacks as one extra bit on
    // the termination control round below — no additional cost.

    // (5) Termination detection (O(D)); p schedule advance.
    control_round(net, bfs_forest);
    if (++iter_in_phase >= phase_len && p_exp > 0) {
      p_exp = std::max(0, p_exp - 1);
      iter_in_phase = 0;
    }
  }
  return out;
}

/// Optimal connector (Aug for connectivity -> 1): distributed MST on a copy
/// with the existing edges forced to weight 0; the non-H MST edges are the
/// minimum-weight set connecting H's components.
std::vector<EdgeId> run_connector_level(Network& net, const RootedTree& bfs,
                                        const std::vector<EdgeId>& h) {
  const Graph& g = net.graph();
  std::vector<char> in_h = edge_mask(g, h);
  Graph forced(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    forced.add_edge(g.edge(e).u, g.edge(e).v,
                    in_h[static_cast<std::size_t>(e)] ? 0 : 1 + g.edge(e).w);
  Network sub(forced, net.hub());
  const RootedTree sub_bfs = distributed_bfs(sub, bfs.roots()[0]);
  MstResult mst = distributed_mst(sub, sub_bfs);
  net.charge(sub.rounds(), sub.messages());
  std::vector<EdgeId> added;
  for (EdgeId e : mst.mst_edges)
    if (!in_h[static_cast<std::size_t>(e)]) added.push_back(e);
  return added;
}

}  // namespace

KecssResult distributed_kecss(Network& net, int k, const KecssOptions& opt) {
  DECK_CHECK(k >= 1);
  const Graph& g = net.graph();
  KecssResult result;

  net.begin_phase("kecss.bfs");
  const VertexId root = 0;
  const RootedTree bfs = distributed_bfs(net, root);
  const CommForest bfs_forest = CommForest::from_tree(bfs);

  // Aug_1: distributed MST (optimal). Everyone then learns H.
  net.begin_phase("kecss.aug1(mst)");
  MstResult mst = distributed_mst(net, bfs);
  std::vector<EdgeId> h = mst.mst_edges;
  share_edges_globally(net, bfs_forest, root, g, h);

  Rng seed_rng(opt.seed);
  for (int level = 2; level <= k; ++level) {
    const LevelOutcome out = run_aug_level(net, bfs_forest, root, h, level, opt, seed_rng());
    h.insert(h.end(), out.added.begin(), out.added.end());
    result.iterations += out.iterations;
    result.iterations_per_aug.push_back(out.iterations);
  }

  std::sort(h.begin(), h.end());
  h.erase(std::unique(h.begin(), h.end()), h.end());
  result.edges = h;
  for (EdgeId e : h) result.weight += g.edge(e).w;
  return result;
}

AugmentResult distributed_augment(Network& net, const std::vector<EdgeId>& h_edges, int target_k,
                                  const KecssOptions& opt) {
  DECK_CHECK(target_k >= 1);
  const Graph& g = net.graph();
  AugmentResult result;

  net.begin_phase("augment.setup");
  const VertexId root = 0;
  const RootedTree bfs = distributed_bfs(net, root);
  const CommForest bfs_forest = CommForest::from_tree(bfs);
  // Everyone learns the existing subgraph (O(D + |H|)).
  share_edges_globally(net, bfs_forest, root, g, h_edges);

  // Current connectivity of H — a local computation on global knowledge.
  std::vector<EdgeId> h = h_edges;
  int lambda = g.num_vertices() <= 1
                   ? target_k
                   : edge_connectivity(g, edge_mask(g, h));

  if (lambda == 0 && target_k >= 1) {
    net.begin_phase("augment.connector");
    const auto added = run_connector_level(net, bfs, h);
    for (EdgeId e : added) {
      h.push_back(e);
      result.added.push_back(e);
    }
    share_edges_globally(net, bfs_forest, root, g, added);
    lambda = 1;
  }

  Rng seed_rng(opt.seed ^ 0xa46ull);
  for (int level = lambda + 1; level <= target_k; ++level) {
    const LevelOutcome out = run_aug_level(net, bfs_forest, root, h, level, opt, seed_rng());
    h.insert(h.end(), out.added.begin(), out.added.end());
    result.added.insert(result.added.end(), out.added.begin(), out.added.end());
    result.iterations += out.iterations;
  }

  std::sort(result.added.begin(), result.added.end());
  result.added.erase(std::unique(result.added.begin(), result.added.end()), result.added.end());
  for (EdgeId e : result.added) result.added_weight += g.edge(e).w;
  return result;
}

}  // namespace deck
