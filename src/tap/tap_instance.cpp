#include "tap/tap_instance.hpp"

#include <algorithm>
#include <numeric>

#include "graph/bridges.hpp"
#include "support/check.hpp"

namespace deck {

std::vector<EdgeId> TapInstance::links() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!tree_mask[static_cast<std::size_t>(e)]) out.push_back(e);
  return out;
}

std::vector<EdgeId> TapInstance::covered_by(EdgeId e) const {
  const Edge& ed = g.edge(e);
  return tree.path_edges(ed.u, ed.v);
}

bool TapInstance::covers_all(const std::vector<EdgeId>& aug) const {
  std::vector<char> covered(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : aug) {
    for (EdgeId t : covered_by(e)) covered[static_cast<std::size_t>(t)] = 1;
  }
  for (EdgeId t : tree_edges)
    if (!covered[static_cast<std::size_t>(t)]) return false;
  return true;
}

Weight TapInstance::weight_of(const std::vector<EdgeId>& edges) const {
  Weight w = 0;
  for (EdgeId e : edges) w += g.edge(e).w;
  return w;
}

TapInstance make_tap_instance(const Graph& g, const std::vector<EdgeId>& tree_edges,
                              VertexId root) {
  TapInstance inst;
  inst.g = g;
  inst.tree_edges = tree_edges;
  inst.tree_mask.assign(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree_edges) inst.tree_mask[static_cast<std::size_t>(e)] = 1;

  // Root the tree.
  Graph t(g.num_vertices());
  std::vector<EdgeId> back;
  for (EdgeId e : tree_edges) {
    t.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
    back.push_back(e);
  }
  RootedTree rt = bfs_tree(t, root);
  std::vector<VertexId> parent(static_cast<std::size_t>(g.num_vertices()));
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    parent[static_cast<std::size_t>(v)] = rt.parent(v);
    const EdgeId pe = rt.parent_edge(v);
    parent_edge[static_cast<std::size_t>(v)] =
        pe == kNoEdge ? kNoEdge : back[static_cast<std::size_t>(pe)];
  }
  inst.tree = RootedTree(std::move(parent), std::move(parent_edge));
  DECK_CHECK_MSG(inst.tree.roots().size() == 1, "tree edges must span a connected tree");
  return inst;
}

TapInstance random_tap_instance(int n, int extra, int weight_model, Rng& rng) {
  DECK_CHECK(n >= 3);
  Graph g(n);
  std::vector<EdgeId> tree_edges;
  // Random attachment tree.
  for (VertexId v = 1; v < n; ++v) {
    const auto p = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(v)));
    tree_edges.push_back(g.add_edge(v, p, 1 + static_cast<Weight>(rng.next_below(4))));
  }
  auto draw_weight = [&]() -> Weight {
    switch (weight_model) {
      case 0: return 1;
      case 2: return 1 + static_cast<Weight>(rng.next_below(static_cast<std::uint64_t>(n) * n));
      default: return 1 + static_cast<Weight>(rng.next_below(static_cast<std::uint64_t>(n)));
    }
  };
  // Coverage guarantee: chain links v -> v+1 complement the tree into a
  // 2-edge-connected graph... not generally; instead connect every leaf-ish
  // vertex circularly: link i -> (i+1) mod n covers every tree edge because
  // the cycle 0-1-...-n-1 plus the tree is 2-edge-connected.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId u = (v + 1) % n;
    if (g.find_edge(v, u) == kNoEdge) g.add_edge(v, u, draw_weight());
  }
  int added = 0, attempts = 0;
  while (added < extra && attempts < 40 * extra + 40) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || g.find_edge(u, v) != kNoEdge) continue;
    g.add_edge(u, v, draw_weight());
    ++added;
  }
  return make_tap_instance(g, tree_edges, 0);
}

}  // namespace deck
