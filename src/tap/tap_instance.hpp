#pragma once

// Weighted Tree Augmentation Problem (TAP) instances.
//
// TAP (paper §3): given spanning tree T of G, add a minimum-weight set of
// non-tree edges A so that T ∪ A is 2-edge-connected — equivalently, cover
// every tree edge, where non-tree edge e = {u,v} covers exactly the tree
// edges on the tree path between u and v (cuts of size 1 are tree edges).

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "support/rng.hpp"

namespace deck {

struct TapInstance {
  Graph g;                        // host graph (tree + links)
  std::vector<EdgeId> tree_edges; // the given spanning tree
  std::vector<char> tree_mask;    // per edge id
  RootedTree tree;                // rooted at 0

  /// Non-tree ("link") edge ids.
  std::vector<EdgeId> links() const;

  /// Tree edges covered by link e (the fundamental path).
  std::vector<EdgeId> covered_by(EdgeId e) const;

  /// True iff every tree edge is covered by at least one edge of `aug`.
  bool covers_all(const std::vector<EdgeId>& aug) const;

  Weight weight_of(const std::vector<EdgeId>& edges) const;
};

/// Wraps an existing graph + spanning tree into a TAP instance.
TapInstance make_tap_instance(const Graph& g, const std::vector<EdgeId>& tree_edges,
                              VertexId root = 0);

/// Random instance: a random spanning tree over n vertices plus `extra`
/// random links (weights from the model), guaranteed coverable (a link
/// closes a cycle over every tree edge via per-leaf fallback links).
TapInstance random_tap_instance(int n, int extra, int weight_model, Rng& rng);

}  // namespace deck
