#pragma once

// Sequential TAP solvers: the classic greedy set-cover algorithm (the
// O(log n)-approximation the paper's framework parallelises, §2.1) and an
// exact branch-and-bound for small instances (used to measure true
// approximation ratios in T1).

#include <vector>

#include "graph/graph.hpp"
#include "tap/tap_instance.hpp"

namespace deck {

/// Greedy: repeatedly add the link maximising |uncovered path| / weight
/// (weight-0 links first). Guaranteed O(log n)-approximation.
std::vector<EdgeId> greedy_tap(const TapInstance& inst);

/// Exact minimum-weight augmentation via branch and bound over links.
/// Feasible only for small link counts (<= ~26); DECK_CHECKs the bound.
std::vector<EdgeId> exact_tap(const TapInstance& inst);

}  // namespace deck
