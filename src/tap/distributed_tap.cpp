#include "tap/distributed_tap.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace deck {

namespace {

/// Winner key: (r_e, edge id) lexicographic; smaller wins.
struct Winner {
  std::uint64_t r = std::numeric_limits<std::uint64_t>::max();
  EdgeId e = kNoEdge;
  bool valid() const { return e != kNoEdge; }
  bool operator<(const Winner& o) const { return r != o.r ? r < o.r : e < o.e; }
};

void take_min(std::optional<Winner>& slot, const Winner& w) {
  if (!slot || w < *slot) slot = w;
}

/// Path-case decomposition of a link (see distributed_tap.hpp and §3.1).
enum class PathCase { kSameSeg, kUnderDu, kUnderDv, kViaRoots };

struct LinkInfo {
  EdgeId e = kNoEdge;
  VertexId u = kNoVertex, v = kNoVertex;
  PathCase pcase = PathCase::kViaRoots;
  int u_anc_cover = 0;        // covered prefix of u's ancestor path (edge count)
  int v_anc_cover = 0;
  bool u_highway_below = false;  // covers highway of seg(u) from attach(u) down
  bool v_highway_below = false;
  std::vector<int> chain;     // skeleton-path segments (full highways covered)
};

struct SegSideView {
  int seg = -1;
  VertexId r = kNoVertex;     // segment root (the vertex itself for the tree root)
  VertexId d = kNoVertex;     // unique descendant of the member segment
  int sdepth = 0;
  int attach = 0;
};

class TapEngine {
 public:
  TapEngine(Network& net, const SegmentDecomposition& dec, const CommForest& bfs_forest,
            VertexId root, const TapOptions& opt)
      : net_(net), dec_(dec), g_(net.graph()), bfs_(bfs_forest), root_(root), opt_(opt) {}

  TapResult run();

  /// FT-MST application of machinery (II): minimum-weight covering edge per
  /// tree edge (the replacement/swap edges of [14]). One winner pass.
  std::vector<EdgeId> replacements();

 private:
  /// Classifies every link and charges the one-time setup exchanges.
  void init_links();
  SegSideView side_view(VertexId x) const;
  LinkInfo classify(EdgeId e) const;
  bool tree_anc(VertexId marked_m, const SegSideView& side, VertexId x) const;

  int uncovered_on_link(const LinkInfo& li) const;
  void refresh_knowledge();
  /// Winner passes over a predicate edge set; fills winner-per-tree-edge.
  std::vector<std::optional<Winner>> winner_passes(const std::vector<EdgeId>& edges,
                                                   const std::vector<std::uint64_t>& r_of_edge);
  void distribute_winners(const std::vector<std::optional<Winner>>& winner);

  Network& net_;
  const SegmentDecomposition& dec_;
  const Graph& g_;
  const CommForest& bfs_;
  VertexId root_;
  TapOptions opt_;

  std::vector<LinkInfo> links_;
  std::vector<int> link_index_;          // per edge id, -1 for tree edges
  std::vector<char> in_a_;
  std::vector<char> covered_;            // per tree edge id
  std::vector<std::uint64_t> uncov_seg_; // per segment: uncovered highway edges
  // Distributed winner knowledge refreshed per use:
  std::vector<std::optional<Winner>> best_lr_;   // per segment
  std::vector<std::uint64_t> cnt_lr_;            // per segment: votes for best_lr
};

SegSideView TapEngine::side_view(VertexId x) const {
  SegSideView s;
  s.seg = dec_.seg_of_vertex(x);
  if (s.seg < 0) {
    s.r = x;  // global root
    s.d = x;
    s.sdepth = 0;
    s.attach = 0;
    return s;
  }
  const Segment& seg = dec_.segment(s.seg);
  s.r = seg.r;
  s.d = seg.d;
  s.sdepth = dec_.seg_depth(x);
  s.attach = dec_.attach_pos(x);
  return s;
}

bool TapEngine::tree_anc(VertexId m, const SegSideView& side, VertexId x) const {
  // m is marked (or the tree root). Ancestors of x: itself, interior of its
  // segment path (unmarked except the segment root), then skeleton ancestors
  // of its segment root.
  if (m == x) return true;
  if (m == side.r) return true;
  if (!dec_.is_marked(side.r)) return false;  // side.r is the root vertex itself
  return dec_.is_marked(m) && dec_.skeleton_is_ancestor(m, side.r);
}

LinkInfo TapEngine::classify(EdgeId e) const {
  LinkInfo li;
  li.e = e;
  li.u = g_.edge(e).u;
  li.v = g_.edge(e).v;
  const SegSideView su = side_view(li.u);
  const SegSideView sv = side_view(li.v);

  if (su.seg >= 0 && su.seg == sv.seg) {
    // Same segment: exact LCA from the exchanged ancestor chains.
    li.pcase = PathCase::kSameSeg;
    std::vector<VertexId> cu{li.u};
    for (VertexId a : dec_.anc_path_vertices(li.u)) cu.push_back(a);
    std::vector<VertexId> cv{li.v};
    for (VertexId a : dec_.anc_path_vertices(li.v)) cv.push_back(a);
    std::size_t c = 0;
    while (c < cu.size() && c < cv.size() &&
           cu[cu.size() - 1 - c] == cv[cv.size() - 1 - c])
      ++c;
    DECK_CHECK_MSG(c >= 1, "same-segment chains must share the segment root");
    li.u_anc_cover = static_cast<int>(cu.size() - c);
    li.v_anc_cover = static_cast<int>(cv.size() - c);
    return li;
  }

  const VertexId du = su.d;
  const VertexId dv = sv.d;
  if (tree_anc(du, sv, li.v) && du != li.v) {
    // v lies strictly under the descendant of u's segment.
    li.pcase = PathCase::kUnderDu;
    li.u_anc_cover = su.sdepth - su.attach;
    li.u_highway_below =
        su.seg >= 0 && su.attach < static_cast<int>(dec_.segment(su.seg).highway.size());
    li.v_anc_cover = sv.sdepth;
    for (VertexId x = sv.r; x != du;) {
      DECK_CHECK(dec_.is_marked(x));
      li.chain.push_back(dec_.seg_of_vertex(x));
      x = dec_.skeleton_parent(x);
      DECK_CHECK(x != kNoVertex);
    }
    return li;
  }
  if (tree_anc(dv, su, li.u) && dv != li.u) {
    li.pcase = PathCase::kUnderDv;
    li.v_anc_cover = sv.sdepth - sv.attach;
    li.v_highway_below =
        sv.seg >= 0 && sv.attach < static_cast<int>(dec_.segment(sv.seg).highway.size());
    li.u_anc_cover = su.sdepth;
    for (VertexId x = su.r; x != dv;) {
      DECK_CHECK(dec_.is_marked(x));
      li.chain.push_back(dec_.seg_of_vertex(x));
      x = dec_.skeleton_parent(x);
      DECK_CHECK(x != kNoVertex);
    }
    return li;
  }
  li.pcase = PathCase::kViaRoots;
  li.u_anc_cover = su.sdepth;
  li.v_anc_cover = sv.sdepth;
  if (su.r != sv.r) {
    li.chain = dec_.skeleton_path_segments(su.r, sv.r);
  }
  return li;
}

int TapEngine::uncovered_on_link(const LinkInfo& li) const {
  int cnt = 0;
  const auto& eu = dec_.anc_path_edges(li.u);
  for (int i = 0; i < li.u_anc_cover; ++i)
    if (!covered_[static_cast<std::size_t>(eu[static_cast<std::size_t>(i)])]) ++cnt;
  const auto& ev = dec_.anc_path_edges(li.v);
  for (int i = 0; i < li.v_anc_cover; ++i)
    if (!covered_[static_cast<std::size_t>(ev[static_cast<std::size_t>(i)])]) ++cnt;
  if (li.u_highway_below) {
    const Segment& s = dec_.segment(dec_.seg_of_vertex(li.u));
    for (std::size_t i = static_cast<std::size_t>(dec_.attach_pos(li.u)); i < s.highway.size(); ++i)
      if (!covered_[static_cast<std::size_t>(s.highway[i])]) ++cnt;
  }
  if (li.v_highway_below) {
    const Segment& s = dec_.segment(dec_.seg_of_vertex(li.v));
    for (std::size_t i = static_cast<std::size_t>(dec_.attach_pos(li.v)); i < s.highway.size(); ++i)
      if (!covered_[static_cast<std::size_t>(s.highway[i])]) ++cnt;
  }
  for (int s : li.chain) cnt += static_cast<int>(uncov_seg_[static_cast<std::size_t>(s)]);
  return cnt;
}

void TapEngine::refresh_knowledge() {
  const RootedTree& tree = dec_.tree();
  const int n = g_.num_vertices();

  // (a) Every vertex refreshes the covered flags of its ancestor path.
  {
    std::vector<KeyedItem> own(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      if (tree.parent_edge(v) == kNoEdge) continue;
      own[static_cast<std::size_t>(v)] = KeyedItem{
          static_cast<std::uint64_t>(tree.parent_edge(v)),
          static_cast<std::uint64_t>(covered_[static_cast<std::size_t>(tree.parent_edge(v))]), 0};
    }
    path_downcast(net_, dec_.seg_forest(), own);
  }
  // (b) Highway covered flags, broadcast within each segment.
  {
    std::vector<std::vector<KeyedItem>> lists(static_cast<std::size_t>(dec_.num_segments()));
    for (int s = 0; s < dec_.num_segments(); ++s) {
      const Segment& seg = dec_.segment(s);
      for (std::size_t i = 0; i < seg.highway.size(); ++i)
        lists[static_cast<std::size_t>(s)].push_back(
            KeyedItem{
                i, static_cast<std::uint64_t>(covered_[static_cast<std::size_t>(seg.highway[i])]),
                0});
    }
    segment_broadcast(net_, dec_, lists);
  }
  // (c) Per-segment uncovered highway counts, shared globally.
  {
    std::vector<std::uint64_t> val(static_cast<std::size_t>(n), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!dec_.on_highway(v) || dec_.seg_of_vertex(v) < 0) continue;
      const EdgeId pe = tree.parent_edge(v);
      if (pe == kNoEdge) continue;
      if (dec_.seg_of_edge(pe) == dec_.seg_of_vertex(v) && !covered_[static_cast<std::size_t>(pe)])
        val[static_cast<std::size_t>(v)] = 1;
    }
    uncov_seg_ = segment_aggregate(net_, dec_, val, CombineOp::kSum, 0);
    // Global share over the BFS pipeline.
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    for (int s = 0; s < dec_.num_segments(); ++s)
      items[static_cast<std::size_t>(dec_.segment(s).r)].push_back(
          KeyedItem{static_cast<std::uint64_t>(s), uncov_seg_[static_cast<std::size_t>(s)], 0});
    auto fin = keyed_min_upcast(net_, bfs_, std::move(items));
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(root_)] = fin[static_cast<std::size_t>(root_)];
    pipelined_broadcast(net_, bfs_, std::move(root_items));
  }
  // (d) Same-segment links exchange coverage bitmasks of their paths.
  {
    std::vector<EdgeId> ex_edges;
    std::vector<std::vector<std::uint64_t>> from_u, from_v;
    for (const LinkInfo& li : links_) {
      if (li.pcase != PathCase::kSameSeg || in_a_[static_cast<std::size_t>(li.e)]) continue;
      ex_edges.push_back(li.e);
      auto pack = [&](VertexId x) {
        const auto& edges = dec_.anc_path_edges(x);
        std::vector<std::uint64_t> words((edges.size() + 63) / 64, 0);
        for (std::size_t i = 0; i < edges.size(); ++i)
          if (covered_[static_cast<std::size_t>(edges[i])]) words[i / 64] |= 1ULL << (i % 64);
        return words;
      };
      from_u.push_back(pack(li.u));
      from_v.push_back(pack(li.v));
    }
    edge_exchange(net_, ex_edges, from_u, from_v);
  }
}

std::vector<std::optional<Winner>> TapEngine::winner_passes(
    const std::vector<EdgeId>& edges, const std::vector<std::uint64_t>& r_of_edge) {
  const RootedTree& tree = dec_.tree();
  const int n = g_.num_vertices();
  const int num_segs = dec_.num_segments();

  // (i) Ancestor-path contributions (short range + mid range case 1).
  std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    const LinkInfo& li =
        links_[static_cast<std::size_t>(link_index_[static_cast<std::size_t>(edges[idx])])];
    const std::uint64_t r = r_of_edge[idx];
    auto contribute = [&](VertexId x, int cover_len) {
      const int sd = dec_.seg_of_vertex(x) < 0 ? 0 : dec_.seg_depth(x);
      for (int i = 0; i < cover_len; ++i) {
        const auto key = static_cast<std::uint64_t>(sd - i - 1);
        items[static_cast<std::size_t>(x)].push_back(
            KeyedItem{key, r, static_cast<std::uint64_t>(li.e)});
      }
    };
    contribute(li.u, li.u_anc_cover);
    contribute(li.v, li.v_anc_cover);
  }
  auto anc_final = ancestor_min_merge(net_, dec_.seg_forest(), std::move(items));

  // (ii) Mid-range case 2: per-attachment minima, then a highway prefix scan.
  std::vector<std::vector<std::optional<Winner>>> attach_min(static_cast<std::size_t>(num_segs));
  for (int s = 0; s < num_segs; ++s)
    attach_min[static_cast<std::size_t>(s)].assign(dec_.segment(s).highway_vertices.size(),
                                                   std::nullopt);
  {
    std::uint64_t max_h = 0, msgs = 0;
    for (std::size_t idx = 0; idx < edges.size(); ++idx) {
      const LinkInfo& li =
          links_[static_cast<std::size_t>(link_index_[static_cast<std::size_t>(edges[idx])])];
      const Winner w{r_of_edge[idx], li.e};
      auto add = [&](VertexId x, bool below) {
        if (!below) return;
        const int s = dec_.seg_of_vertex(x);
        take_min(
            attach_min[static_cast<std::size_t>(s)][static_cast<std::size_t>(dec_.attach_pos(x))],
            w);
        max_h = std::max(max_h, static_cast<std::uint64_t>(dec_.seg_depth(x)));
        ++msgs;
      };
      add(li.u, li.u_highway_below);
      add(li.v, li.v_highway_below);
    }
    // Convergecast over the (disjoint) hanging subtrees T_x.
    net_.charge(max_h + 1, msgs);
  }
  std::vector<std::vector<std::optional<Winner>>> mid(static_cast<std::size_t>(num_segs));
  {
    std::uint64_t max_len = 0, msgs = 0;
    for (int s = 0; s < num_segs; ++s) {
      const Segment& seg = dec_.segment(s);
      mid[static_cast<std::size_t>(s)].assign(seg.highway.size(), std::nullopt);
      std::optional<Winner> acc;
      for (std::size_t i = 0; i < seg.highway.size(); ++i) {
        if (attach_min[static_cast<std::size_t>(s)][i])
          take_min(acc, *attach_min[static_cast<std::size_t>(s)][i]);
        mid[static_cast<std::size_t>(s)][i] = acc;  // covers P(x_i -> d): edges i..end
        if (acc) ++msgs;
      }
      max_len = std::max(max_len, static_cast<std::uint64_t>(seg.highway.size()));
    }
    // Downhill scan along each highway, in parallel.
    net_.charge(max_len + 1, msgs);
  }

  // (iii) Long range: best (r, id) per fully-covered highway via BFS pipeline.
  best_lr_.assign(static_cast<std::size_t>(num_segs), std::nullopt);
  {
    std::vector<std::vector<KeyedItem>> lr(static_cast<std::size_t>(n));
    for (std::size_t idx = 0; idx < edges.size(); ++idx) {
      const LinkInfo& li =
          links_[static_cast<std::size_t>(link_index_[static_cast<std::size_t>(edges[idx])])];
      for (int s : li.chain)
        lr[static_cast<std::size_t>(li.u)].push_back(KeyedItem{
            static_cast<std::uint64_t>(s), r_of_edge[idx], static_cast<std::uint64_t>(li.e)});
    }
    auto fin = keyed_min_upcast(net_, bfs_, std::move(lr));
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(root_)] = fin[static_cast<std::size_t>(root_)];
    auto everywhere = pipelined_broadcast(net_, bfs_, std::move(root_items));
    for (const KeyedItem& it : everywhere[static_cast<std::size_t>(root_)])
      best_lr_[static_cast<std::size_t>(it.key)] = Winner{it.prio, static_cast<EdgeId>(it.payload)};
  }

  // Combine the three sources at each tree edge's lower endpoint.
  std::vector<std::optional<Winner>> winner(static_cast<std::size_t>(g_.num_edges()));
  for (VertexId x = 0; x < n; ++x) {
    const EdgeId pe = tree.parent_edge(x);
    if (pe == kNoEdge) continue;
    std::optional<Winner> w;
    if (anc_final[static_cast<std::size_t>(x)])
      w = Winner{anc_final[static_cast<std::size_t>(x)]->prio,
                 static_cast<EdgeId>(anc_final[static_cast<std::size_t>(x)]->payload)};
    const int s = dec_.seg_of_edge(pe);
    if (s >= 0 && dec_.on_highway(x) && dec_.seg_of_vertex(x) == s) {
      const auto pos = static_cast<std::size_t>(dec_.seg_depth(x) - 1);  // highway edge index
      if (pos < mid[static_cast<std::size_t>(s)].size() && mid[static_cast<std::size_t>(s)][pos])
        take_min(w, *mid[static_cast<std::size_t>(s)][pos]);
      if (best_lr_[static_cast<std::size_t>(s)])
        take_min(w, *best_lr_[static_cast<std::size_t>(s)]);
    }
    winner[static_cast<std::size_t>(pe)] = w;
  }
  return winner;
}

void TapEngine::distribute_winners(const std::vector<std::optional<Winner>>& winner) {
  const RootedTree& tree = dec_.tree();
  const int n = g_.num_vertices();
  // Winners flow down paths and across highways so endpoints can count votes.
  {
    std::vector<KeyedItem> own(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId pe = tree.parent_edge(v);
      if (pe == kNoEdge) continue;
      const auto& w = winner[static_cast<std::size_t>(pe)];
      own[static_cast<std::size_t>(v)] =
          KeyedItem{static_cast<std::uint64_t>(pe), w ? w->r : 0,
                    w ? static_cast<std::uint64_t>(w->e) : 0};
    }
    path_downcast(net_, dec_.seg_forest(), own);
  }
  {
    std::vector<std::vector<KeyedItem>> lists(static_cast<std::size_t>(dec_.num_segments()));
    for (int s = 0; s < dec_.num_segments(); ++s) {
      const Segment& seg = dec_.segment(s);
      for (std::size_t i = 0; i < seg.highway.size(); ++i) {
        const auto& w = winner[static_cast<std::size_t>(seg.highway[i])];
        lists[static_cast<std::size_t>(s)].push_back(
            KeyedItem{i, w ? w->r : 0, w ? static_cast<std::uint64_t>(w->e) : 0});
      }
    }
    segment_broadcast(net_, dec_, lists);
  }
  // Per-segment long-range vote counts (cnt_S), shared globally.
  cnt_lr_.assign(static_cast<std::size_t>(dec_.num_segments()), 0);
  {
    std::vector<std::uint64_t> val(static_cast<std::size_t>(n), 0);
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId pe = tree.parent_edge(v);
      if (pe == kNoEdge || !dec_.on_highway(v)) continue;
      const int s = dec_.seg_of_edge(pe);
      if (s < 0 || s != dec_.seg_of_vertex(v)) continue;
      if (covered_[static_cast<std::size_t>(pe)]) continue;
      const auto& w = winner[static_cast<std::size_t>(pe)];
      const auto& lr = best_lr_[static_cast<std::size_t>(s)];
      if (w && lr && w->e == lr->e) val[static_cast<std::size_t>(v)] = 1;
    }
    cnt_lr_ = segment_aggregate(net_, dec_, val, CombineOp::kSum, 0);
    std::vector<std::vector<KeyedItem>> items(static_cast<std::size_t>(n));
    for (int s = 0; s < dec_.num_segments(); ++s)
      items[static_cast<std::size_t>(dec_.segment(s).r)].push_back(
          KeyedItem{static_cast<std::uint64_t>(s), cnt_lr_[static_cast<std::size_t>(s)], 0});
    auto fin = keyed_min_upcast(net_, bfs_, std::move(items));
    std::vector<std::vector<KeyedItem>> root_items(static_cast<std::size_t>(n));
    root_items[static_cast<std::size_t>(root_)] = fin[static_cast<std::size_t>(root_)];
    pipelined_broadcast(net_, bfs_, std::move(root_items));
  }
}

void TapEngine::init_links() {
  const RootedTree& tree = dec_.tree();
  const int n = g_.num_vertices();

  net_.begin_phase("tap.setup");
  link_index_.assign(static_cast<std::size_t>(g_.num_edges()), -1);
  std::vector<char> is_tree(static_cast<std::size_t>(g_.num_edges()), 0);
  for (VertexId v = 0; v < n; ++v)
    if (tree.parent_edge(v) != kNoEdge) is_tree[static_cast<std::size_t>(tree.parent_edge(v))] = 1;
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    if (is_tree[static_cast<std::size_t>(e)]) continue;
    link_index_[static_cast<std::size_t>(e)] = static_cast<int>(links_.size());
    links_.push_back(classify(e));
  }
  // Setup exchanges: every link's endpoints swap segment summaries (O(1)
  // words) and same-segment links swap their full ancestor chains once.
  {
    std::vector<EdgeId> ex;
    std::vector<std::vector<std::uint64_t>> fu, fv;
    for (const LinkInfo& li : links_) {
      ex.push_back(li.e);
      std::vector<std::uint64_t> su(4, 0), sv(4, 0);
      if (li.pcase == PathCase::kSameSeg) {
        su.resize(4 + dec_.anc_path_vertices(li.u).size());
        sv.resize(4 + dec_.anc_path_vertices(li.v).size());
      }
      fu.push_back(std::move(su));
      fv.push_back(std::move(sv));
    }
    edge_exchange(net_, ex, fu, fv);
  }
}

std::vector<EdgeId> TapEngine::replacements() {
  init_links();
  net_.begin_phase("ftmst.winners");
  std::vector<EdgeId> all_links;
  std::vector<std::uint64_t> prio;
  for (const LinkInfo& li : links_) {
    all_links.push_back(li.e);
    prio.push_back(static_cast<std::uint64_t>(g_.edge(li.e).w));
  }
  const auto winner = winner_passes(all_links, prio);
  std::vector<EdgeId> out(static_cast<std::size_t>(g_.num_edges()), kNoEdge);
  for (EdgeId t = 0; t < g_.num_edges(); ++t)
    if (winner[static_cast<std::size_t>(t)])
      out[static_cast<std::size_t>(t)] = winner[static_cast<std::size_t>(t)]->e;
  return out;
}

TapResult TapEngine::run() {
  const RootedTree& tree = dec_.tree();
  const int n = g_.num_vertices();

  init_links();
  in_a_.assign(static_cast<std::size_t>(g_.num_edges()), 0);
  covered_.assign(static_cast<std::size_t>(g_.num_edges()), 0);
  uncov_seg_.assign(static_cast<std::size_t>(dec_.num_segments()), 0);

  // Weight-0 links join A up front (§3).
  std::vector<EdgeId> zero_adds;
  for (const LinkInfo& li : links_) {
    if (g_.edge(li.e).w == 0) {
      in_a_[static_cast<std::size_t>(li.e)] = 1;
      zero_adds.push_back(li.e);
    }
  }

  auto mark_covered_by = [&](const std::vector<EdgeId>& adds) {
    for (EdgeId e : adds) {
      const LinkInfo& li =
          links_[static_cast<std::size_t>(link_index_[static_cast<std::size_t>(e)])];
      const auto& eu = dec_.anc_path_edges(li.u);
      for (int i = 0; i < li.u_anc_cover; ++i)
        covered_[static_cast<std::size_t>(eu[static_cast<std::size_t>(i)])] = 1;
      const auto& ev = dec_.anc_path_edges(li.v);
      for (int i = 0; i < li.v_anc_cover; ++i)
        covered_[static_cast<std::size_t>(ev[static_cast<std::size_t>(i)])] = 1;
      auto mark_highway = [&](VertexId x, bool below) {
        if (!below) return;
        const Segment& s = dec_.segment(dec_.seg_of_vertex(x));
        for (std::size_t i = static_cast<std::size_t>(dec_.attach_pos(x));
             i < s.highway.size(); ++i)
          covered_[static_cast<std::size_t>(s.highway[i])] = 1;
      };
      mark_highway(li.u, li.u_highway_below);
      mark_highway(li.v, li.v_highway_below);
      for (int s : li.chain)
        for (EdgeId t : dec_.segment(s).highway) covered_[static_cast<std::size_t>(t)] = 1;
    }
  };
  if (!zero_adds.empty()) {
    // Coverage propagation for the initial additions uses the same winner
    // machinery (with A as the edge set).
    std::vector<std::uint64_t> rs(zero_adds.size(), 1);
    auto w = winner_passes(zero_adds, rs);
    mark_covered_by(zero_adds);
    distribute_winners(w);
  }

  TapResult result;

  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    net_.begin_phase("tap.iteration");
    refresh_knowledge();

    // (1)-(2) Rounded cost-effectiveness and the global maximum.
    // exponent j = min integer with 2^j > |Ce| / w  <=>  w << j > |Ce|.
    constexpr int kMinExp = -62, kMaxExp = 62;
    std::vector<int> exponent(links_.size(), std::numeric_limits<int>::min());
    std::vector<int> ce(links_.size(), 0);
    int global_max = std::numeric_limits<int>::min();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const LinkInfo& li = links_[i];
      if (in_a_[static_cast<std::size_t>(li.e)]) continue;
      ce[i] = uncovered_on_link(li);
      if (ce[i] == 0) continue;
      const Weight w = g_.edge(li.e).w;
      DECK_CHECK(w > 0);  // zero-weight links joined A already
      int j = kMinExp;
      while (j < kMaxExp) {
        // Test 2^j > ce/w, i.e. w * 2^j > ce, avoiding overflow via long double-free shifts.
        const long long lhs = j >= 0 ? (w << std::min<long long>(j, 40)) : w;
        if (j >= 0 ? lhs > ce[i] : w > (static_cast<long long>(ce[i]) << std::min(-j, 40)))
          break;
        ++j;
      }
      exponent[i] = j;
      global_max = std::max(global_max, j);
    }
    // Convergecast max + broadcast over the BFS tree.
    {
      std::vector<std::uint64_t> val(static_cast<std::size_t>(n), 0);
      convergecast(net_, bfs_, val, CombineOp::kMax);
      broadcast(net_, bfs_, val);
    }
    if (global_max == std::numeric_limits<int>::min()) {
      // Nothing uncovered can be covered — either done or infeasible.
      break;
    }

    // (3) Candidates draw r_e (shared over the link in one round).
    std::vector<EdgeId> cands;
    std::vector<std::uint64_t> rs;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (exponent[i] != global_max) continue;
      cands.push_back(links_[i].e);
      // Drawn by the smaller-id endpoint; derived deterministically from the
      // shared seed for reproducibility. Range {1..n^8} per the paper.
      rs.push_back(1 + (mix64(opt_.seed ^ (static_cast<std::uint64_t>(iter) << 32) ^
                              static_cast<std::uint64_t>(links_[i].e)) >>
                        1));
    }
    net_.charge(1, cands.size());

    // (4) Winner per uncovered tree edge; (5) vote distribution.
    auto winner = winner_passes(cands, rs);
    distribute_winners(winner);

    // (6) Vote counts; threshold test votes * denom >= |Ce|.
    std::vector<EdgeId> adds;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      const LinkInfo& li =
          links_[static_cast<std::size_t>(link_index_[static_cast<std::size_t>(cands[ci])])];
      const std::size_t i =
          static_cast<std::size_t>(link_index_[static_cast<std::size_t>(cands[ci])]);
      std::uint64_t votes = 0;
      auto count_path = [&](VertexId x, int cover_len) {
        const auto& pe = dec_.anc_path_edges(x);
        for (int k = 0; k < cover_len; ++k) {
          const EdgeId t = pe[static_cast<std::size_t>(k)];
          if (covered_[static_cast<std::size_t>(t)]) continue;
          const auto& w = winner[static_cast<std::size_t>(t)];
          if (w && w->e == li.e) ++votes;
        }
      };
      count_path(li.u, li.u_anc_cover);
      count_path(li.v, li.v_anc_cover);
      auto count_highway = [&](VertexId x, bool below) {
        if (!below) return;
        const Segment& s = dec_.segment(dec_.seg_of_vertex(x));
        for (std::size_t k = static_cast<std::size_t>(dec_.attach_pos(x));
             k < s.highway.size(); ++k) {
          const EdgeId t = s.highway[k];
          if (covered_[static_cast<std::size_t>(t)]) continue;
          const auto& w = winner[static_cast<std::size_t>(t)];
          if (w && w->e == li.e) ++votes;
        }
      };
      count_highway(li.u, li.u_highway_below);
      count_highway(li.v, li.v_highway_below);
      for (int s : li.chain) {
        const auto& lr = best_lr_[static_cast<std::size_t>(s)];
        if (lr && lr->e == li.e) votes += cnt_lr_[static_cast<std::size_t>(s)];
      }
      if (votes * static_cast<std::uint64_t>(opt_.vote_denominator) >=
          static_cast<std::uint64_t>(ce[i])) {
        adds.push_back(li.e);
      }
    }
    net_.charge(2, 2 * cands.size());  // endpoint vote-count exchange

    for (EdgeId e : adds) in_a_[static_cast<std::size_t>(e)] = 1;
    mark_covered_by(adds);
    ++result.iterations;

    // (7) Termination: any uncovered tree edge? OR-convergecast + broadcast.
    bool any_uncovered = false;
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId pe = tree.parent_edge(v);
      if (pe != kNoEdge && !covered_[static_cast<std::size_t>(pe)]) any_uncovered = true;
    }
    {
      std::vector<std::uint64_t> val(static_cast<std::size_t>(n), 0);
      convergecast(net_, bfs_, val, CombineOp::kOr);
      broadcast(net_, bfs_, val);
    }
    if (!any_uncovered) break;
  }

  for (EdgeId e = 0; e < g_.num_edges(); ++e)
    if (in_a_[static_cast<std::size_t>(e)]) {
      result.augmentation.push_back(e);
      result.weight += g_.edge(e).w;
    }
  return result;
}

}  // namespace

TapResult distributed_tap(Network& net, const SegmentDecomposition& dec,
                          const CommForest& bfs_forest, VertexId root, const TapOptions& opt) {
  TapEngine engine(net, dec, bfs_forest, root, opt);
  return engine.run();
}

std::vector<EdgeId> mst_replacement_edges(Network& net, const SegmentDecomposition& dec,
                                          const CommForest& bfs_forest, VertexId root) {
  TapEngine engine(net, dec, bfs_forest, root, TapOptions{});
  return engine.replacements();
}

}  // namespace deck
