#pragma once

// Distributed weighted TAP in the CONGEST model (paper §3, Theorem 3.12).
//
// Iterations of the §2.1 framework: every link computes its rounded
// cost-effectiveness (uncovered tree edges on its fundamental path / weight);
// links at the global maximum become candidates; every uncovered tree edge
// votes for the first candidate covering it (random order r_e, ties by id);
// candidates gathering >= |Ce|/8 votes join the augmentation A. O(log^2 n)
// iterations w.h.p. (Lemma 3.11); O(log n)-approximation guaranteed
// (Lemma 3.7); O(D + sqrt n) rounds per iteration (Lemma 3.3).
//
// Per-iteration machinery over the segment decomposition (§3.1):
//  (I)   cost-effectiveness — each link's endpoints decompose the fundamental
//        path into: own-path parts (exact per-vertex knowledge), own-segment
//        highway parts, and full highways of skeleton-path segments (global
//        per-segment aggregates). Same-segment links exchange their paths
//        once and per-iteration coverage bitmasks over their own edge.
//  (II)  "first candidate covering t" — short/mid-range contributions merge
//        with the ancestor pipeline; mid-range case 2 aggregates per
//        attachment point and prefix-scans the highway; long-range winners
//        per highway ride the global BFS pipeline (Observation 1: all edges
//        of a highway share their optimal long-range edge).
//  (III) vote counting — winners are downcast along paths/highways; per-
//        segment (bestLR, count) pairs are shared globally; endpoints sum
//        their zones and exchange.
// Coverage propagation after additions reuses the same passes with A in
// place of the candidate set.

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "decomp/segments.hpp"
#include "graph/graph.hpp"

namespace deck {

struct TapOptions {
  std::uint64_t seed = 1;
  /// Vote threshold denominator: candidate joins A when
  /// votes * vote_denominator >= |Ce| (paper: 8). Ablation A1 sweeps this.
  int vote_denominator = 8;
  int max_iterations = 100000;
};

struct TapResult {
  std::vector<EdgeId> augmentation;
  int iterations = 0;
  Weight weight = 0;
};

/// Runs distributed TAP over net.graph() with the given decomposition of the
/// spanning tree (dec.tree()). `bfs_forest`/`root` drive global pipelines.
/// Requires every tree edge coverable (G 2-edge-connected after adding the
/// tree). Rounds are charged to `net`.
TapResult distributed_tap(Network& net, const SegmentDecomposition& dec,
                          const CommForest& bfs_forest, VertexId root, const TapOptions& opt);

/// FT-MST swap edges (Ghaffari–Parter [14] — the structure §3.2's
/// decomposition originates from, and the paper's remark that it yields a
/// deterministic O(D + sqrt n log* n) FT-MST): for every tree edge of
/// dec.tree(), the minimum-weight non-tree edge covering it, i.e. the edge
/// that restores a spanning tree (in fact the MST of G minus the fault)
/// when that tree edge fails. Result indexed by host edge id; kNoEdge for
/// non-tree edges and for tree edges nothing covers. O(D + sqrt n) rounds.
std::vector<EdgeId> mst_replacement_edges(Network& net, const SegmentDecomposition& dec,
                                          const CommForest& bfs_forest, VertexId root);

}  // namespace deck
