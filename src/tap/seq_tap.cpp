#include "tap/seq_tap.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace deck {

std::vector<EdgeId> greedy_tap(const TapInstance& inst) {
  const Graph& g = inst.g;
  std::vector<char> covered(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<EdgeId> links = inst.links();
  std::vector<std::vector<EdgeId>> paths;
  paths.reserve(links.size());
  for (EdgeId e : links) paths.push_back(inst.covered_by(e));

  std::vector<EdgeId> aug;
  int uncovered = static_cast<int>(inst.tree_edges.size());

  auto gain = [&](std::size_t i) {
    int cnt = 0;
    for (EdgeId t : paths[i])
      if (!covered[static_cast<std::size_t>(t)]) ++cnt;
    return cnt;
  };
  auto take = [&](std::size_t i) {
    aug.push_back(links[i]);
    for (EdgeId t : paths[i]) {
      if (!covered[static_cast<std::size_t>(t)]) {
        covered[static_cast<std::size_t>(t)] = 1;
        --uncovered;
      }
    }
  };

  // Weight-0 links are free: take all that still cover something.
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (g.edge(links[i]).w == 0 && gain(i) > 0) take(i);
  }
  while (uncovered > 0) {
    std::size_t best = links.size();
    // Maximise gain/weight, i.e. gain_i * w_j > gain_j * w_i.
    for (std::size_t i = 0; i < links.size(); ++i) {
      const int gi = gain(i);
      if (gi == 0) continue;
      if (best == links.size()) {
        best = i;
        continue;
      }
      const long long lhs = static_cast<long long>(gi) * g.edge(links[best]).w;
      const long long rhs = static_cast<long long>(gain(best)) * g.edge(links[i]).w;
      if (lhs > rhs) best = i;
    }
    DECK_CHECK_MSG(best != links.size(), "instance not coverable");
    take(best);
  }
  return aug;
}

namespace {

struct BnB {
  const TapInstance* inst;
  std::vector<EdgeId> links;
  std::vector<std::vector<EdgeId>> paths;
  std::vector<char> covered;
  int uncovered = 0;
  Weight best = std::numeric_limits<Weight>::max();
  std::vector<EdgeId> best_set;
  std::vector<EdgeId> current;
  Weight current_w = 0;

  void dfs(std::size_t i) {
    if (uncovered == 0) {
      if (current_w < best) {
        best = current_w;
        best_set = current;
      }
      return;
    }
    if (i == links.size() || current_w >= best) return;
    // Feasibility pruning: remaining links must be able to cover the rest.
    // (Cheap check: does any remaining link cover the first uncovered edge?)
    EdgeId first_uncovered = kNoEdge;
    for (EdgeId t : inst->tree_edges) {
      if (!covered[static_cast<std::size_t>(t)]) {
        first_uncovered = t;
        break;
      }
    }
    bool coverable = false;
    for (std::size_t j = i; j < links.size() && !coverable; ++j) {
      for (EdgeId t : paths[j])
        if (t == first_uncovered) {
          coverable = true;
          break;
        }
    }
    if (!coverable) return;

    // Branch: include link i.
    std::vector<EdgeId> newly;
    for (EdgeId t : paths[i]) {
      if (!covered[static_cast<std::size_t>(t)]) {
        covered[static_cast<std::size_t>(t)] = 1;
        newly.push_back(t);
      }
    }
    if (!newly.empty()) {
      uncovered -= static_cast<int>(newly.size());
      current.push_back(links[i]);
      current_w += inst->g.edge(links[i]).w;
      dfs(i + 1);
      current_w -= inst->g.edge(links[i]).w;
      current.pop_back();
      uncovered += static_cast<int>(newly.size());
    }
    for (EdgeId t : newly) covered[static_cast<std::size_t>(t)] = 0;
    // Branch: exclude link i.
    dfs(i + 1);
  }
};

}  // namespace

std::vector<EdgeId> exact_tap(const TapInstance& inst) {
  BnB b;
  b.inst = &inst;
  b.links = inst.links();
  DECK_CHECK_MSG(b.links.size() <= 28, "exact TAP limited to small link counts");
  // Sort by weight so cheap solutions are found early (tightens pruning).
  std::sort(b.links.begin(), b.links.end(), [&](EdgeId a, EdgeId c) {
    return inst.g.edge(a).w < inst.g.edge(c).w;
  });
  for (EdgeId e : b.links) b.paths.push_back(inst.covered_by(e));
  b.covered.assign(static_cast<std::size_t>(inst.g.num_edges()), 0);
  b.uncovered = static_cast<int>(inst.tree_edges.size());
  b.dfs(0);
  DECK_CHECK_MSG(b.best != std::numeric_limits<Weight>::max(), "instance not coverable");
  return b.best_set;
}

}  // namespace deck
