#include <gtest/gtest.h>

#include <set>

#include "congest/network.hpp"
#include "cycles/cycle_space.hpp"
#include "graph/cut_enum.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/tree.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

std::vector<char> all_edges(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.num_edges()), 1);
}

std::set<std::pair<EdgeId, EdgeId>> exact_cut_pairs(const Graph& g) {
  std::set<std::pair<EdgeId, EdgeId>> out;
  const auto cuts = enumerate_cuts(g, all_edges(g), 2, 1);
  for (const auto& c : cuts.cuts) out.insert({c.edges[0], c.edges[1]});
  return out;
}

TEST(BitLabel, TruncationAndXor) {
  BitLabel a{0xffffffffffffffffULL, 0xffffffffffffffffULL};
  EXPECT_EQ(a.truncated(8).lo, 0xffULL);
  EXPECT_EQ(a.truncated(8).hi, 0u);
  EXPECT_EQ(a.truncated(64).hi, 0u);
  EXPECT_EQ(a.truncated(70).hi, 0x3fULL);
  BitLabel b{1, 2};
  EXPECT_TRUE(((a ^ a).is_zero()));
  EXPECT_EQ((b ^ b ^ b).lo, 1u);
}

TEST(CycleSpace, LabelsAreCirculations) {
  // Every vertex must have even degree in every bit's support set
  // (Definition 5.1): XOR of labels around each vertex is zero.
  Rng rng(17);
  Graph g = random_kec(20, 2, 10, rng);
  const RootedTree t = bfs_tree(g, 0);
  const CycleSpace cs = sample_circulation(g, all_edges(g), t, 64, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    BitLabel acc;
    for (const Adj& a : g.neighbors(v)) acc ^= cs.phi[static_cast<std::size_t>(a.edge)];
    EXPECT_TRUE(acc.is_zero()) << "vertex " << v;
  }
}

TEST(CycleSpace, CutPairsAlwaysShareLabels) {
  // One-sided guarantee of Lemma 5.4: a genuine cut pair always collides.
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = random_kec(14, 2, 5, rng);
    if (edge_connectivity(g) != 2) continue;
    const RootedTree t = bfs_tree(g, 0);
    const CycleSpace cs = sample_circulation(g, all_edges(g), t, 64, rng);
    for (const auto& [e, f] : exact_cut_pairs(g)) {
      EXPECT_EQ(cs.phi[static_cast<std::size_t>(e)], cs.phi[static_cast<std::size_t>(f)])
          << "cut pair {" << e << "," << f << "} split";
    }
  }
}

TEST(CycleSpace, WideLabelsDetectExactlyCutPairs) {
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = random_kec(14, 2, 5, rng);
    if (edge_connectivity(g) != 2) continue;
    const RootedTree t = bfs_tree(g, 0);
    const CycleSpace cs = sample_circulation(g, all_edges(g), t, 128, rng);
    std::set<std::pair<EdgeId, EdgeId>> detected;
    for (const auto& p : label_cut_pairs(g, all_edges(g), cs)) detected.insert(p);
    EXPECT_EQ(detected, exact_cut_pairs(g)) << "trial " << trial;
  }
}

TEST(CycleSpace, NarrowLabelsHaveOneSidedErrorOnly) {
  Rng rng(31);
  Graph g = random_kec(16, 2, 8, rng);
  const RootedTree t = bfs_tree(g, 0);
  const auto exact = exact_cut_pairs(g);
  // With 2-bit labels false positives are likely but false negatives are
  // impossible.
  const CycleSpace cs = sample_circulation(g, all_edges(g), t, 2, rng);
  std::set<std::pair<EdgeId, EdgeId>> detected;
  for (const auto& p : label_cut_pairs(g, all_edges(g), cs)) detected.insert(p);
  for (const auto& p : exact) EXPECT_TRUE(detected.count(p));
}

TEST(CycleSpace, ThreeConnectedGraphHasAllDistinctLabels) {
  Rng rng(37);
  Graph g = random_kec(16, 3, 16, rng);
  ASSERT_GE(edge_connectivity(g), 3);
  const RootedTree t = bfs_tree(g, 0);
  const CycleSpace cs = sample_circulation(g, all_edges(g), t, 128, rng);
  EXPECT_TRUE(label_cut_pairs(g, all_edges(g), cs).empty());
}

TEST(CycleSpace, DistributedVariantChargesRoundsAndMatches) {
  Rng rng1(41), rng2(41);
  Graph g = random_kec(20, 2, 10, rng1);
  Rng topo(41);
  (void)topo;
  const RootedTree t = bfs_tree(g, 0);
  Network net(g);
  const CycleSpace a = sample_circulation_distributed(net, all_edges(g), t, 64, rng1);
  EXPECT_GT(net.rounds(), 0u);
  EXPECT_LE(net.rounds(), static_cast<std::uint64_t>(t.height()) + 1);
}

TEST(CycleSpace, SubgraphMaskRestrictsLabels) {
  Rng rng(43);
  Graph g = random_kec(12, 2, 6, rng);
  std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 1);
  // Remove the last non-tree edge from the mask; its label must stay zero.
  const RootedTree t = bfs_tree(g, 0);
  std::vector<char> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (t.parent_edge(v) != kNoEdge) is_tree[static_cast<std::size_t>(t.parent_edge(v))] = 1;
  EdgeId dropped = kNoEdge;
  for (EdgeId e = g.num_edges() - 1; e >= 0; --e)
    if (!is_tree[static_cast<std::size_t>(e)]) {
      dropped = e;
      break;
    }
  ASSERT_NE(dropped, kNoEdge);
  mask[static_cast<std::size_t>(dropped)] = 0;
  const CycleSpace cs = sample_circulation(g, mask, t, 64, rng);
  EXPECT_TRUE(cs.phi[static_cast<std::size_t>(dropped)].is_zero());
}

}  // namespace
}  // namespace deck
