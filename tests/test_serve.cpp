// Serving-layer suite: the guttering stage, GraphStream replay cursors, the
// GraphSession lifecycle (and its bit-identity contract against the
// pre-facade one-shot pipeline), the deprecated wrappers, and the serve
// wire protocol — single client, malformed frames, and concurrent client
// mixes over loopback and TCP.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "net/ingest.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/gutter.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/thread_pool.hpp"

namespace deck {
namespace {

// ---------------------------------------------------------------------------
// Ground truth: the pre-facade one-shot pipeline, inlined. Every bit-identity
// test compares the session/wrapper output against this independent
// implementation, not against another facade path.

SparsifyResult reference_sparsify(const GraphStream& stream, int k, const SketchOptions& opt,
                                  const RecoveryOptions& ropt = {}) {
  return recover_certificate(k, opt, ropt, [&stream](const SketchOptions& aopt) {
    SketchConnectivity sk(stream.num_vertices(), aopt);
    for (const StreamUpdate& u : stream.updates()) sk.update(u.u, u.v, u.insert ? 1 : -1);
    return sk;
  });
}

std::vector<std::pair<VertexId, VertexId>> graph_pairs(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (const Edge& e : g.edges()) out.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  std::sort(out.begin(), out.end());
  return out;
}

/// Full SparsifyResult equality — certificate, forests, and every piece of
/// telemetry the adaptive driver reports.
void expect_same_result(const SparsifyResult& got, const SparsifyResult& want) {
  EXPECT_EQ(graph_pairs(got.certificate), graph_pairs(want.certificate));
  EXPECT_EQ(sorted_pairs(got.forests), sorted_pairs(want.forests));
  EXPECT_EQ(got.copies_used, want.copies_used);
  EXPECT_EQ(got.attempts, want.attempts);
  EXPECT_EQ(got.columns_used, want.columns_used);
  EXPECT_EQ(got.rounds_slack_used, want.rounds_slack_used);
}

/// A GraphStream holding the first `count` updates of `s`.
GraphStream prefix_stream(const GraphStream& s, std::size_t count) {
  GraphStream out(s.num_vertices());
  std::size_t i = 0;
  for (const StreamUpdate& u : s.updates()) {
    if (i++ >= count) break;
    if (u.insert)
      out.insert(u.u, u.v);
    else
      out.erase(u.u, u.v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Guttering stage

struct Collected {
  VertexId src;
  VertexId dst;
  int delta;

  friend bool operator==(const Collected&, const Collected&) = default;
  friend auto operator<=>(const Collected&, const Collected&) = default;
};

/// Thread-safe collecting applier; sorted() is the order-insensitive
/// delivered-half fingerprint.
struct CollectingSink {
  std::mutex mu;
  std::vector<Collected> halves;

  GutteringSystem::Applier applier() {
    return [this](VertexId src, std::span<const VertexDelta> deltas) {
      const std::lock_guard<std::mutex> lock(mu);
      for (const VertexDelta& d : deltas) halves.push_back({src, d.dst, d.delta});
    };
  }

  std::vector<Collected> sorted() {
    const std::lock_guard<std::mutex> lock(mu);
    std::vector<Collected> out = halves;
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(Gutter, RangesPartitionTheVertexSet) {
  CollectingSink sink;
  GutterOptions opt;
  opt.num_gutters = 7;
  GutteringSystem gs(100, opt, sink.applier());
  ASSERT_EQ(gs.num_gutters(), 7);
  int prev = 0;
  for (VertexId v = 0; v < 100; ++v) {
    const int g = gs.gutter_of(v);
    EXPECT_GE(g, prev);  // contiguous ranges: non-decreasing in the vertex
    EXPECT_LT(g, 7);
    prev = g;
  }
  EXPECT_EQ(gs.gutter_of(99), 6);
}

TEST(Gutter, GutterCountIsClampedToVertices) {
  CollectingSink sink;
  GutterOptions opt;
  opt.num_gutters = 64;
  GutteringSystem gs(3, opt, sink.applier());
  EXPECT_LE(gs.num_gutters(), 3);
  GutteringSystem one(1, opt, sink.applier());
  EXPECT_EQ(one.num_gutters(), 1);
}

TEST(Gutter, SizeTriggerSpillsWithoutDrain) {
  CollectingSink sink;
  GutterOptions opt;
  opt.num_gutters = 1;
  opt.policy.max_halves = 4;
  GutteringSystem gs(8, opt, sink.applier());
  gs.push(0, 1, 1);
  EXPECT_EQ(gs.pending_halves(), 2u);
  gs.push(2, 3, 1);  // hits max_halves — spills inline, no drain() needed
  EXPECT_EQ(gs.pending_halves(), 0u);
  EXPECT_EQ(gs.stats().size_flushes, 1u);
  EXPECT_EQ(gs.stats().flushed_halves, 4u);
  EXPECT_EQ(sink.sorted(),
            (std::vector<Collected>{{0, 1, 1}, {1, 0, 1}, {2, 3, 1}, {3, 2, 1}}));
}

TEST(Gutter, AgeTriggerBoundsStaleness) {
  CollectingSink sink;
  GutterOptions opt;
  opt.num_gutters = 2;
  opt.policy.max_halves = 1 << 20;  // size trigger effectively off
  opt.policy.max_age = 3;
  GutteringSystem gs(8, opt, sink.applier());
  gs.push(0, 1, 1);  // lands in gutter 0 (both endpoints low)
  // Push far-side updates until the round-robin age sweep spills gutter 0.
  for (int i = 0; i < 8 && gs.stats().age_flushes == 0; ++i) gs.push(4, 5, 1);
  EXPECT_GE(gs.stats().age_flushes, 1u);
  bool saw = false;
  for (const Collected& c : sink.sorted()) saw = saw || (c.src == 0 && c.dst == 1);
  EXPECT_TRUE(saw);
}

TEST(Gutter, DrainDeliversEveryHalfExactlyOnce) {
  Rng rng(41);
  CollectingSink sink;
  GutterOptions opt;
  opt.num_gutters = 5;
  opt.policy.max_halves = 8;
  GutteringSystem gs(32, opt, sink.applier());
  std::vector<Collected> expected;
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(32));
    auto v = static_cast<VertexId>(rng.next_below(32));
    if (v == u) v = (v + 1) % 32;
    const int delta = (i % 3 == 0) ? -1 : 1;
    gs.push(u, v, delta);
    expected.push_back({u, v, delta});
    expected.push_back({v, u, delta});
  }
  gs.drain();
  EXPECT_EQ(gs.pending_halves(), 0u);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sink.sorted(), expected);
  EXPECT_EQ(gs.stats().halves_buffered, 400u);
  EXPECT_EQ(gs.stats().flushed_halves, 400u);
}

TEST(Gutter, PooledDrainDeliversTheSameHalves) {
  Rng rng(42);
  std::vector<Collected> pushed;
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(64));
    auto v = static_cast<VertexId>(rng.next_below(64));
    if (v == u) v = (v + 1) % 64;
    pushed.push_back({u, v, 1});
  }

  auto run = [&pushed](ThreadPool* pool, int gutters) {
    CollectingSink sink;
    GutterOptions opt;
    opt.num_gutters = gutters;
    opt.policy.max_halves = 1 << 20;
    opt.pool = pool;
    GutteringSystem gs(64, opt, sink.applier());
    for (const Collected& c : pushed) gs.push(c.src, c.dst, c.delta);
    gs.drain();
    return sink.sorted();
  };

  ThreadPool pool(4);
  const std::vector<Collected> inline_halves = run(nullptr, 8);
  const std::vector<Collected> pooled_halves = run(&pool, 8);
  EXPECT_EQ(inline_halves, pooled_halves);
}

TEST(Gutter, FlushPolicyNeverChangesTheDeliveredMultiset) {
  const GraphStream stream = churned_stream(24, 2, 510);
  const std::vector<FlushPolicy> policies = {
      FlushPolicy{},                      // defaults
      FlushPolicy{.max_halves = 2},       // spill on every push
      FlushPolicy{.max_halves = 7},       // odd size, mid-batch spills
      FlushPolicy{.max_halves = 1 << 20, .max_age = 5},
  };
  std::vector<std::vector<Collected>> delivered;
  for (const FlushPolicy& policy : policies) {
    for (const int gutters : {1, 3, 8}) {
      CollectingSink sink;
      GutterOptions opt;
      opt.num_gutters = gutters;
      opt.policy = policy;
      GutteringSystem gs(stream.num_vertices(), opt, sink.applier());
      for (const StreamUpdate& u : stream.updates()) gs.push(u.u, u.v, u.insert ? 1 : -1);
      gs.drain();
      delivered.push_back(sink.sorted());
    }
  }
  for (std::size_t i = 1; i < delivered.size(); ++i) EXPECT_EQ(delivered[i], delivered[0]);
}

// ---------------------------------------------------------------------------
// GraphStream replay cursors

TEST(StreamCursor, UpdatesSinceReturnsTheAppendedTail) {
  GraphStream s(8);
  s.insert(0, 1);
  s.insert(1, 2);
  const std::size_t cursor = s.size();
  s.insert(2, 3);
  s.erase(0, 1);
  const std::span<const StreamUpdate> tail = s.updates_since(cursor);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].u, 2);
  EXPECT_EQ(tail[0].v, 3);
  EXPECT_TRUE(tail[0].insert);
  EXPECT_FALSE(tail[1].insert);
  EXPECT_EQ(s.updates_since(0).size(), s.size());
  EXPECT_TRUE(s.updates_since(s.size()).empty());
}

TEST(StreamCursor, CursorBeyondTheStreamThrows) {
  GraphStream s(4);
  s.insert(0, 1);
  EXPECT_THROW((void)s.updates_since(2), std::logic_error);
}

// ---------------------------------------------------------------------------
// GraphSession lifecycle and bit-identity

TEST(ServeSession, QueryMatchesOneShotForEveryPolicyAndMode) {
  const GraphStream stream = churned_stream(26, 2, 520);
  SketchOptions opt;
  opt.seed = 521;
  const SparsifyResult want = reference_sparsify(stream, 2, opt);

  std::vector<IngestOptions> variants;
  for (const FlushPolicy& policy :
       {FlushPolicy{}, FlushPolicy{.max_halves = 2}, FlushPolicy{.max_halves = 64, .max_age = 9}}) {
    IngestOptions seq;
    seq.sketch = opt;
    seq.gutter.policy = policy;
    seq.gutter.num_gutters = 3;
    variants.push_back(seq);
    for (const int shards : {1, 2, 4}) {
      IngestOptions sh = seq;
      sh.mode = IngestMode::kSharded;
      sh.shard.shards = shards;
      variants.push_back(sh);
    }
  }

  for (const IngestOptions& io : variants) {
    GraphSession session(stream.num_vertices(), 2, io);
    session.ingest(stream);
    expect_same_result(session.query(), want);
    session.close();
  }
}

TEST(ServeSession, PerUpdateIngestMatchesBulkIngest) {
  const GraphStream stream = churned_stream(20, 2, 530);
  SketchOptions opt;
  opt.seed = 531;
  IngestOptions io;
  io.sketch = opt;
  io.gutter.policy.max_halves = 8;

  GraphSession per_update(stream.num_vertices(), 2, io);
  for (const StreamUpdate& u : stream.updates()) per_update.apply(u);
  GraphSession bulk(stream.num_vertices(), 2, io);
  bulk.ingest(stream);
  expect_same_result(per_update.query(), bulk.query());
  EXPECT_EQ(per_update.stats().updates, bulk.stats().updates);
}

TEST(ServeSession, MidStreamQueriesMatchOneShotAtEveryPoint) {
  const GraphStream stream = churned_stream(24, 2, 540);
  SketchOptions opt;
  opt.seed = 541;
  IngestOptions io;
  io.sketch = opt;
  io.gutter.policy.max_halves = 8;

  GraphSession session(stream.num_vertices(), 2, io);
  const std::vector<std::size_t> points = {stream.size() / 3, 2 * stream.size() / 3,
                                           stream.size()};
  std::size_t fed = 0;
  for (const std::size_t point : points) {
    while (fed < point) {
      session.apply(stream.updates()[fed]);
      ++fed;
    }
    // Pause/flush/recover/resume ≡ one-shot over the prefix ingested so far.
    expect_same_result(session.query(), reference_sparsify(prefix_stream(stream, point), 2, opt));
  }
  EXPECT_EQ(session.stats().queries, points.size());
}

TEST(ServeSession, MidStreamQueryDoesNotPerturbLaterQueries) {
  const GraphStream stream = churned_stream(22, 2, 550);
  SketchOptions opt;
  opt.seed = 551;
  IngestOptions io;
  io.sketch = opt;

  GraphSession interrupted(stream.num_vertices(), 2, io);
  GraphSession uninterrupted(stream.num_vertices(), 2, io);
  std::size_t i = 0;
  for (const StreamUpdate& u : stream.updates()) {
    interrupted.apply(u);
    uninterrupted.apply(u);
    if (++i == stream.size() / 2) (void)interrupted.query();
  }
  // Query at r, then continue ≡ never querying: the live bank's copies are
  // cloned, not consumed.
  expect_same_result(interrupted.query(), uninterrupted.query());
}

TEST(ServeSession, AdaptiveSizingReusesTheLiveBankOnAttemptZero) {
  const GraphStream stream = churned_stream(24, 2, 560);
  SketchOptions opt;
  opt.seed = 561;
  opt.auto_size.enabled = true;
  IngestOptions io;
  io.sketch = opt;

  GraphSession session(stream.num_vertices(), 2, io);
  session.ingest(stream);
  expect_same_result(session.query(), reference_sparsify(stream, 2, opt));
  const SessionStats stats = session.stats();
  EXPECT_GE(stats.bank_reuses, 1u);  // attempt 0 cloned the live bank
}

TEST(ServeSession, QueryForAnotherKReplaysTheRetainedStream) {
  const GraphStream stream = churned_stream(20, 2, 570);
  SketchOptions opt;
  opt.seed = 571;
  IngestOptions io;
  io.sketch = opt;

  GraphSession session(stream.num_vertices(), 2, io);
  session.ingest(stream);
  expect_same_result(session.query(1), reference_sparsify(stream, 1, opt));
  EXPECT_GE(session.stats().bank_replays, 1u);
  // The session k still answers from the live bank afterwards.
  expect_same_result(session.query(), reference_sparsify(stream, 2, opt));
}

TEST(ServeSession, LifecycleValidation) {
  IngestOptions io;
  GraphSession session(8, 2, io);
  session.insert(0, 1);
  EXPECT_THROW(session.insert(0, 1), std::logic_error);  // duplicate live edge
  EXPECT_THROW(session.erase(2, 3), std::logic_error);   // absent edge
  EXPECT_EQ(session.stats().updates, 1u);                // refused updates don't count
  session.close();
  EXPECT_TRUE(session.closed());
  session.close();  // idempotent
  EXPECT_THROW(session.insert(4, 5), std::logic_error);
  EXPECT_THROW((void)session.query(), std::logic_error);

  GraphStream mismatched(9);
  GraphSession other(8, 2, io);
  EXPECT_THROW(other.ingest(mismatched), std::logic_error);
}

TEST(ServeSession, PendingUpdatesTrackTheGutters) {
  IngestOptions io;
  io.gutter.policy.max_halves = 1 << 20;
  GraphSession session(8, 2, io);
  session.insert(0, 1);
  session.insert(1, 2);
  EXPECT_EQ(session.pending_updates(), 2u);
  session.flush();
  EXPECT_EQ(session.pending_updates(), 0u);
}

// ---------------------------------------------------------------------------
// Deprecated wrappers: bit-identical to the pre-facade pipeline

TEST(ServeWrappers, SparsifyStreamMatchesReference) {
  for (const std::uint64_t seed : {600u, 601u, 602u}) {
    const GraphStream stream = churned_stream(24, 2, seed);
    SketchOptions opt;
    opt.seed = seed + 7;
    expect_same_result(sparsify_stream(stream, 2, opt), reference_sparsify(stream, 2, opt));
  }
}

TEST(ServeWrappers, ShardedSparsifyStreamMatchesReference) {
  const GraphStream stream = churned_stream(26, 3, 610);
  SketchOptions opt;
  opt.seed = 611;
  const SparsifyResult want = reference_sparsify(stream, 3, opt);
  for (const int shards : {1, 2, 3, 5}) {
    ShardOptions sh;
    sh.shards = shards;
    expect_same_result(sharded_sparsify_stream(stream, 3, opt, sh), want);
  }
}

TEST(ServeWrappers, AdaptiveWrappersMatchReference) {
  const GraphStream stream = churned_stream(24, 2, 620);
  SketchOptions opt;
  opt.seed = 621;
  opt.auto_size.enabled = true;
  const SparsifyResult want = reference_sparsify(stream, 2, opt);
  expect_same_result(sparsify_stream(stream, 2, opt), want);
  ShardOptions sh;
  sh.shards = 2;
  expect_same_result(sharded_sparsify_stream(stream, 2, opt, sh), want);
}

// ---------------------------------------------------------------------------
// Coordinated sessions over loopback transports

struct WorkerFleet {
  std::vector<std::unique_ptr<Transport>> ends;
  std::vector<Transport*> raw;
  std::vector<std::thread> threads;

  WorkerFleet(const GraphStream& stream, int workers) {
    for (int w = 0; w < workers; ++w) {
      auto [coordinator_end, worker_end] = loopback_pair();
      ends.push_back(std::move(coordinator_end));
      raw.push_back(ends.back().get());
      threads.emplace_back(
          [&stream, w, workers, t = std::shared_ptr<Transport>(std::move(worker_end))] {
            run_ingest_worker(*t, stream, static_cast<std::uint32_t>(w),
                              static_cast<std::uint32_t>(workers));
          });
    }
  }

  void join() {
    for (std::thread& th : threads) th.join();
  }
};

TEST(ServeSession, CoordinatedSessionServesRepeatedQueries) {
  const GraphStream stream = churned_stream(24, 2, 630);
  SketchOptions opt;
  opt.seed = 631;
  const SparsifyResult want = reference_sparsify(stream, 2, opt);

  WorkerFleet fleet(stream, 2);
  IngestOptions io;
  io.mode = IngestMode::kCoordinated;
  io.sketch = opt;
  io.workers = fleet.raw;
  io.coordinator.threads = 2;
  GraphSession session(stream.num_vertices(), 2, io);
  EXPECT_THROW(session.insert(0, 1), std::logic_error);  // workers own the stream
  expect_same_result(session.query(), want);
  expect_same_result(session.query(), want);  // workers serve repeated attempts
  EXPECT_EQ(session.stats().queries, 2u);
  session.close();
  fleet.join();
}

TEST(ServeWrappers, CoordinatedSparsifyMatchesReferenceForEveryFleetSize) {
  const GraphStream stream = churned_stream(24, 2, 640);
  SketchOptions opt;
  opt.seed = 641;
  const SparsifyResult want = reference_sparsify(stream, 2, opt);
  for (const int workers : {1, 2, 3}) {
    WorkerFleet fleet(stream, workers);
    expect_same_result(coordinated_sparsify(fleet.raw, stream.num_vertices(), 2, opt), want);
    fleet.join();
  }
}

// ---------------------------------------------------------------------------
// Serve protocol: single client over loopback

TEST(ServeProtocol, HelloUpdateQueryStatsBye) {
  const GraphStream stream = churned_stream(20, 2, 650);
  SketchOptions opt;
  opt.seed = 651;
  const SparsifyResult want = reference_sparsify(stream, 2, opt);

  IngestOptions io;
  io.sketch = opt;
  GraphSession session(stream.num_vertices(), 2, io);
  SessionServer server(session);

  auto [server_end, client_end] = loopback_pair();
  std::thread serving([&server, t = server_end.get()] { server.serve(*t); });

  ServeClient client(*client_end);
  client.hello();
  EXPECT_EQ(client.num_vertices(), stream.num_vertices());
  EXPECT_EQ(client.k(), 2);

  const std::span<const StreamUpdate> updates = stream.updates();
  // Mixed per-update and batched ingest.
  client.insert(updates[0].u, updates[0].v);
  EXPECT_EQ(client.update(updates.subspan(1)), static_cast<std::uint32_t>(updates.size() - 1));

  const ServeCertificate cert = client.query();
  EXPECT_EQ(cert.k, 2);
  EXPECT_EQ(cert.attempts, want.attempts);
  EXPECT_EQ(cert.copies_used, want.copies_used);
  std::vector<std::pair<VertexId, VertexId>> got = cert.edges;
  for (auto& [u, v] : got)
    if (u > v) std::swap(u, v);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, graph_pairs(want.certificate));

  const ServeStats stats = client.stats();
  EXPECT_EQ(stats.updates, stream.size());
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.pending_updates, 0u);  // query drained the gutters

  client.bye();
  serving.join();
  EXPECT_EQ(server.stats().clients, 1u);
  EXPECT_EQ(server.stats().errors, 0u);
}

// ---------------------------------------------------------------------------
// Serve protocol: malformed frames draw typed errors, connection survives

std::vector<std::uint8_t> raw_request(Transport& t, const std::vector<std::uint8_t>& frame) {
  t.send(frame);
  return net::recv_expected(t, "serve response");
}

std::pair<ServeErrorCode, std::string> decode_error(const std::vector<std::uint8_t>& reply) {
  net::WireReader r(std::span<const std::uint8_t>(reply.data(), reply.size()));
  EXPECT_EQ(static_cast<ServeMsg>(r.u32()), ServeMsg::kError);
  const auto code = static_cast<ServeErrorCode>(r.u32());
  const std::span<const std::uint8_t> text = r.rest();
  return {code, std::string(text.begin(), text.end())};
}

TEST(ServeProtocol, MalformedFramesDrawTypedErrorsAndTheConnectionSurvives) {
  GraphSession session(8, 2, {});
  SessionServer server(session);
  auto [server_end, client_end] = loopback_pair();
  std::thread serving([&server, t = server_end.get()] { server.serve(*t); });
  Transport& c = *client_end;

  {  // Truncated frame: no complete type word.
    const auto [code, what] = decode_error(raw_request(c, {0x01}));
    EXPECT_EQ(code, ServeErrorCode::kMalformedFrame);
  }
  {  // Unknown frame type.
    std::vector<std::uint8_t> frame;
    net::put_u32(frame, 999);
    const auto [code, what] = decode_error(raw_request(c, frame));
    EXPECT_EQ(code, ServeErrorCode::kUnknownType);
  }
  {  // Version mismatch.
    std::vector<std::uint8_t> frame;
    net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kHello));
    net::put_u32(frame, kServeProtocolVersion + 1);
    const auto [code, what] = decode_error(raw_request(c, frame));
    EXPECT_EQ(code, ServeErrorCode::kBadVersion);
  }
  {  // Update frame whose body doesn't match its announced count.
    std::vector<std::uint8_t> frame;
    net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kUpdate));
    net::put_u32(frame, 2);  // promises 2 updates, carries none
    const auto [code, what] = decode_error(raw_request(c, frame));
    EXPECT_EQ(code, ServeErrorCode::kMalformedFrame);
  }
  {  // Hello with trailing bytes.
    std::vector<std::uint8_t> frame;
    net::put_u32(frame, static_cast<std::uint32_t>(ServeMsg::kHello));
    net::put_u32(frame, kServeProtocolVersion);
    frame.push_back(0xee);
    const auto [code, what] = decode_error(raw_request(c, frame));
    EXPECT_EQ(code, ServeErrorCode::kMalformedFrame);
  }

  // The session survived all of that: a well-formed conversation succeeds
  // on the same connection, and typed client-side errors keep working.
  ServeClient client(c);
  client.hello();
  client.insert(0, 1);
  try {
    client.erase(5, 6);  // absent edge — stream validation refuses it
    FAIL() << "erase of an absent edge must draw kBadUpdate";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kBadUpdate);
  }
  try {
    (void)client.query(1000);  // k beyond any n=8 certificate
    FAIL() << "out-of-range k must draw kBadQuery";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kBadQuery);
  }
  EXPECT_EQ(session.stats().updates, 1u);
  client.bye();
  serving.join();
  EXPECT_GE(server.stats().errors, 5u);
}

TEST(ServeProtocol, ClientDisconnectWithoutByeEndsTheLoopQuietly) {
  GraphSession session(8, 2, {});
  SessionServer server(session);
  auto [server_end, client_end] = loopback_pair();
  std::thread serving([&server, t = server_end.get()] { server.serve(*t); });
  {
    ServeClient client(*client_end);
    client.hello();
    client.insert(0, 1);
  }
  client_end->close();
  serving.join();  // orderly close without Bye — no exception
  EXPECT_EQ(session.stats().updates, 1u);
}

TEST(ServeProtocol, ServerRefusesCoordinatedSessions) {
  const GraphStream stream = churned_stream(12, 2, 660);
  WorkerFleet fleet(stream, 1);
  IngestOptions io;
  io.mode = IngestMode::kCoordinated;
  io.workers = fleet.raw;
  GraphSession session(stream.num_vertices(), 2, io);
  EXPECT_THROW(SessionServer{session}, std::logic_error);
  session.close();
  fleet.join();
}

// ---------------------------------------------------------------------------
// Observability: the serving layer reports through the obs substrate

class ServeObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
};

TEST_F(ServeObsTest, SessionAndServerReportMetrics) {
  const GraphStream stream = churned_stream(16, 2, 690);
  IngestOptions io;
  io.sketch.seed = 691;
  io.gutter.policy.max_halves = 8;
  GraphSession session(stream.num_vertices(), 2, io);
  SessionServer server(session);

  auto [server_end, client_end] = loopback_pair();
  std::thread serving([&server, t = server_end.get()] { server.serve(*t); });
  ServeClient client(*client_end);
  client.hello();
  client.update(std::span<const StreamUpdate>(stream.updates()));
  (void)client.query();
  client.bye();
  serving.join();

  const obs::Snapshot snap = obs::Registry::global().scrape();
  EXPECT_EQ(snap.counter("serve.session.updates"), stream.size());
  EXPECT_EQ(snap.counter("serve.session.queries"), 1u);
  EXPECT_GE(snap.counter("serve.session.bank_reuses"), 1u);
  EXPECT_GE(snap.counter("serve.gutter.flushes"), 1u);
  EXPECT_EQ(snap.counter("serve.gutter.flushed_halves"), 2 * stream.size());
  EXPECT_EQ(snap.counter("serve.server.clients"), 1u);
  EXPECT_GE(snap.counter("serve.server.frames"), 3u);
  EXPECT_EQ(snap.counter("serve.server.updates"), stream.size());
  EXPECT_EQ(snap.counter("serve.server.queries"), 1u);
  const auto* q = snap.histogram("serve.session.query_ns");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->count, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent client mixes

/// Splits a graph's edges round-robin into per-client insert-only update
/// batches — disjoint edge sets, so interleaved ingest never trips the
/// duplicate-insert validation.
std::vector<std::vector<StreamUpdate>> client_slices(const Graph& g, int clients) {
  std::vector<std::vector<StreamUpdate>> slices(static_cast<std::size_t>(clients));
  int i = 0;
  for (const Edge& e : g.edges())
    slices[static_cast<std::size_t>(i++ % clients)].push_back({e.u, e.v, /*insert=*/true});
  return slices;
}

void run_concurrent_mix(const std::vector<Transport*>& server_ends,
                        const std::vector<Transport*>& client_ends, SessionServer& server,
                        const Graph& g, const SketchOptions& opt) {
  const int clients = static_cast<int>(client_ends.size());
  const std::vector<std::vector<StreamUpdate>> slices = client_slices(g, clients);

  std::thread serving([&server, &server_ends] { server.serve_all(server_ends); });

  // Every client ingests its slice concurrently (with periodic stats
  // probes mixed in); once all slices are in, client 0 queries.
  std::latch ingested(clients);
  std::vector<std::thread> client_threads;
  std::vector<std::pair<VertexId, VertexId>> served_edges;
  for (int i = 0; i < clients; ++i) {
    client_threads.emplace_back([&, i] {
      ServeClient client(*client_ends[static_cast<std::size_t>(i)]);
      client.hello();
      const std::vector<StreamUpdate>& slice = slices[static_cast<std::size_t>(i)];
      const std::size_t half = slice.size() / 2;
      client.update(std::span<const StreamUpdate>(slice.data(), half));
      (void)client.stats();
      client.update(std::span<const StreamUpdate>(slice.data() + half, slice.size() - half));
      ingested.arrive_and_wait();
      if (i == 0) {
        const ServeCertificate cert = client.query();
        served_edges = cert.edges;
        const ServeStats stats = client.stats();
        EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(g.num_edges()));
        EXPECT_EQ(stats.queries, 1u);
      }
      client.bye();
    });
  }
  for (std::thread& th : client_threads) th.join();
  serving.join();

  // Linearity: whatever order the server interleaved the clients' inserts,
  // the bank — and so the certificate — matches a one-shot over the edges
  // in any serial order.
  GraphStream all(g.num_vertices());
  for (const Edge& e : g.edges()) all.insert(e.u, e.v);
  const SparsifyResult want = reference_sparsify(all, 2, opt);
  for (auto& [u, v] : served_edges)
    if (u > v) std::swap(u, v);
  std::sort(served_edges.begin(), served_edges.end());
  EXPECT_EQ(served_edges, graph_pairs(want.certificate));
  EXPECT_EQ(server.stats().clients, static_cast<std::uint64_t>(clients));
  EXPECT_EQ(server.stats().errors, 0u);
}

TEST(ServeProtocol, ConcurrentClientsOverLoopback) {
  Rng rng(670);
  const Graph g = random_kec(28, 2, 40, rng);
  SketchOptions opt;
  opt.seed = 671;
  IngestOptions io;
  io.sketch = opt;
  GraphSession session(g.num_vertices(), 2, io);
  SessionServer server(session);

  const int clients = 3;
  std::vector<std::unique_ptr<Transport>> owned;
  std::vector<Transport*> server_ends;
  std::vector<Transport*> client_ends;
  for (int i = 0; i < clients; ++i) {
    auto [s, c] = loopback_pair();
    server_ends.push_back(s.get());
    client_ends.push_back(c.get());
    owned.push_back(std::move(s));
    owned.push_back(std::move(c));
  }
  run_concurrent_mix(server_ends, client_ends, server, g, opt);
}

TEST(ServeProtocol, ConcurrentClientsOverTcp) {
  Rng rng(680);
  const Graph g = random_kec(24, 2, 32, rng);
  SketchOptions opt;
  opt.seed = 681;
  IngestOptions io;
  io.sketch = opt;
  GraphSession session(g.num_vertices(), 2, io);
  SessionServer server(session);

  const int clients = 2;
  TcpListener listener;
  std::vector<std::unique_ptr<Transport>> owned;
  std::vector<Transport*> server_ends;
  std::vector<Transport*> client_ends;
  for (int i = 0; i < clients; ++i) {
    std::unique_ptr<Transport> c;
    std::thread connector([&c, &listener] { c = tcp_connect("127.0.0.1", listener.port()); });
    owned.push_back(listener.accept());
    server_ends.push_back(owned.back().get());
    connector.join();
    client_ends.push_back(c.get());
    owned.push_back(std::move(c));
  }
  run_concurrent_mix(server_ends, client_ends, server, g, opt);
}

}  // namespace
}  // namespace deck
