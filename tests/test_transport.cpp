#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/ingest.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch_test_util.hpp"

namespace deck {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<std::uint8_t> init) {
  return std::vector<std::uint8_t>(init);
}

TEST(Transport, LoopbackRoundTripsInOrder) {
  auto [a, b] = loopback_pair();
  a->send(bytes_of({1, 2, 3}));
  a->send(bytes_of({}));  // empty messages are legal frames
  a->send(bytes_of({9}));
  EXPECT_EQ(b->recv(), bytes_of({1, 2, 3}));
  EXPECT_EQ(b->recv(), bytes_of({}));
  EXPECT_EQ(b->recv(), bytes_of({9}));
  // And the reverse direction is independent.
  b->send(bytes_of({7, 7}));
  EXPECT_EQ(a->recv(), bytes_of({7, 7}));
}

TEST(Transport, LoopbackCloseIsOrderlyAfterDraining) {
  auto [a, b] = loopback_pair();
  a->send(bytes_of({5}));
  a->close();
  EXPECT_EQ(b->recv(), bytes_of({5}));       // queued data survives the close
  EXPECT_EQ(b->recv(), std::nullopt);        // then the orderly EOF
  EXPECT_THROW(a->send(bytes_of({1})), NetError);
}

TEST(Transport, LoopbackCloseWakesABlockedReceiver) {
  auto [a, b] = loopback_pair();
  std::optional<std::vector<std::uint8_t>> got = bytes_of({1});
  std::thread receiver([&] { got = b->recv(); });
  a->close();
  receiver.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(Transport, TcpRoundTripsLargeMessages) {
  TcpListener listener;
  ASSERT_GT(listener.port(), 0);
  std::unique_ptr<Transport> client;
  std::thread connector([&] { client = tcp_connect("127.0.0.1", listener.port()); });
  std::unique_ptr<Transport> server = listener.accept();
  connector.join();

  std::vector<std::uint8_t> big(3 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31 + 7);
  client->send(big);
  client->send(bytes_of({1, 2}));
  EXPECT_EQ(server->recv(), big);  // framing survives partial socket reads
  EXPECT_EQ(server->recv(), bytes_of({1, 2}));
  server->send(bytes_of({3}));
  EXPECT_EQ(client->recv(), bytes_of({3}));
  client->close();
  EXPECT_EQ(server->recv(), std::nullopt);  // orderly EOF between frames
}

TEST(Transport, TcpTruncatedFrameIsATypedError) {
  TcpListener listener;
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::unique_ptr<Transport> server = listener.accept();

  // A frame that dies mid length prefix...
  const std::uint8_t half_prefix[4] = {10, 0, 0, 0};
  ASSERT_EQ(::send(raw, half_prefix, sizeof half_prefix, 0),
            static_cast<ssize_t>(sizeof half_prefix));
  ::close(raw);
  EXPECT_THROW((void)server->recv(), NetError);
}

TEST(Transport, TcpTruncatedPayloadIsATypedError) {
  TcpListener listener;
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::unique_ptr<Transport> server = listener.accept();

  // ...and one that promises 100 payload bytes but delivers 3.
  std::uint8_t prefix[8] = {100, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(raw, prefix, sizeof prefix, 0), static_cast<ssize_t>(sizeof prefix));
  const std::uint8_t partial[3] = {1, 2, 3};
  ASSERT_EQ(::send(raw, partial, sizeof partial, 0), static_cast<ssize_t>(sizeof partial));
  ::close(raw);
  EXPECT_THROW((void)server->recv(), NetError);
}

TEST(Transport, OversizedFramePrefixRejectedBeforeAllocation) {
  TcpListener listener;
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::unique_ptr<Transport> server = listener.accept();

  std::uint8_t prefix[8];
  for (auto& byte : prefix) byte = 0xff;  // ~2^64 bytes claimed
  ASSERT_EQ(::send(raw, prefix, sizeof prefix, 0), static_cast<ssize_t>(sizeof prefix));
  try {
    (void)server->recv();
    FAIL() << "oversized frame accepted";
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos) << e.what();
  }
  ::close(raw);
}

/// Short unique socket path under /tmp (sun_path is ~108 bytes, so build
/// dirs are unsafe as prefixes).
std::string unix_path(const char* tag) {
  return "/tmp/deck_uds_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

TEST(Transport, UnixRoundTripsAndClosesOrderly) {
  const std::string path = unix_path("rt");
  UnixListener listener(path);
  std::unique_ptr<Transport> client;
  std::thread connector([&] { client = unix_connect(path); });
  std::unique_ptr<Transport> server = listener.accept();
  connector.join();

  // 2 MiB dwarfs the AF_UNIX socket buffer, so the send must overlap the
  // recv (unlike the TCP suite, where the kernel absorbs the whole frame).
  std::vector<std::uint8_t> big(2 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 13 + 5);
  std::thread sender([&] {
    client->send(big);
    client->send(bytes_of({}));
  });
  EXPECT_EQ(server->recv(), big);  // framing survives partial socket reads
  EXPECT_EQ(server->recv(), bytes_of({}));
  sender.join();
  server->send(bytes_of({6}));
  EXPECT_EQ(client->recv(), bytes_of({6}));
  client->close();
  EXPECT_EQ(server->recv(), std::nullopt);  // orderly EOF between frames
}

TEST(Transport, UnixListenerUnlinksItsPath) {
  const std::string path = unix_path("unlink");
  {
    UnixListener listener(path);
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
    // A second listener on the same live path must fail, not steal it.
    EXPECT_THROW(UnixListener{path}, NetError);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  // Path released: rebinding now works.
  UnixListener again(path);
}

TEST(Transport, UnixConnectFaultsAreTyped) {
  EXPECT_THROW((void)unix_connect(unix_path("nobody-listens")), NetError);
  EXPECT_THROW((void)unix_connect(std::string(200, 'x')), NetError);  // > sun_path
  EXPECT_THROW(UnixListener{std::string(200, 'x')}, NetError);
  EXPECT_THROW(UnixListener{""}, NetError);
}

TEST(Transport, UnixTruncatedFrameIsATypedError) {
  const std::string path = unix_path("trunc");
  UnixListener listener(path);
  int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::unique_ptr<Transport> server = listener.accept();

  // A frame that promises 9 payload bytes, delivers 2, then dies.
  const std::uint8_t prefix[8] = {9, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(raw, prefix, sizeof prefix, 0), static_cast<ssize_t>(sizeof prefix));
  const std::uint8_t partial[2] = {1, 2};
  ASSERT_EQ(::send(raw, partial, sizeof partial, 0), static_cast<ssize_t>(sizeof partial));
  ::close(raw);
  EXPECT_THROW((void)server->recv(), NetError);
}

TEST(IngestProtocol, IngestRunsOverUnixSockets) {
  const GraphStream stream = churned_stream(26, 2, 7900);
  SketchOptions opt;
  opt.seed = 7901;
  opt.max_forests = 2;
  const SparsifyResult local = sparsify_stream(stream, 2, opt);

  const std::string path = unix_path("ingest");
  UnixListener listener(path);
  const int workers = 2;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&stream, w, path] {
      const std::unique_ptr<Transport> t = unix_connect(path);
      run_ingest_worker(*t, stream, static_cast<std::uint32_t>(w), workers);
    });
  }
  std::vector<std::unique_ptr<Transport>> accepted;
  std::vector<Transport*> raw;
  for (int w = 0; w < workers; ++w) {
    accepted.push_back(listener.accept());
    raw.push_back(accepted.back().get());
  }
  const SparsifyResult remote = coordinated_sparsify(raw, stream.num_vertices(), 2, opt);
  for (auto& th : threads) th.join();
  EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests));
}

TEST(Transport, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }  // listener closed; the port is (almost surely) not listening now
  EXPECT_THROW((void)tcp_connect("127.0.0.1", dead_port), NetError);
  EXPECT_THROW((void)tcp_connect("not-an-ipv4-address", 1), NetError);
}

// ---------------------------------------------------------------------------
// Recv deadlines (recv_for / RecvOptions) — the death-detection primitive
// under the fault-tolerant CONGEST engine.

TEST(Transport, RecvForTimesOutTypedAndThePeerStaysUsable) {
  auto [a, b] = loopback_pair();
  EXPECT_THROW((void)b->recv_for(30), NetTimeout);
  // A timeout is not a death: the link still works afterwards.
  a->send(bytes_of({4, 2}));
  EXPECT_EQ(b->recv_for(1000), bytes_of({4, 2}));
  // Orderly close is still nullopt, never a timeout.
  a->close();
  EXPECT_EQ(b->recv_for(30), std::nullopt);
}

TEST(Transport, RecvForNegativeTimeoutBlocksLikeRecv) {
  auto [a, b] = loopback_pair();
  std::optional<std::vector<std::uint8_t>> got;
  std::thread receiver([&] { got = b->recv_for(-1); });
  a->send(bytes_of({9}));
  receiver.join();
  EXPECT_EQ(got, bytes_of({9}));
}

TEST(Transport, NetTimeoutIsANetError) {
  // Every existing catch (NetError&) must keep catching deadline expiries.
  auto [a, b] = loopback_pair();
  EXPECT_THROW((void)b->recv_for(10), NetError);
  (void)a;
}

TEST(Transport, RecvOptionsRetriesAbsorbASlowSender) {
  auto [a, b] = loopback_pair();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    a->send(bytes_of({1}));
  });
  // One 25 ms attempt would expire; the retry budget rides out the silence.
  RecvOptions opts;
  opts.timeout_ms = 25;
  opts.retries = 20;
  opts.backoff_ms = 1;
  EXPECT_EQ(b->recv(opts), bytes_of({1}));
  sender.join();
}

TEST(Transport, RecvOptionsExhaustedRetriesThrowNetTimeout) {
  auto [a, b] = loopback_pair();
  RecvOptions opts;
  opts.timeout_ms = 10;
  opts.retries = 2;
  EXPECT_THROW((void)b->recv(opts), NetTimeout);
  (void)a;
}

TEST(Transport, TcpRecvForTimesOutTyped) {
  TcpListener listener;
  std::unique_ptr<Transport> client;
  std::thread connector([&] { client = tcp_connect("127.0.0.1", listener.port()); });
  std::unique_ptr<Transport> server = listener.accept();
  connector.join();
  EXPECT_THROW((void)server->recv_for(30), NetTimeout);
  client->send(bytes_of({7}));
  EXPECT_EQ(server->recv_for(1000), bytes_of({7}));
  client->close();
}

// ---------------------------------------------------------------------------
// IPv6.

TEST(Transport, Ipv6RoundTripsAndClosesOrderly) {
  TcpListener listener(0, "::1");
  ASSERT_GT(listener.port(), 0);
  std::unique_ptr<Transport> client;
  std::thread connector([&] { client = tcp_connect("::1", listener.port()); });
  std::unique_ptr<Transport> server = listener.accept();
  connector.join();

  client->send(bytes_of({1, 2, 3}));
  server->send(bytes_of({4}));
  EXPECT_EQ(server->recv(), bytes_of({1, 2, 3}));
  EXPECT_EQ(client->recv(), bytes_of({4}));
  client->close();
  EXPECT_EQ(server->recv(), std::nullopt);
}

TEST(Transport, Ipv6TruncatedFrameIsATypedError) {
  TcpListener listener(0, "::1");
  int raw = ::socket(AF_INET6, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in6 addr{};
  addr.sin6_family = AF_INET6;
  addr.sin6_port = htons(listener.port());
  addr.sin6_addr = in6addr_loopback;
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::unique_ptr<Transport> server = listener.accept();

  const std::uint8_t half_prefix[4] = {10, 0, 0, 0};
  ASSERT_EQ(::send(raw, half_prefix, sizeof half_prefix, 0),
            static_cast<ssize_t>(sizeof half_prefix));
  ::close(raw);
  EXPECT_THROW((void)server->recv(), NetError);
}

TEST(Transport, Ipv6ConnectFaultsAreTyped) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0, "::1");
    dead_port = listener.port();
  }
  EXPECT_THROW((void)tcp_connect("::1", dead_port), NetError);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection (net/fault.hpp).

TEST(FaultInjection, KillClosesTheLinkAtTheExactFrame) {
  auto [a, b] = loopback_pair();
  FaultInjectingTransport faulted(std::move(b), {FaultRule{1, FaultRule::Kind::kKill, 0}});
  a->send(bytes_of({1}));
  a->send(bytes_of({2}));
  EXPECT_EQ(faulted.recv(), bytes_of({1}));  // frame 0 passes
  EXPECT_THROW((void)faulted.recv(), NetError);  // frame 1 is the kill
  EXPECT_THROW((void)faulted.recv(), NetError);  // and the link stays dead
  EXPECT_THROW(faulted.send(bytes_of({3})), NetError);
  EXPECT_EQ(a->recv(), std::nullopt);  // the peer observes the close
}

TEST(FaultInjection, DropSwallowsExactlyTheMatchedFrame) {
  auto [a, b] = loopback_pair();
  FaultInjectingTransport faulted(std::move(b), {FaultRule{1, FaultRule::Kind::kDrop, 0}});
  a->send(bytes_of({1}));
  a->send(bytes_of({2}));  // dropped
  a->send(bytes_of({3}));
  EXPECT_EQ(faulted.recv(), bytes_of({1}));
  EXPECT_EQ(faulted.recv(), bytes_of({3}));
  EXPECT_EQ(faulted.frames_seen(), 3u);  // the dropped frame still ticked the clock
}

TEST(FaultInjection, DelayDeliversLateButIntact) {
  auto [a, b] = loopback_pair();
  FaultInjectingTransport faulted(std::move(b), {FaultRule{0, FaultRule::Kind::kDelay, 40}});
  a->send(bytes_of({5}));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(faulted.recv(), bytes_of({5}));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 35);
}

TEST(FaultInjection, ScriptsComposeWithRecvDeadlines) {
  // A dropped frame plus a recv deadline is the canonical "silent worker"
  // scenario: the protocol above sees NetTimeout, not a hang.
  auto [a, b] = loopback_pair();
  FaultInjectingTransport faulted(std::move(b), {FaultRule{0, FaultRule::Kind::kDrop, 0}});
  a->send(bytes_of({1}));
  EXPECT_THROW((void)faulted.recv_for(50), NetTimeout);
}

// ---------------------------------------------------------------------------
// Coordinator/worker ingest protocol.

/// Spawns `workers` loopback ingest workers over a shared seeded stream and
/// runs the coordinator; returns the coordinator's SparsifyResult.
SparsifyResult loopback_ingest(const GraphStream& stream, int workers, int k,
                               const SketchOptions& opt, const IngestCoordinatorOptions& copt = {},
                               const IngestWorkerOptions& wopt = {}) {
  std::vector<std::unique_ptr<Transport>> coordinator_side;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    auto [c, wt] = loopback_pair();
    coordinator_side.push_back(std::move(c));
    threads.emplace_back(
        [&stream, workers, w, wopt, t = std::shared_ptr<Transport>(std::move(wt))] {
          try {
            run_ingest_worker(*t, stream, static_cast<std::uint32_t>(w),
                              static_cast<std::uint32_t>(workers), wopt);
          } catch (const NetError&) {
            // Coordinator-side faults close the transport under us; the
            // test asserts on the coordinator's error, not ours.
          }
        });
  }
  std::vector<Transport*> raw;
  raw.reserve(coordinator_side.size());
  for (auto& t : coordinator_side) raw.push_back(t.get());
  SparsifyResult result;
  try {
    result = coordinated_sparsify(raw, stream.num_vertices(), k, opt, copt);
  } catch (...) {
    for (auto& t : coordinator_side) t->close();
    for (auto& th : threads) th.join();
    throw;
  }
  for (auto& th : threads) th.join();
  return result;
}

TEST(IngestProtocol, BitIdenticalToSingleProcessForEveryWorkerCount) {
  const GraphStream stream = churned_stream(40, 2, 7100);
  SketchOptions opt;
  opt.seed = 7101;
  opt.max_forests = 2;
  const SparsifyResult local = sharded_sparsify_stream(stream, 2, opt, ShardOptions{});
  for (int workers : {1, 2, 4}) {
    const SparsifyResult remote = loopback_ingest(stream, workers, 2, opt);
    EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests)) << workers << " workers";
    EXPECT_EQ(remote.copies_used, local.copies_used);
    EXPECT_EQ(remote.certificate.num_edges(), local.certificate.num_edges());
    for (const Edge& e : local.certificate.edges())
      EXPECT_TRUE(remote.certificate.has_edge(e.u, e.v));
  }
}

TEST(IngestProtocol, ChunkSizeNeverChangesTheResult) {
  const GraphStream stream = churned_stream(36, 2, 7200);
  SketchOptions opt;
  opt.seed = 7201;
  opt.max_forests = 2;
  const SparsifyResult local = sparsify_stream(stream, 2, opt);
  for (int vpc : {1, 5, 36}) {
    IngestWorkerOptions wopt;
    wopt.vertices_per_chunk = vpc;
    const SparsifyResult remote = loopback_ingest(stream, 2, 2, opt, {}, wopt);
    EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests)) << "vpc=" << vpc;
  }
}

TEST(IngestProtocol, SharedPoolThreadCountNeverChangesTheResult) {
  const GraphStream stream = churned_stream(36, 2, 7300);
  SketchOptions opt;
  opt.seed = 7301;
  opt.max_forests = 2;
  const SparsifyResult local = sparsify_stream(stream, 2, opt);
  for (int threads : {1, 2, 4}) {
    IngestCoordinatorOptions copt;
    copt.threads = threads;
    const SparsifyResult remote = loopback_ingest(stream, 3, 2, opt, copt);
    EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests)) << threads << " threads";
  }
}

TEST(IngestProtocol, AdaptiveSizingRunsOverTheWire) {
  // Auto-sizing re-broadcasts grown options per attempt; the distributed
  // attempt loop must land on the same certificate as the local one.
  const GraphStream stream = churned_stream(32, 2, 7400);
  SketchOptions opt;
  opt.seed = 7401;
  opt.max_forests = 2;
  opt.auto_size.enabled = true;
  const SparsifyResult local = sharded_sparsify_stream(stream, 2, opt, ShardOptions{});
  const SparsifyResult remote = loopback_ingest(stream, 2, 2, opt);
  EXPECT_EQ(remote.attempts, local.attempts);
  EXPECT_EQ(remote.columns_used, local.columns_used);
  EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests));
}

TEST(IngestProtocol, IngestRunsOverRealSockets) {
  const GraphStream stream = churned_stream(28, 2, 7500);
  SketchOptions opt;
  opt.seed = 7501;
  opt.max_forests = 2;
  const SparsifyResult local = sparsify_stream(stream, 2, opt);

  TcpListener listener;
  const int workers = 2;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&stream, w, port = listener.port()] {
      const std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", port);
      run_ingest_worker(*t, stream, static_cast<std::uint32_t>(w), workers);
    });
  }
  std::vector<std::unique_ptr<Transport>> accepted;
  for (int w = 0; w < workers; ++w) accepted.push_back(listener.accept());
  std::vector<Transport*> raw;
  for (auto& t : accepted) raw.push_back(t.get());
  const SparsifyResult remote = coordinated_sparsify(raw, stream.num_vertices(), 2, opt);
  for (auto& th : threads) th.join();
  EXPECT_EQ(sorted_pairs(remote.forests), sorted_pairs(local.forests));
}

TEST(IngestProtocol, WorkerDyingMidAttemptIsATypedError) {
  const GraphStream stream = churned_stream(24, 2, 7600);
  SketchOptions opt;
  opt.seed = 7601;
  auto [c, w] = loopback_pair();
  std::thread impostor([t = std::shared_ptr<Transport>(std::move(w))] {
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
    net::put_u32(hello, 0);   // worker id
    net::put_u32(hello, 24);  // n
    net::put_u32(hello, 1);   // fleet size
    t->send(hello);
    (void)t->recv();  // swallow the Attempt...
    t->close();       // ...and die without sending a single chunk
  });
  std::vector<Transport*> raw{c.get()};
  EXPECT_THROW((void)coordinated_sparsify(raw, 24, 2, opt), NetError);
  impostor.join();
}

TEST(IngestProtocol, RosterViolationsAreTypedErrors) {
  SketchOptions opt;
  opt.seed = 7700;
  {  // first message is not a Hello
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> junk;
    net::put_u32(junk, static_cast<std::uint32_t>(IngestMsg::kDone));
    w->send(junk);
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW((void)coordinated_sparsify(raw, 16, 2, opt), NetError);
  }
  {  // n mismatch
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
    net::put_u32(hello, 0);
    net::put_u32(hello, 99);  // coordinator expects 16
    net::put_u32(hello, 1);
    w->send(hello);
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW((void)coordinated_sparsify(raw, 16, 2, opt), NetError);
  }
  {  // duplicate worker ids
    auto [c0, w0] = loopback_pair();
    auto [c1, w1] = loopback_pair();
    for (auto* w : {w0.get(), w1.get()}) {
      std::vector<std::uint8_t> hello;
      net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
      net::put_u32(hello, 1);  // same (in-range) id twice
      net::put_u32(hello, 16);
      net::put_u32(hello, 2);
      w->send(hello);
    }
    std::vector<Transport*> raw{c0.get(), c1.get()};
    EXPECT_THROW((void)coordinated_sparsify(raw, 16, 2, opt), NetError);
  }
  {  // fleet-size disagreement: a worker slicing for a 3-worker fleet would
     // leave stream updates ingested by nobody — the roster must catch it
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
    net::put_u32(hello, 0);
    net::put_u32(hello, 16);
    net::put_u32(hello, 3);  // coordinator drives 1
    w->send(hello);
    std::vector<Transport*> raw{c.get()};
    try {
      (void)coordinated_sparsify(raw, 16, 2, opt);
      FAIL() << "fleet-size disagreement accepted";
    } catch (const NetError& e) {
      EXPECT_NE(std::string(e.what()).find("fleet"), std::string::npos) << e.what();
    }
  }
  {  // worker id outside the fleet
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> hello;
    net::put_u32(hello, static_cast<std::uint32_t>(IngestMsg::kHello));
    net::put_u32(hello, 5);  // fleet of 1 — only id 0 is valid
    net::put_u32(hello, 16);
    net::put_u32(hello, 1);
    w->send(hello);
    std::vector<Transport*> raw{c.get()};
    EXPECT_THROW((void)coordinated_sparsify(raw, 16, 2, opt), NetError);
  }
}

TEST(IngestProtocol, WorkerRejectsMalformedCoordinator) {
  const GraphStream stream = churned_stream(16, 2, 7800);
  {  // unexpected message type instead of Attempt/Shutdown
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> junk;
    net::put_u32(junk, static_cast<std::uint32_t>(IngestMsg::kChunk));
    c->send(junk);
    EXPECT_THROW(run_ingest_worker(*w, stream, 0, 1), NetError);
  }
  {  // coordinator vanishes before shutdown
    auto [c, w] = loopback_pair();
    c->close();
    EXPECT_THROW(run_ingest_worker(*w, stream, 0, 1), NetError);
  }
  {  // short attempt message
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> attempt;
    net::put_u32(attempt, static_cast<std::uint32_t>(IngestMsg::kAttempt));
    net::put_u32(attempt, 1);  // far fewer bytes than SketchOptions needs
    c->send(attempt);
    EXPECT_THROW(run_ingest_worker(*w, stream, 0, 1), NetError);
  }
  {  // well-formed frame, absurd sizing: the worker must refuse the typed
     // way instead of overflowing arithmetic or allocating a forged bank
    auto [c, w] = loopback_pair();
    std::vector<std::uint8_t> attempt;
    net::put_u32(attempt, static_cast<std::uint32_t>(IngestMsg::kAttempt));
    net::put_u64(attempt, 1);           // seed
    net::put_u32(attempt, 0x7fffffff);  // max_forests far beyond any budget
    net::put_u32(attempt, 6);           // columns
    net::put_u32(attempt, 4);           // rounds_slack
    net::put_u32(attempt, 0);           // auto_size.enabled
    net::put_u32(attempt, 2);
    net::put_u32(attempt, 1);
    net::put_u32(attempt, 2);
    net::put_u32(attempt, 6);
    c->send(attempt);
    try {
      run_ingest_worker(*w, stream, 0, 1);
      FAIL() << "absurd attempt sizing accepted";
    } catch (const NetError& e) {
      EXPECT_NE(std::string(e.what()).find("max_forests"), std::string::npos) << e.what();
    }
  }
}

}  // namespace
}  // namespace deck
