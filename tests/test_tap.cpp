#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "ecss/distributed_2ecss.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "tap/seq_tap.hpp"
#include "tap/tap_instance.hpp"

namespace deck {
namespace {

TEST(TapInstance, CoverageSemantics) {
  // Star tree 0-{1,2,3} plus links.
  Graph g(4);
  std::vector<EdgeId> tree;
  tree.push_back(g.add_edge(0, 1, 1));
  tree.push_back(g.add_edge(0, 2, 1));
  tree.push_back(g.add_edge(0, 3, 1));
  const EdgeId l12 = g.add_edge(1, 2, 3);
  const EdgeId l13 = g.add_edge(1, 3, 4);
  TapInstance inst = make_tap_instance(g, tree, 0);
  EXPECT_EQ(inst.links(), (std::vector<EdgeId>{l12, l13}));
  auto cov = inst.covered_by(l12);
  std::sort(cov.begin(), cov.end());
  EXPECT_EQ(cov, (std::vector<EdgeId>{tree[0], tree[1]}));
  EXPECT_FALSE(inst.covers_all({l12}));
  EXPECT_TRUE(inst.covers_all({l12, l13}));
  EXPECT_EQ(inst.weight_of({l12, l13}), 7);
}

TEST(TapInstance, RandomInstancesAreCoverable) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    TapInstance inst = random_tap_instance(20, 10, 1, rng);
    EXPECT_TRUE(inst.covers_all(inst.links()));
  }
}

TEST(GreedyTap, CoversAndExactIsNoWorse) {
  Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    TapInstance inst = random_tap_instance(9, 4, 1, rng);
    if (inst.links().size() > 20) continue;
    const auto greedy = greedy_tap(inst);
    EXPECT_TRUE(inst.covers_all(greedy));
    const auto exact = exact_tap(inst);
    EXPECT_TRUE(inst.covers_all(exact));
    EXPECT_LE(inst.weight_of(exact), inst.weight_of(greedy));
  }
}

TEST(GreedyTap, TakesFreeZeroWeightLinks) {
  Graph g(3);
  std::vector<EdgeId> tree;
  tree.push_back(g.add_edge(0, 1, 1));
  tree.push_back(g.add_edge(1, 2, 1));
  const EdgeId zero = g.add_edge(0, 2, 0);
  TapInstance inst = make_tap_instance(g, tree, 0);
  const auto aug = greedy_tap(inst);
  EXPECT_EQ(aug, std::vector<EdgeId>{zero});
}

TEST(ExactTap, FindsObviousOptimum) {
  // Path tree 0-1-2-3; links: expensive per-edge links and one cheap
  // link covering everything.
  Graph g(4);
  std::vector<EdgeId> tree;
  for (int i = 0; i + 1 < 4; ++i) tree.push_back(g.add_edge(i, i + 1, 1));
  g.add_edge(0, 2, 10);
  g.add_edge(1, 3, 10);
  const EdgeId full = g.add_edge(0, 3, 5);
  TapInstance inst = make_tap_instance(g, tree, 0);
  EXPECT_EQ(exact_tap(inst), std::vector<EdgeId>{full});
}

class DistributedTapTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributedTapTest, CoversAllTreeEdgesAcrossInstances) {
  const auto [n, extra, wm] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + extra);
  TapInstance inst = random_tap_instance(n, extra, wm, rng);
  Network net(inst.g);
  TapOptions opt;
  opt.seed = 99;
  const TapResult r = distributed_tap_standalone(net, inst, opt);
  EXPECT_TRUE(inst.covers_all(r.augmentation))
      << "n=" << n << " extra=" << extra << " wm=" << wm;
  EXPECT_GT(net.rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedTapTest,
                         ::testing::Values(std::make_tuple(12, 6, 1), std::make_tuple(24, 12, 1),
                                           std::make_tuple(40, 30, 1), std::make_tuple(40, 30, 0),
                                           std::make_tuple(64, 40, 2), std::make_tuple(96, 64, 1),
                                           std::make_tuple(128, 100, 1)));

TEST(DistributedTap, ApproximationWithinLogFactorOfExact) {
  Rng rng(77);
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 6; ++trial) {
    TapInstance inst = random_tap_instance(10, 4, 1, rng);
    if (inst.links().size() > 18) continue;
    ++checked;
    Network net(inst.g);
    TapOptions opt;
    opt.seed = trial;
    const TapResult r = distributed_tap_standalone(net, inst, opt);
    ASSERT_TRUE(inst.covers_all(r.augmentation));
    const Weight opt_w = inst.weight_of(exact_tap(inst));
    const double bound =
        8.0 * (std::log2(static_cast<double>(inst.g.num_vertices())) + 1.0);
    EXPECT_LE(static_cast<double>(r.weight), bound * static_cast<double>(opt_w))
        << "trial " << trial;
  }
  EXPECT_GE(checked, 3);
}

TEST(DistributedTap, ZeroWeightLinksCoverForFree) {
  Rng rng(5);
  // Tree path plus zero-weight full-cycle links: augmentation weight 0.
  Graph g(8);
  std::vector<EdgeId> tree;
  for (int i = 0; i + 1 < 8; ++i) tree.push_back(g.add_edge(i, i + 1, 1));
  g.add_edge(7, 0, 0);
  TapInstance inst = make_tap_instance(g, tree, 0);
  Network net(inst.g);
  const TapResult r = distributed_tap_standalone(net, inst, TapOptions{});
  EXPECT_TRUE(inst.covers_all(r.augmentation));
  EXPECT_EQ(r.weight, 0);
}

TEST(DistributedTap, IterationCountPolylog) {
  Rng rng(6);
  TapInstance inst = random_tap_instance(100, 120, 1, rng);
  Network net(inst.g);
  TapOptions opt;
  const TapResult r = distributed_tap_standalone(net, inst, opt);
  ASSERT_TRUE(inst.covers_all(r.augmentation));
  const double logn = std::log2(100.0);
  EXPECT_LE(r.iterations, static_cast<int>(12.0 * logn * logn));
}

}  // namespace
}  // namespace deck
