#include <gtest/gtest.h>

#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace deck {
namespace {

TEST(Generators, CirculantConnectivity) {
  Graph g = circulant(12, 2);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(edge_connectivity(g), 4);
}

TEST(Generators, HararyMeetsRequestedConnectivity) {
  for (int k : {1, 2, 3, 4, 5}) {
    Graph g = harary(11, k);
    EXPECT_GE(edge_connectivity(g), k) << "k=" << k;
  }
}

TEST(Generators, HypercubeStructure) {
  Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(edge_connectivity(g), 4);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, TorusIsFourConnected) {
  Graph g = torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(edge_connectivity(g), 4);
}

TEST(Generators, RandomKecIsKConnected) {
  Rng rng(123);
  for (int k : {2, 3, 4}) {
    Graph g = random_kec(20, k, 10, rng);
    EXPECT_GE(edge_connectivity(g), k) << "k=" << k;
  }
}

TEST(Generators, RingOfCliquesConnectivity) {
  Rng rng(5);
  Graph g = ring_of_cliques(4, 5, 3, rng);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_GE(edge_connectivity(g), 3);
}

TEST(Generators, NearRegularIsConnected) {
  Rng rng(77);
  Graph g = random_near_regular(30, 4, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WeightModelsAssignExpectedRanges) {
  Rng rng(42);
  Graph g = torus(4, 4);
  Graph unit = with_weights(g, WeightModel::kUnit, rng);
  for (const Edge& e : unit.edges()) EXPECT_EQ(e.w, 1);
  Graph uni = with_weights(g, WeightModel::kUniform, rng);
  for (const Edge& e : uni.edges()) {
    EXPECT_GE(e.w, 1);
    EXPECT_LE(e.w, g.num_vertices());
  }
  Graph zh = with_weights(g, WeightModel::kZeroHeavy, rng);
  int zeros = 0;
  for (const Edge& e : zh.edges())
    if (e.w == 0) ++zeros;
  EXPECT_GT(zeros, 0);
}

TEST(Generators, WeightsPreserveTopology) {
  Rng rng(1);
  Graph g = torus(3, 4);
  Graph w = with_weights(g, WeightModel::kUniform, rng);
  ASSERT_EQ(w.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(w.edge(e).u, g.edge(e).u);
    EXPECT_EQ(w.edge(e).v, g.edge(e).v);
  }
}

}  // namespace
}  // namespace deck
