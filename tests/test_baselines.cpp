#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "ecss/exact.hpp"
#include "ecss/lower_bounds.hpp"
#include "ecss/seq_ecss.hpp"
#include "ecss/thurimella.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

TEST(Thurimella, CertificateIsKConnectedAndSparse) {
  Rng rng(1);
  for (int k : {2, 3, 4}) {
    Graph g = random_kec(20, k, 30, rng);
    ASSERT_GE(edge_connectivity(g), k);
    const auto cert = sparse_certificate(g, k);
    EXPECT_TRUE(is_k_edge_connected_subset(g, cert, k)) << "k=" << k;
    EXPECT_LE(static_cast<int>(cert.size()), k * (g.num_vertices() - 1));
  }
}

TEST(Thurimella, DistributedMatchesGuarantees) {
  Rng rng(2);
  Graph g = random_kec(24, 3, 30, rng);
  Network net(g);
  const auto cert = sparse_certificate_distributed(net, 3);
  EXPECT_TRUE(is_k_edge_connected_subset(g, cert, 3));
  EXPECT_LE(static_cast<int>(cert.size()), 3 * (g.num_vertices() - 1));
  EXPECT_GT(net.rounds(), 0u);
}

TEST(Thurimella, TwoApproxForUnweighted) {
  Rng rng(3);
  Graph g = random_kec(10, 2, 4, rng);
  if (g.num_edges() <= 22) {
    const auto cert = sparse_certificate(g, 2);
    const auto opt = exact_kecss(g, 2);
    EXPECT_LE(cert.size(), 2 * opt.size());
  }
}

TEST(LowerBounds, DegreeBoundBelowOptimum) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = with_weights(random_kec(8, 2, 3, rng), WeightModel::kUniform, rng);
    if (g.num_edges() > 18) continue;
    Weight opt_w = 0;
    for (EdgeId e : exact_kecss(g, 2)) opt_w += g.edge(e).w;
    EXPECT_LE(degree_lower_bound(g, 2), opt_w);
    EXPECT_LE(kecss_lower_bound(g, 2), opt_w);
  }
}

TEST(LowerBounds, ExactValuesOnKnownGraphs) {
  // Cycle with unit weights: 2-ECSS optimum is the cycle itself (n edges);
  // degree bound = n.
  Graph c = circulant(8, 1);
  EXPECT_EQ(degree_lower_bound(c, 2), 8);
  const auto opt = exact_kecss(c, 2);
  EXPECT_EQ(opt.size(), 8u);
}

TEST(ExactKecss, MatchesGreedyOrBetter) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = with_weights(random_kec(8, 2, 2, rng), WeightModel::kUniform, rng);
    if (g.num_edges() > 16) continue;
    Weight opt_w = 0;
    for (EdgeId e : exact_kecss(g, 2)) opt_w += g.edge(e).w;
    Weight greedy_w = 0;
    for (EdgeId e : greedy_kecss(g, 2, 1)) greedy_w += g.edge(e).w;
    EXPECT_LE(opt_w, greedy_w);
    EXPECT_TRUE(is_k_edge_connected_subset(g, exact_kecss(g, 2), 2));
  }
}

TEST(GreedyAug, CoversBridges) {
  // Two triangles + bridge; adding any chord across fixes connectivity 2.
  Graph g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(5, 3, 1);
  const EdgeId fix = g.add_edge(0, 4, 5);
  std::vector<char> h(static_cast<std::size_t>(g.num_edges()), 1);
  h[static_cast<std::size_t>(fix)] = 0;
  const auto added = greedy_aug(g, h, 1, 1);
  EXPECT_EQ(added, std::vector<EdgeId>{fix});
}

}  // namespace
}  // namespace deck
