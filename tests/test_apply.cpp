// Backend-identity property tests for the batched apply path
// (sketch/apply.hpp): the scalar and simd backends must produce
// bit-identical banks — down to encode_bank()/encode_sampler() bytes — for
// every surface that funnels through apply_batch (direct batches, sharded
// ingestion, gutter flush policies, coordinated net ingest), plus an
// odd-sized/unaligned-batch edge-case suite for the SIMD run kernel.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "net/ingest.hpp"
#include "net/transport.hpp"
#include "serve/gutter.hpp"
#include "serve/session.hpp"
#include "sketch/apply.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/shard.hpp"
#include "sketch/sketch_connectivity.hpp"
#include "sketch/sketch_io.hpp"
#include "sketch/stream.hpp"
#include "sketch_test_util.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace deck {
namespace {

/// Sequential scalar reference bank for a stream: the oracle every backend
/// and regrouping must match byte-for-byte.
SketchConnectivity reference_bank(const GraphStream& stream, const SketchOptions& opt) {
  SketchConnectivity bank(stream.num_vertices(), opt);
  for (const StreamUpdate& u : stream.updates()) bank.update(u.u, u.v, u.insert ? 1 : -1);
  return bank;
}

SketchOptions small_options(std::uint64_t seed) {
  SketchOptions opt;
  opt.seed = seed;
  opt.max_forests = 2;
  return opt;
}

TEST(ApplyBackend, NamesRoundTrip) {
  EXPECT_STREQ(to_string(ApplyBackend::kScalar), "scalar");
  EXPECT_STREQ(to_string(ApplyBackend::kSimd), "simd");
  EXPECT_EQ(parse_apply_backend("scalar"), ApplyBackend::kScalar);
  EXPECT_EQ(parse_apply_backend("simd"), ApplyBackend::kSimd);
  EXPECT_THROW(parse_apply_backend("gpu"), std::logic_error);
}

TEST(ApplyBackend, UpdateRunMatchesPerDeltaUpdates) {
  // The kernel-level identity, over odd/unaligned run lengths and column
  // counts spanning every code path: 1..5 exercise the masked tail, 8 the
  // full AVX2 lanes, 9/31 lanes+tail, 33 the >kMaxRunColumns fallback.
  Rng rng(41);
  const std::uint64_t universe = 97 * 97;
  for (int columns : {1, 2, 3, 4, 5, 6, 8, 9, 16, 31, 33}) {
    for (std::size_t len : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
                            std::size_t{13}, std::size_t{63}, std::size_t{255}, std::size_t{257},
                            std::size_t{1000}}) {
      L0Sampler scalar(universe, /*seed=*/7, columns);
      L0Sampler batched(universe, /*seed=*/7, columns);
      std::vector<RawDelta> run;
      run.reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        // Duplicate indices and cancelling ± deltas included by construction.
        const std::uint64_t index = rng.next_below(universe / 4);
        const std::int64_t delta = rng.next_bool(0.5) ? 1 : -1;
        run.push_back({index, delta});
        scalar.update(index, static_cast<int>(delta));
      }
      batched.update_run(std::span<const RawDelta>(run.data(), run.size()));
      EXPECT_EQ(encode_sampler(scalar), encode_sampler(batched))
          << "columns=" << columns << " len=" << len;
    }
  }
}

TEST(ApplyBackend, UpdateRunSkipsZeroDeltasAndEmptyRuns) {
  L0Sampler a(1024, 11, 6);
  L0Sampler b(1024, 11, 6);
  b.update_run({});
  const std::vector<RawDelta> zeros = {{5, 0}, {9, 0}};
  b.update_run(std::span<const RawDelta>(zeros.data(), zeros.size()));
  EXPECT_EQ(encode_sampler(a), encode_sampler(b));
  EXPECT_TRUE(b.empty());
}

TEST(ApplyBackend, ApplyBatchIdentityAcrossBatchSizes) {
  // Whole-bank identity for direct apply_batch at odd/unaligned batch
  // sizes, including batches far larger than any per-source run.
  const GraphStream stream = churned_stream(48, 2, 901);
  const SketchOptions opt = small_options(902);
  const std::vector<std::uint8_t> want = encode_bank(reference_bank(stream, opt));
  for (std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{17}, std::size_t{255},
                            std::size_t{256}, std::size_t{100000}}) {
    for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
      SketchConnectivity bank(stream.num_vertices(), opt);
      for (const SourceBatch& b : collect_batches(stream, batch))
        bank.apply_batch(b.src, std::span<const VertexDelta>(b.deltas.data(), b.deltas.size()),
                         backend);
      EXPECT_EQ(encode_bank(bank), want)
          << "backend=" << to_string(backend) << " batch=" << batch;
    }
  }
}

TEST(ApplyBackend, ApplyBatchSimdValidatesLikeScalar) {
  const SketchOptions opt = small_options(3);
  SketchConnectivity bank(8, opt);
  const std::vector<VertexDelta> self = {{2, 1}};
  EXPECT_THROW(bank.apply_batch(2, std::span<const VertexDelta>(self.data(), self.size()),
                                ApplyBackend::kSimd),
               std::logic_error);
  const std::vector<VertexDelta> oob = {{8, 1}};
  EXPECT_THROW(bank.apply_batch(0, std::span<const VertexDelta>(oob.data(), oob.size()),
                                ApplyBackend::kSimd),
               std::logic_error);
}

TEST(ApplyBackend, TinyGraphIdentity) {
  // n = 2: a single possible edge, exercising the smallest universe.
  GraphStream s(2);
  s.insert(0, 1);
  s.erase(0, 1);
  s.insert(1, 0);
  const SketchOptions opt = small_options(77);
  const std::vector<std::uint8_t> want = encode_bank(reference_bank(s, opt));
  for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
    SketchConnectivity bank(2, opt);
    for (const SourceBatch& b : collect_batches(s, 2))
      bank.apply_batch(b.src, std::span<const VertexDelta>(b.deltas.data(), b.deltas.size()),
                       backend);
    EXPECT_EQ(encode_bank(bank), want) << to_string(backend);
  }
}

TEST(ApplyBackend, BatchApplierBoundary) {
  const GraphStream stream = churned_stream(32, 2, 501);
  const SketchOptions opt = small_options(502);
  const std::vector<std::uint8_t> want = encode_bank(reference_bank(stream, opt));
  for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
    SketchConnectivity bank(stream.num_vertices(), opt);
    const std::unique_ptr<BatchApplier> applier = make_batch_applier(bank, backend);
    EXPECT_EQ(applier->backend(), backend);
    for (const SourceBatch& b : collect_batches(stream, 19))
      applier->submit(b.src, std::span<const VertexDelta>(b.deltas.data(), b.deltas.size()));
    applier->finish();
    EXPECT_EQ(encode_bank(bank), want) << to_string(backend);
  }
}

TEST(ApplyBackend, ShardedIdentityAcrossShardCountsAndModes) {
  // The tentpole property: scalar and simd banks are encode_bank-equal for
  // shard counts {1, 2, 4, 8} under every sharding mode.
  const GraphStream stream = churned_stream(64, 2, 311);
  const SketchOptions sopt = small_options(312);
  ShardOptions ref;
  ref.shards = 1;
  ref.batch_size = 64;
  const std::vector<std::uint8_t> want = encode_bank(apply_sharded(stream, sopt, ref).sketch);
  for (int shards : {1, 2, 4, 8}) {
    for (Sharding mode : {Sharding::kHash, Sharding::kVertexRange, Sharding::kDynamic}) {
      for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
        ShardOptions opt;
        opt.shards = shards;
        opt.batch_size = 37;  // unaligned on purpose
        opt.sharding = mode;
        opt.backend = backend;
        EXPECT_EQ(encode_bank(apply_sharded(stream, sopt, opt).sketch), want)
            << "shards=" << shards << " mode=" << static_cast<int>(mode)
            << " backend=" << to_string(backend);
      }
    }
  }
}

TEST(ApplyBackend, GutterFlushPolicyIdentity) {
  // Gutter flush path, straight through a BatchApplier: every flush policy
  // and backend merges to the same bank bytes.
  const GraphStream stream = churned_stream(40, 2, 601);
  const SketchOptions opt = small_options(602);
  const std::vector<std::uint8_t> want = encode_bank(reference_bank(stream, opt));
  const FlushPolicy policies[] = {
      {/*max_halves=*/1024, /*max_age=*/0},
      {/*max_halves=*/7, /*max_age=*/0},
      {/*max_halves=*/64, /*max_age=*/16},
  };
  for (const FlushPolicy& policy : policies) {
    for (ApplyBackend backend : {ApplyBackend::kScalar, ApplyBackend::kSimd}) {
      SketchConnectivity bank(stream.num_vertices(), opt);
      const std::unique_ptr<BatchApplier> applier = make_batch_applier(bank, backend);
      GutterOptions gopt;
      gopt.num_gutters = 4;
      gopt.policy = policy;
      GutteringSystem gutters(stream.num_vertices(), gopt,
                              [&](VertexId src, std::span<const VertexDelta> deltas) {
                                applier->submit(src, deltas);
                              });
      for (const StreamUpdate& u : stream.updates())
        gutters.push(u.u, u.v, u.insert ? 1 : -1);
      gutters.drain();
      applier->finish();
      EXPECT_EQ(encode_bank(bank), want)
          << "max_halves=" << policy.max_halves << " max_age=" << policy.max_age
          << " backend=" << to_string(backend);
    }
  }
}

TEST(ApplyBackend, SessionQueryIdentityAcrossBackends) {
  // End-to-end through GraphSession: a simd-backed session answers queries
  // identically to the scalar-backed one, for sequential and sharded modes.
  const GraphStream stream = churned_stream(48, 2, 701);
  SketchOptions sopt = small_options(702);
  IngestOptions ref;
  ref.sketch = sopt;
  const SparsifyResult want = ingest(stream, 2, ref);
  for (IngestMode mode : {IngestMode::kSequential, IngestMode::kSharded}) {
    IngestOptions io;
    io.mode = mode;
    io.sketch = sopt;
    io.shard.shards = mode == IngestMode::kSharded ? 3 : 1;
    io.shard.backend = ApplyBackend::kSimd;
    io.gutter.policy.max_halves = 11;
    const SparsifyResult got = ingest(stream, 2, io);
    EXPECT_EQ(sorted_pairs(got.forests), sorted_pairs(want.forests))
        << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(got.copies_used, want.copies_used);
    EXPECT_EQ(got.attempts, want.attempts);
  }
}

TEST(ApplyBackend, CoordinatedIngestIdentityDownToBankBytes) {
  // Multi-process protocol surface: workers ingesting under the simd
  // backend (with an unaligned per-source batch limit) must assemble to
  // the byte-identical coordinator bank, even mixed with scalar workers.
  const GraphStream stream = churned_stream(32, 2, 801);
  const SketchOptions opt = small_options(802);
  const std::vector<std::uint8_t> want = encode_bank(reference_bank(stream, opt));

  constexpr int kWorkers = 3;
  std::vector<std::unique_ptr<Transport>> ends;
  std::vector<Transport*> raw;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    auto [coordinator_end, worker_end] = loopback_pair();
    ends.push_back(std::move(coordinator_end));
    raw.push_back(ends.back().get());
    IngestWorkerOptions wopt;
    wopt.backend = w == 0 ? ApplyBackend::kScalar : ApplyBackend::kSimd;
    wopt.batch_halves = 13;
    threads.emplace_back(
        [&stream, w, wopt, t = std::shared_ptr<Transport>(std::move(worker_end))] {
          run_ingest_worker(*t, stream, static_cast<std::uint32_t>(w),
                            static_cast<std::uint32_t>(kWorkers), wopt);
        });
  }
  {
    ThreadPool pool(2);
    validate_ingest_roster(raw, stream.num_vertices());
    const SketchConnectivity merged =
        coordinated_ingest_attempt(raw, stream.num_vertices(), opt, pool);
    EXPECT_EQ(encode_bank(merged), want);
    shutdown_ingest_workers(raw);
  }
  for (std::thread& th : threads) th.join();
}

}  // namespace
}  // namespace deck
