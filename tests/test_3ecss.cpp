#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "ecss/distributed_3ecss.hpp"
#include "ecss/unweighted_2ecss.hpp"
#include "graph/edge_connectivity.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace deck {
namespace {

TEST(Unweighted2Ecss, TwoApproxOnFamilies) {
  Rng rng(1);
  for (auto g : {circulant(20, 2), torus(4, 6), hypercube(4)}) {
    Network net(g);
    const auto r = unweighted_2ecss_2approx(net);
    EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 2)) << g.summary();
    // Factor-2 guarantee: |edges| <= 2 (n-1) and OPT >= n.
    EXPECT_LE(static_cast<int>(r.edges.size()), 2 * (g.num_vertices() - 1));
  }
}

TEST(Unweighted2Ecss, RoundsLinearInDiameter) {
  Graph g = torus(3, 20);  // diameter ~ 11
  Network net(g);
  unweighted_2ecss_2approx(net);
  EXPECT_LT(net.rounds(), 200u);
}

class Ecss3Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Ecss3Sweep, OutputIsThreeEdgeConnected) {
  const auto [n, extra] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7 + extra);
  Graph g = random_kec(n, 3, extra, rng);
  ASSERT_GE(edge_connectivity(g), 3);
  Network net(g);
  Ecss3Options opt;
  opt.seed = static_cast<std::uint64_t>(n);
  const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ecss3Sweep,
                         ::testing::Values(std::make_tuple(12, 10), std::make_tuple(16, 12),
                                           std::make_tuple(24, 20), std::make_tuple(32, 24),
                                           std::make_tuple(48, 40), std::make_tuple(64, 64)));

TEST(Ecss3, SizeWithinLogFactorOfLowerBound) {
  Rng rng(3);
  Graph g = random_kec(32, 3, 40, rng);
  Network net(g);
  const Ecss3Result r = distributed_3ecss_unweighted(net, Ecss3Options{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  const int lb = (3 * 32 + 1) / 2;  // ceil(3n/2)
  const double bound = 6.0 * (std::log2(32.0) + 1.0);
  EXPECT_LE(static_cast<double>(r.size), bound * lb);
}

TEST(Ecss3, StructuredFamilies) {
  for (Graph g : {hypercube(4), torus(4, 6), circulant(24, 2)}) {
    ASSERT_GE(edge_connectivity(g), 3) << g.summary();
    Network net(g);
    const Ecss3Result r = distributed_3ecss_unweighted(net, Ecss3Options{});
    EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3)) << g.summary();
  }
}

TEST(Ecss3, AlreadyThreeConnectedBaseTerminatesFast) {
  // Dense graph: the 2-approx base is often already 3-connected or close;
  // the algorithm must detect termination via the labels.
  Rng rng(7);
  Graph g = random_kec(20, 3, 60, rng);
  Network net(g);
  const Ecss3Result r = distributed_3ecss_unweighted(net, Ecss3Options{});
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  EXPECT_LE(r.size, g.num_edges());
}

TEST(Ecss3, IterationCountPolylog) {
  Rng rng(9);
  Graph g = random_kec(48, 3, 30, rng);
  Network net(g);
  const Ecss3Result r = distributed_3ecss_unweighted(net, Ecss3Options{});
  ASSERT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
  const double logn = std::log2(48.0);
  EXPECT_LE(r.iterations, static_cast<int>(40.0 * logn * logn * logn));
}

TEST(Ecss3, NarrowLabelsStillProduceCorrectOutput) {
  // With very narrow labels the cost-effectiveness may err (Lemma 5.11's
  // concern) but the final subgraph must still be 3-edge-connected.
  Rng rng(11);
  Graph g = random_kec(24, 3, 20, rng);
  Network net(g);
  Ecss3Options opt;
  opt.label_bits = 16;
  const Ecss3Result r = distributed_3ecss_unweighted(net, opt);
  EXPECT_TRUE(is_k_edge_connected_subset(g, r.edges, 3));
}

}  // namespace
}  // namespace deck
