#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace deck {
namespace {

// The obs switches, clock, and sinks are process-wide; every test starts
// from a clean enabled state and restores the defaults on the way out so
// ordering between tests (and between this suite and any future one in the
// same binary) never matters.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(true);
    obs::Registry::global().reset();
    obs::TraceSink::global().clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_tracing(false);
    obs::set_clock(nullptr);
    obs::set_trace_id(0);
    obs::set_trace_node(0);
    obs::set_base_context(obs::TraceContext{});
    obs::Registry::global().reset();
    obs::TraceSink::global().clear();
  }
};

std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Metrics: striped write path, merge-on-scrape, registry semantics.

TEST_F(ObsTest, CounterMergesStripesAcrossThreads) {
  obs::Counter& c = obs::Registry::global().counter("test.obs.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterHammeredFromSharedThreadPool) {
  // The pool engine's threads hit metric hooks concurrently; the striped
  // cells must merge to an exact total (and stay TSan-clean).
  obs::Counter& c = obs::Registry::global().counter("test.obs.pool_counter");
  ThreadPool pool(4);
  for (int j = 0; j < 64; ++j)
    pool.submit([&c] {
      for (int i = 0; i < 1000; ++i) c.add(3);
    });
  pool.wait();
  EXPECT_EQ(c.value(), 64u * 1000u * 3u);
}

TEST_F(ObsTest, HistogramBucketsSumAndCountAcrossThreads) {
  obs::Histogram& h =
      obs::Registry::global().histogram("test.obs.hist", std::vector<std::uint64_t>{10, 100});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) {
        h.observe(5);     // <= 10
        h.observe(50);    // <= 100
        h.observe(5000);  // overflow
      }
    });
  for (std::thread& t : threads) t.join();
  const obs::Histogram::Snap s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(s.counts[0], 4000u);
  EXPECT_EQ(s.counts[1], 4000u);
  EXPECT_EQ(s.counts[2], 4000u);
  EXPECT_EQ(s.count, 12000u);
  EXPECT_EQ(s.sum, 4000u * (5 + 50 + 5000));
}

TEST_F(ObsTest, BoundaryValuesAreInclusiveUpperBounds) {
  obs::Histogram& h =
      obs::Registry::global().histogram("test.obs.bounds", std::vector<std::uint64_t>{10});
  h.observe(10);  // exactly the bound: first bucket
  h.observe(11);  // just above: overflow
  const obs::Histogram::Snap s = h.snapshot();
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
}

TEST_F(ObsTest, HandlesAreInternedAndSurviveReset) {
  obs::Counter& a = obs::Registry::global().counter("test.obs.interned");
  obs::Counter& b = obs::Registry::global().counter("test.obs.interned");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  obs::Registry::global().reset();
  EXPECT_EQ(a.value(), 0u);  // zeroed, not invalidated
  a.add(2);
  EXPECT_EQ(obs::Registry::global().counter("test.obs.interned").value(), 2u);
}

TEST_F(ObsTest, NamesAreUniqueAcrossMetricKinds) {
  obs::Registry::global().counter("test.obs.kinded");
  EXPECT_THROW(obs::Registry::global().gauge("test.obs.kinded"), std::logic_error);
  EXPECT_THROW(obs::Registry::global().histogram("test.obs.kinded"), std::logic_error);
}

TEST_F(ObsTest, DisabledHooksRecordNothing) {
  obs::Counter& c = obs::Registry::global().counter("test.obs.disabled");
  obs::Gauge& g = obs::Registry::global().gauge("test.obs.disabled_gauge");
  obs::Histogram& h = obs::Registry::global().histogram("test.obs.disabled_hist");
  obs::set_enabled(false);
  c.add(5);
  g.set(5);
  h.observe(5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsTest, SnapshotLookupsAndTextExposition) {
  obs::Registry::global().counter("test.obs.snap_counter").add(11);
  obs::Registry::global().gauge("test.obs.snap_gauge").set(-4);
  obs::Registry::global()
      .histogram("test.obs.snap_hist", std::vector<std::uint64_t>{10})
      .observe(3);
  const obs::Snapshot snap = obs::Registry::global().scrape();
  EXPECT_EQ(snap.counter("test.obs.snap_counter"), 11u);
  EXPECT_EQ(snap.gauge("test.obs.snap_gauge"), -4);
  ASSERT_NE(snap.histogram("test.obs.snap_hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.obs.snap_hist")->count, 1u);
  EXPECT_EQ(snap.counter("test.obs.never_registered"), 0u);
  EXPECT_EQ(snap.histogram("test.obs.never_registered"), nullptr);
  const std::string text = snap.text();
  EXPECT_NE(text.find("test.obs.snap_counter 11\n"), std::string::npos);
  EXPECT_NE(text.find("test.obs.snap_gauge -4\n"), std::string::npos);
  EXPECT_NE(text.find("test.obs.snap_hist_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("test.obs.snap_hist_le_10 1\n"), std::string::npos);
}

TEST_F(ObsTest, SnapshotJsonCarriesEveryKind) {
  obs::Registry::global().counter("test.obs.json_counter").add(5);
  obs::Registry::global().gauge("test.obs.json_gauge").set(9);
  obs::Registry::global()
      .histogram("test.obs.json_hist", std::vector<std::uint64_t>{10})
      .observe(4);
  const std::string json = obs::Registry::global().scrape().to_json().dump();
  EXPECT_NE(json.find("\"test.obs.json_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_gauge\":9"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":4"), std::string::npos);
}

TEST_F(ObsTest, ExponentialBoundsAscendEvenUnderRounding) {
  const std::vector<std::uint64_t> b = obs::exponential_bounds(1, 1.1, 10);
  ASSERT_EQ(b.size(), 10u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]) << i;
  // Default latency ladder: 1µs doubling, 25 bounds.
  const std::vector<std::uint64_t>& lat = obs::latency_bounds_ns();
  ASSERT_EQ(lat.size(), 25u);
  EXPECT_EQ(lat.front(), 1000u);
  EXPECT_EQ(lat[1], 2000u);
  EXPECT_THROW(obs::exponential_bounds(0, 2.0, 3), std::logic_error);
}

// ---------------------------------------------------------------------------
// Tracing: span nesting, the injectable clock, and cross-thread parents.

TEST_F(ObsTest, SpansNestAndStampTheFakeClock) {
  obs::set_clock(&fake_clock);
  obs::set_trace_id(0xabc);
  g_fake_now = 1000;
  {
    obs::Span outer("outer");
    g_fake_now = 2000;
    {
      obs::Span inner("inner");
      inner.arg("round", 7);
      g_fake_now = 2500;
    }
    g_fake_now = 4000;
  }
  std::vector<obs::TraceEvent> evs = obs::TraceSink::global().drain();
  ASSERT_EQ(evs.size(), 2u);  // inner closes (and records) first
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].ts_ns, 2000u);
  EXPECT_EQ(evs[0].dur_ns, 500u);
  EXPECT_EQ(evs[0].parent_id, evs[1].span_id);
  EXPECT_EQ(evs[0].trace_id, 0xabcu);
  ASSERT_EQ(evs[0].args.size(), 1u);
  EXPECT_EQ(evs[0].args[0].first, "round");
  EXPECT_EQ(evs[0].args[0].second, 7u);
  EXPECT_EQ(evs[1].name, "outer");
  EXPECT_EQ(evs[1].ts_ns, 1000u);
  EXPECT_EQ(evs[1].dur_ns, 3000u);
  EXPECT_EQ(evs[1].parent_id, 0u);
}

TEST_F(ObsTest, BaseContextParentsRootSpans) {
  // Network::begin_phase points the base context at the open phase; every
  // root span an engine opens afterwards must hang under it.
  const obs::TraceContext phase{0x77, 0x1234};
  obs::set_base_context(phase);
  { obs::Span s("engine.step"); }
  obs::set_base_context(obs::TraceContext{});
  std::vector<obs::TraceEvent> evs = obs::TraceSink::global().drain();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].parent_id, 0x1234u);
  EXPECT_EQ(evs[0].trace_id, 0x77u);  // inherited from the parent context
}

TEST_F(ObsTest, ExplicitParentCrossesThreads) {
  obs::set_trace_id(0x9);
  obs::TraceContext parent_ctx;
  {
    obs::Span parent("parent");
    parent_ctx = parent.context();
    std::thread worker([&parent_ctx] {
      obs::Span child("child", parent_ctx);
      EXPECT_TRUE(child.live());
    });
    worker.join();
  }
  std::vector<obs::TraceEvent> evs = obs::TraceSink::global().drain();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].name, "child");
  EXPECT_EQ(evs[0].parent_id, parent_ctx.span_id);
  EXPECT_NE(evs[0].tid, evs[1].tid);  // each thread gets its own track
}

TEST_F(ObsTest, TracingOffMakesSpansInert) {
  obs::set_tracing(false);
  {
    obs::Span s("inert");
    s.arg("x", 1);
    EXPECT_FALSE(s.live());
    EXPECT_EQ(s.context(), obs::TraceContext{});
  }
  EXPECT_EQ(obs::TraceSink::global().size(), 0u);
}

TEST_F(ObsTest, SpanIdsEmbedTheNodeId) {
  obs::set_trace_node(3);
  EXPECT_EQ(obs::trace_node(), 3u);
  const std::uint64_t id = obs::next_span_id();
  EXPECT_EQ(id >> 48, 3u);
  { obs::Span s("noded"); }
  std::vector<obs::TraceEvent> evs = obs::TraceSink::global().drain();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].pid, 3u);
  EXPECT_EQ(evs[0].span_id >> 48, 3u);
}

// ---------------------------------------------------------------------------
// Wire codec: round trip (including over a Transport), malformed buffers.

std::vector<obs::TraceEvent> sample_events() {
  obs::TraceEvent a;
  a.name = "alpha";
  a.ts_ns = 10;
  a.dur_ns = 5;
  a.pid = 2;
  a.tid = 1;
  a.trace_id = 0xfeed;
  a.span_id = (2ull << 48) | 7;
  a.parent_id = 42;
  a.args = {{"rounds", 9}, {"messages", 120}};
  obs::TraceEvent b;
  b.name = "beta";
  b.ts_ns = 20;
  b.dur_ns = 1;
  b.trace_id = 0xfeed;
  b.span_id = (2ull << 48) | 8;
  return {a, b};
}

void expect_events_equal(const std::vector<obs::TraceEvent>& got,
                         const std::vector<obs::TraceEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].ts_ns, want[i].ts_ns);
    EXPECT_EQ(got[i].dur_ns, want[i].dur_ns);
    EXPECT_EQ(got[i].pid, want[i].pid);
    EXPECT_EQ(got[i].tid, want[i].tid);
    EXPECT_EQ(got[i].trace_id, want[i].trace_id);
    EXPECT_EQ(got[i].span_id, want[i].span_id);
    EXPECT_EQ(got[i].parent_id, want[i].parent_id);
    EXPECT_EQ(got[i].args, want[i].args);
  }
}

TEST_F(ObsTest, EncodeDecodeRoundTrip) {
  const std::vector<obs::TraceEvent> events = sample_events();
  std::vector<std::uint8_t> bytes;
  obs::encode_trace_events(bytes, events);
  expect_events_equal(obs::decode_trace_events(bytes), events);
}

TEST_F(ObsTest, EmptyBatchRoundTrips) {
  std::vector<std::uint8_t> bytes;
  obs::encode_trace_events(bytes, {});
  EXPECT_TRUE(obs::decode_trace_events(bytes).empty());
}

TEST_F(ObsTest, ContextSurvivesALoopbackTransportHop) {
  // The distributed engine ships encoded events as a kTraceData frame; the
  // codec must survive the Transport framing byte for byte.
  const std::vector<obs::TraceEvent> events = sample_events();
  std::vector<std::uint8_t> bytes;
  obs::encode_trace_events(bytes, events);
  auto [a, b] = loopback_pair();
  a->send(bytes);
  const auto frame = b->recv();
  ASSERT_TRUE(frame.has_value());
  expect_events_equal(obs::decode_trace_events(*frame), events);
}

TEST_F(ObsTest, MalformedBuffersAreTypedErrors) {
  std::vector<std::uint8_t> bytes;
  obs::encode_trace_events(bytes, sample_events());
  // Truncation at every prefix length must throw, never read off the end.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    if (len == 0) continue;  // empty buffer is simply "no header"
    EXPECT_THROW(obs::decode_trace_events(cut), std::runtime_error) << len;
  }
  // Trailing garbage after a well-formed payload is rejected too.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(obs::decode_trace_events(padded), std::runtime_error);
  // A forged event count cannot force a giant allocation.
  std::vector<std::uint8_t> forged(8, 0xff);
  EXPECT_THROW(obs::decode_trace_events(forged), std::runtime_error);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  obs::TraceEvent ev;
  ev.name = "he said \"hi\"\\";
  ev.ts_ns = 1500;
  ev.dur_ns = 1000;
  ev.pid = 1;
  ev.span_id = 0xab;
  const std::string json = obs::chrome_trace_json({&ev, 1});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("he said \\\"hi\\\"\\\\"), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);            // µs with 3 decimals
  EXPECT_NE(json.find("\"span\":\"ab\""), std::string::npos);         // ids as hex strings
}

TEST_F(ObsTest, SinkDrainRemovesEverything) {
  { obs::Span s("one"); }
  { obs::Span s("two"); }
  EXPECT_EQ(obs::TraceSink::global().size(), 2u);
  EXPECT_EQ(obs::TraceSink::global().drain().size(), 2u);
  EXPECT_EQ(obs::TraceSink::global().size(), 0u);
}

}  // namespace
}  // namespace deck
